#!/usr/bin/env python
"""DDOS demo: watch the spin detector tell busy-wait from normal loops.

Recreates the paper's Figure 7 walk-through:

1. a busy-wait loop (the hashtable's lock acquire) whose ``setp``
   path/value history repeats, so DDOS confirms its backward branch as
   a spin-inducing branch (SIB);
2. a normal ``for`` loop (kmeans-style) whose induction variable
   changes every iteration, so DDOS leaves it alone;
3. the MODULO-hashing failure mode: a merge-sort-style loop with a
   power-of-two stride whose low hash bits never change — falsely
   detected under MODULO, clean under XOR.

The paper's best configuration (XOR hashing, m=k=8, t=4) is the
default, so ``DDOSConfig()`` with no arguments reproduces Table I:

>>> from repro import DDOSConfig
>>> config = DDOSConfig()
>>> (config.hashing, config.path_bits, config.value_bits,
...  config.confidence_threshold)
('xor', 8, 8, 4)

Run:  python examples/spin_detection.py
"""

from repro import DDOSConfig, build_workload, make_config, simulate


def detect(kernel: str, ddos: DDOSConfig, **params):
    config = make_config("gto", ddos=ddos)
    result = simulate(build_workload(kernel, **params), config=config)
    program = result.launch.program
    return {
        "true_sibs": sorted(program.true_sibs()),
        "backward_branches": sorted(program.backward_branches()),
        "detected": sorted(result.predicted_sibs()),
    }


def show(title: str, outcome: dict) -> None:
    print(f"\n== {title}")
    print(f"   backward branches : {outcome['backward_branches']}")
    print(f"   true spin branches: {outcome['true_sibs']}")
    print(f"   DDOS detected     : {outcome['detected']}")


def main() -> None:
    xor = DDOSConfig(hashing="xor")
    modulo = DDOSConfig(hashing="modulo")

    ht = detect("ht", xor, n_threads=256, n_buckets=8,
                items_per_thread=1, block_dim=128)
    show("Busy-wait loop (hashtable lock acquire), XOR hashing", ht)
    assert ht["detected"] == ht["true_sibs"], "expected perfect detection"

    kmeans = detect("kmeans", xor, n_threads=128, per_thread=16,
                    block_dim=64)
    show("Normal for-loop (kmeans copy, Figure 7c), XOR hashing", kmeans)
    assert kmeans["detected"] == [], "normal loop must not be flagged"

    ms_modulo = detect("ms", modulo, n_threads=128, iterations=16,
                       stride=256, block_dim=64)
    show("Power-of-two-stride loop (merge sort), MODULO hashing",
         ms_modulo)
    assert ms_modulo["detected"], (
        "MODULO hashing should falsely flag the strided loop"
    )

    ms_xor = detect("ms", xor, n_threads=128, iterations=16, stride=256,
                    block_dim=64)
    show("Same loop, XOR hashing", ms_xor)
    assert ms_xor["detected"] == [], "XOR hashing must stay clean"

    print("\nAll detection outcomes match the paper's Table I story:")
    print("  XOR m=k=8: every spin loop found, zero false detections;")
    print("  MODULO: blind to power-of-two strides above 2^k.")


if __name__ == "__main__":
    main()
