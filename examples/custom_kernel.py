#!/usr/bin/env python
"""Author your own kernel in the PTX-like assembly and simulate it.

Demonstrates the full public authoring path: write assembly text with a
spin lock (annotated for the metrics layer), assemble it, set up global
memory by hand, launch on a GPU instance, and inspect both the final
memory image and the scheduler statistics — including DDOS finding your
spin loop without being told where it is.

The kernel: every thread atomically pushes its thread id onto a single
shared stack protected by one global spin lock.

Run:  python examples/custom_kernel.py
"""

from repro import (
    GPU,
    GlobalMemory,
    KernelLaunch,
    assemble,
    make_config,
)

SOURCE = r"""
    ld.param %r_lock, [lock]
    ld.param %r_top, [top]
    ld.param %r_stack, [stack]
    mov %r_done, 0
SPIN:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try !sync
    setp.eq %p1, %r_old, 0 !sync
    @%p1 bra PUSH !sync
    bra JOIN !sync
PUSH:
    // critical section: stack[top] = gtid; top += 1
    ld.global.cg %r_t, [%r_top]
    shl %r_addr, %r_t, 2
    add %r_addr, %r_stack, %r_addr
    st.global [%r_addr], %gtid
    add %r_t, %r_t, 1
    st.global [%r_top], %r_t
    mov %r_done, 1
    membar !sync
    atom.exch %r_ig, [%r_lock], 0 !lock_release !sync
JOIN:
    setp.eq %p2, %r_done, 0 !sync
    @%p2 bra SPIN !sib !sync
    exit
"""

N_THREADS = 128


def main() -> None:
    program = assemble(SOURCE, name="stack_push")
    print(f"Assembled {program.static_size} instructions, "
          f"{len(program.blocks)} basic blocks")
    print(f"Backward branches at {sorted(program.backward_branches())}, "
          f"reconvergence points {program.reconvergence}")

    memory = GlobalMemory(1 << 16)
    lock = memory.alloc(1)
    top = memory.alloc(1)
    stack = memory.alloc(N_THREADS)

    launch = KernelLaunch(
        program=program,
        grid_dim=2,
        block_dim=64,
        params={"lock": lock, "top": top, "stack": stack},
    )

    gpu = GPU(make_config("gto", bows=True), memory=memory)
    result = gpu.launch(launch)

    pushed = sorted(int(v) for v in memory.load_array(stack, N_THREADS))
    assert memory.read_word(top) == N_THREADS, "lost pushes!"
    assert pushed == list(range(N_THREADS)), "duplicate or missing ids!"
    print(f"\nAll {N_THREADS} thread ids pushed exactly once — the spin "
          "lock held up.")

    stats = result.stats
    print(f"cycles: {result.cycles}, warp instructions: "
          f"{stats.warp_instructions}")
    print(f"lock acquires: {stats.locks.lock_success} succeeded, "
          f"{stats.locks.inter_warp_fail} inter-warp / "
          f"{stats.locks.intra_warp_fail} intra-warp failures")
    print(f"DDOS found the spin branch at {sorted(result.predicted_sibs())} "
          f"(ground truth {sorted(program.true_sibs())})")


if __name__ == "__main__":
    main()
