#!/usr/bin/env python
"""Mini Figure 9: every synchronization kernel x every scheduler ± BOWS.

Runs the paper's eight busy-wait kernels (at reduced scale so the whole
sweep finishes in about a minute) under LRR, GTO, and CAWA, each with
and without BOWS, and prints execution time normalized to LRR — the
shape of the paper's Figure 9a.

Run:  python examples/scheduler_comparison.py
"""

from repro import build_workload, make_config, simulate
from repro.harness.params import KERNEL_ORDER, sync_params
from repro.harness.reporting import geomean, print_table

SCHEMES = [
    ("lrr", None), ("lrr", True),
    ("gto", None), ("gto", True),
    ("cawa", None), ("cawa", True),
]


def main() -> None:
    params = sync_params("quick")
    rows = []
    speedups = []
    for kernel in KERNEL_ORDER:
        row = {"kernel": kernel}
        lrr_cycles = None
        cycles_by_scheme = {}
        for sched, bows in SCHEMES:
            label = f"{sched}+bows" if bows else sched
            result = simulate(build_workload(kernel, **params[kernel]),
                              config=make_config(sched, bows=bows))
            cycles_by_scheme[label] = result.cycles
            if lrr_cycles is None:
                lrr_cycles = result.cycles
            row[label] = round(result.cycles / lrr_cycles, 3)
        speedups.append(
            cycles_by_scheme["gto"] / cycles_by_scheme["gto+bows"]
        )
        rows.append(row)
        print(f"  {kernel}: done")

    print()
    print_table(rows, title="Execution time normalized to LRR "
                            "(lower is better)")
    print(f"gmean BOWS speedup over GTO: {geomean(speedups):.2f}x")
    print("(paper, full scale: 1.4x over GTO)")


if __name__ == "__main__":
    main()
