#!/usr/bin/env python
"""Lint a deliberately broken kernel, then fix it check by check.

The static analyzer (``repro lint`` on the command line,
:func:`repro.lint_program` from Python) reads an assembled program's
CFG and flags synchronization bugs before a single cycle is simulated.
This example authors a kernel with three classic mistakes —

1. a busy-wait acquire loop missing its ``!sib`` annotation (SIB001),
2. a path that exits while still holding the lock (LOCK003),
3. dead code behind a mistyped branch target (CFG001),

— shows the lint report, then applies the fixes and lints clean.

The checkers run on plain assembled text, so they also work as
doctests (see ``docs/analysis.md`` for the full catalog):

>>> from repro import assemble, lint_program
>>> report = lint_program(assemble('''
...     mov %r_lock, 64
... SPIN:
...     atom.cas %r_old, [%r_lock], 0, 1 !lock_try
...     setp.ne %p1, %r_old, 0
...     @%p1 bra SPIN
...     exit
... ''', name="leaky"))
>>> sorted(d.id for d in report.diagnostics)
['LOCK001', 'LOCK003', 'SIB001']
>>> report.ok
False

Registered kernels carry the annotations already, so they lint clean
and their static SIB oracle matches the hand-written ground truth:

>>> from repro import build_workload, lint_kernel
>>> lint_kernel("ht").ok
True
>>> lint_kernel("ht").sib_oracle
[33]
>>> sorted(build_workload("ht").launch.program.true_sibs())
[33]

Run:  python examples/lint_kernel.py
"""

from repro import assemble, lint_program

BROKEN = r"""
    ld.param %r_lock, [lock]
    ld.param %r_out, [out]
SPIN:                                   // busy-wait, but no !sib below
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN
    ld.global %r_v, [%r_out]
    add %r_v, %r_v, 1
    st.global [%r_out], %r_v
    setp.eq %p2, %r_v, 0
    @%p2 bra DONE                       // skips the release when %r_v == 0
    atom.exch %r_ig, [%r_lock], 0 !lock_release
DONE:
    exit
    mov %r_dead, 1                      // typo'd label left this behind
    exit
"""

FIXED = r"""
    ld.param %r_lock, [lock]
    ld.param %r_out, [out]
SPIN:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN !sib
    ld.global %r_v, [%r_out]
    add %r_v, %r_v, 1
    st.global [%r_out], %r_v
    atom.exch %r_ig, [%r_lock], 0 !lock_release
    exit
"""


def main() -> None:
    broken = lint_program(assemble(BROKEN, name="counter_broken"))
    print("Linting the broken kernel:")
    print(broken.render())
    assert not broken.ok
    found = {d.id for d in broken.diagnostics}
    assert {"SIB001", "LOCK003", "CFG001"} <= found, found

    print("\nAfter annotating the spin, releasing on every path, and")
    print("deleting the dead block:")
    fixed = lint_program(assemble(FIXED, name="counter_fixed"))
    print(fixed.render())
    assert fixed.ok, fixed.render()
    assert fixed.sib_oracle, "the acquire loop is a statically known SIB"

    print("\nThe same gate runs over every registered kernel in CI:")
    print("  python -m repro lint --all --format json")


if __name__ == "__main__":
    main()
