#!/usr/bin/env python
"""Figure 16 in miniature: BOWS's win grows with lock contention.

Sweeps the hashtable bucket count (fewer buckets = more threads
fighting per lock), comparing GTO against GTO+BOWS and against the
magic-lock instruction-count floor (the paper's ideal-blocking /
HQL proxy).

Run:  python examples/contention_sweep.py
"""

from repro import build_workload, make_config, simulate
from repro.harness.reporting import print_table

PARAMS = dict(n_threads=512, items_per_thread=1, block_dim=256)
BUCKETS = (8, 16, 32, 64)


def main() -> None:
    rows = []
    for n_buckets in BUCKETS:
        params = dict(PARAMS, n_buckets=n_buckets)
        base = simulate(build_workload("ht", **params),
                        config=make_config("gto"))
        bows = simulate(build_workload("ht", **params),
                        config=make_config("gto", bows=True))
        # magic locks break mutual exclusion, so skip validation
        ideal = simulate(build_workload("ht", **params),
                         config=make_config("gto", magic_locks=True),
                         validate=False)
        base_instr = base.stats.thread_instructions
        rows.append({
            "buckets": n_buckets,
            "threads_per_bucket": PARAMS["n_threads"] // n_buckets,
            "bows_speedup": round(base.cycles / bows.cycles, 2),
            "instr_gto": 1.0,
            "instr_bows": round(
                bows.stats.thread_instructions / base_instr, 3),
            "instr_ideal_blocking": round(
                ideal.stats.thread_instructions / base_instr, 3),
        })
        print(f"  {n_buckets} buckets: done")

    print()
    print_table(rows, title="Hashtable contention sweep (GTO baseline)")
    print("Paper's shape: speedup largest at high contention; BOWS's")
    print("instruction count approaches the ideal blocking lock as")
    print("contention falls (Figure 16).")


if __name__ == "__main__":
    main()
