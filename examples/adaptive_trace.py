#!/usr/bin/env python
"""Watch the adaptive back-off delay limit find each kernel's sweet spot.

Runs two contrasting kernels under GTO + BOWS (adaptive) and prints the
per-SM delay-limit trajectory as an ASCII sparkline:

* **ht** — spin-bound: removing spin retries speeds up real work, so
  the controller climbs to a large delay;
* **st** — a merged wait/work loop whose closing branch is the SIB even
  on productive iterations: any throttle gates real work, so the
  controller stays near zero.

This is the per-kernel adaptation of the paper's Figure 10 ("adaptive
tracks the sweet spot") made visible.

Run:  python examples/adaptive_trace.py
"""

from repro import build_workload, make_config, simulate

CASES = {
    "ht": dict(n_threads=1024, n_buckets=16, items_per_thread=2,
               block_dim=256),
    "st": dict(n_threads=256, n_cells=2048, cell_work=8, block_dim=128),
}

BARS = " .:-=+*#%@"


def sparkline(values, width=60):
    if not values:
        return "(no windows observed)"
    step = max(len(values) // width, 1)
    sampled = values[::step][:width]
    top = max(max(sampled), 1)
    return "".join(
        BARS[min(int(v / top * (len(BARS) - 1)), len(BARS) - 1)]
        for v in sampled
    ), top


def main() -> None:
    for kernel, params in CASES.items():
        baseline = simulate(build_workload(kernel, **params),
                            config=make_config("gto"))
        result = simulate(build_workload(kernel, **params),
                          config=make_config("gto", bows=True))
        print(f"\n== {kernel}: {baseline.cycles} -> {result.cycles} cycles "
              f"({baseline.cycles / result.cycles:.2f}x)")
        for sm in result.sms:
            controller = sm.bows.controller
            if controller is None or not controller.history:
                continue
            line, top = sparkline(controller.history)
            print(f"  SM{sm.sm_id} delay limit over time "
                  f"(peak {top} cycles, {len(controller.history)} windows)")
            print(f"  |{line}|")

    print("\nReading: the hashtable's trajectory climbs and stays high")
    print("(throttling spin pays); the sort kernel's hugs zero (any")
    print("throttle delays productive iterations).")


if __name__ == "__main__":
    main()
