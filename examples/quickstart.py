#!/usr/bin/env python
"""Quickstart: run a spin-lock workload with and without BOWS.

Builds the paper's hashtable-insertion kernel (Figure 1a), runs it on
the scaled GTX480-shaped simulator under plain GTO scheduling and under
GTO + BOWS (with DDOS detecting the spin loop at runtime), validates
the hashtable both times, and reports the speedup.

Building a workload is cheap — the simulation below is what takes the
time.  The kernel ships with its spin-loop ground truth annotated:

>>> from repro import build_workload
>>> workload = build_workload("ht", n_threads=64, n_buckets=8,
...                           items_per_thread=1, block_dim=64)
>>> sorted(workload.launch.program.true_sibs())
[33]

Run:  python examples/quickstart.py
"""

from repro import build_workload, make_config, simulate


def main() -> None:
    params = dict(
        n_threads=1024, n_buckets=16, items_per_thread=2, block_dim=256
    )

    print("Simulating hashtable insertion "
          "(1024 threads x 2 keys, 16 buckets; ~15s)...")
    baseline = simulate(build_workload("ht", **params),
                        config=make_config("gto"))
    bows = simulate(build_workload("ht", **params),
                    config=make_config("gto", bows=True))

    base_stats = baseline.stats
    bows_stats = bows.stats
    print(f"\n{'':28s}{'GTO':>12s}{'GTO+BOWS':>12s}")
    rows = [
        ("cycles", baseline.cycles, bows.cycles),
        ("warp instructions", base_stats.warp_instructions,
         bows_stats.warp_instructions),
        ("failed lock acquires",
         base_stats.locks.inter_warp_fail + base_stats.locks.intra_warp_fail,
         bows_stats.locks.inter_warp_fail + bows_stats.locks.intra_warp_fail),
        ("memory transactions", base_stats.memory.total_transactions,
         bows_stats.memory.total_transactions),
        ("dynamic energy (uJ)",
         round(base_stats.dynamic_energy_pj / 1e6, 2),
         round(bows_stats.dynamic_energy_pj / 1e6, 2)),
    ]
    for label, a, b in rows:
        print(f"{label:28s}{a:>12}{b:>12}")

    true_sibs = bows.launch.program.true_sibs()
    detected = bows.predicted_sibs()
    print(f"\nDDOS detected spin-inducing branches: {sorted(detected)}")
    print(f"Ground-truth spin-inducing branches:  {sorted(true_sibs)}")

    speedup = baseline.cycles / bows.cycles
    energy = base_stats.dynamic_energy_pj / bows_stats.dynamic_energy_pj
    print(f"\nBOWS speedup: {speedup:.2f}x   energy saving: {energy:.2f}x")
    print("(both runs validated: every insertion survived, so mutual")
    print(" exclusion held under both schedulers)")


if __name__ == "__main__":
    main()
