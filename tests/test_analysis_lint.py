"""Static kernel lint: diagnostics, checkers, waivers, the SIB oracle.

The crafted failing programs live in ``tests/data/bad_kernels/`` — one
minimal kernel per diagnostic id with a golden JSON report next to it —
and double as the examples in ``docs/analysis.md``.  The property tests
pin the contract the CI lint gate relies on: every registered kernel
lints clean (or carries an explicit ``!waive_*`` role) and the static
SIB oracle reproduces the hand-written ``!sib`` ground truth exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Diagnostic,
    lint_all,
    lint_kernel,
    lint_program,
    score_against_oracle,
    static_sib_oracle,
    waiver_role,
)
from repro.isa import assemble
from repro.kernels import build, kernel_names

BAD_KERNELS = Path(__file__).parent / "data" / "bad_kernels"

#: Fixture name -> the diagnostic ids its lint report must contain.
EXPECTED_IDS = {
    "spin_unannotated": ["SIB001"],
    "sib_mislabeled": ["SIB002"],
    "lock_leak": ["LOCK001", "LOCK003"],
    "rogue_release": ["LOCK002"],
    "exit_holding_lock": ["LOCK003"],
    "double_acquire": ["LOCK004"],
    "divergent_barrier": ["BAR001"],
    "undefined_register": ["REG001"],
    "dead_code": ["CFG001"],
}


# ----------------------------------------------------------------------
# Diagnostic records

def test_diagnostic_round_trip_and_optional_fields():
    diag = Diagnostic(id="SIB001", severity="warning", kernel="k", pc=3,
                      message="m", hint="h", warp=2, lane=None, cycle=40,
                      detail={"loop_blocks": [1]})
    data = diag.to_dict()
    assert data["id"] == "SIB001" and data["warp"] == 2
    assert "lane" not in data  # unset optionals are omitted
    assert Diagnostic.from_dict(data) == diag


def test_diagnostic_format_mentions_id_pc_and_hint():
    diag = Diagnostic(id="REG001", severity="error", kernel="k", pc=7,
                      message="bad register", hint="define it")
    text = diag.format()
    assert "REG001" in text and "k:7" in text
    assert "bad register" in text and "define it" in text


def test_waiver_role_is_lowercased_id():
    assert waiver_role("SIB001") == "waive_sib001"


# ----------------------------------------------------------------------
# Checkers on crafted bad kernels (goldens)

@pytest.mark.parametrize("name", sorted(EXPECTED_IDS))
def test_bad_kernel_matches_golden_json(name):
    source = (BAD_KERNELS / f"{name}.asm").read_text()
    golden = json.loads((BAD_KERNELS / f"{name}.json").read_text())
    report = lint_program(assemble(source, name=name))
    assert not report.ok
    assert [d.id for d in report.diagnostics] == EXPECTED_IDS[name]
    got = {
        "kernel": name,
        "ok": report.ok,
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }
    assert got == golden


def test_waiver_moves_finding_out_of_diagnostics():
    source = (BAD_KERNELS / "spin_unannotated.asm").read_text()
    waived_source = source.replace("@%p1 bra SPIN",
                                   "@%p1 bra SPIN !waive_sib001")
    report = lint_program(assemble(waived_source, name="waived"))
    assert report.ok
    assert [d.id for d in report.waived] == ["SIB001"]
    # The waived spin stays a candidate but leaves the oracle.
    assert report.sib_candidates and not report.sib_oracle


def test_report_render_lists_findings_and_waivers():
    source = (BAD_KERNELS / "rogue_release.asm").read_text()
    report = lint_program(assemble(source, name="rogue"))
    text = report.render()
    assert "LOCK002" in text and "rogue" in text
    clean = lint_program(assemble("    exit\n", name="empty"))
    assert "OK" in clean.render()


# ----------------------------------------------------------------------
# Property: registered kernels lint clean and the oracle matches truth

@pytest.mark.parametrize("name", kernel_names())
def test_registered_kernel_lints_clean_or_waived(name):
    report = lint_kernel(name)
    assert report.ok, report.render()


@pytest.mark.parametrize("name", kernel_names())
def test_static_oracle_matches_sib_annotations(name):
    program = build(name).launch.program
    assert static_sib_oracle(program) == program.true_sibs(), name


def test_lint_all_covers_every_registered_kernel():
    reports = lint_all()
    assert set(reports) == set(kernel_names())
    assert all(rep.ok for rep in reports.values())


# ----------------------------------------------------------------------
# Table I scoring: static oracle vs DDOS runtime detections

def test_score_against_oracle_on_crafted_program():
    program = assemble(
        """
        mov %r_lock, 64
        mov %r_i, 0
    SPIN:
        atom.cas %r_old, [%r_lock], 0, 1 !lock_try
        setp.ne %p1, %r_old, 0
        @%p1 bra SPIN !sib
        atom.exch %r_ig, [%r_lock], 0 !lock_release
    LOOP:
        add %r_i, %r_i, 1
        setp.lt %p2, %r_i, 10
        @%p2 bra LOOP
        exit
        """,
        name="scored",
    )
    (spin_pc,) = static_sib_oracle(program)
    counting = sorted(program.backward_branches() - {spin_pc})

    perfect = score_against_oracle(program, [spin_pc])
    assert perfect["tsdr"] == 1.0 and perfect["fsdr"] == 0.0

    noisy = score_against_oracle(program, [spin_pc] + counting)
    assert noisy["tsdr"] == 1.0 and noisy["fsdr"] == 1.0
    assert noisy["false_detected"] == counting

    missed = score_against_oracle(program, [])
    assert missed["tsdr"] == 0.0 and missed["fsdr"] == 0.0


#: Table I suite members exercised end-to-end here; spin-heavy and
#: loop-rich sync-free kernels both appear so FSDR has candidates.
DDOS_SUITE = {
    "ht": dict(n_threads=128, n_buckets=8, items_per_thread=1,
               block_dim=64),
    "atm": dict(n_threads=128, n_accounts=16, rounds=1, block_dim=64),
    "st": dict(n_threads=64, n_cells=64, cell_work=2, block_dim=64),
    "kmeans": dict(n_threads=64, per_thread=4, block_dim=32),
    "reduction": dict(n_threads=128, block_dim=64),
}


@pytest.mark.parametrize("kernel", sorted(DDOS_SUITE))
def test_static_oracle_agrees_with_ddos(kernel):
    """Paper Table I, XOR m=k=8 (the default DDOS config): runtime
    detections score TSDR 1.0 / FSDR 0.0 against the *static* oracle —
    i.e. the CFG-derived ground truth and DDOS agree exactly."""
    from repro.api import simulate
    from repro.harness.runner import make_config

    config = make_config("gto", ddos=True, num_sms=1,
                         max_warps_per_sm=8, max_cycles=5_000_000)
    result = simulate(kernel, config=config, params=DDOS_SUITE[kernel])
    program = result.launch.program
    score = score_against_oracle(program, result.predicted_sibs())
    assert score["tsdr"] == 1.0, score
    assert score["fsdr"] == 0.0, score
