"""Set-associative LRU cache tag array."""

from hypothesis import given, strategies as st

from repro.memory.cache import Cache
from repro.sim.config import CacheConfig


def small_cache(assoc=2, sets=2, line=128) -> Cache:
    return Cache(CacheConfig(line * assoc * sets, line, assoc))


def test_cold_miss_then_hit():
    cache = small_cache()
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_different_offsets():
    cache = small_cache(line=128)
    cache.access(0)
    # access() takes line-aligned addresses; offsets map via caller.
    assert cache.access(0)


def test_lru_eviction():
    cache = small_cache(assoc=2, sets=1)
    a, b, c = 0, 128, 256  # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(c)        # evicts a (LRU)
    assert not cache.access(a)  # a was evicted
    # accessing a evicted b (it was LRU after c's fill)
    assert not cache.access(b)


def test_lru_updated_on_hit():
    cache = small_cache(assoc=2, sets=1)
    a, b, c = 0, 128, 256
    cache.access(a)
    cache.access(b)
    cache.access(a)        # a becomes MRU
    cache.access(c)        # evicts b, not a
    assert cache.access(a)


def test_no_allocate_on_miss():
    cache = small_cache()
    assert not cache.access(0, allocate=False)
    assert not cache.access(0)  # still a miss: not filled before


def test_probe_is_non_destructive():
    cache = small_cache()
    assert not cache.probe(0)
    hits = cache.hits
    misses = cache.misses
    cache.probe(0)
    assert cache.hits == hits and cache.misses == misses


def test_invalidate():
    cache = small_cache()
    cache.access(0)
    assert cache.invalidate(0)
    assert not cache.probe(0)
    assert not cache.invalidate(0)


def test_flush():
    cache = small_cache()
    for line in (0, 128, 256, 384):
        cache.access(line)
    cache.flush()
    assert cache.occupancy()["resident"] == 0


def test_sets_are_independent():
    cache = small_cache(assoc=1, sets=2, line=128)
    # line 0 -> set 0, line 128 -> set 1
    cache.access(0)
    cache.access(128)
    assert cache.access(0)
    assert cache.access(128)


@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(line_indices):
    cache = small_cache(assoc=2, sets=2)
    for index in line_indices:
        cache.access(index * 128)
    occupancy = cache.occupancy()
    assert occupancy["resident"] <= occupancy["capacity"]
    assert cache.accesses == len(line_indices)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=50))
def test_single_set_working_set_within_assoc_always_hits(picks):
    """A working set no larger than the associativity never re-misses."""
    cache = small_cache(assoc=2, sets=1)
    seen = set()
    for pick in picks:
        addr = pick * 128
        hit = cache.access(addr)
        assert hit == (pick in seen)
        seen.add(pick)


def test_bad_geometry_rejected():
    import pytest

    with pytest.raises(ValueError):
        CacheConfig(1000, 128, 3)
