"""Crash injection and recovery: the lab survives everything short of
losing the disk.

Covers the recovery matrix of ``docs/robustness.md``: a SIGKILLed pool
worker (re-queued exactly once, for free), a SIGKILLed *parent* (sweep
completed from its journal without recomputing finished specs), a torn
cache write (quarantined, then recomputed), concurrent Runners sharing
one cache directory, graceful SIGINT draining, and the SIGALRM
save/restore contract of the per-run timeout.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.runner import make_config
from repro.lab import (FileLock, LockTimeout, ResultCache, Runner, RunSpec,
                       decorrelated_jitter, load_journal, resume_sweep)
from repro.lab import _testing
from repro.lab.journal import JournalError, SweepJournal
from repro.lab.runner import _run_with_timeout
from repro.obs import EventBus

ROOT = Path(__file__).resolve().parent.parent


def _spec(seed: int = 0) -> RunSpec:
    """Tiny distinct specs (the injected run_fns never build them)."""
    return RunSpec(kernel="ht", config=make_config("gto"), seed=seed,
                   label=f"spec{seed}")


def _python(code: str, *argv: str, env_extra=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.update(env_extra or {})
    return subprocess.Popen([sys.executable, "-c", code, *argv], env=env,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)


# ---------------------------------------------------------------------------
# Backoff + locking primitives


def test_decorrelated_jitter_is_bounded_and_grows():
    rng = random.Random(7)
    assert decorrelated_jitter(1.0, 0.0, 10.0, rng) == 0.0
    delay = 0.0
    for _ in range(50):
        delay = decorrelated_jitter(delay, 0.05, 2.0, rng)
        assert 0.05 <= delay <= 2.0


def test_filelock_excludes_a_second_acquirer(tmp_path):
    pytest.importorskip("fcntl")
    lock_path = tmp_path / ".lock"
    with FileLock(lock_path):
        second = FileLock(lock_path, timeout_s=0.2, poll_s=0.02)
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            second.acquire()
        assert time.monotonic() - start >= 0.2
    # Released: immediately acquirable again.
    with FileLock(lock_path, timeout_s=0.2):
        pass


def test_filelock_is_released_when_the_holder_is_sigkilled(tmp_path):
    pytest.importorskip("fcntl")
    lock_path = tmp_path / ".lock"
    ready = tmp_path / "ready"
    holder = _python(
        "import sys, time\n"
        "from pathlib import Path\n"
        "from repro.lab import FileLock\n"
        "lock = FileLock(sys.argv[1]).acquire()\n"
        "Path(sys.argv[2]).touch()\n"
        "time.sleep(30)\n",
        str(lock_path), str(ready),
    )
    try:
        deadline = time.monotonic() + 10
        while not ready.exists():
            assert time.monotonic() < deadline, holder.stderr.read()
            time.sleep(0.02)
        with pytest.raises(LockTimeout):
            FileLock(lock_path, timeout_s=0.2, poll_s=0.02).acquire()
        holder.kill()
        holder.wait(timeout=10)
        # The kernel dropped the flock with the process: no stuck lock.
        with FileLock(lock_path, timeout_s=2.0):
            pass
    finally:
        if holder.poll() is None:
            holder.kill()
        holder.wait(timeout=10)


# ---------------------------------------------------------------------------
# Durable cache: torn writes, quarantine, verify/repair


def _entry_path(cache: ResultCache, spec: RunSpec) -> Path:
    return cache._entry_path(spec.content_hash())


def test_torn_write_is_quarantined_then_recomputed(tmp_path):
    bus = EventBus()
    cache = ResultCache(tmp_path / "cache", bus=bus)
    runner = Runner(cache=cache, run_fn=_testing.instant_ok)
    spec = _spec(0)
    assert runner.run_many([spec]).executed == 1

    # Tear the entry the way a crashed non-atomic writer would.
    path = _entry_path(cache, spec)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])

    # The torn entry is a miss (never a crash, never a wrong result)...
    assert cache.get(spec) is None
    quarantined = list((tmp_path / "cache" / "quarantine").iterdir())
    assert len(quarantined) == 1
    assert bus.counts.get("corrupt_entry_quarantined") == 1

    # ...and the slot recomputes cleanly on the next batch.
    report = Runner(cache=cache, run_fn=_testing.instant_ok).run_many([spec])
    assert report.executed == 1
    assert cache.get(spec) is not None


def test_cache_verify_reports_and_repairs(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    specs = [_spec(i) for i in range(3)]
    Runner(cache=cache, run_fn=_testing.instant_ok).run_many(specs)

    victim = _entry_path(cache, specs[1])
    victim.write_text(victim.read_text()[:-30] + "}")  # corrupt the body

    scan = cache.verify()
    assert len(scan.entries) == 3
    assert [e.status for e in scan.entries].count("ok") == 2
    assert len(scan.corrupt) == 1 and not scan.ok
    assert scan.corrupt[0].spec_hash == specs[1].content_hash()
    assert all(e.size_bytes > 0 for e in scan.entries)
    assert victim.exists()  # read-only scan

    repaired = cache.verify(repair=True)
    assert len(repaired.quarantined) == 1
    assert not victim.exists()
    assert cache.verify().ok
    assert cache.stats().quarantined_entries == 1


def test_cache_verify_cli_exit_codes(tmp_path):
    from repro.cli import main

    cache = ResultCache(tmp_path / "cache")
    spec = _spec(0)
    Runner(cache=cache, run_fn=_testing.instant_ok).run_many([spec])
    assert main(["cache", "verify", "--cache-dir",
                 str(tmp_path / "cache")]) == 0

    _entry_path(cache, spec).write_text("{garbage")
    assert main(["cache", "verify", "--cache-dir",
                 str(tmp_path / "cache")]) == 1
    assert main(["cache", "verify", "--repair", "--cache-dir",
                 str(tmp_path / "cache")]) == 0
    assert main(["cache", "verify", "--cache-dir",
                 str(tmp_path / "cache")]) == 0


# ---------------------------------------------------------------------------
# Journal


def test_journal_round_trip_and_pending(tmp_path):
    path = tmp_path / "sweep.jsonl"
    specs = [_spec(i) for i in range(3)]
    with SweepJournal(path) as journal:
        for spec in specs:
            journal.record_spec(spec)
            journal.record_spec(spec)  # idempotent
        journal.record_done(specs[0].content_hash(), from_cache=False,
                            cycles=11)
        journal.record_failed(specs[1].content_hash(),
                              error_type="RunTimeout", transient=True)
    state = load_journal(path)
    assert len(state.specs) == 3
    assert state.executed == 1 and state.cache_hits == 0
    assert [s.content_hash() for s in state.pending] == [
        specs[1].content_hash(), specs[2].content_hash()]
    rebuilt = state.specs[specs[0].content_hash()]
    assert rebuilt.content_hash() == specs[0].content_hash()
    assert rebuilt.label == specs[0].label


def test_journal_tolerates_a_torn_final_line(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record_spec(_spec(0))
        journal.record_done(_spec(0).content_hash(), from_cache=False,
                            cycles=5)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "done", "hash": "abc')  # SIGKILL mid-write
    state = load_journal(path)
    assert state.skipped_lines == 1
    assert len(state.done) == 1


def test_empty_journal_is_an_error(tmp_path):
    with pytest.raises(JournalError):
        load_journal(tmp_path / "missing.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text('{"type": "note", "note": "hello"}\n')
    with pytest.raises(JournalError, match="no spec records"):
        load_journal(empty)


# ---------------------------------------------------------------------------
# Worker loss


def test_sigkilled_worker_is_requeued_once_and_batch_completes(
        tmp_path, monkeypatch):
    monkeypatch.setenv(_testing.SENTINEL_ENV, str(tmp_path / "sentinel"))
    bus = EventBus()
    runner = Runner(workers=2, mode="process",
                    run_fn=_testing.kill_worker_once,
                    retries=1, backoff_base_s=0.0, bus=bus)
    report = runner.run_many([_spec(i) for i in range(3)])
    assert [r.ok for r in report.results] == [True, True, True]
    # The victim (and any innocent in-flight specs) were re-queued for
    # free: nobody's attempt counter reflects the worker death.
    assert all(r.attempts == 1 for r in report.results)
    assert report.worker_losses >= 1
    events = list(bus.events("worker_lost"))
    assert events and all(e.requeued for e in events)


def test_repeated_worker_loss_consumes_the_retry_budget(
        tmp_path, monkeypatch):
    monkeypatch.setenv(_testing.SENTINEL_ENV, str(tmp_path / "sentinel"))
    runner = Runner(workers=1, mode="process", run_fn=_testing.kill_always,
                    retries=1, backoff_base_s=0.0)
    report = runner.run_many([_spec(0)])
    (failure,) = report.results
    assert not failure.ok
    assert failure.error_type == "BrokenProcessPool"
    assert failure.transient
    # One free re-queue + the budgeted attempts: 1 original + 1 retry.
    assert failure.attempts == 2
    assert report.worker_losses == 3


# ---------------------------------------------------------------------------
# Parent SIGKILL -> resume without recomputation


def test_sigkilled_sweep_is_completed_by_resume_without_recompute(tmp_path):
    cache_dir = tmp_path / "cache"
    journal_path = tmp_path / "sweep.jsonl"
    crasher = _python(
        "import os, signal, sys\n"
        "from repro.harness.runner import make_config\n"
        "from repro.lab import ResultCache, Runner, RunSpec\n"
        "from repro.lab.journal import SweepJournal\n"
        "from repro.lab._testing import instant_ok\n"
        "specs = [RunSpec(kernel='ht', config=make_config('gto'), seed=i,\n"
        "                 label=f'spec{i}') for i in range(4)]\n"
        "done = 0\n"
        "def note(message):\n"
        "    global done\n"
        "    if ': ok' in message:\n"
        "        done += 1\n"
        "        if done == 2:\n"
        "            os.kill(os.getpid(), signal.SIGKILL)\n"
        "runner = Runner(cache=ResultCache(sys.argv[1]), run_fn=instant_ok,\n"
        "                progress=note)\n"
        "with SweepJournal(sys.argv[2]) as journal:\n"
        "    runner.run_many(specs, journal=journal)\n",
        str(cache_dir), str(journal_path),
    )
    _, stderr = crasher.communicate(timeout=60)
    assert crasher.returncode == -signal.SIGKILL, stderr

    # The journal survived the kill: all specs, exactly 2 done records.
    state = load_journal(journal_path)
    assert len(state.specs) == 4
    assert len(state.done) == 2 and state.executed == 2
    assert len(state.pending) == 2

    # Resume finishes the batch; the finished specs come back from the
    # cache (no recomputation), journaled as cache-hit done records.
    runner = Runner(cache=ResultCache(cache_dir),
                    run_fn=_testing.instant_ok)
    report = resume_sweep(journal_path, runner=runner)
    assert report.total == 4 and not report.failures
    assert report.cache_hits == 2 and report.executed == 2
    final = load_journal(journal_path)
    assert len(final.done) == 4 and not final.pending
    # Last record per hash wins: the two originally-executed specs now
    # show their resume-time cache hits, the two new ones executed.
    assert final.cache_hits == 2 and final.executed == 2


# ---------------------------------------------------------------------------
# Concurrent runners, one cache


def test_concurrent_runners_share_one_cache_without_torn_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    worker_code = (
        "import sys\n"
        "from repro.harness.runner import make_config\n"
        "from repro.lab import ResultCache, Runner, RunSpec\n"
        "from repro.lab._testing import instant_ok\n"
        "specs = [RunSpec(kernel='ht', config=make_config('gto'), seed=i,\n"
        "                 label=f'spec{i}') for i in range(6)]\n"
        "report = Runner(cache=ResultCache(sys.argv[1]),\n"
        "                run_fn=instant_ok).run_many(specs)\n"
        "assert not report.failures\n"
    )
    procs = [_python(worker_code, str(cache_dir)) for _ in range(2)]
    for proc in procs:
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, stderr

    cache = ResultCache(cache_dir)
    scan = cache.verify()
    assert scan.ok
    assert len(scan.entries) == 6  # one entry per spec, no duplicates
    for seed in range(6):
        assert cache.get(_spec(seed)) is not None
    assert not (cache_dir / "quarantine").exists()


# ---------------------------------------------------------------------------
# Graceful draining


def test_first_sigint_drains_and_records_the_rest_as_interrupted():
    calls = []

    def run_fn(spec):
        calls.append(spec.label)
        os.kill(os.getpid(), signal.SIGINT)  # arrives before the return
        return _testing.fabricate_result(spec)

    report = Runner(run_fn=run_fn).run_many([_spec(i) for i in range(3)])
    assert calls == ["spec0"]  # in-flight run finished, rest never ran
    assert report.interrupted
    assert report.results[0].ok
    for failure in report.results[1:]:
        assert not failure.ok
        assert failure.error_type == "RunInterrupted"
        assert failure.transient
    # The batch handler was uninstalled afterwards.
    assert signal.getsignal(signal.SIGINT) is signal.default_int_handler


# ---------------------------------------------------------------------------
# SIGALRM timeout hygiene (the seed leaked/clobbered the caller's alarm)


def test_run_with_timeout_restores_prior_handler_and_itimer():
    fired = []

    def prior(signum, frame):
        fired.append(signum)

    old_handler = signal.signal(signal.SIGALRM, prior)
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    try:
        result = _run_with_timeout(
            _testing.fabricate_result, _spec(0), 0.5)
        assert result.ok
        # Handler AND timer back: the caller's alarm still pending.
        assert signal.getsignal(signal.SIGALRM) is prior
        remaining, interval = signal.setitimer(signal.ITIMER_REAL, 0.0)
        assert 0.0 < remaining <= 30.0
        assert interval == 0.0
        assert not fired
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def test_run_with_timeout_no_prior_timer_leaves_none_armed():
    old_handler = signal.getsignal(signal.SIGALRM)
    result = _run_with_timeout(_testing.fabricate_result, _spec(0), 0.5)
    assert result.ok
    assert signal.getsignal(signal.SIGALRM) is old_handler
    assert signal.setitimer(signal.ITIMER_REAL, 0.0) == (0.0, 0.0)


# ---------------------------------------------------------------------------
# Mid-simulation checkpoint/resume through the lab entry point

PARAMS = dict(n_threads=128, n_buckets=8, items_per_thread=1, block_dim=64)


def _sim_spec() -> RunSpec:
    from repro.obs import ObsConfig

    return RunSpec(kernel="ht", config=make_config("gto"), params=PARAMS,
                   obs=ObsConfig(), label="ht-ckpt")


def test_execute_run_resumes_from_a_live_checkpoint(tmp_path):
    from repro.kernels import build as build_workload
    from repro.lab.runner import execute_run
    from repro.obs import Observability
    from repro.sim.gpu import GPU

    spec = _sim_spec()
    baseline = execute_run(spec)

    # A previous attempt got partway and was killed: reproduce its
    # checkpoint by advancing a fresh simulation to a mid-run epoch.
    workload = build_workload(spec.kernel, **spec.build_params())
    gpu = GPU(spec.config, memory=workload.memory, engine=spec.engine,
              obs=Observability(spec.obs))
    sim = gpu.begin(workload.launch)
    sim.run_until(1_000)
    assert not sim.finished
    ckpt_dir = tmp_path / "ckpts"
    sim.save_checkpoint(ckpt_dir / f"{spec.content_hash()}.ckpt")

    result = execute_run(spec, checkpoint_dir=ckpt_dir)
    assert result.cycles == baseline.cycles
    assert result.stats.summary() == baseline.stats.summary()
    # The resume was journaled as an event and the checkpoint consumed.
    assert result.obs["events"]["counts"].get("run_resumed") == 1
    assert not (ckpt_dir / f"{spec.content_hash()}.ckpt").exists()


def test_execute_run_recovers_from_a_corrupt_checkpoint(tmp_path):
    from repro.lab.runner import execute_run

    spec = _sim_spec()
    ckpt_dir = tmp_path / "ckpts"
    ckpt_dir.mkdir()
    path = ckpt_dir / f"{spec.content_hash()}.ckpt"
    path.write_bytes(b"RPCKPT01" + os.urandom(64))  # torn/garbage file

    baseline = execute_run(spec)
    result = execute_run(spec, checkpoint_dir=ckpt_dir)  # falls back fresh
    assert result.stats.summary() == baseline.stats.summary()
    assert result.obs["events"]["counts"].get("run_resumed") is None
    assert not path.exists()
