"""Global memory and the L1/L2/DRAM timing model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory.coalescer import coalesce
from repro.memory.memsys import GlobalMemory, MemorySubsystem
from repro.sim.config import fermi_config

# ------------------------------------------------------------- coalescer


def test_coalesce_same_line():
    addrs = np.array([0, 4, 8, 124])
    assert coalesce(addrs, 128) == [0]


def test_coalesce_distinct_lines():
    addrs = np.array([0, 128, 256])
    assert coalesce(addrs, 128) == [0, 128, 256]


def test_coalesce_empty():
    assert coalesce(np.array([], dtype=np.int64), 128) == []


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=64))
def test_coalesce_covers_all_addresses(addr_list):
    addrs = np.array(addr_list, dtype=np.int64)
    lines = coalesce(addrs, 128)
    assert len(lines) == len(set(a // 128 for a in addr_list))
    for addr in addr_list:
        assert addr // 128 * 128 in lines
    assert lines == sorted(lines)


# --------------------------------------------------------- global memory


def test_alloc_returns_byte_addresses():
    mem = GlobalMemory(1024)
    a = mem.alloc(10)
    b = mem.alloc(10)
    assert a % 4 == 0 and b % 4 == 0
    assert b >= a + 40  # no overlap


def test_alloc_alignment():
    mem = GlobalMemory(1024)
    mem.alloc(3)
    b = mem.alloc(4, align_words=32)
    assert (b // 4) % 32 == 0


def test_alloc_exhaustion():
    mem = GlobalMemory(64)
    with pytest.raises(MemoryError):
        mem.alloc(100)


def test_read_write_roundtrip():
    mem = GlobalMemory(256)
    base = mem.alloc(8)
    addrs = base + 4 * np.arange(8)
    values = np.arange(8) * 3
    mem.write(addrs, values)
    assert (mem.read(addrs) == values).all()


def test_out_of_bounds_rejected():
    mem = GlobalMemory(16)
    with pytest.raises(IndexError):
        mem.read(np.array([16 * 4]))
    with pytest.raises(IndexError):
        mem.write(np.array([-4]), np.array([1]))


def test_scalar_helpers():
    mem = GlobalMemory(64)
    mem.write_word(8, 42)
    assert mem.read_word(8) == 42
    mem.store_array(16, [1, 2, 3])
    assert mem.load_array(16, 3).tolist() == [1, 2, 3]


# ------------------------------------------------------------ timing model


@pytest.fixture
def memsys():
    return MemorySubsystem(fermi_config(num_sms=2))


def test_load_miss_then_hit_is_faster(memsys):
    config = memsys.config
    addrs = np.array([0, 4, 8])
    miss = memsys.load(0, addrs, now=0)
    hit = memsys.load(0, addrs, now=miss.completion)
    assert miss.completion > config.l1_hit_latency
    assert (
        hit.completion - miss.completion == config.l1_hit_latency
    )


def test_load_counts_one_transaction_per_line(memsys):
    addrs = np.array([0, 4, 128, 256])
    result = memsys.load(0, addrs, now=0)
    assert result.transactions == 3
    assert memsys.stats.load_transactions == 3


def test_bypass_l1_never_fills(memsys):
    addrs = np.array([0])
    memsys.load(0, addrs, now=0, bypass_l1=True)
    assert memsys.stats.l1_hits == 0
    assert memsys.stats.l1_misses == 0
    assert not memsys.l1[0].probe(0)


def test_l1_caches_are_per_sm(memsys):
    addrs = np.array([0])
    memsys.load(0, addrs, now=0)
    assert memsys.l1[0].probe(0)
    assert not memsys.l1[1].probe(0)


def test_store_write_through_evicts_local_line(memsys):
    addrs = np.array([0])
    memsys.load(0, addrs, now=0)
    assert memsys.l1[0].probe(0)
    memsys.store(0, addrs, now=100)
    assert not memsys.l1[0].probe(0)
    assert memsys.stats.store_transactions == 1


def test_store_leaves_remote_l1_stale(memsys):
    """Fermi-faithful: no coherence traffic to other SMs' L1s."""
    addrs = np.array([0])
    memsys.load(1, addrs, now=0)
    memsys.store(0, addrs, now=100)
    assert memsys.l1[1].probe(0)  # stale line still resident remotely


def test_atomics_bypass_and_invalidate_l1(memsys):
    addrs = np.array([0])
    memsys.load(0, addrs, now=0)
    memsys.atomic(0, addrs, now=100)
    assert not memsys.l1[0].probe(0)
    assert memsys.stats.atomic_transactions == 1


def test_atomic_dedupes_same_address_lanes(memsys):
    addrs = np.array([0, 0, 0, 4])
    result = memsys.atomic(0, addrs, now=0)
    assert result.transactions == 2  # two unique addresses


def test_atomics_serialize_at_the_bank(memsys):
    """Back-to-back atomics to one (L2-resident) line queue up."""
    addrs = np.array([0])
    memsys.atomic(0, addrs, now=0)  # warm the L2 line
    first = memsys.atomic(0, addrs, now=1000)
    second = memsys.atomic(0, addrs, now=1000)
    assert second.completion == (
        first.completion + memsys.config.atomic_service_interval
    )


def test_atomic_storm_delays_loads_on_same_bank(memsys):
    """The paper's spin-traffic effect: CAS storms slow the CS's loads."""
    line = 0
    quiet = memsys.load(0, np.array([line]), now=0, bypass_l1=True)
    quiet_latency = quiet.completion
    for _ in range(50):
        memsys.atomic(0, np.array([line]), now=0)
    busy = memsys.load(0, np.array([line]), now=0, bypass_l1=True)
    assert busy.completion > quiet_latency * 2


def test_sync_vs_other_classification(memsys):
    memsys.load(0, np.array([0]), now=0, sync=True)
    memsys.load(0, np.array([256]), now=0, sync=False)
    assert memsys.stats.sync_transactions == 1
    assert memsys.stats.other_transactions == 1


def test_next_event_after(memsys):
    assert memsys.next_event_after(0) is None
    memsys.atomic(0, np.array([0]), now=0)
    event = memsys.next_event_after(0)
    assert event is not None and event > 0


@given(st.lists(st.integers(0, 63), min_size=1, max_size=30))
def test_completion_never_in_the_past(line_indices):
    memsys = MemorySubsystem(fermi_config(num_sms=1))
    now = 0
    for index in line_indices:
        result = memsys.load(0, np.array([index * 128]), now=now)
        assert result.completion > now
        now += 1


def test_stats_totals():
    memsys = MemorySubsystem(fermi_config(num_sms=1))
    memsys.load(0, np.array([0]), now=0)
    memsys.store(0, np.array([128]), now=0)
    memsys.atomic(0, np.array([256]), now=0)
    assert memsys.stats.total_transactions == 3
