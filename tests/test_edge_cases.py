"""Edge cases across the stack."""

import numpy as np
import pytest

from conftest import run_program
from repro.isa import assemble
from repro.memory.memsys import GlobalMemory
from repro.sim.config import fermi_config


def test_empty_guard_all_false(tiny_config):
    """A guarded instruction whose guard is false everywhere is a no-op."""
    memory = GlobalMemory(1 << 12)
    out = memory.alloc(32)
    _, memory = run_program(
        """
        ld.param %r_o, [out]
        setp.lt %p1, %gtid, 0
        shl %r_a, %gtid, 2
        add %r_a, %r_o, %r_a
        @%p1 st.global [%r_a], 99
        exit
        """,
        tiny_config, block_dim=32, params={"out": out}, memory=memory,
    )
    assert (memory.load_array(out, 32) == 0).all()


def test_branch_with_all_lanes_taken_does_not_diverge(tiny_config):
    result, _ = run_program(
        """
        setp.ge %p1, %gtid, 0
        @%p1 bra END
        mov %r1, 1
    END:
        exit
        """,
        tiny_config, block_dim=32,
    )
    # mov skipped by everyone: 3 warp instructions only.
    assert result.stats.warp_instructions == 3


def test_loop_with_zero_iterations_guard(tiny_config):
    """A pre-tested loop that never runs."""
    memory = GlobalMemory(1 << 12)
    out = memory.alloc(32)
    _, memory = run_program(
        """
        ld.param %r_o, [out]
        mov %r_i, 5
    CHECK:
        setp.lt %p1, %r_i, 5
        @!%p1 bra DONE
        add %r_i, %r_i, 1
        bra CHECK
    DONE:
        shl %r_a, %gtid, 2
        add %r_a, %r_o, %r_a
        st.global [%r_a], %r_i
        exit
        """,
        tiny_config, block_dim=32, params={"out": out}, memory=memory,
    )
    assert (memory.load_array(out, 32) == 5).all()


def test_atomic_same_address_all_lanes(tiny_config):
    """32 lanes CAS one address in one instruction: exactly one wins."""
    memory = GlobalMemory(1 << 12)
    flag = memory.alloc(1)
    winners = memory.alloc(32)
    _, memory = run_program(
        """
        ld.param %r_f, [flag]
        ld.param %r_w, [winners]
        atom.cas %r_old, [%r_f], 0, 7
        shl %r_a, %gtid, 2
        add %r_a, %r_w, %r_a
        st.global [%r_a], %r_old
        exit
        """,
        tiny_config, block_dim=32,
        params={"flag": flag, "winners": winners}, memory=memory,
    )
    old_values = memory.load_array(winners, 32)
    assert int((old_values == 0).sum()) == 1  # one lane saw it free
    assert int((old_values == 7).sum()) == 31
    assert memory.read_word(flag) == 7


def test_single_lane_cta(tiny_config):
    result, _ = run_program("mov %r1, %gtid\nexit", tiny_config,
                            block_dim=1)
    assert result.stats.thread_instructions == 2


def test_max_register_pressure(tiny_config):
    """Many distinct registers in one kernel all get storage."""
    lines = [f"    mov %r{i}, {i}" for i in range(64)]
    lines.append("    mov %r_acc, 0")
    for i in range(64):
        lines.append(f"    add %r_acc, %r_acc, %r{i}")
    lines += [
        "    ld.param %r_o, [out]",
        "    shl %r_a, %gtid, 2",
        "    add %r_a, %r_o, %r_a",
        "    st.global [%r_a], %r_acc",
        "    exit",
    ]
    memory = GlobalMemory(1 << 12)
    out = memory.alloc(32)
    _, memory = run_program("\n".join(lines), tiny_config, block_dim=32,
                            params={"out": out}, memory=memory)
    assert (memory.load_array(out, 32) == sum(range(64))).all()


def test_deeply_nested_divergence(tiny_config):
    """Five levels of nested lane splits reconverge correctly."""
    source_lines = ["    ld.param %r_o, [out]", "    mov %r_v, 0"]
    for level in range(5):
        source_lines += [
            f"    and %r_b{level}, %gtid, {1 << level}",
            f"    setp.eq %p{level}, %r_b{level}, 0",
            f"    @!%p{level} bra SKIP{level}",
            f"    add %r_v, %r_v, {1 << level}",
            f"SKIP{level}:",
        ]
    source_lines += [
        "    shl %r_a, %gtid, 2",
        "    add %r_a, %r_o, %r_a",
        "    st.global [%r_a], %r_v",
        "    exit",
    ]
    memory = GlobalMemory(1 << 12)
    out = memory.alloc(32)
    _, memory = run_program("\n".join(source_lines), tiny_config,
                            block_dim=32, params={"out": out},
                            memory=memory)
    expected = [(~g) & 31 for g in range(32)]
    assert memory.load_array(out, 32).tolist() == expected


def test_barrier_in_divergent_free_region_many_warps():
    config = fermi_config(num_sms=1, max_warps_per_sm=8)
    memory = GlobalMemory(1 << 14)
    counter = memory.alloc(1)
    result, memory = run_program(
        """
        ld.param %r_c, [counter]
        bar.sync
        atom.add %r_old, [%r_c], 1
        bar.sync
        atom.add %r_old2, [%r_c], 1
        exit
        """,
        config, block_dim=256, params={"counter": counter},
        memory=memory,
    )
    assert memory.read_word(counter) == 512
    assert result.stats.barrier_waits == 16  # 8 warps x 2 barriers


def test_clock_values_progress_across_warps(tiny_config):
    memory = GlobalMemory(1 << 12)
    out = memory.alloc(64)
    _, memory = run_program(
        """
        ld.param %r_o, [out]
        clock %r_t
        shl %r_a, %gtid, 2
        add %r_a, %r_o, %r_a
        st.global [%r_a], %r_t
        exit
        """,
        tiny_config, block_dim=64, params={"out": out}, memory=memory,
    )
    stamps = memory.load_array(out, 64)
    assert (stamps >= 0).all()
    # Two warps cannot both issue clock on the same scheduler slot at
    # the same cycle unless they sit on different schedulers.
    assert len(set(stamps.tolist())) >= 1
