"""End-to-end tests for the ``repro serve`` daemon and its client.

Every test runs a real daemon (thread-mode workers: deterministic and
cheap — the dispatch/dedup/streaming machinery is identical to process
mode) against real simulations over a real Unix socket.  Socket paths
live under ``tempfile.mkdtemp`` because ``sun_path`` is capped at ~108
bytes and pytest tmp_path can exceed it.

Covered guarantees (see ``docs/serve.md``):

* results through the daemon are **bitwise-identical** to direct
  :func:`~repro.lab.runner.execute_run` results;
* concurrent duplicate submissions trigger **exactly one** simulation;
* a cached spec is answered with **no dispatch**;
* a client disconnecting **mid-stream** never disturbs the job or its
  other subscribers;
* SIGTERM **drains to the journal** (subprocess test).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

import repro.serve.daemon as daemon_mod
from repro.harness.runner import make_config
from repro.lab.cache import ResultCache
from repro.lab.results import RunResult
from repro.lab.runner import execute_run
from repro.lab.spec import RunSpec
from repro.obs import ObsConfig
from repro.serve import ServeClient, ServeDaemon, ServeError

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)
HT = dict(n_threads=64, n_buckets=8, items_per_thread=1, block_dim=64)


def _spec(kernel="vecadd", params=VECADD, obs=None, label=None, **kw):
    return RunSpec(kernel=kernel, config=make_config("gto"), params=params,
                   obs=obs, label=label, **kw)


@pytest.fixture()
def serve_dir():
    # Short-lived private dir: unix socket + cache + journal + spool.
    path = tempfile.mkdtemp(prefix="repro-serve-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture()
def daemon(serve_dir):
    d = ServeDaemon(
        os.path.join(serve_dir, "serve.sock"),
        workers=1, mode="thread",
        cache=ResultCache(os.path.join(serve_dir, "cache")),
        journal=os.path.join(serve_dir, "journal.jsonl"),
        spool_dir=os.path.join(serve_dir, "spool"),
        poll_interval_s=0.01,
        grace_s=10.0,
    )
    d.start()
    yield d
    d.close()


def _client(daemon, name="test"):
    return ServeClient(daemon.address, name=name)


# --------------------------------------------------------- happy path


def test_submit_streams_and_matches_direct_run(daemon):
    """A served run streams samples and is bitwise-identical to a
    direct execute_run of the same spec (minus wall-clock fields)."""
    spec = _spec(obs=ObsConfig(sample_interval=100), label="obs-run")
    direct = execute_run(spec)

    with _client(daemon) as client:
        handle = client.submit(spec)
        assert handle.status == "queued"
        kinds = [m["kind"] for m in handle.stream()]
        served = handle.outcome()

    assert isinstance(served, RunResult)
    assert served.from_cache is False
    assert served.label == "obs-run"
    # The stream carried lifecycle marks and live obs samples.
    assert "lifecycle" in kinds
    assert "sample" in kinds
    # Bitwise identity: everything but wall-clock timing matches.
    a, b = served.to_dict(), direct.to_dict()
    for volatile in ("elapsed_s", "phases"):
        a.pop(volatile), b.pop(volatile)
    assert a == b


def test_cache_hit_answers_without_dispatch(daemon):
    spec = _spec()
    with _client(daemon) as client:
        first = client.submit(spec)
        assert isinstance(first.outcome(timeout=60), RunResult)
        second = client.submit(spec)
        assert second.status == "cached"
        cached = second.outcome(timeout=60)
    assert cached.from_cache is True
    assert cached.cycles == first.outcome().cycles
    status = daemon.status()
    assert status["counters"]["dispatched"] == 1
    assert status["counters"]["cache_hits"] == 1


def test_prewarmed_cache_never_dispatches(serve_dir):
    """A spec simulated by a *direct* Runner lands in the shared cache;
    the daemon answers it instantly with zero dispatches."""
    spec = _spec()
    cache = ResultCache(os.path.join(serve_dir, "cache"))
    cache.put(spec, execute_run(spec))
    d = ServeDaemon(os.path.join(serve_dir, "warm.sock"),
                    workers=1, mode="thread", cache=cache)
    d.start()
    try:
        with _client(d) as client:
            handle = client.submit(spec)
            assert handle.status == "cached"
            assert handle.outcome(timeout=60).from_cache is True
        assert d.status()["counters"]["dispatched"] == 0
        assert d.status()["counters"]["cache_hits"] == 1
    finally:
        d.close()


# ------------------------------------------------------------- dedup


@pytest.fixture()
def gated_worker(monkeypatch):
    """Block the worker entry until released — makes in-flight windows
    deterministic instead of racing real simulations."""
    gate = threading.Event()
    real = daemon_mod.serve_entry

    def gated(spec, *args, **kwargs):
        assert gate.wait(30), "test forgot to release the worker gate"
        return real(spec, *args, **kwargs)

    monkeypatch.setattr(daemon_mod, "serve_entry", gated)
    return gate


def test_concurrent_duplicates_simulate_exactly_once(daemon, gated_worker):
    """Two clients racing the same spec: one simulation, two results."""
    spec = _spec(label="dup")
    with _client(daemon, "racer-a") as a, _client(daemon, "racer-b") as b:
        ha = a.submit(spec)
        # Wait until the job is dispatched (parked at the gate), the
        # widest possible in-flight window.
        deadline = time.monotonic() + 10
        while daemon.status()["counters"]["dispatched"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        hb = b.submit(spec)
        assert hb.status == "attached"
        gated_worker.set()
        ra, rb = ha.outcome(timeout=60), hb.outcome(timeout=60)

    assert isinstance(ra, RunResult) and isinstance(rb, RunResult)
    assert ra.cycles == rb.cycles
    counters = daemon.status()["counters"]
    assert counters["dispatched"] == 1      # exactly one simulation
    assert counters["attached"] == 1
    assert counters["completed"] == 1


def test_duplicate_while_queued_attaches(daemon, gated_worker):
    """The dedup window also covers the queue, not just running jobs:
    with one gated worker, a second distinct spec sits queued and its
    duplicate attaches to it."""
    occupier, queued = _spec(label="occupier"), _spec(params=HT, kernel="ht")
    with _client(daemon) as client:
        h0 = client.submit(occupier)     # occupies the only worker
        h1 = client.submit(queued)       # waits in the scheduler
        h2 = client.submit(queued)       # duplicate of the queued job
        assert h1.status == "queued"
        assert h2.status == "attached"
        gated_worker.set()
        assert isinstance(h0.outcome(timeout=60), RunResult)
        r1, r2 = h1.outcome(timeout=60), h2.outcome(timeout=60)
    assert r1.cycles == r2.cycles
    assert daemon.status()["counters"]["dispatched"] == 2


# -------------------------------------------------------- disconnects


def test_client_disconnect_mid_stream_keeps_job_alive(daemon, gated_worker):
    """A subscriber vanishing mid-run never cancels the shared work:
    the surviving subscriber still gets the result, and the result
    still lands in the cache for the next asker."""
    spec = _spec(obs=ObsConfig(sample_interval=100), label="survivor")
    doomed = _client(daemon, "doomed")
    keeper = _client(daemon, "keeper")
    try:
        hd = doomed.submit(spec)
        deadline = time.monotonic() + 10
        while daemon.status()["counters"]["dispatched"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        hk = keeper.submit(spec)
        assert hk.status == "attached"
        # The doomed client hangs up while its job is mid-flight.
        doomed.close()
        gated_worker.set()
        result = hk.outcome(timeout=60)
        assert isinstance(result, RunResult)
        assert result.label == "survivor"
        # The daemon shrugged off the dead socket: still answering.
        assert keeper.ping()
        rerun = keeper.submit(spec)
        assert rerun.status == "cached"
        assert rerun.outcome(timeout=60).from_cache is True
    finally:
        doomed.close()
        keeper.close()
    assert hd.done  # aborted client-side when the connection dropped


def test_connection_loss_fails_outstanding_handles(daemon, gated_worker):
    spec = _spec(label="orphaned")
    client = _client(daemon)
    handle = client.submit(spec)
    client.close()
    gated_worker.set()
    assert handle.wait(10)
    with pytest.raises(ServeError, match="connection lost"):
        handle.outcome()


# ----------------------------------------------------------- protocol


def test_protocol_version_mismatch_refused(daemon):
    from repro.serve import protocol

    sock = protocol.connect(daemon.address, timeout_s=10)
    stream = protocol.MessageStream(sock)
    try:
        stream.send({"type": "hello", "protocol": 999, "client": "old"})
        reply = stream.recv()
        assert reply["type"] == "error"
        assert "version" in reply["message"]
    finally:
        stream.close()


def test_status_and_ping(daemon):
    with _client(daemon) as client:
        assert client.ping()
        status = client.status()
    assert status["type"] == "status"
    assert status["mode"] == "thread"
    assert status["workers"] == 1
    assert set(daemon_mod.COUNTER_NAMES) <= set(status["counters"])


def test_submit_refused_while_draining(daemon, gated_worker):
    # A gated in-flight job keeps the daemon in the draining state
    # (grace period) instead of stopping instantly.
    with _client(daemon) as client:
        running = client.submit(_spec(label="inflight"))
        deadline = time.monotonic() + 10
        while daemon.status()["counters"]["dispatched"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        daemon.request_shutdown(drain=True)
        with pytest.raises(ServeError, match="draining"):
            client.submit(_spec(kernel="ht", params=HT))
        gated_worker.set()
        # The in-flight run still finishes and reaches its subscriber.
        assert isinstance(running.outcome(timeout=60), RunResult)


# ------------------------------------------------------- process mode


def test_process_mode_end_to_end(serve_dir):
    """The default (process-pool) worker mode: same results, same
    streaming, across a real process boundary."""
    d = ServeDaemon(os.path.join(serve_dir, "proc-mode.sock"),
                    workers=1, mode="process",
                    cache=ResultCache(os.path.join(serve_dir, "cache")),
                    spool_dir=os.path.join(serve_dir, "spool"),
                    poll_interval_s=0.01)
    d.start()
    try:
        spec = _spec(obs=ObsConfig(sample_interval=100), label="proc")
        with _client(d) as client:
            handle = client.submit(spec)
            kinds = [m["kind"] for m in handle.stream()]
            result = handle.outcome(timeout=120)
        assert isinstance(result, RunResult)
        assert "sample" in kinds
        direct = execute_run(spec)
        a, b = result.to_dict(), direct.to_dict()
        for volatile in ("elapsed_s", "phases"):
            a.pop(volatile), b.pop(volatile)
        assert a == b
    finally:
        d.close()


# ------------------------------------------------- SIGTERM drain (e2e)


def test_sigterm_drains_to_journal(serve_dir):
    """A real ``repro serve`` process: SIGTERM exits 0 after a drain,
    the journal records the work and the drain, and a fresh daemon on
    the same cache answers the resubmitted spec without simulating."""
    sock = os.path.join(serve_dir, "proc.sock")
    journal = os.path.join(serve_dir, "journal.jsonl")
    cache_dir = os.path.join(serve_dir, "cache")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", sock,
         "--workers", "1", "--mode", "thread", "--quiet",
         "--journal", journal, "--cache-dir", cache_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 30
        while not os.path.exists(sock):
            assert proc.poll() is None, proc.stderr.read().decode()
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.05)
        spec = _spec(label="journaled")
        with ServeClient(sock, name="sigterm-test") as client:
            result = client.submit(spec).outcome(timeout=120)
        assert isinstance(result, RunResult)

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0  # clean drain, not 130
        assert not os.path.exists(sock)    # socket file removed

        records = [json.loads(line)
                   for line in open(journal, encoding="utf-8")]
        types = [r["type"] for r in records]
        assert "spec" in types and "done" in types
        notes = [r["note"] for r in records if r["type"] == "note"]
        assert "serve_start" in notes
        assert "drain" in notes and "serve_exit" in notes
        done = [r for r in records if r["type"] == "done"]
        assert done[0]["hash"] == spec.content_hash()

        # The drained daemon's cache survives it.
        d = ServeDaemon(os.path.join(serve_dir, "again.sock"),
                        workers=1, mode="thread",
                        cache=ResultCache(cache_dir))
        d.start()
        try:
            with ServeClient(d.address, name="resume") as client:
                again = client.submit(spec)
                assert again.status == "cached"
                assert again.outcome(timeout=60).cycles == result.cycles
            assert d.status()["counters"]["dispatched"] == 0
        finally:
            d.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
