"""Forward-progress guard: hang classification, forensics, invariants.

Each deliberately-broken kernel here is a known SIMT failure mode from
the paper's Section IV territory: a leaked lock (acquired, never
released), a barrier reached by only part of the CTA, and a CAS loop on
a flag nobody ever writes.  The guard must classify each hang correctly
(deadlock vs livelock vs slow-but-progressing), within a bounded number
of cycles, and the attached :class:`HangReport` must name the spinning
warps and the contended lock so the report is actionable without rerun.
"""

import json
import pickle

import pytest

from conftest import run_program
from repro.memory.memsys import GlobalMemory
from repro.sim.progress import (
    HangReport,
    InvariantViolation,
    SimulationDeadlock,
    SimulationHang,
    SimulationLivelock,
    SimulationTimeout,
    build_hang_report,
)

# A lock that is acquired and never released.  Run as single-thread CTAs
# so SIMT reconvergence plays no part: the winner simply exits holding
# the lock and every other CTA spins on CAS forever.
LEAKED_LOCK = """
    ld.param %r_m, [mutex]
SPIN:
    atom.cas %r_old, [%r_m], 0, 1 !lock_try !sync
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN
    exit
"""

# Warp 0 (tids 0..31) waits at a CTA barrier; warp 1 spins on a flag
# that is never written, so the barrier can never be satisfied.
DIVERGED_BARRIER = """
    ld.param %r_f, [flag]
    setp.lt %p0, %tid, 32
    @%p0 bra WAITBAR
SPIN:
    atom.cas %r_old, [%r_f], 1, 2
    setp.ne %p1, %r_old, 1
    @%p1 bra SPIN
WAITBAR:
    bar.sync
    exit
"""

# Every thread CAS-polls a flag that no thread ever sets.
STUCK_FLAG = """
    ld.param %r_f, [flag]
WAIT:
    atom.cas %r_old, [%r_f], 1, 2
    setp.ne %p1, %r_old, 1
    @%p1 bra WAIT
    exit
"""

WINDOW = 4_000
EPOCH = 1_000


def _guard_config(tiny_config, **overrides):
    base = dict(
        max_cycles=300_000,
        no_progress_window=WINDOW,
        progress_epoch=EPOCH,
    )
    base.update(overrides)
    return tiny_config.replace(**base)


def _mem_with(*names):
    memory = GlobalMemory(1 << 12)
    return memory, {name: memory.alloc(1) for name in names}


# ----------------------------------------------------------------------
# Classification


def test_leaked_lock_classified_livelock(tiny_config):
    memory, params = _mem_with("mutex")
    with pytest.raises(SimulationLivelock) as excinfo:
        run_program(LEAKED_LOCK, _guard_config(tiny_config),
                    grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    report = excinfo.value.report
    assert report is not None
    assert report.kind == "livelock"
    # The winner still holds the lock; the spinners name its address.
    assert memory.read_word(params["mutex"]) == 1
    spinners = report.spinning_warps()
    assert spinners, "report must name the spinning warps"
    assert any(w["lock_fail_addr"] == params["mutex"] for w in spinners)
    assert any(lock["addr"] == params["mutex"] for lock in report.locks)


def test_detection_latency_bounded(tiny_config):
    """A livelock must be classified within 2x the no-progress window
    of its onset (window elapses + at most one epoch of sampling lag)."""
    memory, params = _mem_with("mutex")
    with pytest.raises(SimulationLivelock) as excinfo:
        run_program(LEAKED_LOCK, _guard_config(tiny_config),
                    grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    report = excinfo.value.report
    # Onset is within the first epoch (the winner exits in well under
    # 1000 cycles), so 2x the window bounds the classification cycle.
    assert report.cycle <= 2 * WINDOW
    assert report.window >= WINDOW


def test_diverged_barrier_reported(tiny_config):
    """A barrier half the CTA never reaches hangs; the report shows the
    waiting warp at the barrier and the spinner that never arrives."""
    memory, params = _mem_with("flag")
    with pytest.raises(SimulationHang) as excinfo:
        run_program(DIVERGED_BARRIER, _guard_config(tiny_config),
                    block_dim=64, params=params, memory=memory)
    report = excinfo.value.report
    assert report is not None
    waiting = [w for w in report.warps if w["at_barrier"]]
    assert waiting, "the barrier-parked warp must appear in the report"
    assert report.barriers and report.barriers[0]["waiting_slots"]
    # The other warp is the livelock suspect.
    assert report.spinning_warps()


def test_naive_spin_classified_not_timeout(tiny_config):
    """The paper's SIMT-induced deadlock (test_simt_deadlock) is caught
    by classification long before the cycle cap once the watchdog is
    tightened."""
    memory, params = _mem_with("mutex", "counter")
    source = """
        ld.param %r_m, [mutex]
        ld.param %r_c, [counter]
    SPIN:
        atom.cas %r_old, [%r_m], 0, 1 !lock_try !sync
        setp.ne %p1, %r_old, 0
        @%p1 bra SPIN
        ld.global.cg %r_v, [%r_c]
        add %r_v, %r_v, 1
        st.global [%r_c], %r_v
        atom.exch %r_ig, [%r_m], 0 !lock_release !sync
        exit
    """
    with pytest.raises(SimulationLivelock):
        run_program(source, _guard_config(tiny_config),
                    block_dim=32, params=params, memory=memory)


def test_stuck_flag_livelock_all_warps_spin(tiny_config):
    memory, params = _mem_with("flag")
    with pytest.raises(SimulationLivelock) as excinfo:
        run_program(STUCK_FLAG, _guard_config(tiny_config),
                    block_dim=32, params=params, memory=memory)
    report = excinfo.value.report
    live = [w for w in report.warps if not w["finished"]]
    assert live and all(w["issued_in_window"] > 0 for w in live)
    # Spin loop footprint stays tiny (the whole point of the witness).
    assert all(len(w["pc_footprint"]) <= 16 for w in live)


def test_progressing_kernel_not_killed(tiny_config):
    """A long-running but progressing kernel must never be classified
    as hung, even with an aggressive watchdog."""
    source = """
        mov %r_i, 0
        ld.param %r_out, [out]
    LOOP:
        st.global [%r_out], %r_i
        add %r_i, %r_i, 1
        setp.lt %p1, %r_i, 2000
        @%p1 bra LOOP
        exit
    """
    memory, params = _mem_with("out")
    result, memory = run_program(
        source, _guard_config(tiny_config, no_progress_window=600,
                              progress_epoch=150),
        block_dim=1, params=params, memory=memory)
    assert memory.read_word(params["out"]) == 1999


def test_watchdog_disabled_falls_back_to_timeout(tiny_config):
    memory, params = _mem_with("mutex")
    config = _guard_config(tiny_config, no_progress_window=0,
                           max_cycles=30_000)
    with pytest.raises(SimulationTimeout) as excinfo:
        run_program(LEAKED_LOCK, config, grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    report = excinfo.value.report
    assert report is not None and report.kind == "timeout"


def test_timeout_carries_assessment(tiny_config):
    """When the budget expires before a window elapses, the timeout
    report still carries the monitor's live diagnostics."""
    memory, params = _mem_with("mutex")
    config = _guard_config(tiny_config, no_progress_window=500_000,
                           progress_epoch=1_000, max_cycles=20_000)
    with pytest.raises(SimulationTimeout) as excinfo:
        run_program(LEAKED_LOCK, config, grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    report = excinfo.value.report
    assert report.kind == "timeout"
    assert "exceeded max_cycles" in report.reason
    assert report.spinning_warps()


# ----------------------------------------------------------------------
# HangReport plumbing


def test_hang_report_json_round_trip(tiny_config):
    memory, params = _mem_with("mutex")
    with pytest.raises(SimulationLivelock) as excinfo:
        run_program(LEAKED_LOCK, _guard_config(tiny_config),
                    grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    report = excinfo.value.report
    payload = json.dumps(report.to_dict())
    restored = HangReport.from_dict(json.loads(payload))
    assert restored.kind == report.kind
    assert restored.cycle == report.cycle
    assert len(restored.warps) == len(report.warps)
    assert restored.locks == report.locks
    assert "livelock" in restored.describe()


def test_hang_exception_pickles_with_report(tiny_config):
    """Hang exceptions cross process-pool boundaries with forensics
    intact (the lab runner depends on this)."""
    memory, params = _mem_with("mutex")
    with pytest.raises(SimulationLivelock) as excinfo:
        run_program(LEAKED_LOCK, _guard_config(tiny_config),
                    grid_dim=4, block_dim=1,
                    params=params, memory=memory)
    clone = pickle.loads(pickle.dumps(excinfo.value))
    assert isinstance(clone, SimulationLivelock)
    assert clone.report is not None
    assert clone.report.kind == "livelock"
    assert clone.report.cycle == excinfo.value.report.cycle


def test_build_hang_report_without_context():
    """The no-event deadlock path reports with no monitor attached."""
    from repro.isa import assemble
    from repro.memory.memsys import MemorySubsystem
    from repro.metrics.stats import SimStats
    from repro.sim.config import fermi_config
    from repro.sim.sm import SM

    config = fermi_config(num_sms=1, max_warps_per_sm=4)
    program = assemble("bar.sync\nexit")
    memory = GlobalMemory(256)
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            SimStats())
    sm.launch_cta(cta_id=0, warps_per_cta=1, cta_dim=32, grid_dim=1,
                  age_base=0)
    report = build_hang_report("deadlock", 42, [sm], reason="test")
    assert report.kind == "deadlock"
    assert report.warps and report.warps[0]["sm"] == 0
    assert "SIMT-induced deadlock" in report.describe()
    json.dumps(report.to_dict())  # must be JSON-clean with no context


def test_deadlock_classification_when_nothing_issues(tiny_config):
    """Synthetic check of the monitor's deadlock branch: warps present,
    nothing issued for a whole window."""
    from repro.isa import assemble
    from repro.memory.memsys import MemorySubsystem
    from repro.metrics.stats import SimStats
    from repro.sim.config import fermi_config
    from repro.sim.progress import ProgressMonitor
    from repro.sim.sm import SM

    config = fermi_config(num_sms=1, max_warps_per_sm=4,
                          no_progress_window=100, progress_epoch=50)
    program = assemble("bar.sync\nexit")
    memory = GlobalMemory(256)
    stats = SimStats()
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            stats)
    sm.launch_cta(cta_id=0, warps_per_cta=1, cta_dim=32, grid_dim=1,
                  age_base=0)
    monitor = ProgressMonitor(config, [sm], memory, stats)
    monitor.sample(50)
    with pytest.raises(SimulationDeadlock) as excinfo:
        monitor.sample(200)
    assert excinfo.value.report.kind == "deadlock"


# ----------------------------------------------------------------------
# Invariant checker


def test_invariants_clean_on_healthy_kernel(tiny_config):
    source = """
        ld.param %r_out, [out]
        setp.lt %p0, %tid, 7
        @%p0 st.global [%r_out], %tid
        bar.sync
        exit
    """
    memory, params = _mem_with("out")
    config = _guard_config(tiny_config, invariant_checks=True,
                           progress_epoch=10, no_progress_window=1000)
    run_program(source, config, block_dim=32, params=params, memory=memory)


def test_invariant_catches_bogus_scoreboard_entry(tiny_config):
    from repro.isa import assemble
    from repro.memory.memsys import MemorySubsystem
    from repro.metrics.stats import SimStats
    from repro.sim.config import fermi_config
    from repro.sim.progress import InvariantChecker
    from repro.sim.sm import SM

    config = fermi_config(num_sms=1, max_warps_per_sm=4,
                          invariant_checks=True)
    program = assemble("mov %r_a, 1\nexit")
    memory = GlobalMemory(256)
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            SimStats())
    sm.launch_cta(cta_id=0, warps_per_cta=1, cta_dim=32, grid_dim=1,
                  age_base=0)
    checker = InvariantChecker(config)
    checker.check(0, [sm])  # healthy

    warp = next(iter(sm.warps.values()))
    warp.scoreboard._pending["%r_never_declared"] = 10
    with pytest.raises(InvariantViolation):
        checker.check(1, [sm])


def test_invariant_catches_corrupt_stack_pc(tiny_config):
    from repro.isa import assemble
    from repro.memory.memsys import MemorySubsystem
    from repro.metrics.stats import SimStats
    from repro.sim.config import fermi_config
    from repro.sim.progress import InvariantChecker
    from repro.sim.sm import SM

    config = fermi_config(num_sms=1, max_warps_per_sm=4,
                          invariant_checks=True)
    program = assemble("mov %r_a, 1\nexit")
    memory = GlobalMemory(256)
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            SimStats())
    sm.launch_cta(cta_id=0, warps_per_cta=1, cta_dim=32, grid_dim=1,
                  age_base=0)
    checker = InvariantChecker(config)
    warp = next(iter(sm.warps.values()))
    warp.stack._stack[0].pc = 10_000  # way outside the program
    with pytest.raises(InvariantViolation):
        checker.check(0, [sm])
