"""BOWS unit behaviour: backed-off queue, pending delays, arbitration."""

import pytest

from repro.core.bows import BOWSUnit
from repro.isa import assemble
from repro.sim.config import BOWSConfig
from repro.sim.warp import Warp

PROGRAM = assemble("mov %r1, 0\nexit")


def make_warp(slot: int) -> Warp:
    return Warp(PROGRAM, slot, 0, 0, slot, 128, 1, 32, age=slot)


def make_unit(**overrides) -> BOWSUnit:
    return BOWSUnit(BOWSConfig(**overrides))


def test_sib_execution_backs_off():
    unit = make_unit()
    warp = make_warp(0)
    unit.on_sib_executed(warp, now=10)
    assert warp.backed_off
    assert 0 in unit.backed_off_slots


def test_fifo_queue_order():
    unit = make_unit()
    warps = {slot: make_warp(slot) for slot in range(3)}
    for slot in (2, 0, 1):
        unit.on_sib_executed(warps[slot], now=slot)
    assert list(unit.queue_order()) == [2, 0, 1]


def test_double_back_off_not_requeued():
    unit = make_unit()
    warp = make_warp(0)
    unit.on_sib_executed(warp, now=1)
    unit.on_sib_executed(warp, now=2)
    assert list(unit.queue_order()) == [0]


def test_issue_exits_backed_off_and_starts_delay():
    unit = make_unit(delay_limit=500)
    warp = make_warp(0)
    unit.on_sib_executed(warp, now=10)
    unit.on_issue(warp, now=20, is_sib=False)
    assert not warp.backed_off
    assert warp.pending_delay_until == 520
    assert 0 not in unit.backed_off_slots


def test_eligibility_gated_by_pending_delay():
    unit = make_unit(delay_limit=1000)
    warp = make_warp(0)
    # First iteration: exit backed-off at t=0, delay runs to t=1000.
    unit.on_sib_executed(warp, now=0)
    unit.on_issue(warp, now=0, is_sib=False)
    # Warp hits the SIB again quickly.
    unit.on_sib_executed(warp, now=50)
    assert not unit.eligible(warp, now=500)
    assert unit.eligible(warp, now=1000)


def test_non_backed_off_always_eligible():
    unit = make_unit()
    warp = make_warp(0)
    warp.pending_delay_until = 10_000
    assert unit.eligible(warp, now=0)


def test_select_backed_off_respects_fifo_and_delay():
    unit = make_unit(delay_limit=100)
    warps = {slot: make_warp(slot) for slot in range(2)}
    # Warp 0 backed off with an unexpired delay; warp 1 free to go.
    unit.on_sib_executed(warps[0], now=0)
    unit.on_issue(warps[0], now=0, is_sib=False)
    unit.on_sib_executed(warps[0], now=10)
    unit.on_sib_executed(warps[1], now=20)
    picked = unit.select_backed_off({0, 1}, now=50, warps_by_slot=warps)
    assert picked == 1  # warp 0's delay (until 100) still pending
    picked = unit.select_backed_off({0, 1}, now=100, warps_by_slot=warps)
    assert picked == 0  # delay expired; FIFO order favours warp 0


def test_select_backed_off_ignores_unready():
    unit = make_unit()
    warps = {0: make_warp(0)}
    unit.on_sib_executed(warps[0], now=0)
    assert unit.select_backed_off(set(), now=10, warps_by_slot=warps) is None


def test_next_delay_expiry():
    unit = make_unit(delay_limit=300)
    warps = {0: make_warp(0), 1: make_warp(1)}
    unit.on_sib_executed(warps[0], now=0)
    unit.on_issue(warps[0], now=0, is_sib=False)   # delay until 300
    unit.on_sib_executed(warps[0], now=10)
    unit.on_sib_executed(warps[1], now=20)         # no pending delay
    assert unit.next_delay_expiry(50, warps) == 300
    assert unit.next_delay_expiry(400, warps) is None


def test_warp_reset_clears_queue():
    unit = make_unit()
    warp = make_warp(0)
    unit.on_sib_executed(warp, now=0)
    unit.on_warp_reset(0)
    assert 0 not in unit.backed_off_slots


def test_fixed_delay_limit_property():
    unit = make_unit(delay_limit=777, adaptive=False)
    assert unit.delay_limit == 777


def test_adaptive_paper_mode_uses_controller():
    unit = make_unit(adaptive=True, controller="paper", delay_limit=1000,
                     window=100, delay_step=250, frac1=0.1,
                     max_limit=5000)
    warp = make_warp(0)
    # Saturate a window with SIB issues: the controller must raise the
    # limit once the window closes.
    for now in range(0, 120):
        unit.on_issue(warp, now=now, is_sib=(now % 2 == 0))
    assert unit.delay_limit > 1000


def test_adaptive_hillclimb_mode_tracks_store_rate():
    unit = make_unit(adaptive=True, controller="hillclimb",
                     window=100, delay_step=250)
    warp = make_warp(0)
    assert unit.delay_limit == 0
    # Two windows of improving store rate: the limit climbs.
    for now in range(0, 110):
        unit.on_issue(warp, now=now, is_sib=False, is_store=(now % 4 == 0))
    for now in range(110, 220):
        unit.on_issue(warp, now=now, is_sib=False, is_store=(now % 2 == 0))
    assert unit.delay_limit > 0
