"""Interval sampler and TimeSeries: delta math, exports, fast-forward."""

from __future__ import annotations

import json

import pytest

from repro.memory.memsys import MemoryStats
from repro.metrics.stats import SimStats
from repro.obs import SERIES_COLUMNS, IntervalSampler, TimeSeries


def make_sampler(interval=100, warp_size=32):
    stats = SimStats()
    mem = MemoryStats()
    return IntervalSampler(stats, mem, interval, warp_size=warp_size), \
        stats, mem


def test_rejects_non_positive_interval():
    stats, mem = SimStats(), MemoryStats()
    with pytest.raises(ValueError):
        IntervalSampler(stats, mem, 0)
    with pytest.raises(ValueError):
        IntervalSampler(stats, mem, -10)


def test_sample_computes_interval_deltas_not_running_totals():
    sampler, stats, mem = make_sampler(interval=100)
    stats.warp_instructions = 50
    stats.active_lane_sum = 50 * 16
    stats.resident_warp_cycles = 400
    stats.backed_off_warp_cycles = 100
    stats.locks.lock_success = 6
    stats.locks.inter_warp_fail = 3
    stats.locks.intra_warp_fail = 1
    mem.load_transactions = 20
    sampler.sample(100)
    (row,) = sampler.series.rows
    assert row["cycle"] == 100
    assert row["ipc"] == 0.5
    assert row["simd_efficiency"] == 0.5
    assert row["backed_off_fraction"] == 0.25
    assert row["lock_fail_rate"] == 0.4
    assert row["memory_transactions"] == 20

    # Second interval with no new activity: every rate drops to zero,
    # proving rows are deltas (running totals would repeat the values).
    sampler.sample(200)
    row2 = sampler.series.rows[1]
    assert row2["ipc"] == 0.0
    assert row2["backed_off_fraction"] == 0.0
    assert row2["lock_fail_rate"] == 0.0
    assert row2["memory_transactions"] == 0


def test_zero_denominators_yield_zero_rates():
    sampler, _, _ = make_sampler(interval=100)
    sampler.sample(100)
    (row,) = sampler.series.rows
    assert row["ipc"] == 0.0
    assert row["simd_efficiency"] == 0.0
    assert row["backed_off_fraction"] == 0.0
    assert row["lock_fail_rate"] == 0.0
    assert row["sib_issue_rate"] == 0.0


def test_fast_forward_widens_the_interval_and_keeps_rates_per_cycle():
    """When the GPU loop skips idle cycles, one sample covers the whole
    gap: the row's rates are normalized by the real dt and next_sample
    lands beyond ``now`` again."""
    sampler, stats, _ = make_sampler(interval=100)
    stats.warp_instructions = 100
    sampler.sample(1000)  # 10 intervals elapsed at once
    (row,) = sampler.series.rows
    assert row["cycle"] == 1000
    assert row["ipc"] == 0.1  # 100 instructions / 1000 cycles
    assert sampler.next_sample == 1100


def test_sample_at_same_cycle_is_a_no_op():
    sampler, stats, _ = make_sampler(interval=100)
    stats.warp_instructions = 10
    sampler.sample(100)
    sampler.sample(100)
    assert len(sampler.series) == 1


def test_finish_flushes_partial_interval_once():
    sampler, stats, _ = make_sampler(interval=100)
    stats.warp_instructions = 10
    sampler.sample(100)
    stats.warp_instructions = 15
    series = sampler.finish(130)
    assert [row["cycle"] for row in series.rows] == [100, 130]
    assert series.rows[1]["ipc"] == round(5 / 30, 4)
    # finish at the last sampled cycle adds nothing.
    assert sampler.finish(130) is series
    assert len(series) == 2


def test_series_round_trip_and_column_access(tmp_path):
    sampler, stats, _ = make_sampler(interval=100)
    stats.warp_instructions = 70
    sampler.sample(100)
    series = sampler.series

    data = series.to_dict()
    assert data["columns"] == list(SERIES_COLUMNS)
    rebuilt = TimeSeries.from_dict(data)
    assert rebuilt.rows == series.rows
    assert series.column("ipc") == [0.7]
    with pytest.raises(KeyError):
        series.column("nope")

    json_path = tmp_path / "series.json"
    parsed = json.loads(series.to_json(json_path))
    assert parsed == json.loads(json_path.read_text())

    csv_text = series.to_csv(tmp_path / "series.csv")
    header, line = csv_text.strip().splitlines()
    assert header == ",".join(SERIES_COLUMNS)
    assert line.startswith("100,0.7,")


def test_perfetto_counter_events():
    sampler, stats, _ = make_sampler(interval=100)
    stats.warp_instructions = 70
    sampler.sample(100)
    events = sampler.series.perfetto_events(pid=3)
    # One counter event per non-cycle column per row.
    assert len(events) == len(SERIES_COLUMNS) - 1
    assert {e["ph"] for e in events} == {"C"}
    assert {e["pid"] for e in events} == {3}
    ipc = next(e for e in events if e["name"] == "ipc")
    assert ipc["ts"] == 100 and ipc["args"] == {"ipc": 0.7}
