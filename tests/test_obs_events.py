"""Event taxonomy and EventBus: typing, ring-log semantics, emitters."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import (
    EVENT_KINDS,
    EVENT_TYPES,
    BackoffEnter,
    EventBus,
    LockAcquireFail,
    SIBDetected,
    event_from_dict,
    event_to_dict,
    format_event,
    null_emitter,
)

#: One constructible example of every event type (field name -> value).
EXAMPLES = {
    "sib_detected": dict(cycle=10, sm_id=0, branch=33, confidence=8),
    "sib_cleared": dict(cycle=11, sm_id=0, branch=33),
    "backoff_enter": dict(cycle=12, sm_id=0, warp_slot=3, cta_id=1),
    "backoff_exit": dict(cycle=13, sm_id=0, warp_slot=3, cta_id=1,
                         delay_until=900),
    "adaptive_delay_update": dict(cycle=14, sm_id=0, delay_limit=1600,
                                  window_total=100, window_sib=40,
                                  direction=1),
    "lock_acquire_success": dict(cycle=15, sm_id=0, warp_slot=2,
                                 addr=4096, lane=7),
    "lock_acquire_fail": dict(cycle=16, sm_id=0, warp_slot=2, addr=4096,
                              lane=7, conflict="inter"),
    "barrier_arrive": dict(cycle=17, sm_id=0, cta_id=1, warp_slot=4),
    "barrier_release": dict(cycle=18, sm_id=0, cta_id=1, released=4),
    "hang_suspected": dict(cycle=19, hang_kind="livelock",
                           reason="no progress"),
    "sanitizer": dict(cycle=20, diag_id="SAN001", severity="error",
                      pc=24, warp_slot=2),
    "checkpoint_saved": dict(cycle=25_000, path="/tmp/run.ckpt",
                             size_bytes=123_456),
    "run_resumed": dict(cycle=25_000, path="/tmp/run.ckpt",
                        spec_hash="a" * 64),
    "corrupt_entry_quarantined": dict(cycle=0, path=".lab_cache/x.json",
                                      reason="checksum mismatch"),
    "worker_lost": dict(cycle=0, spec_hash="a" * 64, requeued=True),
}


def example(cls):
    return cls(**EXAMPLES[cls.kind])


def test_taxonomy_is_complete_and_consistent():
    assert len(EVENT_TYPES) == 15
    assert set(EVENT_KINDS) == set(EXAMPLES)
    for cls in EVENT_TYPES:
        assert EVENT_KINDS[cls.kind] is cls
        fields = [f.name for f in dataclasses.fields(cls)]
        assert fields[0] == "cycle", cls


def test_events_are_frozen():
    event = example(SIBDetected)
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.cycle = 99


@pytest.mark.parametrize("cls", EVENT_TYPES, ids=lambda c: c.kind)
def test_event_dict_round_trip(cls):
    event = example(cls)
    data = event_to_dict(event)
    assert data["event"] == cls.kind
    assert event_from_dict(data) == event


@pytest.mark.parametrize("cls", EVENT_TYPES, ids=lambda c: c.kind)
def test_format_event_is_one_line_with_kind_and_fields(cls):
    event = example(cls)
    text = format_event(event)
    assert "\n" not in text
    assert event.kind in text
    assert f"[{event.cycle:>8}]" in text


def test_null_emitter_accepts_anything_and_returns_none():
    assert null_emitter() is None
    assert null_emitter(cycle=1, sm_id=2, anything="goes") is None


def test_bus_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        EventBus(capacity=0)
    with pytest.raises(ValueError):
        EventBus(capacity=-5)


def test_emitter_constructs_and_counts_events():
    bus = EventBus()
    emit = bus.emitter(SIBDetected)
    emit(**EXAMPLES["sib_detected"])
    assert len(bus) == 1
    assert bus.counts == {"sib_detected": 1}
    assert bus.total_events == 1
    (event,) = list(bus)
    assert event == example(SIBDetected)


def test_ring_log_evicts_oldest_and_counts_drops():
    bus = EventBus(capacity=3)
    emit = bus.emitter(BackoffEnter)
    for cycle in range(5):
        emit(cycle=cycle, sm_id=0, warp_slot=0, cta_id=0)
    assert len(bus) == 3
    assert bus.dropped == 2
    # Newest three survive; per-kind counts reflect the full run.
    assert [e.cycle for e in bus] == [2, 3, 4]
    assert bus.counts["backoff_enter"] == 5
    assert bus.total_events == 5


def test_events_filter_and_tail():
    bus = EventBus()
    bus.emitter(SIBDetected)(**EXAMPLES["sib_detected"])
    bus.emitter(LockAcquireFail)(**EXAMPLES["lock_acquire_fail"])
    assert [e.kind for e in bus.events()] == ["sib_detected",
                                             "lock_acquire_fail"]
    assert [e.kind for e in bus.events("sib_detected")] == ["sib_detected"]
    assert [e.kind for e in bus.tail(1)] == ["lock_acquire_fail"]
    assert bus.tail(0) == []


def test_subscribers_see_every_event():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    emit = bus.emitter(BackoffEnter)
    emit(cycle=1, sm_id=0, warp_slot=0, cta_id=0)
    emit(cycle=2, sm_id=0, warp_slot=1, cta_id=0)
    assert [e.cycle for e in seen] == [1, 2]


def test_clear_resets_log_and_counters():
    bus = EventBus(capacity=1)
    emit = bus.emitter(BackoffEnter)
    emit(cycle=1, sm_id=0, warp_slot=0, cta_id=0)
    emit(cycle=2, sm_id=0, warp_slot=0, cta_id=0)
    assert bus.dropped == 1
    bus.clear()
    assert len(bus) == 0 and bus.dropped == 0 and bus.counts == {}
