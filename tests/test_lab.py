"""repro.lab unit tests: specs, cache, runner policies, sweeps.

Real-simulation coverage is kept to a handful of tiny kernels; the
failure-policy paths (timeouts, retries, permanent errors) run against
injected ``run_fn`` stubs so they are fast and deterministic.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness.runner import make_config
from repro.kernels import WorkloadReuseError, build
from repro.lab import (
    LabError,
    ResultCache,
    Runner,
    RunSpec,
    Sweep,
    TransientRunError,
    config_from_dict,
    config_to_dict,
    current_runner,
    use_runner,
)
from repro.lab.results import RunResult
from repro.lab.spec import _canonical_json
from repro.metrics.stats import SimStats
from repro.sim.config import DDOSConfig

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)


def vecadd_spec(**config_kwargs) -> RunSpec:
    return RunSpec("vecadd", make_config("gto", **config_kwargs),
                   dict(VECADD))


# ----------------------------------------------------------------------
# RunSpec hashing and config serialization


def test_content_hash_is_stable_and_order_independent():
    a = RunSpec("ht", make_config("gto"), {"n_threads": 64, "n_buckets": 8})
    b = RunSpec("ht", make_config("gto"), {"n_buckets": 8, "n_threads": 64})
    assert a.content_hash() == b.content_hash()
    assert len(a.content_hash()) == 64


def test_content_hash_covers_simulation_inputs():
    base = vecadd_spec()
    assert base.content_hash() != vecadd_spec(bows=1000).content_hash()
    assert base.content_hash() != RunSpec(
        "vecadd", make_config("gto"), dict(VECADD, per_thread=3)
    ).content_hash()
    assert base.content_hash() != RunSpec(
        "vecadd", make_config("gto"), dict(VECADD), seed=7
    ).content_hash()
    assert base.content_hash() != RunSpec(
        "vecadd", make_config("gto"), dict(VECADD), validate=False
    ).content_hash()
    # Labels are presentation-only.
    labelled = RunSpec("vecadd", make_config("gto"), dict(VECADD),
                       label="pretty")
    assert base.content_hash() == labelled.content_hash()


def test_config_round_trip():
    config = make_config("cawa", bows=1500,
                         ddos=DDOSConfig(hashing="modulo"),
                         preset="pascal", num_sms=3)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config
    assert (_canonical_json(config_to_dict(rebuilt))
            == _canonical_json(config_to_dict(config)))


def test_spec_round_trip():
    spec = RunSpec("ht", make_config("gto", bows=True),
                   {"n_threads": 128}, seed=3, validate=False)
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt.content_hash() == spec.content_hash()
    assert rebuilt.build_params() == {"n_threads": 128, "seed": 3}


# ----------------------------------------------------------------------
# Cache


def test_cache_miss_hit_and_code_invalidation(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
    spec = vecadd_spec()
    assert cache.get(spec) is None
    result = RunResult(spec_hash=spec.content_hash(), cycles=123,
                       stats=SimStats(cycles=123, warp_instructions=7))
    cache.put(spec, result)

    hit = cache.get(spec)
    assert hit is not None and hit.from_cache
    assert hit.cycles == 123
    assert hit.stats.warp_instructions == 7

    # A different config is a different address -> miss.
    assert cache.get(vecadd_spec(bows=1000)) is None
    # A different code fingerprint invalidates everything.
    stale = ResultCache(tmp_path / "cache", fingerprint="0" * 64)
    assert stale.get(spec) is None


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
    spec = vecadd_spec()
    path = cache.put(spec, RunResult(spec_hash=spec.content_hash(),
                                     cycles=1, stats=SimStats()))
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(spec) is None


def test_cache_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="f" * 64)
    stale = ResultCache(tmp_path / "cache", fingerprint="0" * 64)
    for c, spec in ((cache, vecadd_spec()), (stale, vecadd_spec(bows=500))):
        c.put(spec, RunResult(spec_hash=spec.content_hash(), cycles=1,
                              stats=SimStats()))
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.current_entries == 1 and stats.stale_entries == 1
    assert cache.clear(stale_only=True) == 1
    assert cache.stats().entries == 1
    assert cache.clear() == 1
    assert cache.stats().entries == 0


# ----------------------------------------------------------------------
# Runner: real simulations (serial + thread parity, ddos payload)


def test_runner_serial_real_run_populates_result(tmp_path):
    runner = Runner(workers=1, cache=ResultCache(tmp_path / "c"))
    result = runner.run_one(vecadd_spec())
    assert result.ok and not result.from_cache
    assert result.cycles > 0
    assert result.stats.thread_instructions > 0
    again = runner.run_one(vecadd_spec())
    assert again.from_cache
    assert again.cycles == result.cycles
    assert again.stats.summary() == result.stats.summary()
    report = runner.last_report
    assert report.cache_hits == 1 and report.executed == 0


def test_runner_thread_mode_matches_serial():
    serial = Runner(workers=1).run_one(vecadd_spec())
    threaded = Runner(workers=2, mode="thread").run_one(vecadd_spec())
    assert threaded.stats.summary() == serial.stats.summary()


def test_runner_attaches_ddos_outcome():
    spec = RunSpec("vecadd", make_config("gto", ddos=True), dict(VECADD))
    result = Runner().run_one(spec)
    assert result.ddos is not None
    assert result.ddos["kernel"] == "vecadd"
    assert "detected_false" in result.ddos


# ----------------------------------------------------------------------
# Runner: failure policy (stubbed run_fn)


def _fake_result(spec: RunSpec) -> RunResult:
    return RunResult(spec_hash=spec.content_hash(), cycles=42,
                     stats=SimStats(cycles=42))


def test_timeout_produces_structured_failure_and_retries():
    def sleepy(spec):
        time.sleep(0.5)
        return _fake_result(spec)

    runner = Runner(workers=1, timeout_s=0.05, retries=1, run_fn=sleepy)
    report = runner.run_many([vecadd_spec()])
    (failure,) = report.results
    assert not failure.ok
    assert failure.error_type == "RunTimeout"
    assert failure.transient
    assert failure.attempts == 2  # original + one retry
    assert report.retried == 1


def test_transient_failure_is_retried_to_success():
    calls = {"n": 0}

    def flaky(spec):
        calls["n"] += 1
        if calls["n"] < 3:
            raise TransientRunError("blip")
        return _fake_result(spec)

    runner = Runner(workers=1, retries=2, run_fn=flaky)
    report = runner.run_many([vecadd_spec()])
    (result,) = report.results
    assert result.ok
    assert result.attempts == 3
    assert report.retried == 2 and report.executed == 1


def test_permanent_failure_fails_fast_without_retry():
    calls = {"n": 0}

    def broken(spec):
        calls["n"] += 1
        raise ValueError("bad parameters")

    runner = Runner(workers=1, retries=3, run_fn=broken)
    report = runner.run_many([vecadd_spec()])
    (failure,) = report.results
    assert not failure.ok and failure.attempts == 1
    assert calls["n"] == 1
    assert failure.error_type == "ValueError"
    assert not failure.transient


def test_one_bad_run_does_not_sink_the_batch():
    def selective(spec):
        if spec.kernel == "ht":
            raise ValueError("boom")
        return _fake_result(spec)

    specs = [vecadd_spec(),
             RunSpec("ht", make_config("gto"), {"n_threads": 64}),
             vecadd_spec(bows=1000)]
    report = Runner(workers=1, run_fn=selective).run_many(specs)
    assert [r.ok for r in report.results] == [True, False, True]
    with pytest.raises(LabError, match="1/3 runs failed"):
        report.raise_on_failure()


def test_run_map_raises_on_failure():
    def broken(spec):
        raise ValueError("nope")

    with pytest.raises(LabError):
        Runner(workers=1, run_fn=broken).run_map([vecadd_spec()])


def test_batch_manifest_contents():
    def selective(spec):
        if spec.kernel == "ht":
            raise ValueError("boom")
        return _fake_result(spec)

    runner = Runner(workers=1, run_fn=selective,
                    cache=None)
    specs = [vecadd_spec(), RunSpec("ht", make_config("gto"), {},
                                    label="doomed")]
    manifest = runner.run_many(specs).manifest()
    assert manifest["total"] == 2
    assert manifest["executed"] == 1 and manifest["failed"] == 1
    statuses = [row["status"] for row in manifest["runs"]]
    assert statuses == ["ok", "failed"]
    assert manifest["runs"][1]["label"] == "doomed"
    assert "ValueError" in manifest["runs"][1]["error"]
    json.dumps(manifest)  # must be JSON-serializable


def test_failed_runs_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "c", fingerprint="f" * 64)

    def broken(spec):
        raise ValueError("nope")

    Runner(workers=1, run_fn=broken, cache=cache).run_many([vecadd_spec()])
    assert cache.stats().entries == 0


# ----------------------------------------------------------------------
# Runner: hang policy (satellite of the forward-progress guard)


@pytest.mark.parametrize("hang_type", [
    "SimulationDeadlock", "SimulationLivelock", "SimulationTimeout",
])
def test_hangs_are_never_retried(hang_type):
    """A hang is a deterministic function of the spec: retrying burns a
    worker on the exact same hang, so the retry policy must treat every
    SimulationHang subclass as permanent even with retries configured."""
    import repro.sim.progress as progress

    exc_type = getattr(progress, hang_type)
    calls = {"n": 0}

    def hangs(spec):
        calls["n"] += 1
        raise exc_type("wedged")

    runner = Runner(workers=1, retries=3, run_fn=hangs)
    report = runner.run_many([vecadd_spec()])
    (failure,) = report.results
    assert not failure.ok
    assert calls["n"] == 1 and failure.attempts == 1
    assert not failure.transient
    assert failure.error_type == hang_type
    assert report.retried == 0


def test_hang_report_lands_in_failure_and_manifest():
    from repro.sim.progress import HangReport, SimulationLivelock

    def livelocked(spec):
        raise SimulationLivelock("spin forever", HangReport(
            kind="livelock", cycle=9_000, window=4_000, reason="stub"))

    report = Runner(workers=1, run_fn=livelocked).run_many([vecadd_spec()])
    (failure,) = report.results
    assert failure.hung
    assert failure.hang["kind"] == "livelock"
    assert "[hang: livelock at cycle 9000]" in failure.describe()

    manifest = report.manifest()
    row = manifest["runs"][0]
    assert row["status"] == "failed"
    assert row["hang"]["cycle"] == 9_000
    json.dumps(manifest)  # hang forensics must stay JSON-clean


# ----------------------------------------------------------------------
# Sweep


def test_sweep_cartesian_product_order():
    sweep = Sweep("s", kernel=["ht", "atm"], bows=[None, 1000])
    assert len(sweep) == 4
    assert sweep.combos() == [
        {"kernel": "ht", "bows": None},
        {"kernel": "ht", "bows": 1000},
        {"kernel": "atm", "bows": None},
        {"kernel": "atm", "bows": 1000},
    ]
    with pytest.raises(ValueError, match="no values"):
        sweep.axis("empty", [])


def test_sweep_run_and_manifest(tmp_path):
    sweep = Sweep("tiny", kernel=["vecadd"], bows=[None, 500],
                  scale=["quick"])
    result = sweep.run(runner=Runner(workers=1, run_fn=_fake_result))
    rows = result.rows()
    assert len(rows) == 2
    assert all(row["status"] == "ok" for row in rows)
    assert {row["bows"] for row in rows} == {None, 500}

    manifest_path = tmp_path / "manifest.json"
    result.write_manifest(manifest_path)
    manifest = json.loads(manifest_path.read_text())
    assert manifest["sweep"] == "tiny"
    assert manifest["axes"]["bows"] == ["None", "500"]
    assert manifest["total"] == 2
    assert len(manifest["runs"]) == 2
    assert all("spec_hash" in row for row in manifest["runs"])


def test_sweep_specs_get_combo_labels():
    sweep = Sweep("s", kernel=["vecadd"], bows=[500], scale=["quick"])
    (spec,) = sweep.specs()
    assert spec.label == "kernel=vecadd bows=500 scale=quick"
    assert spec.config.bows is not None
    assert spec.params["n_threads"] > 0  # quick registry params applied


def test_sweep_extra_axis_becomes_workload_param():
    sweep = Sweep("s", kernel=["vecadd"], scale=["quick"],
                  per_thread=[4])
    (spec,) = sweep.specs()
    assert spec.params["per_thread"] == 4


# ----------------------------------------------------------------------
# current_runner context


def test_use_runner_scopes_the_current_runner():
    default = current_runner()
    custom = Runner(workers=1, run_fn=_fake_result)
    with use_runner(custom):
        assert current_runner() is custom
    assert current_runner() is default


# ----------------------------------------------------------------------
# Workload single-use guard (satellite)


def test_workload_reuse_raises():
    from repro.api import simulate

    workload = build("vecadd", **VECADD)
    simulate(workload, config=make_config("gto"))
    with pytest.raises(WorkloadReuseError, match="fresh"):
        simulate(workload, config=make_config("gto"))
