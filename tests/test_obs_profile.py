"""Profile reports and the ``repro profile`` CLI: shape and substance.

The acceptance tests at the bottom check the paper-facing claims the
profile layer exists to surface: the backed-off-fraction curve is
nonzero only under BOWS, and DDOS flags every true spin-inducing branch
early in the run (well before 20% of total cycles).
"""

from __future__ import annotations

import json

import pytest

from repro.api import simulate
from repro.kernels import build
from repro.obs import (
    BackoffEnter,
    BackoffExit,
    EventBus,
    Observability,
    SIBCleared,
    SIBDetected,
)
from repro.obs.profile import (
    PROFILE_KEYS,
    PROFILE_SCHEMA_VERSION,
    build_profile,
    _build_ddos,
    _build_warp_timelines,
)
from repro.sim.config import GPUConfig
from repro.sim.trace import Tracer

#: Same small ht shape the golden-equivalence matrix uses.
HT = dict(n_threads=128, n_buckets=8, items_per_thread=1, block_dim=64)


def run_ht(bows="adaptive", obs=True, tracer=None):
    config = GPUConfig.preset("fermi", scheduler="gto", bows=bows)
    return simulate("ht", config=config, params=dict(HT), obs=obs,
                    tracer=tracer)


class FakeBus:
    def __init__(self, events):
        self._events = events

    def __iter__(self):
        return iter(self._events)


class FakeObs:
    def __init__(self, events):
        self.bus = FakeBus(events)


# ----------------------------------------------------------------------
# Report shape


def test_profile_json_golden_shape():
    tracer = Tracer()
    result = run_ht(tracer=tracer)
    report = build_profile(result, tracer, workload="ht",
                           scheduler="gto", engine="fast")
    data = report.to_dict()
    assert tuple(data) == PROFILE_KEYS
    assert data["schema_version"] == PROFILE_SCHEMA_VERSION
    assert data["workload"] == "ht" and data["cycles"] == result.cycles
    assert data["summary"] == result.stats.summary()
    # Everything must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(data)) == data


def test_profile_hotspots_aggregate_the_tracer_window():
    tracer = Tracer()
    result = run_ht(tracer=tracer)
    report = build_profile(result, tracer)
    assert report.hotspots, "a traced run must produce hot spots"
    assert sum(h["issues"] for h in report.hotspots) == len(tracer)
    # Sorted by issue count; the lock-try CAS spin must rank as sync.
    issues = [h["issues"] for h in report.hotspots]
    assert issues == sorted(issues, reverse=True)
    assert any(h["sync"] for h in report.hotspots)
    for spot in report.hotspots:
        assert 0 <= spot["avg_lanes"] <= 64


def test_profile_without_tracer_or_obs_still_builds():
    result = run_ht(obs=None)
    report = build_profile(result)
    assert report.hotspots == [] and report.ddos == []
    assert report.warp_timelines == [] and report.series is None
    assert report.events == {}
    assert report.cycles == result.cycles


def test_markdown_report_has_the_expected_sections():
    tracer = Tracer()
    result = run_ht(tracer=tracer)
    report = build_profile(result, tracer, workload="ht",
                           scheduler="gto", engine="fast")
    text = report.to_markdown()
    assert text.startswith("# Profile: ht")
    for heading in ("## Hot spots", "## DDOS detection",
                    "## Warp back-off timelines", "## Event counts",
                    "## Time series"):
        assert heading in text, heading


# ----------------------------------------------------------------------
# Timeline / DDOS digestion (synthetic events)


def test_warp_timelines_pair_enter_exit_and_close_open_episodes():
    events = [
        BackoffEnter(cycle=100, sm_id=0, warp_slot=1, cta_id=0),
        BackoffExit(cycle=150, sm_id=0, warp_slot=1, cta_id=0,
                    delay_until=200),
        BackoffEnter(cycle=300, sm_id=0, warp_slot=1, cta_id=0),
        # Warp 2 enters and never exits: closed at end-of-run.
        BackoffEnter(cycle=400, sm_id=0, warp_slot=2, cta_id=0),
    ]
    timelines = _build_warp_timelines(FakeObs(events), end_cycle=1000)
    by_slot = {t["warp_slot"]: t for t in timelines}
    assert by_slot[1]["intervals"] == [[100, 150], [300, 1000]]
    assert by_slot[1]["episodes"] == 2
    assert by_slot[1]["backed_off_cycles"] == 50 + 700
    assert by_slot[2]["intervals"] == [[400, 1000]]


def test_orphan_backoff_exit_is_ignored():
    """An exit whose enter was evicted from the ring log must not
    crash or fabricate an interval."""
    events = [BackoffExit(cycle=50, sm_id=0, warp_slot=9, cta_id=0,
                          delay_until=60)]
    assert _build_warp_timelines(FakeObs(events), end_cycle=100) == []


def test_ddos_digest_keeps_first_detection_and_counts_clears():
    events = [
        SIBDetected(cycle=200, sm_id=0, branch=33, confidence=8),
        SIBCleared(cycle=300, sm_id=0, branch=33),
        SIBDetected(cycle=500, sm_id=0, branch=33, confidence=8),
        SIBDetected(cycle=900, sm_id=1, branch=40, confidence=8),
    ]
    rows = _build_ddos(FakeObs(events), total_cycles=1000)
    assert rows == [
        {"branch": 33, "first_flagged": 200, "detect_fraction": 0.2,
         "cleared": 1},
        {"branch": 40, "first_flagged": 900, "detect_fraction": 0.9,
         "cleared": 0},
    ]


# ----------------------------------------------------------------------
# CLI: repro profile


def test_cli_profile_writes_report_json_and_trace(tmp_path, capsys):
    from repro.cli import main

    report_md = tmp_path / "profile.md"
    report_json = tmp_path / "profile.json"
    trace_json = tmp_path / "trace.json"
    code = main([
        "profile", "ht", "--bows", "adaptive",
        "--param", "n_threads=128", "--param", "n_buckets=8",
        "--param", "items_per_thread=1", "--param", "block_dim=64",
        "--sample-interval", "200",
        "--out", str(report_md), "--json", str(report_json),
        "--trace", str(trace_json),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "profiled in" in out

    data = json.loads(report_json.read_text())
    assert tuple(data) == PROFILE_KEYS
    assert data["workload"] == "ht" and data["engine"] == "fast"
    assert data["series"]["rows"], "sampler must produce rows"
    assert data["events"]["total"] > 0
    assert report_md.read_text().startswith("# Profile: ht")

    trace = json.loads(trace_json.read_text())["traceEvents"]
    assert any(e["ph"] == "X" for e in trace)
    assert any(e["ph"] == "C" for e in trace), "counter tracks merged in"


def test_cli_profile_prints_markdown_to_stdout(capsys):
    from repro.cli import main

    code = main([
        "profile", "ht",
        "--param", "n_threads=64", "--param", "n_buckets=8",
        "--param", "items_per_thread=1", "--param", "block_dim=64",
    ])
    assert code == 0
    assert "# Profile: ht" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Acceptance: the profile answers the paper's questions


def test_backed_off_fraction_nonzero_only_under_bows():
    baseline = run_ht(bows=None)
    bows = run_ht(bows="adaptive")
    base_curve = baseline.obs.series.column("backed_off_fraction")
    bows_curve = bows.obs.series.column("backed_off_fraction")
    assert all(v == 0.0 for v in base_curve)
    assert any(v > 0.0 for v in bows_curve)
    assert not baseline.obs.events("backoff_enter")
    assert bows.obs.events("backoff_enter")


def test_ddos_flags_every_true_sib_before_20pct_of_run():
    workload = build("ht", **HT)
    true_sibs = workload.launch.program.true_sibs()
    assert true_sibs, "ht must contain a spin-inducing branch"
    result = run_ht(bows="adaptive")
    report = build_profile(result)
    flagged = {row["branch"] for row in report.ddos}
    assert true_sibs <= flagged
    for row in report.ddos:
        if row["branch"] in true_sibs:
            assert row["detect_fraction"] < 0.2, row
