"""Warp-scheduler policies: LRR, GTO (+rotation), CAWA."""

import pytest

from repro.isa import assemble
from repro.sim.config import fermi_config
from repro.sim.schedulers import (
    CAWAScheduler,
    GTOScheduler,
    LRRScheduler,
    make_scheduler,
    scheduler_names,
)
from repro.sim.warp import Warp

PROGRAM = assemble("mov %r1, 0\nexit")


def make_warps(slots, ages=None):
    warps = {}
    for i, slot in enumerate(slots):
        age = ages[i] if ages else i
        warps[slot] = Warp(
            program=PROGRAM, warp_slot=slot, sm_id=0, cta_id=0,
            warp_in_cta=i, cta_dim=128, grid_dim=1, warp_size=32, age=age,
        )
    return warps


def test_factory():
    config = fermi_config()
    for name in scheduler_names():
        scheduler = make_scheduler(name, config, [0, 1])
        assert scheduler.name == name
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("fifo", config, [0])


def test_lrr_rotates():
    config = fermi_config()
    sched = LRRScheduler(config, [0, 1, 2, 3])
    warps = make_warps([0, 1, 2, 3])
    ready = {0, 1, 2, 3}
    order = []
    for _ in range(8):
        slot = sched.select(ready, warps, now=0)
        order.append(slot)
        sched.notify_issue(slot, 0)
    assert order == [0, 1, 2, 3, 0, 1, 2, 3]


def test_lrr_skips_unready():
    config = fermi_config()
    sched = LRRScheduler(config, [0, 1, 2, 3])
    warps = make_warps([0, 1, 2, 3])
    slot = sched.select({2, 3}, warps, now=0)
    assert slot == 2
    sched.notify_issue(slot, 0)
    assert sched.select({2, 3}, warps, now=0) == 3


def test_lrr_empty_ready():
    config = fermi_config()
    sched = LRRScheduler(config, [0, 1])
    assert sched.select(set(), make_warps([0, 1]), now=0) is None


def test_gto_greedy_sticks_to_last_issued():
    config = fermi_config()
    sched = GTOScheduler(config, [0, 1, 2])
    warps = make_warps([0, 1, 2])
    first = sched.select({0, 1, 2}, warps, now=0)
    sched.notify_issue(first, 0)
    # Greedy: keeps issuing the same warp while it stays ready.
    assert sched.select({0, 1, 2}, warps, now=1) == first


def test_gto_falls_back_to_oldest():
    config = fermi_config()
    sched = GTOScheduler(config, [0, 1, 2])
    warps = make_warps([0, 1, 2], ages=[5, 1, 9])
    sched.notify_issue(2, 0)
    # Warp 2 (last issued) not ready: pick the oldest ready = slot 1.
    assert sched.select({0, 1}, warps, now=1) == 1


def test_gto_age_rotation():
    config = fermi_config(gto_rotation_period=1000)
    sched = GTOScheduler(config, [0, 1, 2])
    warps = make_warps([0, 1, 2], ages=[0, 1, 2])
    assert sched.select({0, 1, 2}, warps, now=0) == 0
    # After one rotation period the age priority rotates by one.
    assert sched.select({0, 1, 2}, warps, now=1000) == 1
    assert sched.select({0, 1, 2}, warps, now=2000) == 2
    assert sched.select({0, 1, 2}, warps, now=3000) == 0


def test_gto_rotation_avoids_monopoly():
    """Rotation periodically changes which ready warp wins (the paper's
    livelock guard for strict GTO)."""
    config = fermi_config(gto_rotation_period=100)
    sched = GTOScheduler(config, [0, 1])
    warps = make_warps([0, 1], ages=[0, 1])
    winners = set()
    for now in (0, 100):
        winners.add(sched.select({0, 1}, warps, now))
    assert winners == {0, 1}


def test_cawa_selects_most_critical():
    config = fermi_config()
    sched = CAWAScheduler(config, [0, 1, 2])
    warps = make_warps([0, 1, 2])
    warps[1].cawa_nstall = 1000.0  # most critical
    assert sched.select({0, 1, 2}, warps, now=0) == 1


def test_cawa_criticality_formula():
    warps = make_warps([0])
    warp = warps[0]
    warp.cawa_ninst = 10.0
    warp.cawa_cycles = 200.0
    warp.cawa_issued = 50      # CPI = 4
    warp.cawa_nstall = 7.0
    assert warp.criticality == pytest.approx(10.0 * 4.0 + 7.0)


def test_cawa_cpi_floor():
    warps = make_warps([0])
    warp = warps[0]
    warp.cawa_issued = 100
    warp.cawa_cycles = 10.0   # impossible CPI < 1 clamps to 1
    assert warp.cawa_cpi == 1.0


def test_cawa_prioritizes_spinning_warp():
    """The paper's observation: spin loops inflate the remaining-
    instruction estimate, so CAWA ranks spinners as critical."""
    from repro.core.cawa import CAWAPredictor

    program = assemble(
        """
        mov %r1, 0
    LOOP:
        add %r1, %r1, 1
        setp.lt %p1, %r1, 10
        @%p1 bra LOOP
        exit
        """
    )
    warps = {
        0: Warp(program, 0, 0, 0, 0, 64, 1, 32, age=0),
        1: Warp(program, 1, 0, 0, 1, 64, 1, 32, age=1),
    }
    predictor = CAWAPredictor()
    branch = program[3]
    # Warp 0 "spins": repeatedly takes the backward branch.
    for _ in range(20):
        predictor.on_issue(warps[0], branch, 0)
        predictor.on_branch(warps[0], branch, taken_any=True)
    # Warp 1 makes straight-line progress.
    for _ in range(20):
        predictor.on_issue(warps[1], program[0], 0)
    assert warps[0].criticality > warps[1].criticality
