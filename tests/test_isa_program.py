"""Program analysis: basic blocks, CFG, reconvergence points."""

import pytest

from repro.isa import assemble
from repro.isa.program import RECONVERGE_AT_EXIT

IF_ELSE = """
    setp.eq %p1, %r1, 0
    @%p1 bra THEN
    mov %r2, 1
    bra JOIN
THEN:
    mov %r2, 2
JOIN:
    add %r3, %r2, 1
    exit
"""


def test_if_else_blocks():
    program = assemble(IF_ELSE)
    starts = [b.start for b in program.blocks]
    assert starts == [0, 2, 4, 5]


def test_if_else_reconvergence_is_join():
    program = assemble(IF_ELSE)
    # The conditional branch at index 1 reconverges at JOIN (index 5).
    assert program.reconvergence_point(1) == 5


def test_successors():
    program = assemble(IF_ELSE)
    entry = program.blocks[0]
    # Conditional branch: taken target + fall-through.
    assert set(entry.successors) == {1, 2}


LOOP = """
    mov %r_i, 0
LOOP:
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, 10
    @%p1 bra LOOP
    exit
"""


def test_loop_reconvergence_is_exit_block():
    program = assemble(LOOP)
    # Backward branch at 3; loop exit (index 4) post-dominates it.
    assert program.reconvergence_point(3) == 4
    assert program[3].is_backward_branch


def test_backward_branches_detected():
    program = assemble(LOOP)
    assert program.backward_branches() == {3}


NESTED = """
    setp.eq %p1, %r1, 0
    @%p1 bra OUTER_THEN
    mov %r2, 1
    bra OUTER_JOIN
OUTER_THEN:
    setp.eq %p2, %r3, 0
    @%p2 bra INNER_THEN
    mov %r2, 2
    bra INNER_JOIN
INNER_THEN:
    mov %r2, 3
INNER_JOIN:
    add %r2, %r2, 10
OUTER_JOIN:
    exit
"""


def test_nested_if_reconvergence():
    program = assemble(NESTED)
    outer_branch = 1
    inner_branch = 5
    labels = program.labels
    assert program.reconvergence_point(outer_branch) == labels["OUTER_JOIN"]
    assert program.reconvergence_point(inner_branch) == labels["INNER_JOIN"]


DIVERGENT_EXIT = """
    setp.eq %p1, %r1, 0
    @%p1 bra DONE
    mov %r2, 1
    exit
DONE:
    mov %r2, 2
    exit
"""


def test_paths_that_only_meet_at_exit():
    program = assemble(DIVERGENT_EXIT)
    assert program.reconvergence_point(1) == RECONVERGE_AT_EXIT


def test_true_sibs_from_annotation():
    program = assemble(
        """
    SPIN:
        atom.cas %r1, [%r2], 0, 1 !lock_try
        setp.ne %p1, %r1, 0
        @%p1 bra SPIN !sib
        exit
        """
    )
    assert program.true_sibs() == {2}


def test_registers_and_predicates_enumeration():
    program = assemble(IF_ELSE)
    assert program.registers() == {"r1", "r2", "r3"}
    assert program.predicates() == {"p1"}


def test_block_of():
    program = assemble(IF_ELSE)
    assert program.block_of(0).index == 0
    assert program.block_of(4).start == 4
    with pytest.raises(IndexError):
        program.block_of(99)


def test_hazard_keys_precomputed():
    program = assemble(IF_ELSE)
    setp = program[0]
    assert set(setp.hazard_keys) == {"r:r1", "p:p1"}
    assert setp.dst_key == "p:p1"
    branch = program[1]
    assert "p:p1" in branch.hazard_keys
    assert branch.dst_key is None


def test_hazard_keys_for_memory_ops():
    program = assemble(
        """
        ld.global %r1, [%r2+4]
        st.global [%r3], %r1
        exit
        """
    )
    load = program[0]
    assert set(load.hazard_keys) == {"r:r1", "r:r2"}
    store = program[1]
    assert set(store.hazard_keys) == {"r:r1", "r:r3"}
    assert store.dst_key is None  # stores do not write registers


def test_instruction_addresses_are_8_bytes_apart():
    program = assemble(IF_ELSE)
    addresses = [instr.address for instr in program.instructions]
    assert addresses == [8 * i for i in range(len(program))]


def test_static_size():
    assert assemble(LOOP).static_size == 5


SELF_LOOP_COND = """
    mov %r_i, 0
SPIN:
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, 10
    @%p1 bra SPIN
    exit
"""

SELF_LOOP_UNCOND = """
    mov %r1, 0
SPIN:
    bra SPIN
    exit
"""


def test_single_block_self_loop_back_edge_conditional():
    # Regression: the dominance-based CFG view used to disagree with the
    # instruction-level backward_branches() on single-block self-loops.
    program = assemble(SELF_LOOP_COND)
    spin = program.block_of(1).index
    assert (spin, spin) in program.back_edges()
    assert program.loop_back_branches() == program.backward_branches() == {3}
    assert program.natural_loop(spin, spin) == {spin}


def test_single_block_self_loop_back_edge_unconditional():
    program = assemble(SELF_LOOP_UNCOND)
    spin = program.block_of(1).index
    assert (spin, spin) in program.back_edges()
    assert 1 in program.loop_back_branches()
    assert program.natural_loop(spin, spin) == {spin}


def test_loop_back_branches_subset_of_backward_on_all_kernels():
    from repro.kernels import build, kernel_names

    for name in kernel_names():
        program = build(name).launch.program
        loop_branches = program.loop_back_branches()
        assert loop_branches <= program.backward_branches(), name
        # Every natural loop's head must be a member of its own body.
        for (tail, head), body in program.natural_loops().items():
            assert head in body and tail in body, (name, tail, head)
