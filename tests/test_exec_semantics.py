"""End-to-end instruction semantics: assembled snippets on the full GPU.

Each test runs a tiny kernel and checks the memory image it leaves —
covering every opcode, predication, divergence/reconvergence, barriers,
fences, clocks, and special registers as executed by the pipeline (not
just the ALU helpers).
"""

import numpy as np
import pytest

from conftest import run_program
from repro.memory.memsys import GlobalMemory


def out_buffer(memory: GlobalMemory, words: int) -> int:
    return memory.alloc(words)


def store_per_thread(body: str) -> str:
    """Wrap ``body`` (which must set %r_out) with a per-thread store."""
    return f"""
        ld.param %r_base, [out]
{body}
        shl %r_a, %gtid, 2
        add %r_a, %r_base, %r_a
        st.global [%r_a], %r_out
        exit
    """


def run_per_thread(tiny_config, body: str, *, block_dim=32, grid_dim=1,
                   extra_params=None, memory=None):
    if memory is None:
        memory = GlobalMemory(1 << 16)
    out = memory.alloc(grid_dim * block_dim)
    params = {"out": out}
    params.update(extra_params or {})
    result, memory = run_program(
        store_per_thread(body), tiny_config,
        grid_dim=grid_dim, block_dim=block_dim, params=params,
        memory=memory,
    )
    return memory.load_array(out, grid_dim * block_dim), result


def test_mov_immediate(tiny_config):
    values, _ = run_per_thread(tiny_config, "    mov %r_out, 7")
    assert (values == 7).all()


def test_special_registers(tiny_config):
    values, _ = run_per_thread(
        tiny_config, "    mov %r_out, %tid", block_dim=32, grid_dim=2
    )
    assert values.tolist() == list(range(32)) * 2


def test_gtid_spans_ctas(tiny_config):
    values, _ = run_per_thread(
        tiny_config, "    mov %r_out, %gtid", block_dim=32, grid_dim=2
    )
    assert values.tolist() == list(range(64))


def test_laneid_and_ntid(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_a1, %laneid
        mul %r_out, %r_a1, 100
        add %r_out, %r_out, %ntid
        """,
        block_dim=32,
    )
    assert values.tolist() == [lane * 100 + 32 for lane in range(32)]


def test_arithmetic_chain(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_x, %gtid
        mad %r_x, %r_x, 3, 5
        shl %r_x, %r_x, 1
        sub %r_out, %r_x, 4
        """,
    )
    expected = [((g * 3 + 5) << 1) - 4 for g in range(32)]
    assert values.tolist() == expected


def test_selp(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        and %r_lsb, %gtid, 1
        setp.eq %p1, %r_lsb, 0
        selp %r_out, 100, 200, %p1
        """,
    )
    expected = [100 if g % 2 == 0 else 200 for g in range(32)]
    assert values.tolist() == expected


def test_guarded_instruction(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 1
        setp.lt %p1, %gtid, 10
        @%p1 mov %r_out, 2
        """,
    )
    expected = [2 if g < 10 else 1 for g in range(32)]
    assert values.tolist() == expected


def test_negated_guard(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 1
        setp.lt %p1, %gtid, 10
        @!%p1 mov %r_out, 3
        """,
    )
    expected = [1 if g < 10 else 3 for g in range(32)]
    assert values.tolist() == expected


def test_if_else_divergence(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        setp.lt %p1, %gtid, 16
        @%p1 bra THEN
        mov %r_out, 200
        bra JOIN
    THEN:
        mov %r_out, 100
    JOIN:
        add %r_out, %r_out, 1
        """,
    )
    expected = [101 if g < 16 else 201 for g in range(32)]
    assert values.tolist() == expected


def test_divergent_loop_trip_counts(tiny_config):
    """Each lane loops a different number of times."""
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 0
        and %r_n, %gtid, 7
    LOOP:
        add %r_out, %r_out, 1
        setp.lt %p1, %r_out, %r_n
        @%p1 bra LOOP
        """,
    )
    expected = [max(g % 8, 1) for g in range(32)]
    assert values.tolist() == expected


def test_nested_divergence(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        and %r_b0, %gtid, 1
        and %r_b1, %gtid, 2
        setp.eq %p1, %r_b0, 0
        @%p1 bra A
        mov %r_out, 10
        bra J1
    A:
        setp.eq %p2, %r_b1, 0
        @%p2 bra B
        mov %r_out, 20
        bra J2
    B:
        mov %r_out, 30
    J2:
        add %r_out, %r_out, 1
    J1:
        add %r_out, %r_out, 100
        """,
    )
    def model(g):
        if g & 1:
            return 10 + 100
        if g & 2:
            return 20 + 1 + 100
        return 30 + 1 + 100
    assert values.tolist() == [model(g) for g in range(32)]


def test_loads_and_stores(tiny_config):
    memory = GlobalMemory(1 << 16)
    data = memory.alloc(32)
    memory.store_array(data, list(range(0, 64, 2)))
    values, _ = run_per_thread(
        tiny_config,
        """
        ld.param %r_d, [data]
        shl %r_a2, %gtid, 2
        add %r_a2, %r_d, %r_a2
        ld.global %r_v, [%r_a2]
        add %r_out, %r_v, 1000
        """,
        extra_params={"data": data},
        memory=memory,
    )
    assert values.tolist() == [v + 1000 for v in range(0, 64, 2)]


def test_load_with_offset(tiny_config):
    memory = GlobalMemory(1 << 16)
    data = memory.alloc(40)
    memory.store_array(data, list(range(40)))
    values, _ = run_per_thread(
        tiny_config,
        """
        ld.param %r_d, [data]
        shl %r_a2, %gtid, 2
        add %r_a2, %r_d, %r_a2
        ld.global %r_out, [%r_a2+8]
        """,
        extra_params={"data": data},
        memory=memory,
    )
    assert values.tolist() == list(range(2, 34))


def test_ld_global_cg(tiny_config):
    memory = GlobalMemory(1 << 16)
    data = memory.alloc(32)
    memory.store_array(data, [5] * 32)
    values, result = run_per_thread(
        tiny_config,
        """
        ld.param %r_d, [data]
        shl %r_a2, %gtid, 2
        add %r_a2, %r_d, %r_a2
        ld.global.cg %r_out, [%r_a2]
        """,
        extra_params={"data": data},
        memory=memory,
    )
    assert (values == 5).all()


def test_atom_add_accumulates(tiny_config):
    memory = GlobalMemory(1 << 16)
    counter = memory.alloc(1)
    result, memory = run_program(
        """
        ld.param %r_c, [counter]
        atom.add %r_old, [%r_c], 1
        exit
        """,
        tiny_config,
        block_dim=32, grid_dim=2,
        params={"counter": counter}, memory=memory,
    )
    assert memory.read_word(counter) == 64


def test_atom_cas_only_one_winner_per_address(tiny_config):
    memory = GlobalMemory(1 << 16)
    flag = memory.alloc(1)
    wins = memory.alloc(1)
    result, memory = run_program(
        """
        ld.param %r_f, [flag]
        ld.param %r_w, [wins]
        atom.cas %r_old, [%r_f], 0, 1
        setp.eq %p1, %r_old, 0
        @!%p1 bra DONE
        atom.add %r_ig, [%r_w], 1
    DONE:
        exit
        """,
        tiny_config,
        block_dim=32, grid_dim=1,
        params={"flag": flag, "wins": wins}, memory=memory,
    )
    assert memory.read_word(wins) == 1
    assert memory.read_word(flag) == 1


def test_atom_exch_returns_old(tiny_config):
    memory = GlobalMemory(1 << 16)
    slot = memory.alloc(1)
    memory.write_word(slot, 99)
    values, _ = run_per_thread(
        tiny_config,
        """
        ld.param %r_s, [slot]
        setp.eq %p1, %laneid, 0
        mov %r_out, -1
        @%p1 atom.exch %r_out, [%r_s], 7
        """,
        block_dim=32, extra_params={"slot": slot}, memory=memory,
    )
    assert values[0] == 99
    assert (values[1:] == -1).all()
    assert memory.read_word(slot) == 7


def test_atom_min_max(tiny_config):
    memory = GlobalMemory(1 << 16)
    lo = memory.alloc(1)
    hi = memory.alloc(1)
    memory.write_word(lo, 1 << 20)
    memory.write_word(hi, -(1 << 20))
    result, memory = run_program(
        """
        ld.param %r_lo, [lo]
        ld.param %r_hi, [hi]
        atom.min %r_a, [%r_lo], %gtid
        atom.max %r_b, [%r_hi], %gtid
        exit
        """,
        tiny_config,
        block_dim=32, grid_dim=2,
        params={"lo": lo, "hi": hi}, memory=memory,
    )
    assert memory.read_word(lo) == 0
    assert memory.read_word(hi) == 63


def test_barrier_orders_phases(tiny_config):
    """Warp 1 reads what warp 0 wrote before the barrier."""
    memory = GlobalMemory(1 << 16)
    stage = memory.alloc(64)
    out = memory.alloc(64)
    result, memory = run_program(
        """
        ld.param %r_stage, [stage]
        ld.param %r_out, [out]
        // phase 1: every thread writes tid*2 to stage[tid]
        shl %r_a, %tid, 2
        add %r_w, %r_stage, %r_a
        mul %r_v, %tid, 2
        st.global [%r_w], %r_v
        bar.sync
        // phase 2: read the *other* warp's slot
        xor %r_peer, %tid, 32
        shl %r_pa, %r_peer, 2
        add %r_pr, %r_stage, %r_pa
        ld.global.cg %r_pv, [%r_pr]
        add %r_oa, %r_out, %r_a
        st.global [%r_oa], %r_pv
        exit
        """,
        tiny_config,
        block_dim=64, grid_dim=1,
        params={"stage": stage, "out": out}, memory=memory,
    )
    got = memory.load_array(out, 64)
    expected = [((t ^ 32) * 2) for t in range(64)]
    assert got.tolist() == expected
    assert result.stats.barrier_waits == 2  # two warps hit the barrier


def test_membar_advances(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 1
        membar
        add %r_out, %r_out, 1
        """,
    )
    assert (values == 2).all()


def test_clock_is_monotonic(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        clock %r_t0
        clock %r_t1
        sub %r_out, %r_t1, %r_t0
        """,
    )
    assert (values > 0).all()


def test_guarded_exit_retires_lanes(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 5
        shl %r_a, %gtid, 2
        ld.param %r_base2, [out]
        add %r_a, %r_base2, %r_a
        st.global [%r_a], %r_out
        setp.lt %p1, %gtid, 16
        @%p1 exit
        mov %r_out, 9
        """,
    )
    # Lanes < 16 exited before the final store wrapper ran, keeping 5;
    # the survivors overwrote theirs with 9.
    expected = [5 if g < 16 else 9 for g in range(32)]
    assert values.tolist() == expected


def test_nop_is_harmless(tiny_config):
    values, _ = run_per_thread(
        tiny_config,
        """
        mov %r_out, 3
        nop
        """,
    )
    assert (values == 3).all()


def test_partial_last_warp(tiny_config):
    """Block sizes that do not fill the last warp mask off dead lanes."""
    memory = GlobalMemory(1 << 16)
    out = memory.alloc(64)
    memory.store_array(out, [-1] * 64)
    result, memory = run_program(
        """
        ld.param %r_base, [out]
        shl %r_a, %gtid, 2
        add %r_a, %r_base, %r_a
        st.global [%r_a], %gtid
        exit
        """,
        tiny_config,
        grid_dim=1, block_dim=40,  # warp 1 has only 8 live lanes
        params={"out": out}, memory=memory,
    )
    got = memory.load_array(out, 64)
    assert got[:40].tolist() == list(range(40))
    assert (got[40:] == -1).all()


def test_multi_cta_dispatch(dual_sm_config):
    memory = GlobalMemory(1 << 18)
    n = 32 * 64
    out = memory.alloc(n)
    result, memory = run_program(
        """
        ld.param %r_base, [out]
        shl %r_a, %gtid, 2
        add %r_a, %r_base, %r_a
        st.global [%r_a], %ctaid
        exit
        """,
        dual_sm_config,
        grid_dim=64, block_dim=32,  # more CTAs than fit at once
        params={"out": out}, memory=memory,
    )
    got = memory.load_array(out, n)
    expected = np.repeat(np.arange(64), 32)
    assert (got == expected).all()
