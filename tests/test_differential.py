"""Differential testing: random programs vs a reference interpreter.

Hypothesis generates random straight-line ALU programs (and simple
uniform loops); each runs both on the full cycle-level simulator and on
a tiny big-step Python interpreter.  Register file contents must match
lane for lane — catching mis-wired operand routing, masking bugs, and
wrap-around errors anywhere in the fetch/issue/execute path.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import run_program
from repro.memory.memsys import GlobalMemory
from repro.sim.config import fermi_config

REGS = ["r1", "r2", "r3", "r4"]
BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
}


def wrap(x: int) -> int:
    return ((x + 2**31) % 2**32) - 2**31


@st.composite
def straightline_program(draw):
    """(source lines, reference evaluator over per-lane dicts)."""
    n = draw(st.integers(1, 15))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["imm", "bin", "sreg"]))
        dst = draw(st.sampled_from(REGS))
        if kind == "imm":
            value = draw(st.integers(-(2**31), 2**31 - 1))
            ops.append(("imm", dst, value))
        elif kind == "sreg":
            ops.append(("sreg", dst, draw(st.sampled_from(
                ["laneid", "tid", "gtid"]))))
        else:
            op = draw(st.sampled_from(sorted(BINOPS)))
            a = draw(st.sampled_from(REGS))
            b = draw(st.sampled_from(REGS))
            ops.append(("bin", dst, op, a, b))
    return ops


def to_source(ops) -> str:
    lines = ["    ld.param %r_out, [out]"]
    for op in ops:
        if op[0] == "imm":
            lines.append(f"    mov %{op[1]}, {op[2]}")
        elif op[0] == "sreg":
            lines.append(f"    mov %{op[1]}, %{op[2]}")
        else:
            _, dst, name, a, b = op
            lines.append(f"    {name} %{dst}, %{a}, %{b}")
    # Store every register, lane-strided.
    for i, reg in enumerate(REGS):
        lines += [
            f"    mov %r_t, {i * 32 * 4}",
            "    shl %r_a, %tid, 2",
            "    add %r_a, %r_a, %r_t",
            "    add %r_a, %r_out, %r_a",
            f"    st.global [%r_a], %{reg}",
        ]
    lines.append("    exit")
    return "\n".join(lines)


def reference(ops, lane: int):
    regs = {name: 0 for name in REGS}
    for op in ops:
        if op[0] == "imm":
            regs[op[1]] = wrap(op[2])
        elif op[0] == "sreg":
            regs[op[1]] = lane  # tid == gtid == laneid for 1 warp/CTA
        else:
            _, dst, name, a, b = op
            regs[dst] = wrap(BINOPS[name](regs[a], regs[b]))
    return regs


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(straightline_program())
def test_straightline_matches_reference(ops):
    config = fermi_config(num_sms=1, max_warps_per_sm=2,
                          max_cycles=500_000)
    memory = GlobalMemory(1 << 14)
    out = memory.alloc(len(REGS) * 32)
    _, memory = run_program(
        to_source(ops), config, grid_dim=1, block_dim=32,
        params={"out": out}, memory=memory,
    )
    stored = memory.load_array(out, len(REGS) * 32)
    for lane in range(32):
        expected = reference(ops, lane)
        for i, reg in enumerate(REGS):
            assert int(stored[i * 32 + lane]) == expected[reg], (
                f"lane {lane} register {reg}"
            )


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trip=st.integers(1, 12),
    addend=st.integers(-1000, 1000),
)
def test_uniform_loop_matches_reference(trip, addend):
    source = f"""
        ld.param %r_out, [out]
        mov %r_acc, 0
        mov %r_i, 0
    LOOP:
        add %r_acc, %r_acc, {addend}
        add %r_i, %r_i, 1
        setp.lt %p1, %r_i, {trip}
        @%p1 bra LOOP
        shl %r_a, %tid, 2
        add %r_a, %r_out, %r_a
        st.global [%r_a], %r_acc
        exit
    """
    config = fermi_config(num_sms=1, max_warps_per_sm=2,
                          max_cycles=500_000)
    memory = GlobalMemory(1 << 13)
    out = memory.alloc(32)
    _, memory = run_program(source, config, block_dim=32,
                            params={"out": out}, memory=memory)
    assert (memory.load_array(out, 32) == wrap(trip * addend)).all()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=st.lists(st.integers(0, 2**20), min_size=32, max_size=32))
def test_atomic_add_matches_numpy_sum(values):
    source = """
        ld.param %r_data, [data]
        ld.param %r_acc, [acc]
        shl %r_a, %tid, 2
        add %r_a, %r_data, %r_a
        ld.global %r_v, [%r_a]
        atom.add %r_old, [%r_acc], %r_v
        exit
    """
    config = fermi_config(num_sms=1, max_warps_per_sm=2,
                          max_cycles=500_000)
    memory = GlobalMemory(1 << 13)
    data = memory.alloc(32)
    acc = memory.alloc(1)
    memory.store_array(data, values)
    _, memory = run_program(source, config, block_dim=32,
                            params={"data": data, "acc": acc},
                            memory=memory)
    assert memory.read_word(acc) == wrap(int(np.sum(values)))
