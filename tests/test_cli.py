"""Command-line interface."""

import pytest

from repro.cli import _parse_params, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "ht" in out


def test_run_kernel(capsys):
    code = main([
        "run", "vecadd",
        "--param", "n_threads=64",
        "--param", "per_thread=2",
        "--param", "block_dim=32",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "validation: OK" in out


def test_run_with_bows(capsys):
    code = main([
        "run", "ht", "--bows", "adaptive",
        "--param", "n_threads=64",
        "--param", "n_buckets=8",
        "--param", "items_per_thread=1",
        "--param", "block_dim=64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "detected SIBs" in out


def test_experiment_tab3(capsys):
    assert main(["experiment", "tab3"]) == 0
    out = capsys.readouterr().out
    assert "SIB-PT" in out


def test_experiment_quick_scale(capsys):
    assert main(["experiment", "fig3", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "normalized_time" in out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nope"])


def test_parse_params():
    assert _parse_params(["a=1", "b=2"]) == {"a": 1, "b": 2}
    with pytest.raises(SystemExit):
        _parse_params(["oops"])
