"""Command-line interface."""

import pytest

from repro.cli import _parse_params, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "ht" in out


def test_run_kernel(capsys):
    code = main([
        "run", "vecadd",
        "--param", "n_threads=64",
        "--param", "per_thread=2",
        "--param", "block_dim=32",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "validation: OK" in out


def test_run_with_bows(capsys):
    code = main([
        "run", "ht", "--bows", "adaptive",
        "--param", "n_threads=64",
        "--param", "n_buckets=8",
        "--param", "items_per_thread=1",
        "--param", "block_dim=64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "detected SIBs" in out


def test_experiment_tab3(capsys):
    assert main(["experiment", "tab3"]) == 0
    out = capsys.readouterr().out
    assert "SIB-PT" in out


def test_experiment_quick_scale(capsys):
    assert main(["experiment", "fig3", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "normalized_time" in out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nope"])


def test_parse_params():
    assert _parse_params(["a=1", "b=2"]) == {"a": 1, "b": 2}
    with pytest.raises(SystemExit):
        _parse_params(["oops"])


def test_sweep_command_runs_caches_and_writes_manifest(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "cache")
    manifest = str(tmp_path / "sweep.json")
    argv = [
        "sweep", "--kernel", "vecadd", "--bows", "none,500",
        "--scale", "quick", "--workers", "1",
        "--cache-dir", cache_dir, "--manifest", manifest,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 runs: 0 cached, 2 simulated" in out
    payload = json.loads(open(manifest).read())
    assert payload["total"] == 2 and payload["executed"] == 2

    # Re-run: pure cache hits.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 runs: 2 cached, 0 simulated" in out


def test_cache_stats_and_clear_commands(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "--kernel", "vecadd", "--scale", "quick",
                 "--workers", "1", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries         : 1" in out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "removed 1" in out


def test_experiment_no_cache_flag(tmp_path, capsys):
    assert main(["experiment", "fig3", "--scale", "quick", "--workers", "1",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "0 cached" in out
