"""Command-line interface."""

import pytest

from repro.cli import (EXIT_HANG, EXIT_TRANSIENT, EXIT_VALIDATION,
                       _parse_params, main)


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "ht" in out


def test_run_kernel(capsys):
    code = main([
        "run", "vecadd",
        "--param", "n_threads=64",
        "--param", "per_thread=2",
        "--param", "block_dim=32",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "validation: OK" in out


def test_run_with_bows(capsys):
    code = main([
        "run", "ht", "--bows", "adaptive",
        "--param", "n_threads=64",
        "--param", "n_buckets=8",
        "--param", "items_per_thread=1",
        "--param", "block_dim=64",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "detected SIBs" in out


def test_experiment_tab3(capsys):
    assert main(["experiment", "tab3"]) == 0
    out = capsys.readouterr().out
    assert "SIB-PT" in out


def test_experiment_quick_scale(capsys):
    assert main(["experiment", "fig3", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "normalized_time" in out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nope"])


def test_parse_params():
    assert _parse_params(["a=1", "b=2"]) == {"a": 1, "b": 2}
    with pytest.raises(SystemExit):
        _parse_params(["oops"])


def test_sweep_command_runs_caches_and_writes_manifest(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "cache")
    manifest = str(tmp_path / "sweep.json")
    argv = [
        "sweep", "--kernel", "vecadd", "--bows", "none,500",
        "--scale", "quick", "--workers", "1",
        "--cache-dir", cache_dir, "--manifest", manifest,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 runs: 0 cached, 2 simulated" in out
    payload = json.loads(open(manifest).read())
    assert payload["total"] == 2 and payload["executed"] == 2

    # Re-run: pure cache hits.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 runs: 2 cached, 0 simulated" in out


def test_cache_stats_and_clear_commands(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "--kernel", "vecadd", "--scale", "quick",
                 "--workers", "1", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries         : 1" in out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "removed 1" in out


def test_experiment_no_cache_flag(tmp_path, capsys):
    assert main(["experiment", "fig3", "--scale", "quick", "--workers", "1",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "0 cached" in out


# ----------------------------------------------------------------------
# Exit codes (hang=3, validation=4, transient=5) and the fuzz command


def test_run_hang_exits_3(capsys):
    code = main([
        "run", "vecadd",
        "--param", "n_threads=64",
        "--param", "per_thread=2",
        "--param", "block_dim=32",
        "--max-cycles", "50",
        "--watchdog", "30",
        "--progress-epoch", "10",
    ])
    assert code == EXIT_HANG
    out = capsys.readouterr().out
    assert "HANG" in out
    assert "warp states" in out  # the HangReport rendering


def test_run_validation_failure_exits_4(capsys, monkeypatch):
    import repro.cli as cli
    from repro.kernels import WorkloadError

    def rigged(workload, **kwargs):
        raise WorkloadError("answers differ")

    monkeypatch.setattr(cli, "simulate", rigged)
    code = main(["run", "vecadd", "--param", "n_threads=64",
                 "--param", "block_dim=32"])
    assert code == EXIT_VALIDATION
    assert "VALIDATION FAILED" in capsys.readouterr().out


def test_run_transient_error_exits_5(capsys, monkeypatch):
    import repro.cli as cli

    def flaky(workload, **kwargs):
        raise OSError("worker vanished")

    monkeypatch.setattr(cli, "simulate", flaky)
    code = main(["run", "vecadd", "--param", "n_threads=64",
                 "--param", "block_dim=32"])
    assert code == EXIT_TRANSIENT
    assert "transient error" in capsys.readouterr().out


def test_fuzz_clean_kernel_exits_0(tmp_path, capsys):
    report_path = str(tmp_path / "fuzz.json")
    code = main([
        "fuzz", "vecadd", "--seeds", "2", "--budget-cycles", "30000",
        "--param", "n_threads=64", "--param", "per_thread=2",
        "--param", "block_dim=32",
        "--json", report_path,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 clean" in out

    import json
    payload = json.loads(open(report_path).read())
    assert payload["clean"] == [0, 1]
    assert payload["findings"] == []


def test_fuzz_hang_exits_3(capsys, monkeypatch):
    """A seed that hangs turns the whole fuzz run into exit code 3 and
    prints a deterministic repro command."""
    from repro.fuzz import harness as fuzz_harness
    from repro.sim.progress import HangReport, SimulationLivelock

    original = fuzz_harness.ScheduleFuzzer.run

    def run_with_stub(self, seeds, runner=None, shrink=True, **kwargs):
        from repro.lab import Runner as LabRunner

        def hang_on_zero(spec):
            if spec.config.perturb.seed == 0:
                raise SimulationLivelock("stuck", HangReport(
                    kind="livelock", cycle=77, window=10, reason="stub"))
            from repro.lab.results import RunResult
            from repro.metrics.stats import SimStats
            return RunResult(spec_hash=spec.content_hash(), cycles=5,
                             stats=SimStats(cycles=5))

        return original(self, seeds, runner=LabRunner(workers=1,
                                                      run_fn=hang_on_zero),
                        shrink=shrink, **kwargs)

    monkeypatch.setattr(fuzz_harness.ScheduleFuzzer, "run", run_with_stub)
    code = main(["fuzz", "vecadd", "--seeds", "2",
                 "--param", "n_threads=64"])
    assert code == EXIT_HANG
    out = capsys.readouterr().out
    assert "1 hang(s)" in out
    assert "--seed-base 0" in out


def test_fuzz_sanitize_race_exits_4(capsys, monkeypatch):
    """--sanitize runs the dynamic sanitizer per seed; a completed run
    with findings is a 'race', reported as a validation failure."""
    from repro.fuzz import harness as fuzz_harness

    original = fuzz_harness.ScheduleFuzzer.run

    def run_with_stub(self, seeds, runner=None, shrink=True, **kwargs):
        from repro.lab import Runner as LabRunner
        from repro.lab.results import RunResult
        from repro.metrics.stats import SimStats

        assert self.sanitize  # --sanitize reached the fuzzer

        def racy(spec):
            assert spec.sanitize is not None
            return RunResult(
                spec_hash=spec.content_hash(), cycles=5,
                stats=SimStats(cycles=5),
                sanitizer={"ok": False, "diagnostics": [
                    {"id": "SAN001", "pc": 3, "severity": "error",
                     "message": "write-write race"},
                ]})

        return original(self, seeds,
                        runner=LabRunner(workers=1, run_fn=racy),
                        shrink=shrink, **kwargs)

    monkeypatch.setattr(fuzz_harness.ScheduleFuzzer, "run", run_with_stub)
    code = main(["fuzz", "vecadd", "--seeds", "1", "--sanitize",
                 "--param", "n_threads=64"])
    assert code == EXIT_VALIDATION
    assert "1 race(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The lint command


def test_lint_single_kernel(capsys):
    assert main(["lint", "ht"]) == 0
    out = capsys.readouterr().out
    assert "lint ht: OK" in out
    assert "static SIBs: [33]" in out


def test_lint_all_kernels_json(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "lint.json")
    assert main(["lint", "--all", "--format", "json",
                 "--out", out_path]) == 0
    capsys.readouterr()
    payload = json.loads(open(out_path).read())
    assert payload["ok"] is True
    from repro.kernels import kernel_names
    assert set(payload["kernels"]) == set(kernel_names())
    for report in payload["kernels"].values():
        assert report["ok"] and report["diagnostics"] == []


def test_lint_requires_exactly_one_target(capsys):
    assert main(["lint"]) == 2
    assert main(["lint", "ht", "--all"]) == 2


def test_lint_failure_exits_1(capsys, monkeypatch):
    import repro.cli as cli
    from repro.analysis import Diagnostic
    from repro.analysis.lint import LintReport

    def rigged(name, params=None):
        return LintReport(kernel=name, diagnostics=[Diagnostic(
            id="REG001", severity="error", kernel=name, pc=0,
            message="bad")])

    monkeypatch.setattr("repro.analysis.lint.lint_kernel", rigged)
    assert main(["lint", "ht"]) == 1
    assert "REG001" in capsys.readouterr().out
