"""GPU top level: CTA dispatch, multi-SM distribution, limits."""

import numpy as np
import pytest

from conftest import run_program
from repro.isa import assemble
from repro.memory.memsys import GlobalMemory
from repro.sim.config import fermi_config
from repro.sim.gpu import GPU, KernelLaunch, SimulationTimeout

COUNT_KERNEL = """
    ld.param %r_c, [counter]
    atom.add %r_old, [%r_c], 1
    exit
"""


def _count_run(config, grid_dim, block_dim):
    memory = GlobalMemory(1 << 14)
    counter = memory.alloc(1)
    result, memory = run_program(
        COUNT_KERNEL, config, grid_dim=grid_dim, block_dim=block_dim,
        params={"counter": counter}, memory=memory,
    )
    return memory.read_word(counter), result


def test_every_thread_of_every_cta_runs(tiny_config):
    # 12 CTAs of 64 threads on a 4-warp SM: many dispatch waves.
    count, result = _count_run(tiny_config, grid_dim=12, block_dim=64)
    assert count == 12 * 64


def test_single_thread_grid(tiny_config):
    count, _ = _count_run(tiny_config, grid_dim=1, block_dim=1)
    assert count == 1


def test_multi_sm_shares_ctas(dual_sm_config):
    memory = GlobalMemory(1 << 14)
    out = memory.alloc(8)
    # Record which SM ran each CTA via %warpid-free means: store ctaid.
    result, memory = run_program(
        """
        ld.param %r_o, [out]
        shl %r_a, %ctaid, 2
        add %r_a, %r_o, %r_a
        st.global [%r_a], 1
        exit
        """,
        dual_sm_config, grid_dim=8, block_dim=32,
        params={"out": out}, memory=memory,
    )
    assert (memory.load_array(out, 8) == 1).all()
    # Both SMs were used (stats come from the shared SimStats; check
    # that the run completed far faster than a serial one would).
    assert result.cycles > 0


def test_oversized_cta_rejected(tiny_config):
    program = assemble("exit")
    gpu = GPU(tiny_config)
    # 4-warp SM cannot host a 256-thread (8-warp) CTA.
    with pytest.raises(ValueError, match="warps"):
        gpu.launch(KernelLaunch(program, 1, 256))


def test_bad_launch_geometry():
    program = assemble("exit")
    with pytest.raises(ValueError):
        KernelLaunch(program, 0, 32)
    with pytest.raises(ValueError):
        KernelLaunch(program, 1, 0)


def test_max_cycles_timeout():
    config = fermi_config(num_sms=1, max_warps_per_sm=2, max_cycles=200)
    memory = GlobalMemory(1 << 12)
    flag = memory.alloc(1)  # never set: poll loop runs forever
    with pytest.raises(SimulationTimeout):
        run_program(
            """
            ld.param %r_f, [flag]
        WAIT:
            ld.global.cg %r_v, [%r_f]
            setp.eq %p1, %r_v, 0
            @%p1 bra WAIT
            exit
            """,
            config, block_dim=32, params={"flag": flag}, memory=memory,
        )


def test_fast_forward_preserves_cycle_accounting(tiny_config):
    """A latency-bound kernel's cycle count includes skipped cycles."""
    memory = GlobalMemory(1 << 12)
    data = memory.alloc(64)
    result, _ = run_program(
        """
        ld.param %r_d, [data]
        ld.global %r_v, [%r_d]
        add %r_v, %r_v, 1     // depends on the load: forces a stall
        st.global [%r_d], %r_v
        exit
        """,
        tiny_config, block_dim=32, params={"data": data}, memory=memory,
    )
    # The DRAM round trip dominates; far fewer instructions than cycles.
    assert result.cycles > tiny_config.l2_hit_latency
    assert result.stats.warp_instructions < result.cycles


def test_warp_ages_are_dispatch_ordered(tiny_config):
    """Later CTAs get larger age bases (GTO's 'older' = earlier)."""
    from repro.sim.sm import SM
    from repro.metrics.stats import SimStats
    from repro.memory.memsys import MemorySubsystem

    program = assemble("bar.sync\nexit")
    config = tiny_config
    sm = SM(0, config, program, {}, GlobalMemory(256),
            MemorySubsystem(config), {}, SimStats())
    sm.launch_cta(0, warps_per_cta=2, cta_dim=64, grid_dim=2, age_base=0)
    sm.launch_cta(1, warps_per_cta=2, cta_dim=64, grid_dim=2, age_base=2)
    ages = sorted(w.age for w in sm.warps.values())
    assert ages == [0, 1, 2, 3]


def test_sim_result_exposes_program_and_stats(tiny_config):
    count, result = _count_run(tiny_config, grid_dim=1, block_dim=32)
    assert result.launch.program.name == "test_kernel"
    assert result.stats.warp_instructions >= 3
    assert result.config is tiny_config
    summary = result.stats.summary()
    assert summary["cycles"] == result.cycles
