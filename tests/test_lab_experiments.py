"""Acceptance tests: the experiment harness on top of repro.lab.

The headline guarantees of the lab migration, asserted end-to-end on
the Figures 10-13 delay sweep (quick scale):

* parallel (process-pool) execution produces row-for-row identical
  ``ExperimentResult`` values to the serial path;
* an immediate re-run against a warm cache completes with *zero* new
  simulations — enforced with a run-count probe that makes any attempt
  to simulate blow up the test.
"""

from __future__ import annotations

import pytest

from repro.harness import experiments as E
from repro.lab import ResultCache, Runner, RunSpec, use_runner
from repro.lab.runner import execute_run

KERNELS = ["ht", "tsp"]
DELAYS = (None, 0, "adaptive")


def _fig_rows(sweep):
    """Project the four figure tables sharing the delay sweep."""
    return {
        "fig10": E.fig10(sweep=sweep).rows,
        "fig11": E.fig11(sweep=sweep).rows,
        "fig12": E.fig12(sweep=sweep).rows,
        "fig13": E.fig13(sweep=sweep).rows,
    }


def _forbid_execution(spec: RunSpec):
    raise AssertionError(
        f"cache miss: {spec.display} was re-simulated on a warm cache"
    )


#: Module-level (picklable) counting wrapper for process workers is not
#: possible across processes; the run-count probe instead uses a serial
#: runner whose run_fn *raises* on any execution attempt.


def test_parallel_sweep_matches_serial_and_reruns_from_cache(tmp_path):
    # 1. Serial reference: default-style runner, no cache.
    with use_runner(Runner(workers=1, mode="serial")):
        serial_sweep = E.run_delay_sweep("quick", KERNELS, DELAYS)
        serial_figs = _fig_rows(serial_sweep)

    # 2. Parallel run through a process pool with a cold disk cache.
    cache = ResultCache(tmp_path / "lab_cache")
    parallel_runner = Runner(workers=2, mode="process", cache=cache)
    with use_runner(parallel_runner):
        parallel_sweep = E.run_delay_sweep("quick", KERNELS, DELAYS)
        parallel_figs = _fig_rows(parallel_sweep)

    report = parallel_runner.last_report
    assert report.total == len(KERNELS) * len(DELAYS)
    assert report.executed == report.total and report.cache_hits == 0

    # Row-for-row identical figure values, serial vs parallel.
    assert parallel_figs == serial_figs

    # 3. Immediate re-run: every result must come from the cache —
    #    the probe run_fn turns any simulation attempt into a failure.
    probe_runner = Runner(workers=1, cache=cache, run_fn=_forbid_execution)
    with use_runner(probe_runner):
        cached_sweep = E.run_delay_sweep("quick", KERNELS, DELAYS)
        cached_figs = _fig_rows(cached_sweep)

    report = probe_runner.last_report
    assert report.executed == 0
    assert report.cache_hits == report.total == len(KERNELS) * len(DELAYS)
    assert all(result.from_cache for result in cached_sweep.values())
    assert cached_figs == serial_figs


def test_process_pool_experiment_matches_serial():
    """A whole figure function, parallel vs serial, identical output."""
    kwargs = dict(scale="quick", kernels=["ht"])
    with use_runner(Runner(workers=1, mode="serial")):
        serial = E.fig2(**kwargs)
    with use_runner(Runner(workers=2, mode="process")):
        parallel = E.fig2(**kwargs)
    assert parallel.rows == serial.rows


def test_evaluate_ddos_through_cache_is_stable(tmp_path):
    """tab1's scoring path survives the result-cache round trip."""
    from repro.harness.ddos_eval import evaluate_ddos
    from repro.harness.params import sync_free_params

    free = sync_free_params("quick")
    kernels = ["vecadd", "ms"]
    cache = ResultCache(tmp_path / "cache")
    from repro.sim.config import DDOSConfig

    with use_runner(Runner(workers=1, cache=cache)):
        fresh = evaluate_ddos(DDOSConfig(), kernels, free)
        cached = evaluate_ddos(DDOSConfig(), kernels, free)
    assert cached.as_row() == fresh.as_row()
    assert [o.kernel for o in cached.outcomes] == kernels


def test_lab_failure_surfaces_as_lab_error():
    """A spec the simulator rejects becomes a structured LabError."""
    from repro.lab import LabError
    from repro.harness.runner import make_config

    bad = RunSpec("ht", make_config("gto"),
                  {"n_threads": 100, "block_dim": 64})  # not a multiple
    runner = Runner(workers=1)
    with pytest.raises(LabError, match="ValueError"):
        runner.run_map([bad])
    # run_many keeps the structured record instead of raising.
    (failure,) = runner.run_many([bad]).results
    assert not failure.ok and failure.attempts == 1
