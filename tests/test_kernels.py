"""Workload kernels: build, execute, validate — plus validator strength."""

import numpy as np
import pytest

from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import (
    SYNC_FREE_KERNELS,
    SYNC_KERNELS,
    WorkloadError,
    build,
    kernel_names,
)

TINY = {
    "ht": dict(n_threads=128, n_buckets=8, items_per_thread=1,
               block_dim=64),
    "atm": dict(n_threads=128, n_accounts=32, rounds=1, block_dim=64),
    "tsp": dict(n_threads=64, eval_iters=8, block_dim=32),
    "ds": dict(n_threads=128, n_particles=32, constraints_per_thread=1,
               block_dim=64),
    "nw1": dict(n_threads=128, n_cols=32, cell_work=4, block_dim=64),
    "nw2": dict(n_threads=128, n_cols=32, cell_work=4, block_dim=64),
    "tb": dict(n_threads=128, n_cells=8, items_per_thread=1,
               block_dim=64),
    "st": dict(n_threads=64, n_cells=128, cell_work=4, block_dim=32),
    "kmeans": dict(n_threads=64, per_thread=4, block_dim=32),
    "ms": dict(n_threads=64, iterations=8, stride=256, block_dim=32),
    "hl": dict(n_threads=64, iterations=8, stride=512, block_dim=32),
    "vecadd": dict(n_threads=64, per_thread=4, block_dim=32),
    "reduction": dict(n_threads=64, block_dim=32),
    "stencil": dict(n_threads=64, per_thread=4, block_dim=32),
    "histogram": dict(n_threads=64, per_thread=4, block_dim=32),
}


def config():
    return make_config("gto", num_sms=1, max_warps_per_sm=8,
                       max_cycles=5_000_000)


@pytest.mark.parametrize("name", sorted(TINY))
def test_kernel_runs_and_validates(name):
    workload = build(name, **TINY[name])
    result = simulate(workload, config=config())
    assert result.cycles > 0
    assert result.stats.warp_instructions > 0


def test_registry_contents():
    names = kernel_names()
    for name in SYNC_KERNELS + SYNC_FREE_KERNELS:
        assert name in names
    assert "ht_backoff" in names


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError, match="unknown kernel"):
        build("nope")


@pytest.mark.parametrize("name", sorted(SYNC_KERNELS))
def test_sync_kernels_have_true_sibs(name):
    workload = build(name, **TINY[name])
    assert workload.launch.program.true_sibs()


@pytest.mark.parametrize("name", sorted(SYNC_FREE_KERNELS))
def test_sync_free_kernels_have_no_sibs(name):
    workload = build(name, **TINY[name])
    assert not workload.launch.program.true_sibs()


@pytest.mark.parametrize("name", sorted(SYNC_KERNELS))
def test_sync_kernels_record_lock_or_wait_activity(name):
    workload = build(name, **TINY[name])
    result = simulate(workload, config=config())
    assert result.stats.locks.total > 0, name


def test_ht_meta():
    workload = build("ht", **TINY["ht"])
    assert workload.meta["n_items"] == 128
    assert workload.n_threads == 128


def test_ht_backoff_variant_runs():
    workload = build("ht_backoff", delay_factor=50, **TINY["ht"])
    result = simulate(workload, config=config())
    assert result.cycles > 0


def test_ht_validator_catches_lost_insertion():
    workload = build("ht", **TINY["ht"])
    result = simulate(workload, config=config(), validate=False)
    heads = workload.launch.params["heads"]
    # Sever one bucket chain: the validator must notice lost nodes.
    head_words = workload.memory.load_array(heads, TINY["ht"]["n_buckets"])
    victim = int(np.argmax(head_words != 0))
    workload.memory.write_word(heads + 4 * victim, 0)
    with pytest.raises(WorkloadError, match="lost insertions"):
        workload.validate(workload.memory)


def test_atm_validator_catches_lost_update():
    workload = build("atm", **TINY["atm"])
    simulate(workload, config=config(), validate=False)
    accounts = workload.launch.params["accounts"]
    value = workload.memory.read_word(accounts)
    workload.memory.write_word(accounts, value + 1)
    with pytest.raises(WorkloadError, match="not conserved"):
        workload.validate(workload.memory)


def test_tsp_validator_catches_wrong_best():
    workload = build("tsp", **TINY["tsp"])
    simulate(workload, config=config(), validate=False)
    best = workload.launch.params["best_addr"]
    workload.memory.write_word(best, -123)
    with pytest.raises(WorkloadError, match="not the minimum"):
        workload.validate(workload.memory)


def test_nw_validator_catches_dependency_violation():
    workload = build("nw1", **TINY["nw1"])
    simulate(workload, config=config(), validate=False)
    grid = workload.launch.params["grid"]
    width = TINY["nw1"]["n_cols"] + 2
    # Corrupt a computed cell: storage row 1 (first real row), col 5.
    workload.memory.write_word(grid + 4 * (width + 6), 999999)
    with pytest.raises(WorkloadError, match="wavefront cells wrong"):
        workload.validate(workload.memory)


def test_st_validator_catches_premature_run():
    workload = build("st", **TINY["st"])
    simulate(workload, config=config(), validate=False)
    sortd = workload.launch.params["sortd"]
    workload.memory.write_word(sortd + 4, -5)
    with pytest.raises(WorkloadError, match="ran before its parent"):
        workload.validate(workload.memory)


def test_tb_validator_catches_duplicate_ticket():
    workload = build("tb", **TINY["tb"])
    simulate(workload, config=config(), validate=False)
    slots = workload.launch.params["slots"]
    first = workload.memory.read_word(slots)
    workload.memory.write_word(slots + 4, first)  # duplicate an entry
    with pytest.raises(WorkloadError):
        workload.validate(workload.memory)


def test_ds_validator_catches_double_apply():
    workload = build("ds", **TINY["ds"])
    simulate(workload, config=config(), validate=False)
    positions = workload.launch.params["positions"]
    value = workload.memory.read_word(positions)
    workload.memory.write_word(positions, value - 7)
    with pytest.raises(WorkloadError):
        workload.validate(workload.memory)


def test_nw_rejects_bad_geometry():
    from repro.kernels.nw import build_nw

    with pytest.raises(ValueError):
        build("nw1", n_threads=100, n_cols=32)
    with pytest.raises(ValueError):
        build("nw1", n_threads=128, n_cols=33)
    with pytest.raises(ValueError):
        build_nw(direction=3)


def test_grid_geometry_validation():
    with pytest.raises(ValueError, match="multiple of block_dim"):
        build("ht", n_threads=100, block_dim=64)


def test_workloads_are_single_use():
    """Running mutates memory; a fresh build starts clean."""
    first = build("ht", **TINY["ht"])
    simulate(first, config=config())
    second = build("ht", **TINY["ht"])
    heads = second.launch.params["heads"]
    assert (second.memory.load_array(
        heads, TINY["ht"]["n_buckets"]) == 0).all()
