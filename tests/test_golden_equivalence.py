"""Golden determinism: the fast engine is bitwise-identical to the seed.

The fast engine (pre-decoded instructions, ready-event heap, hoisted
tracer/stats branches — see :mod:`repro.sim.sm`) is a pure performance
transformation: for every workload and configuration it must visit the
same cycles, issue the same instructions, and land on the same final
state as the reference engine it replaced.  These tests run each
configuration once per engine and diff the **full**
``SimStats.summary()`` dict — cycles, instruction counts, SIMD
efficiency, lock outcomes, memory transactions, energy — plus the
validated memory image (``validate=True``).

The matrix deliberately crosses the features whose interaction the fast
engine had to re-derive: all three base schedulers, fixed and adaptive
BOWS back-off, DDOS on/off, schedule perturbation (seeded RNG draw
order is part of the contract), and both sync and sync-free kernels.
"""

from __future__ import annotations

import pytest

from repro.api import simulate
from repro.sim.config import GPUConfig, PerturbConfig

#: Small-but-representative workload shapes (a run stays well under a
#: second so the whole matrix fits in the tier-1 budget).
PARAMS = {
    "ht": dict(n_threads=128, n_buckets=8, items_per_thread=1,
               block_dim=64),
    "nw1": dict(n_threads=128, n_cols=32, cell_work=4, block_dim=64),
    "atm": dict(n_threads=128, n_accounts=16, rounds=1, block_dim=64),
    "reduction": dict(n_threads=128, block_dim=64),
}

CONFIGS = [
    pytest.param("ht", {"scheduler": "gto"}, id="ht-gto"),
    pytest.param("ht", {"scheduler": "lrr"}, id="ht-lrr"),
    pytest.param("ht", {"scheduler": "cawa"}, id="ht-cawa"),
    pytest.param("ht", {"scheduler": "gto", "bows": "adaptive"},
                 id="ht-bows-adaptive"),
    pytest.param("ht", {"scheduler": "gto", "bows": 1000},
                 id="ht-bows-fixed"),
    pytest.param("ht", {"scheduler": "gto", "ddos": False},
                 id="ht-static-sibs"),
    pytest.param("nw1", {"scheduler": "gto"}, id="nw1-gto"),
    pytest.param("nw1", {"scheduler": "gto", "bows": "adaptive"},
                 id="nw1-bows-adaptive"),
    pytest.param("atm", {"scheduler": "gto"}, id="atm-gto"),
    pytest.param("atm", {"scheduler": "gto", "bows": "adaptive"},
                 id="atm-bows-adaptive"),
    pytest.param("reduction", {"scheduler": "gto"}, id="reduction-gto"),
]


def _run(kernel: str, config: GPUConfig, engine: str):
    return simulate(kernel, config=config, params=PARAMS[kernel],
                    engine=engine)


@pytest.mark.parametrize("kernel, preset_kwargs", CONFIGS)
def test_engines_bitwise_identical(kernel, preset_kwargs):
    config = GPUConfig.preset("fermi", **preset_kwargs)
    reference = _run(kernel, config, "reference")
    fast = _run(kernel, config, "fast")
    assert fast.stats.summary() == reference.stats.summary()
    assert fast.cycles == reference.cycles
    assert sorted(fast.predicted_sibs()) == sorted(
        reference.predicted_sibs())


def test_engines_identical_under_perturbation():
    """Seeded schedule perturbation draws its RNG in the same order on
    both engines — any divergence in draw order shows up as different
    cycle counts immediately."""
    for seed in (0, 7):
        config = GPUConfig.preset("fermi", scheduler="gto").replace(
            perturb=PerturbConfig(seed=seed, sched_jitter=0.2,
                                  mem_jitter_cycles=8,
                                  rotation_period=101),
        )
        reference = _run("ht", config, "reference")
        fast = _run("ht", config, "fast")
        assert fast.stats.summary() == reference.stats.summary(), seed


def test_engines_identical_on_pascal_preset():
    config = GPUConfig.preset("pascal", scheduler="gto", bows="adaptive")
    reference = _run("ht", config, "reference")
    fast = _run("ht", config, "fast")
    assert fast.stats.summary() == reference.stats.summary()


def _begin(kernel: str, config: GPUConfig, engine: str,
           obs=None, sanitize=None):
    """A live mid-runnable Simulation over a fresh workload build."""
    from repro.kernels import build as build_workload
    from repro.sim.gpu import GPU

    workload = build_workload(kernel, **PARAMS[kernel])
    gpu = GPU(config, memory=workload.memory, engine=engine, obs=obs,
              sanitizer=sanitize)
    return workload, gpu.begin(workload.launch)


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("kernel, preset_kwargs", CONFIGS)
def test_checkpoint_resume_is_bitwise_identical(kernel, preset_kwargs,
                                                engine):
    """Checkpoint/resume is invisible to the golden contract: for every
    configuration in the matrix, stopping mid-run, serializing the
    complete machine state through bytes, and resuming in a fresh object
    graph lands on the same cycles, the same full stats summary, and a
    validating memory image as the uninterrupted run — with and without
    observability and the sanitizer attached."""
    from repro.sim.checkpoint import checkpoint_bytes_roundtrip

    config = GPUConfig.preset("fermi", **preset_kwargs)
    baseline = _run(kernel, config, engine)
    mid = max(1, baseline.cycles // 2)
    for mode in ("plain", "obs", "sanitize"):
        workload, sim = _begin(
            kernel, config, engine,
            obs=True if mode == "obs" else None,
            sanitize=True if mode == "sanitize" else None,
        )
        sim.run_until(mid)
        assert not sim.finished, mode
        restored = checkpoint_bytes_roundtrip(sim)
        assert restored is not sim
        result = restored.run()
        assert result.stats.summary() == baseline.stats.summary(), mode
        assert result.cycles == baseline.cycles, mode
        workload.validate(result.memory)


@pytest.mark.parametrize("kernel", ["ht", "nw1"])
def test_sanitizer_is_invisible_to_the_golden_contract(kernel):
    """The dynamic sanitizer is a pure observer: with it on, both
    engines still match each other *and* the sanitizer-off baseline
    bitwise (same cycles, same full stats summary)."""
    config = GPUConfig.preset("fermi", scheduler="gto")
    baseline = _run(kernel, config, "fast")
    for engine in ("fast", "reference"):
        sanitized = simulate(kernel, config=config, params=PARAMS[kernel],
                             engine=engine, sanitize=True)
        assert sanitized.stats.summary() == baseline.stats.summary()
        assert sanitized.cycles == baseline.cycles
        assert sanitized.sanitizer.ok, sanitized.sanitizer.render()
