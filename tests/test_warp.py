"""Warp state container: masks, special registers, exec masks."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.sim.warp import Warp

PROGRAM = assemble(
    """
    setp.lt %p1, %tid, 8
    @%p1 mov %r1, 1
    @!%p1 mov %r1, 2
    exit
    """
)


def make_warp(cta_dim=64, warp_in_cta=0, cta_id=0, grid_dim=2):
    return Warp(
        program=PROGRAM, warp_slot=3, sm_id=1, cta_id=cta_id,
        warp_in_cta=warp_in_cta, cta_dim=cta_dim, grid_dim=grid_dim,
        warp_size=32, age=7,
    )


def test_special_register_values():
    warp = make_warp(cta_id=1, warp_in_cta=1)
    assert warp.sregs["tid"].tolist() == list(range(32, 64))
    assert (warp.sregs["ctaid"] == 1).all()
    assert (warp.sregs["ntid"] == 64).all()
    assert (warp.sregs["nctaid"] == 2).all()
    assert warp.sregs["laneid"].tolist() == list(range(32))
    assert warp.sregs["gtid"].tolist() == list(range(96, 128))


def test_partial_warp_mask():
    warp = make_warp(cta_dim=40, warp_in_cta=1)
    # Threads 32..39 valid; lanes 8..31 dead from the start.
    assert int(warp.stack.active_mask.sum()) == 8


def test_exec_mask_unguarded():
    warp = make_warp()
    instr = PROGRAM[0]
    assert (warp.exec_mask(instr) == warp.stack.active_mask).all()


def test_exec_mask_guarded():
    warp = make_warp()
    warp.regs.write_pred(
        "p1", np.arange(32) < 8, np.ones(32, dtype=bool)
    )
    positive = warp.exec_mask(PROGRAM[1])
    negative = warp.exec_mask(PROGRAM[2])
    assert int(positive.sum()) == 8
    assert int(negative.sum()) == 24
    assert not np.logical_and(positive, negative).any()


def test_profiled_lane_tracks_exits():
    warp = make_warp()
    assert warp.profiled_lane == 0
    mask = np.zeros(32, dtype=bool)
    mask[:4] = True
    warp.stack.exit_lanes(mask)
    warp.refresh_profiled_lane()
    assert warp.profiled_lane == 4


def test_profiled_lane_stable_if_still_live():
    warp = make_warp()
    mask = np.zeros(32, dtype=bool)
    mask[10:20] = True
    warp.stack.exit_lanes(mask)
    warp.refresh_profiled_lane()
    assert warp.profiled_lane == 0


def test_finished_after_all_exit():
    warp = make_warp()
    warp.stack.exit_lanes(np.ones(32, dtype=bool))
    assert warp.finished
    warp.refresh_profiled_lane()
    assert warp.profiled_lane == -1


def test_initial_scheduling_state():
    warp = make_warp()
    assert not warp.backed_off
    assert warp.pending_delay_until == 0
    assert not warp.at_barrier
    assert warp.age == 7


def test_repr():
    warp = make_warp()
    assert "slot=3" in repr(warp)
