"""Observability end to end: zero-interference, engine parity, lab, hangs.

The contract the whole subsystem stands on: collection **observes**
the simulation and never participates in it.  Statistics must be
bitwise-identical with obs off and on, and the reference and fast
engines must emit the *same event stream* — the emission sites sit on
shared decision code, so any divergence is an engine bug, not noise.
"""

from __future__ import annotations

import json

import pytest

from repro.api import simulate
from repro.isa import assemble
from repro.lab import ResultCache, Runner, RunSpec
from repro.memory.memsys import GlobalMemory
from repro.obs import EVENT_KINDS, ObsConfig, Observability, as_observability
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, KernelLaunch
from repro.sim.progress import HangReport, SimulationLivelock

HT = dict(n_threads=128, n_buckets=8, items_per_thread=1, block_dim=64)


def run_ht(engine="fast", obs=True, bows="adaptive"):
    config = GPUConfig.preset("fermi", scheduler="gto", bows=bows)
    return simulate("ht", config=config, params=dict(HT), engine=engine,
                    obs=obs)


# ----------------------------------------------------------------------
# Zero interference + engine parity


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_collection_never_changes_the_simulation(engine):
    off = run_ht(engine=engine, obs=None)
    on = run_ht(engine=engine, obs=True)
    assert on.stats.summary() == off.stats.summary()
    assert on.cycles == off.cycles
    assert off.obs is None and on.obs is not None


def test_engines_emit_identical_event_streams():
    reference = run_ht(engine="reference")
    fast = run_ht(engine="fast")
    assert fast.stats.summary() == reference.stats.summary()
    ref_events = reference.obs.events()
    fast_events = fast.obs.events()
    assert ref_events, "a BOWS+DDOS ht run must emit events"
    assert fast_events == ref_events
    assert fast.obs.event_counts() == reference.obs.event_counts()


def test_engines_emit_identical_barrier_events():
    params = dict(n_threads=128, block_dim=64)
    runs = {
        engine: simulate("reduction", params=dict(params), engine=engine,
                         obs=True)
        for engine in ("reference", "fast")
    }
    assert runs["fast"].obs.events() == runs["reference"].obs.events()
    assert runs["fast"].obs.event_counts().get("barrier_release", 0) > 0


def test_a_contended_run_exercises_the_lock_and_bows_taxonomy():
    result = run_ht()
    counts = result.obs.event_counts()
    for kind in ("sib_detected", "backoff_enter", "backoff_exit",
                 "adaptive_delay_update", "lock_acquire_success",
                 "lock_acquire_fail"):
        assert counts.get(kind, 0) > 0, kind
    assert set(counts) <= set(EVENT_KINDS)
    # backoff episodes are balanced: every exit had an enter.
    assert counts["backoff_exit"] <= counts["backoff_enter"]


def test_a_barrier_kernel_emits_barrier_episodes():
    result = simulate("reduction", params=dict(n_threads=128, block_dim=64),
                      obs=True)
    counts = result.obs.event_counts()
    assert counts.get("barrier_arrive", 0) > 0
    assert counts.get("barrier_release", 0) > 0
    # Every release frees at least one warp; arrivals cover releases.
    releases = result.obs.events("barrier_release")
    assert all(e.released >= 1 for e in releases)
    assert counts["barrier_arrive"] >= counts["barrier_release"]


def test_obs_coercion_contract():
    assert as_observability(None) is None
    assert as_observability(False) is None
    obs = as_observability(True)
    assert isinstance(obs, Observability)
    assert as_observability(obs) is obs
    tuned = as_observability(ObsConfig(sample_interval=0))
    assert tuned.config.sample_interval == 0
    with pytest.raises(TypeError):
        as_observability("yes")


def test_events_only_config_skips_the_sampler():
    result = run_ht(obs=ObsConfig(sample_interval=0))
    assert result.obs.series is None
    assert result.obs.events()
    payload = result.obs.to_dict()
    assert "series" not in payload and "events" in payload


# ----------------------------------------------------------------------
# Hang forensics: decision events land in the report tail

LEAKED_LOCK = """
    ld.param %r_m, [mutex]
SPIN:
    atom.cas %r_old, [%r_m], 0, 1 !lock_try !sync
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN
    exit
"""


def test_hang_report_embeds_last_decision_events(tiny_config):
    config = tiny_config.replace(max_cycles=300_000,
                                 no_progress_window=4_000,
                                 progress_epoch=1_000)
    memory = GlobalMemory(1 << 12)
    mutex = memory.alloc(1)
    program = assemble(LEAKED_LOCK, name="leaked_lock")
    gpu = GPU(config, memory=memory, obs=True)
    with pytest.raises(SimulationLivelock) as excinfo:
        gpu.launch(KernelLaunch(program, 4, 1, {"mutex": mutex}))
    report = excinfo.value.report
    assert report.events_tail, "hang report must carry the event tail"
    assert any("lock_acquire_fail" in line for line in report.events_tail)
    assert "last scheduler/sync decisions:" in report.describe()
    # The guard's own suspicion is on the bus too.
    assert any(e.hang_kind == "livelock"
               for e in gpu.obs.events("hang_suspected"))
    # The tail survives the report's JSON round trip.
    rebuilt = HangReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.events_tail == report.events_tail


def test_hang_report_without_bus_has_empty_tail(tiny_config):
    config = tiny_config.replace(max_cycles=300_000,
                                 no_progress_window=4_000,
                                 progress_epoch=1_000)
    memory = GlobalMemory(1 << 12)
    mutex = memory.alloc(1)
    program = assemble(LEAKED_LOCK, name="leaked_lock")
    gpu = GPU(config, memory=memory)
    with pytest.raises(SimulationLivelock) as excinfo:
        gpu.launch(KernelLaunch(program, 4, 1, {"mutex": mutex}))
    report = excinfo.value.report
    assert report.events_tail == []
    assert "last scheduler/sync decisions:" not in report.describe()


# ----------------------------------------------------------------------
# Lab integration: hashing, cache round trip, manifests

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)


def make_spec(obs=None):
    config = GPUConfig.preset("fermi", scheduler="gto")
    return RunSpec("vecadd", config, dict(VECADD), obs=obs)


def test_spec_hash_unchanged_when_obs_is_none():
    plain = make_spec()
    assert "obs" not in plain.to_dict()
    assert plain.content_hash() == make_spec().content_hash()
    collected = make_spec(obs=ObsConfig())
    assert collected.content_hash() != plain.content_hash()
    # Different collection settings are different cache entries.
    assert collected.content_hash() != make_spec(
        obs=ObsConfig(sample_interval=500)).content_hash()


def test_spec_obs_survives_dict_round_trip():
    spec = make_spec(obs=ObsConfig(sample_interval=250))
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt.obs == spec.obs
    assert rebuilt.content_hash() == spec.content_hash()
    assert RunSpec.from_dict(make_spec().to_dict()).obs is None


def test_runner_collects_obs_payload_and_caches_it(tmp_path):
    spec = make_spec(obs=ObsConfig(sample_interval=200))
    runner = Runner(workers=1, cache=ResultCache(tmp_path / "c"))
    result = runner.run_one(spec)
    assert result.obs is not None
    assert result.obs["config"]["sample_interval"] == 200
    assert result.obs["series"]["rows"]
    log = result.obs["events"]["log"]
    assert len(log) <= 2_000
    assert result.obs["events"]["total"] >= len(log)
    cached = runner.run_one(spec)
    assert cached.from_cache
    assert cached.obs == result.obs

    plain = runner.run_one(make_spec())
    assert plain.obs is None
    assert plain.stats.summary() == result.stats.summary()


def test_manifest_summarizes_obs(tmp_path):
    spec = make_spec(obs=ObsConfig(sample_interval=200))
    report = Runner(workers=1).run_many([spec, make_spec()])
    manifest = report.manifest()
    with_obs = [row for row in manifest["runs"] if "obs" in row]
    assert len(with_obs) == 1
    summary = with_obs[0]["obs"]
    assert summary["event_total"] >= 0
    assert summary["series_rows"] > 0
    json.dumps(manifest)  # manifests must stay JSON-clean
