"""DDOS unit behaviour: hashing, history FSM, SIB-PT (paper Figure 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ddos import DDOSEngine, hash_modulo, hash_xor
from repro.isa import assemble
from repro.sim.config import DDOSConfig

# ------------------------------------------------------------- hashing


def test_hash_modulo_keeps_low_bits():
    assert hash_modulo(0x1234, 8) == 0x34
    assert hash_modulo(0x1234, 4) == 0x4


def test_hash_modulo_blind_to_high_bits():
    """The MS/HL failure mode: +256 strides look constant at k=8."""
    assert hash_modulo(0x100, 8) == hash_modulo(0x200, 8) == 0


def test_hash_xor_sees_high_bits():
    assert hash_xor(0x100, 8) != hash_xor(0x200, 8)


def test_hash_xor_folds():
    assert hash_xor(0x12345678, 8) == 0x12 ^ 0x34 ^ 0x56 ^ 0x78


@given(st.integers(0, 2**32 - 1), st.sampled_from([2, 3, 4, 8]))
def test_hashes_stay_in_range(value, bits):
    assert 0 <= hash_xor(value, bits) < (1 << bits)
    assert 0 <= hash_modulo(value, bits) < (1 << bits)


@given(st.integers(0, 2**32 - 1))
def test_hashes_deterministic(value):
    assert hash_xor(value, 8) == hash_xor(value, 8)
    assert hash_modulo(value, 8) == hash_modulo(value, 8)


# ------------------------------------------------------ history FSM

SPIN_PROGRAM = assemble(
    """
SPIN:
    atom.cas %r1, [%r2], 0, 1
    setp.eq %p1, %r1, 0
    @%p1 bra OUT
    setp.eq %p2, %r3, 0
    @%p2 bra SPIN !sib
OUT:
    exit
    """
)


def engine(**overrides) -> DDOSEngine:
    config = DDOSConfig(**overrides)
    return DDOSEngine(config, SPIN_PROGRAM, n_warp_slots=4)


def setp_a():
    return SPIN_PROGRAM[1]


def setp_b():
    return SPIN_PROGRAM[3]


def sib():
    return SPIN_PROGRAM[4]


def test_period2_spin_detected_after_four_events():
    """Figure 7b: two setps per iteration -> spinning at the 4th event."""
    ddos = engine()
    ddos.on_setp(0, setp_a(), 1, 0, now=0)    # iteration 1
    ddos.on_setp(0, setp_b(), 0, 0, now=1)
    assert not ddos.warp_spinning(0)
    ddos.on_setp(0, setp_a(), 1, 0, now=2)    # iteration 2 - match found
    assert not ddos.warp_spinning(0)
    ddos.on_setp(0, setp_b(), 0, 0, now=3)    # remaining matches -> 0
    assert ddos.warp_spinning(0)


def test_spinning_lost_on_value_change():
    """Figure 7b step 5: acquiring the lock changes a setp source."""
    ddos = engine()
    for now in range(6):
        instr = setp_a() if now % 2 == 0 else setp_b()
        ddos.on_setp(0, instr, 1 if now % 2 == 0 else 0, 0, now)
    assert ddos.warp_spinning(0)
    ddos.on_setp(0, setp_a(), 0, 0, now=6)  # lock acquired: value flips
    assert not ddos.warp_spinning(0)


def test_normal_loop_never_flagged():
    """Figure 7c/d: a changing induction value never repeats."""
    ddos = engine()
    for i in range(20):
        ddos.on_setp(0, setp_a(), i, 100, now=i)
    assert not ddos.warp_spinning(0)


def test_period1_spin():
    """Single-setp spin loop (while(CAS)) detected at the 3rd event."""
    ddos = engine()
    ddos.on_setp(0, setp_a(), 1, 0, now=0)
    ddos.on_setp(0, setp_a(), 1, 0, now=1)
    ddos.on_setp(0, setp_a(), 1, 0, now=2)
    assert ddos.warp_spinning(0)


def test_histories_are_per_warp():
    ddos = engine()
    for now in range(4):
        ddos.on_setp(0, setp_a() if now % 2 == 0 else setp_b(),
                     1 if now % 2 == 0 else 0, 0, now)
    assert ddos.warp_spinning(0)
    assert not ddos.warp_spinning(1)


def test_short_history_cannot_lock_long_period():
    """Table I: l too small -> the repeating pattern never fits."""
    ddos = engine(history_length=1)
    for now in range(12):
        ddos.on_setp(0, setp_a() if now % 2 == 0 else setp_b(),
                     1 if now % 2 == 0 else 0, 0, now)
    assert not ddos.warp_spinning(0)


# --------------------------------------------------------------- SIB-PT


def make_spinning(ddos, slot=0):
    for now in range(4):
        ddos.on_setp(slot, setp_a() if now % 2 == 0 else setp_b(),
                     1 if now % 2 == 0 else 0, 0, now)
    assert ddos.warp_spinning(slot)


def test_confidence_accumulates_to_threshold():
    ddos = engine(confidence_threshold=4)
    make_spinning(ddos)
    for i in range(3):
        ddos.on_backward_branch(0, sib(), taken_any=True, now=10 + i)
        assert not ddos.is_sib(sib().index)
    ddos.on_backward_branch(0, sib(), taken_any=True, now=20)
    assert ddos.is_sib(sib().index)
    assert sib().index in ddos.predicted_sibs()


def test_confidence_decrements_for_non_spinning_takers():
    ddos = engine(confidence_threshold=4)
    make_spinning(ddos)
    for i in range(4):
        ddos.on_backward_branch(0, sib(), taken_any=True, now=10 + i)
    assert ddos.is_sib(sib().index)
    # A non-spinning warp (slot 1) repeatedly takes the branch:
    # aliasing guard drains the confidence below threshold.
    for i in range(2):
        ddos.on_backward_branch(1, sib(), taken_any=True, now=30 + i)
    assert not ddos.is_sib(sib().index)


def test_not_taken_by_non_spinner_keeps_confidence():
    ddos = engine(confidence_threshold=2)
    make_spinning(ddos)
    ddos.on_backward_branch(0, sib(), taken_any=True, now=10)
    ddos.on_backward_branch(0, sib(), taken_any=True, now=11)
    assert ddos.is_sib(sib().index)
    ddos.on_backward_branch(1, sib(), taken_any=False, now=12)
    assert ddos.is_sib(sib().index)


def test_sib_pt_capacity_eviction():
    program_lines = []
    for i in range(20):
        program_lines.append(f"L{i}:")
        program_lines.append("    nop")
    program_lines.append("    setp.eq %p1, %r1, 0")
    for i in range(20):
        program_lines.append(f"    @%p1 bra L{i}")
    program_lines.append("    exit")
    big_program = assemble("\n".join(program_lines))
    config = DDOSConfig(sib_pt_entries=4)
    ddos = DDOSEngine(config, big_program, n_warp_slots=2)
    # Force the warp into the spinning state on its history registers.
    setp = next(i for i in big_program.instructions if i.is_setp)
    for now in range(4):
        ddos.on_setp(0, setp, 1, 0, now)
    branches = [i for i in big_program.instructions if i.is_backward_branch]
    for i, branch in enumerate(branches[:6]):
        ddos.on_backward_branch(0, branch, taken_any=True, now=100 + i)
    assert len(ddos.sib_pt) <= 4


def test_detection_records_track_first_and_last_seen():
    ddos = engine()
    make_spinning(ddos)
    ddos.on_backward_branch(0, sib(), taken_any=True, now=50)
    ddos.on_backward_branch(0, sib(), taken_any=True, now=90)
    record = ddos.detection_records()[sib().index]
    assert record.first_seen == 50
    assert record.last_seen == 90


# ---------------------------------------------------------- time sharing


def test_time_sharing_profiles_one_warp_at_a_time():
    ddos = engine(time_sharing=True, time_sharing_epoch=1000)
    # Warp 0 owns the registers during the first epoch.
    for now in range(4):
        ddos.on_setp(0, setp_a() if now % 2 == 0 else setp_b(),
                     1 if now % 2 == 0 else 0, 0, now)
    assert ddos.warp_spinning(0)
    # Warp 1's events during warp 0's epoch are ignored.
    ddos.on_setp(1, setp_a(), 1, 0, now=10)
    assert not ddos.warp_spinning(1)


def test_time_sharing_rotates_and_resets():
    ddos = engine(time_sharing=True, time_sharing_epoch=100)
    for now in range(4):
        ddos.on_setp(0, setp_a() if now % 2 == 0 else setp_b(),
                     1 if now % 2 == 0 else 0, 0, now)
    assert ddos.warp_spinning(0)
    # Epoch rolls over: ownership moves to warp 1, history cleared.
    ddos.on_setp(1, setp_a(), 1, 0, now=150)
    assert not ddos.warp_spinning(0)
    assert not ddos.warp_spinning(1)


@given(
    values=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 255)),
        min_size=1, max_size=60,
    )
)
def test_fsm_never_crashes_on_arbitrary_streams(values):
    ddos = engine()
    setps = [setp_a(), setp_b()]
    for i, (which, value) in enumerate(values):
        ddos.on_setp(which % 2, setps[which % 2], value, value // 2, i)
        if value % 5 == 0:
            ddos.on_backward_branch(which % 2, sib(), bool(value % 2), i)
    # Invariant: SIB-PT confidences are never negative.
    for record in ddos.sib_pt.values():
        assert record.confidence >= 0
