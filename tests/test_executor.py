"""Vectorized ALU/compare evaluation against Python references."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Opcode
from repro.sim.executor import eval_alu, eval_cmp

I32 = st.integers(-(2**31), 2**31 - 1)


def lanes(values):
    return np.array(values, dtype=np.int64)


def wrap(x: int) -> int:
    return ((x + 2**31) % 2**32) - 2**31


@given(st.lists(I32, min_size=1, max_size=8), st.lists(I32, min_size=1,
                                                       max_size=8))
def test_add_sub_mul(a_vals, b_vals):
    n = min(len(a_vals), len(b_vals))
    a, b = lanes(a_vals[:n]), lanes(b_vals[:n])
    assert eval_alu(Opcode.ADD, [a, b]).tolist() == [
        wrap(x + y) for x, y in zip(a_vals, b_vals)
    ]
    assert eval_alu(Opcode.SUB, [a, b]).tolist() == [
        wrap(x - y) for x, y in zip(a_vals, b_vals)
    ]
    assert eval_alu(Opcode.MUL, [a, b]).tolist() == [
        wrap(x * y) for x, y in zip(a_vals, b_vals)
    ]


@given(I32, I32, I32)
def test_mad(a, b, c):
    result = eval_alu(Opcode.MAD, [lanes([a]), lanes([b]), lanes([c])])
    assert int(result[0]) == wrap(a * b + c)


@given(I32, st.integers(-(2**20), 2**20).filter(lambda v: v != 0))
def test_div_truncates_toward_zero(a, b):
    result = eval_alu(Opcode.DIV, [lanes([a]), lanes([b])])
    assert int(result[0]) == wrap(int(a / b))


@given(I32, st.integers(-(2**20), 2**20).filter(lambda v: v != 0))
def test_rem_matches_c_semantics(a, b):
    result = eval_alu(Opcode.REM, [lanes([a]), lanes([b])])
    assert int(result[0]) == wrap(a - int(a / b) * b)


def test_div_rem_by_zero_do_not_crash():
    assert int(eval_alu(Opcode.DIV, [lanes([7]), lanes([0])])[0]) == 0
    assert int(eval_alu(Opcode.REM, [lanes([7]), lanes([0])])[0]) == 7


@given(I32, I32)
def test_bitwise(a, b):
    assert int(eval_alu(Opcode.AND, [lanes([a]), lanes([b])])[0]) == wrap(a & b)
    assert int(eval_alu(Opcode.OR, [lanes([a]), lanes([b])])[0]) == wrap(a | b)
    assert int(eval_alu(Opcode.XOR, [lanes([a]), lanes([b])])[0]) == wrap(a ^ b)


@given(I32)
def test_not(a):
    assert int(eval_alu(Opcode.NOT, [lanes([a])])[0]) == wrap(~a)


@given(st.integers(0, 2**31 - 1), st.integers(0, 31))
def test_shifts(a, s):
    assert int(eval_alu(Opcode.SHL, [lanes([a]), lanes([s])])[0]) == wrap(a << s)
    assert int(eval_alu(Opcode.SHR, [lanes([a]), lanes([s])])[0]) == wrap(a >> s)


def test_shift_amount_clamped():
    assert int(eval_alu(Opcode.SHL, [lanes([1]), lanes([40])])[0]) == wrap(1 << 31)


@given(I32, I32)
def test_min_max(a, b):
    assert int(eval_alu(Opcode.MIN, [lanes([a]), lanes([b])])[0]) == min(a, b)
    assert int(eval_alu(Opcode.MAX, [lanes([a]), lanes([b])])[0]) == max(a, b)


def test_mov_passthrough():
    assert eval_alu(Opcode.MOV, [lanes([1, -5])]).tolist() == [1, -5]


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError, match="not an ALU opcode"):
        eval_alu(Opcode.BRA, [lanes([0])])


@given(I32, I32)
def test_compare_operators(a, b):
    av, bv = lanes([a]), lanes([b])
    assert bool(eval_cmp("eq", av, bv)[0]) == (a == b)
    assert bool(eval_cmp("ne", av, bv)[0]) == (a != b)
    assert bool(eval_cmp("lt", av, bv)[0]) == (a < b)
    assert bool(eval_cmp("le", av, bv)[0]) == (a <= b)
    assert bool(eval_cmp("gt", av, bv)[0]) == (a > b)
    assert bool(eval_cmp("ge", av, bv)[0]) == (a >= b)


def test_unknown_comparison_rejected():
    with pytest.raises(ValueError, match="unknown comparison"):
        eval_cmp("zz", lanes([0]), lanes([0]))
