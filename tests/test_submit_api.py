"""The unified submission API: one call shape over both backends.

``submit``/``submit_many`` are the indifference point every tool (CLI,
sweep, bench, fuzz) goes through; these tests pin the handle contract —
``done`` / ``status`` / ``stream()`` / ``outcome()`` / ``result()`` —
on the local backend and its equivalence with the server backend
(server internals get their own workout in ``test_serve.py``).
"""

import os
import shutil
import tempfile

import pytest

from repro.api import (RunFailedError, RunHandle, SubmitBatch, submit,
                       submit_many)
from repro.harness.runner import make_config
from repro.lab.results import RunFailure, RunResult
from repro.lab.runner import BatchReport, Runner
from repro.lab.spec import RunSpec
from repro.obs import ObsConfig
from repro.serve import ServeDaemon

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)


def _spec(obs=None, label=None, kernel="vecadd", params=VECADD):
    return RunSpec(kernel=kernel, config=make_config("gto"), params=params,
                   obs=obs, label=label)


def _runner():
    return Runner(workers=1, mode="serial", cache=None, retries=0)


# ------------------------------------------------------- local backend


def test_local_submit_is_done_immediately():
    handle = submit(_spec(label="eager"), runner=_runner())
    assert isinstance(handle, RunHandle)
    assert handle.backend == "local"
    assert handle.done
    assert handle.status == "completed"
    assert handle.wait(0)
    result = handle.result()
    assert isinstance(result, RunResult)
    assert result.cycles > 0
    assert result.label == "eager"


def test_local_stream_replays_lifecycle_only_without_obs():
    handle = submit(_spec(), runner=_runner())
    records = list(handle.stream())
    assert [r["kind"] for r in records] == ["lifecycle", "lifecycle"]
    assert records[0]["phase"] == "started"
    assert records[-1]["phase"] == "finished"
    assert records[-1]["cycles"] == handle.result().cycles


def test_local_stream_replays_obs_samples():
    handle = submit(_spec(obs=ObsConfig(sample_interval=100)),
                    runner=_runner())
    kinds = [r["kind"] for r in handle.stream()]
    assert kinds[0] == "lifecycle" and kinds[-1] == "lifecycle"
    assert "sample" in kinds
    rows = handle.result().obs["series"]["rows"]
    assert kinds.count("sample") == len(rows)


def test_local_failure_surfaces_as_runfailederror():
    bad = _spec(params=dict(VECADD, per_thread=-1))
    handle = submit(bad, runner=_runner())
    assert handle.done
    outcome = handle.outcome()
    assert isinstance(outcome, RunFailure)
    with pytest.raises(RunFailedError) as excinfo:
        handle.result()
    assert excinfo.value.failure is outcome
    # The failed replay stream says so.
    assert list(handle.stream())[-1]["phase"] == "failed"


def test_submit_many_local_preserves_order_and_report():
    specs = [_spec(label=f"s{i}",
                   params=dict(VECADD, per_thread=2 + i))
             for i in range(3)]
    batch = submit_many(specs, runner=_runner())
    assert isinstance(batch, SubmitBatch)
    assert len(batch) == 3
    assert isinstance(batch.report, BatchReport)
    results = batch.results()
    assert [r.label for r in results] == ["s0", "s1", "s2"]
    hashes = [h.spec.content_hash() for h in batch]
    assert [r.spec_hash for r in results] == hashes


# -------------------------------------------------------- validation


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        submit(_spec(), backend="cloud")


def test_server_backend_requires_server():
    with pytest.raises(ValueError, match="server="):
        submit(_spec(), backend="server")


# ------------------------------------------------------ server parity


@pytest.fixture()
def daemon():
    tmp = tempfile.mkdtemp(prefix="repro-submit-test-")
    d = ServeDaemon(os.path.join(tmp, "serve.sock"),
                    workers=1, mode="thread",
                    cache=os.path.join(tmp, "cache"))
    d.start()
    yield d
    d.close()
    shutil.rmtree(tmp, ignore_errors=True)


def test_server_backend_matches_local(daemon):
    spec = _spec(obs=ObsConfig(sample_interval=100), label="parity")
    local = submit(spec, runner=_runner()).result()
    handle = submit(spec, backend="server", server=daemon.address)
    kinds = [r["kind"] for r in handle.stream()]
    served = handle.result(timeout=120)
    assert "sample" in kinds
    a, b = served.to_dict(), local.to_dict()
    for volatile in ("elapsed_s", "phases"):
        a.pop(volatile), b.pop(volatile)
    assert a == b


def test_submit_many_server_reports_like_local(daemon):
    specs = [_spec(label=f"b{i}", params=dict(VECADD, per_thread=2 + i))
             for i in range(2)]
    batch = submit_many(specs, backend="server", server=daemon.address)
    report = batch.report
    assert isinstance(report, BatchReport)
    assert report.failures == []
    assert [r.label for r in report.results] == ["b0", "b1"]
