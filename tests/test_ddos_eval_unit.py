"""Unit tests for the DDOS accuracy-scoring layer (Table I metrics)."""

import pytest

from repro.harness.ddos_eval import (
    AccuracySummary,
    DetectionOutcome,
    summarize,
)


def outcome(**kwargs) -> DetectionOutcome:
    defaults = dict(kernel="k", true_sibs=0, detected_true=0,
                    false_candidates=0, detected_false=0)
    defaults.update(kwargs)
    return DetectionOutcome(**defaults)


def test_tsdr_undefined_without_true_sibs():
    assert outcome().tsdr is None
    assert outcome(true_sibs=2, detected_true=1).tsdr == 0.5


def test_fsdr_undefined_without_candidates():
    assert outcome().fsdr is None
    assert outcome(false_candidates=4, detected_false=1).fsdr == 0.25


def test_summarize_averages_over_defined_kernels():
    summary = summarize([
        outcome(kernel="a", true_sibs=1, detected_true=1),
        outcome(kernel="b", true_sibs=2, detected_true=1),
        outcome(kernel="c", false_candidates=2, detected_false=0),
    ])
    # TSDR averaged over kernels that have true SIBs: (1.0 + 0.5) / 2.
    assert summary.avg_tsdr == pytest.approx(0.75)
    assert summary.avg_fsdr == 0.0
    assert len(summary.outcomes) == 3


def test_summarize_pools_dprs():
    a = outcome(kernel="a", true_sibs=1, detected_true=1)
    a.true_dprs = [0.1, 0.3]
    b = outcome(kernel="b", true_sibs=1, detected_true=1)
    b.true_dprs = [0.2]
    summary = summarize([a, b])
    assert summary.avg_true_dpr == pytest.approx(0.2)


def test_summary_row_rounding():
    summary = AccuracySummary(
        avg_tsdr=1.0, avg_true_dpr=0.04111, avg_fsdr=0.0161,
        avg_false_dpr=0.0, outcomes=[],
    )
    row = summary.as_row()
    assert row["TSDR"] == 1.0
    assert row["DPR(true)"] == 0.041
    assert row["FSDR"] == 0.016


def test_empty_summary_is_zeroes():
    summary = summarize([])
    assert summary.avg_tsdr == 0.0
    assert summary.avg_fsdr == 0.0
