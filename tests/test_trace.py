"""Execution tracer: capture, filtering, ring-buffer behaviour."""

from repro.isa import assemble
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import GPU, KernelLaunch
from repro.sim.trace import TraceRecord, Tracer

SOURCE = """
    mov %r_i, 0
LOOP:
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, 4
    @%p1 bra LOOP
    exit
"""


def run_traced(tracer, config):
    program = assemble(SOURCE)
    gpu = GPU(config, memory=GlobalMemory(1 << 12), tracer=tracer)
    gpu.launch(KernelLaunch(program, 1, 32))
    return gpu


def test_tracer_records_every_issue(tiny_config):
    tracer = Tracer()
    run_traced(tracer, tiny_config)
    records = tracer.records()
    # 1 mov + 4 x (add, setp, bra) + exit = 14 issues.
    assert len(records) == 14
    assert records[0].opcode == "mov"
    assert records[-1].opcode == "exit"


def test_records_carry_warp_identity(tiny_config):
    tracer = Tracer()
    run_traced(tracer, tiny_config)
    record = tracer.records()[0]
    assert record.sm_id == 0
    assert record.cta_id == 0
    assert record.active_lanes == 32
    assert not record.backed_off


def test_cycles_are_monotonic_per_warp(tiny_config):
    tracer = Tracer()
    run_traced(tracer, tiny_config)
    cycles = [r.cycle for r in tracer.records()]
    assert cycles == sorted(cycles)


def test_ring_buffer_caps_and_counts_drops(tiny_config):
    tracer = Tracer(capacity=5)
    run_traced(tracer, tiny_config)
    assert len(tracer) == 5
    assert tracer.dropped == 14 - 5
    # The newest records survive.
    assert tracer.records()[-1].opcode == "exit"


def test_predicate_filtering(tiny_config):
    tracer = Tracer(predicate=lambda r: r.opcode == "bra")
    run_traced(tracer, tiny_config)
    assert len(tracer) == 4
    assert all(r.opcode == "bra" for r in tracer.records())


def test_clear(tiny_config):
    tracer = Tracer()
    run_traced(tracer, tiny_config)
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


def test_record_str_format():
    record = TraceRecord(cycle=12, sm_id=0, warp_slot=3, cta_id=1,
                         pc=7, opcode="add", active_lanes=32,
                         backed_off=True)
    text = str(record)
    assert "SM0" in text and "w03" in text and "add" in text
    assert text.endswith(" B")


def test_export_chrome_trace(tiny_config, tmp_path):
    import json

    tracer = Tracer()
    run_traced(tracer, tiny_config)
    path = tmp_path / "trace.json"
    written = tracer.export_chrome_trace(path)
    assert written == 14

    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    issues = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(issues) == 14
    # One process track per SM, one thread track per warp slot.
    assert {e["args"]["name"] for e in metadata
            if e["name"] == "process_name"} == {"SM0"}
    assert any(e["name"] == "thread_name" for e in metadata)
    first = issues[0]
    assert first["name"] == "mov"
    assert first["pid"] == 0 and first["dur"] == 1
    assert first["args"]["active_lanes"] == 32
    assert payload["otherData"]["dropped_records"] == 0
    # Timestamps are the issue cycles, so the timeline is monotonic.
    assert [e["ts"] for e in issues] == sorted(e["ts"] for e in issues)


def test_export_chrome_trace_marks_backed_off_issues(tmp_path):
    import json

    from repro.harness.runner import make_config
    from repro.kernels import build

    tracer = Tracer()
    workload = build("ht", n_threads=64, n_buckets=8, items_per_thread=1,
                     block_dim=64)
    gpu = GPU(make_config("gto", bows=1000, num_sms=1, max_warps_per_sm=8),
              memory=workload.memory, tracer=tracer)
    gpu.launch(workload.launch)
    path = tmp_path / "trace.json"
    tracer.export_chrome_trace(path)
    events = json.loads(path.read_text())["traceEvents"]
    backed_off = [e for e in events if e.get("cat") == "backed-off"]
    assert backed_off, "BOWS run should issue from backed-off warps"
    assert all(e["name"].endswith("[backed-off]") for e in backed_off)
    assert all(e["args"]["backed_off"] for e in backed_off)


def test_rejects_non_positive_capacity():
    import pytest

    with pytest.raises(ValueError):
        Tracer(capacity=0)
    with pytest.raises(ValueError):
        Tracer(capacity=-1)


def test_export_thread_names_carry_cta_and_sort_index(tmp_path):
    import json

    from repro.harness.runner import make_config
    from repro.kernels import build

    tracer = Tracer()
    # Two CTAs on one SM so distinct warp slots map to distinct CTAs.
    workload = build("ht", n_threads=128, n_buckets=8, items_per_thread=1,
                     block_dim=64)
    gpu = GPU(make_config("gto", num_sms=1, max_warps_per_sm=8),
              memory=workload.memory, tracer=tracer)
    gpu.launch(workload.launch)
    path = tmp_path / "trace.json"
    tracer.export_chrome_trace(path)
    events = json.loads(path.read_text())["traceEvents"]

    names = {e["tid"]: e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    ctas = {r.warp_slot: r.cta_id for r in tracer.records()}
    assert names, "thread_name metadata must be present"
    for slot, label in names.items():
        assert label == f"warp {slot:02d} (cta {ctas[slot]})"
    assert len({label.split("(cta ")[1] for label in names.values()}) > 1

    sort = {e["tid"]: e["args"]["sort_index"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_sort_index"}
    assert sort == {slot: slot for slot in names}


def test_export_reports_accurate_drop_count(tiny_config, tmp_path):
    import json

    tracer = Tracer(capacity=5)
    run_traced(tracer, tiny_config)
    run_traced(tracer, tiny_config)  # 28 issues through a 5-slot ring
    path = tmp_path / "trace.json"
    written = tracer.export_chrome_trace(path)
    assert written == 5
    payload = json.loads(path.read_text())
    assert payload["otherData"]["dropped_records"] == 28 - 5
    assert tracer.dropped + len(tracer) == 28


def test_export_event_args_round_trip_json(tiny_config, tmp_path):
    import json

    tracer = Tracer()
    run_traced(tracer, tiny_config)
    path = tmp_path / "trace.json"
    tracer.export_chrome_trace(path)
    issues = [e for e in json.loads(path.read_text())["traceEvents"]
              if e["ph"] == "X"]
    records = tracer.records()
    assert len(issues) == len(records)
    for event, record in zip(issues, records):
        assert event["args"] == {
            "pc": record.pc,
            "cta": record.cta_id,
            "active_lanes": record.active_lanes,
            "backed_off": record.backed_off,
        }


def test_export_merges_sampled_counter_tracks(tiny_config, tmp_path):
    import json

    from repro.obs import SERIES_COLUMNS, TimeSeries

    series = TimeSeries(interval=100, rows=[
        {"cycle": 100, "ipc": 0.5, "simd_efficiency": 1.0,
         "backed_off_fraction": 0.0, "lock_fail_rate": 0.0,
         "sib_issue_rate": 0.0, "memory_transactions": 4},
    ])
    tracer = Tracer()
    run_traced(tracer, tiny_config)
    path = tmp_path / "trace.json"
    written = tracer.export_chrome_trace(path, counters=series)
    assert written == 14  # counter events are not issue events
    events = json.loads(path.read_text())["traceEvents"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in counters} == set(SERIES_COLUMNS) - {"cycle"}


def test_attach_helper(tiny_config):
    tracer = Tracer()
    program = assemble(SOURCE)
    gpu = GPU(tiny_config, memory=GlobalMemory(1 << 12))
    tracer.attach(gpu)
    gpu.launch(KernelLaunch(program, 1, 32))
    assert len(tracer) == 14
