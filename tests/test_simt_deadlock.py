"""SIMT-induced deadlock (paper Section IV) surfaced by the simulator.

The classic broken pattern::

    while (atomicCAS(mutex, 0, 1) != 0);
    ...critical section...
    atomicExch(mutex, 0);

deadlocks on stack-based SIMT hardware: the lane that wins the lock
parks at the loop's reconvergence point waiting for its spinning
warp-mates, who spin waiting for the winner to release — a cycle.  The
spinners keep issuing instructions, so the hang manifests as a
*livelock*: the simulation makes no forward progress and hits the cycle
cap (:class:`SimulationTimeout`).  The paper's "done flag" rewrite
(Figure 1a) must complete with the same inputs.
"""

import pytest

from conftest import run_program
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import GPU, SimulationTimeout

NAIVE_SPIN = """
    ld.param %r_m, [mutex]
    ld.param %r_c, [counter]
SPIN:
    atom.cas %r_old, [%r_m], 0, 1
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN
    // critical section
    ld.global.cg %r_v, [%r_c]
    add %r_v, %r_v, 1
    st.global [%r_c], %r_v
    atom.exch %r_ig, [%r_m], 0
    exit
"""

DONE_FLAG = """
    ld.param %r_m, [mutex]
    ld.param %r_c, [counter]
    mov %r_done, 0
SPIN:
    atom.cas %r_old, [%r_m], 0, 1
    setp.eq %p1, %r_old, 0
    @%p1 bra CRIT
    bra JOIN
CRIT:
    ld.global.cg %r_v, [%r_c]
    add %r_v, %r_v, 1
    st.global [%r_c], %r_v
    mov %r_done, 1
    membar
    atom.exch %r_ig, [%r_m], 0
JOIN:
    setp.eq %p2, %r_done, 0
    @%p2 bra SPIN
    exit
"""


def _memory_with_lock():
    memory = GlobalMemory(1 << 12)
    mutex = memory.alloc(1)
    counter = memory.alloc(1)
    return memory, {"mutex": mutex, "counter": counter}


def test_naive_spin_lock_hangs(tiny_config):
    memory, params = _memory_with_lock()
    config = tiny_config.replace(max_cycles=60_000)
    with pytest.raises(SimulationTimeout):
        run_program(NAIVE_SPIN, config, block_dim=32,
                    params=params, memory=memory)
    # The winner was parked at reconvergence: the critical section never
    # executed even once, and the lock is still held.
    assert memory.read_word(params["counter"]) == 0
    assert memory.read_word(params["mutex"]) == 1


def test_naive_spin_single_thread_is_fine(tiny_config):
    """With one live lane there is nobody to reconverge with."""
    memory, params = _memory_with_lock()
    result, memory = run_program(NAIVE_SPIN, tiny_config, block_dim=1,
                                 params=params, memory=memory)
    assert memory.read_word(params["counter"]) == 1
    assert memory.read_word(params["mutex"]) == 0


def test_naive_spin_lane_serialized_is_fine(tiny_config):
    """The TSP idiom: serialize lanes so the spinner never shares a warp
    with the lock holder (Figure 6b)."""
    memory, params = _memory_with_lock()
    source = """
        ld.param %r_m, [mutex]
        ld.param %r_c, [counter]
        mov %r_i, 0
    SERIAL:
        setp.eq %p0, %laneid, %r_i
        @!%p0 bra SKIP
    SPIN:
        atom.cas %r_old, [%r_m], 0, 1
        setp.ne %p1, %r_old, 0
        @%p1 bra SPIN
        ld.global.cg %r_v, [%r_c]
        add %r_v, %r_v, 1
        st.global [%r_c], %r_v
        membar
        atom.exch %r_ig, [%r_m], 0
    SKIP:
        add %r_i, %r_i, 1
        setp.lt %p2, %r_i, 32
        @%p2 bra SERIAL
        exit
    """
    result, memory = run_program(source, tiny_config, block_dim=64,
                                 params=params, memory=memory)
    assert memory.read_word(params["counter"]) == 64


def test_done_flag_pattern_completes(tiny_config):
    memory, params = _memory_with_lock()
    result, memory = run_program(DONE_FLAG, tiny_config, block_dim=32,
                                 params=params, memory=memory)
    assert memory.read_word(params["counter"]) == 32
    assert memory.read_word(params["mutex"]) == 0


def test_done_flag_across_warps(small_config):
    memory, params = _memory_with_lock()
    result, memory = run_program(DONE_FLAG, small_config, block_dim=128,
                                 params=params, memory=memory)
    assert memory.read_word(params["counter"]) == 128


def test_deadlock_report_format():
    """The no-event deadlock reporter names stuck warps and the cause."""
    from repro.isa import assemble
    from repro.metrics.stats import SimStats
    from repro.sim.config import fermi_config
    from repro.sim.progress import build_hang_report
    from repro.sim.sm import SM
    from repro.memory.memsys import GlobalMemory, MemorySubsystem

    config = fermi_config(num_sms=1, max_warps_per_sm=4)
    program = assemble("bar.sync\nexit")
    memory = GlobalMemory(256)
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            SimStats())
    sm.launch_cta(cta_id=0, warps_per_cta=1, cta_dim=32, grid_dim=1,
                  age_base=0)
    report = build_hang_report(
        "deadlock", 123, [sm],
        reason="no warp can ever become ready again",
    ).describe()
    assert "cycle 123" in report
    assert "SM0" in report
    assert "SIMT-induced deadlock" in report
