"""Cross-cutting integration: Pascal preset, determinism, misc paths."""

import pytest

from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import build
from repro.sim.config import DDOSConfig


def test_pascal_preset_runs_sync_kernel():
    config = make_config("gto", preset="pascal", num_sms=2,
                         max_warps_per_sm=8)
    result = simulate(
        build("ht", n_threads=256, n_buckets=8, items_per_thread=1,
              block_dim=128),
        config=config)
    assert result.cycles > 0


def test_pascal_has_more_schedulers_fewer_warps_each():
    fermi = make_config("gto")
    pascal = make_config("gto", preset="pascal")
    fermi_per_sched = fermi.max_warps_per_sm / fermi.num_schedulers_per_sm
    pascal_per_sched = (
        pascal.max_warps_per_sm / pascal.num_schedulers_per_sm
    )
    assert pascal_per_sched < fermi_per_sched


def test_simulation_is_deterministic():
    results = []
    for _ in range(2):
        workload = build("ht", n_threads=128, n_buckets=8,
                         items_per_thread=1, block_dim=64, seed=3)
        config = make_config("gto", bows=True, num_sms=1,
                             max_warps_per_sm=8)
        results.append(simulate(workload, config=config))
    assert results[0].cycles == results[1].cycles
    assert (results[0].stats.warp_instructions
            == results[1].stats.warp_instructions)
    assert (results[0].stats.locks.as_dict()
            == results[1].stats.locks.as_dict())


def test_software_backoff_delay_loop_not_flagged_by_ddos():
    """The Figure 3a clock()-polling loop is a *normal* loop to DDOS:
    its setp sources change every iteration (the clock ticks).  Right
    after a failed acquire the warp is still classified spinning, so
    the delay branch can pick up transient confidence — but it must not
    be a *sustained* prediction once the clock values flow."""
    workload = build("ht_backoff", n_threads=128, n_buckets=8,
                     items_per_thread=1, block_dim=64, delay_factor=50)
    config = make_config("gto", ddos=DDOSConfig(), num_sms=1,
                         max_warps_per_sm=8)
    result = simulate(workload, config=config)
    truth = workload.launch.program.true_sibs()
    assert truth <= result.predicted_sibs()
    for extra in result.predicted_sibs() - truth:
        assert not any(
            engine.is_sib(extra) for engine in result.ddos_engines
        ), extra


def test_lrr_and_cawa_complete_every_sync_kernel():
    cases = {
        "st": dict(n_threads=64, n_cells=128, cell_work=2, block_dim=32),
        "nw1": dict(n_threads=64, n_cols=32, cell_work=2, block_dim=32),
        "tb": dict(n_threads=64, n_cells=8, items_per_thread=1,
                   block_dim=32),
    }
    for scheduler in ("lrr", "cawa"):
        for kernel, params in cases.items():
            config = make_config(scheduler, num_sms=1, max_warps_per_sm=4)
            simulate(build(kernel, **params), config=config)


def test_multi_sm_lock_contention_is_tracked_globally():
    """Inter-warp failure classification works across SM boundaries."""
    workload = build("tsp", n_threads=128, eval_iters=4, block_dim=64)
    config = make_config("gto", num_sms=2, max_warps_per_sm=2)
    result = simulate(workload, config=config)
    # The single global lock is contended across SMs.
    assert result.stats.locks.inter_warp_fail > 0
    assert result.stats.locks.intra_warp_fail == 0  # lane-serialized


def test_energy_populated_on_results():
    workload = build("vecadd", n_threads=64, per_thread=2, block_dim=32)
    result = simulate(workload, config=make_config("gto", num_sms=1,
                                                max_warps_per_sm=4))
    assert result.stats.dynamic_energy_pj > 0


def test_issue_slot_accounting():
    workload = build("vecadd", n_threads=64, per_thread=2, block_dim=32)
    result = simulate(workload, config=make_config("gto", num_sms=1,
                                                max_warps_per_sm=4))
    stats = result.stats
    assert stats.issued_slots <= stats.issue_slots
    assert stats.issued_slots == stats.warp_instructions
