"""Adaptive back-off delay-limit controllers.

Two modes are under test: the paper's Figure 5 rules (``"paper"``) and
the default extremum-seeking controller (``"hillclimb"``) that searches
for the delay maximizing the global-store (forward-progress) rate.  See
``repro.core.adaptive`` for why both exist.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.adaptive import AdaptiveDelayController, WindowSample
from repro.sim.config import BOWSConfig


def controller(mode="paper", **overrides) -> AdaptiveDelayController:
    defaults = dict(
        adaptive=True, controller=mode, delay_limit=1000, window=1000,
        delay_step=250, min_limit=0, max_limit=10000, frac1=0.1,
        frac2=0.8,
    )
    defaults.update(overrides)
    return AdaptiveDelayController(BOWSConfig(**defaults))


def test_unknown_controller_rejected():
    with pytest.raises(ValueError, match="unknown adaptive controller"):
        controller(mode="pid")


# ------------------------------------------------------- paper (Fig. 5)


def test_paper_increases_while_spinning_is_significant():
    ctl = controller()
    ctl.end_window(total_instructions=1000, sib_instructions=200)
    assert ctl.delay_limit == 1250


def test_paper_decreases_when_spinning_negligible():
    ctl = controller()
    ctl.end_window(total_instructions=1000, sib_instructions=10)
    assert ctl.delay_limit == 750


def test_paper_double_step_down_on_degraded_useful_ratio():
    ctl = controller()
    ctl.end_window(1000, 100)          # ratio 10; 100 !> 0.1*1000: -step
    limit_after_first = ctl.delay_limit
    # Ratio drops to 5 (< 0.8 * 10): -2 steps on top of the +1 step
    # from the now-significant SIB share.
    ctl.end_window(1000, 200)
    assert ctl.delay_limit == limit_after_first + 250 - 500


def test_paper_clamped_to_max():
    ctl = controller(max_limit=1500)
    for _ in range(10):
        ctl.end_window(1000, 500)
    assert ctl.delay_limit == 1500


def test_paper_clamped_to_min():
    ctl = controller(min_limit=500)
    for _ in range(10):
        ctl.end_window(1000, 0)
    assert ctl.delay_limit == 500


def test_paper_zero_windows_never_divide_by_zero():
    ctl = controller()
    ctl.end_window(0, 0)
    ctl.end_window(100, 0)
    assert ctl.windows_observed == 2


def test_window_sample_properties():
    assert WindowSample(100, 0).useful_ratio is None
    assert WindowSample(100, 20).useful_ratio == 5.0
    sample = WindowSample(100, 20, elapsed_cycles=50,
                          store_instructions=10)
    assert sample.progress_rate == pytest.approx(0.2)


@given(
    windows=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
        max_size=50,
    ),
    mode=st.sampled_from(["paper", "hillclimb"]),
)
def test_limit_always_within_bounds(windows, mode):
    ctl = controller(mode=mode, min_limit=100, max_limit=3000)
    for total, sib in windows:
        sib = min(sib, total)
        ctl.end_window(total, sib, elapsed_cycles=1000,
                       store_instructions=total - sib)
        assert 100 <= ctl.delay_limit <= 3000


@given(st.integers(1, 100))
def test_paper_sustained_heavy_spinning_saturates_at_max(n_windows):
    ctl = controller()
    for _ in range(n_windows):
        ctl.end_window(1000, 900)
    assert ctl.delay_limit <= 10000
    if n_windows > 40:
        assert ctl.delay_limit == 10000


# ------------------------------------------------------------- hillclimb


def test_hillclimb_starts_at_min():
    ctl = controller(mode="hillclimb", min_limit=0)
    assert ctl.delay_limit == 0


def test_hillclimb_climbs_while_progress_improves():
    ctl = controller(mode="hillclimb")
    limits = []
    for rate in (10, 20, 30, 40):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=rate)
        limits.append(ctl.delay_limit)
    assert limits == sorted(limits)
    assert limits[-1] > limits[0]


def test_hillclimb_acceleration():
    ctl = controller(mode="hillclimb")
    deltas = []
    prev = ctl.delay_limit
    for rate in (10, 20, 30, 40, 50):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=rate)
        deltas.append(ctl.delay_limit - prev)
        prev = ctl.delay_limit
    # Step doubles on consecutive improvements, capped at 4x.
    assert deltas[0] == 250
    assert deltas[-1] == 1000


def test_hillclimb_reverses_on_degraded_progress():
    ctl = controller(mode="hillclimb")
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=50)
    up = ctl.delay_limit
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=10)
    assert ctl.delay_limit < up


def test_hillclimb_holds_without_progress_signal():
    ctl = controller(mode="hillclimb")
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=50)
    before = ctl.delay_limit
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=0)
    assert ctl.delay_limit == before


def test_hillclimb_dry_fuse_halves_stuck_throttle():
    """Ten consecutive zero-progress windows blow the fuse: the limit
    halves so an over-throttled kernel can recover (the hold rule alone
    would freeze a bad delay forever)."""
    ctl = controller(mode="hillclimb")
    for rate in (10, 20, 30, 40, 50):      # climb to a real limit
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=rate)
    high = ctl.delay_limit
    assert high > 0
    for _ in range(9):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=0)
    assert ctl.delay_limit == high          # still holding
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=0)
    assert ctl.delay_limit == high // 2     # fuse blown


def test_hillclimb_fuse_resets_on_progress():
    ctl = controller(mode="hillclimb")
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=10)
    before = ctl.delay_limit
    for _ in range(9):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=0)
    ctl.end_window(1000, 100, elapsed_cycles=1000, store_instructions=5)
    for _ in range(9):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=0)
    # Never 10 consecutive dry windows: no halving beyond normal steps.
    assert ctl.delay_limit >= before // 2


def test_hillclimb_never_below_min():
    ctl = controller(mode="hillclimb", min_limit=0)
    for rate in (50, 10, 50, 10, 50, 10):
        ctl.end_window(1000, 100, elapsed_cycles=1000,
                       store_instructions=rate)
    assert ctl.delay_limit >= 0
