"""Golden tests for the versioned serve wire format.

The wire layout is a compatibility contract between daemons and clients
that may be built from different checkouts.  These tests freeze the
schema: changing :data:`~repro.serve.wire.RESULT_WIRE_KEYS` /
:data:`~repro.serve.wire.FAILURE_WIRE_KEYS` without bumping
:data:`~repro.serve.wire.WIRE_SCHEMA_VERSION` (and updating the golden
tuples below) must fail here before it corrupts a socket.
"""

import pytest

from repro.harness.runner import make_config
from repro.lab.results import RunFailure
from repro.lab.runner import execute_run
from repro.lab.spec import RunSpec
from repro.serve import wire

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)


@pytest.fixture(scope="module")
def result():
    spec = RunSpec(kernel="vecadd", config=make_config("gto"),
                   params=VECADD, label="wire-test")
    run = execute_run(spec)
    run.label = spec.label
    return run


@pytest.fixture()
def failure():
    spec = RunSpec(kernel="vecadd", config=make_config("gto"),
                   params=VECADD, label="wire-fail")
    return RunFailure(
        spec=spec, spec_hash=spec.content_hash(),
        error_type="SimulationTimeout", message="budget exhausted",
        attempts=2, elapsed_s=1.5, transient=True,
        hang={"kind": "timeout"},
    )


# ---------------------------------------------------------- golden sets


def test_wire_schema_version_golden():
    assert wire.WIRE_SCHEMA_VERSION == 1


def test_result_wire_keys_golden():
    # Frozen for wire schema v1.  Adding or removing a key requires a
    # WIRE_SCHEMA_VERSION bump and an update here.
    assert wire.RESULT_WIRE_KEYS == (
        "schema_version",
        "spec_hash",
        "cycles",
        "stats",
        "predicted_sibs",
        "ddos",
        "elapsed_s",
        "phases",
        "obs",
        "sanitizer",
        "attempts",
        "from_cache",
        "label",
    )


def test_failure_wire_keys_golden():
    assert wire.FAILURE_WIRE_KEYS == (
        "schema_version",
        "spec_hash",
        "error_type",
        "message",
        "attempts",
        "elapsed_s",
        "transient",
        "hang",
        "label",
    )


# ----------------------------------------------------------- roundtrips


def test_result_roundtrip(result):
    data = wire.result_to_wire(result)
    assert set(data) == set(wire.RESULT_WIRE_KEYS)
    assert data["schema_version"] == wire.WIRE_SCHEMA_VERSION
    decoded = wire.result_from_wire(data)
    assert decoded.to_dict() == result.to_dict()
    assert decoded.attempts == result.attempts
    assert decoded.from_cache == result.from_cache
    assert decoded.label == "wire-test"


def test_failure_roundtrip(failure):
    data = wire.failure_to_wire(failure)
    assert set(data) == set(wire.FAILURE_WIRE_KEYS)
    assert data["label"] == "wire-fail"
    decoded = wire.failure_from_wire(data, spec=failure.spec)
    assert decoded.spec is failure.spec
    assert decoded.error_type == "SimulationTimeout"
    assert decoded.attempts == 2
    assert decoded.transient is True
    assert decoded.hang == {"kind": "timeout"}


# ------------------------------------------------------------ rejection


def test_version_mismatch_rejected(result):
    data = wire.result_to_wire(result)
    data["schema_version"] = wire.WIRE_SCHEMA_VERSION + 1
    with pytest.raises(wire.WireFormatError, match="schema_version"):
        wire.result_from_wire(data)


def test_missing_version_rejected(result):
    data = wire.result_to_wire(result)
    del data["schema_version"]
    with pytest.raises(wire.WireFormatError, match="schema_version"):
        wire.result_from_wire(data)


def test_extra_key_rejected(result):
    data = wire.result_to_wire(result)
    data["surprise"] = 1
    with pytest.raises(wire.WireFormatError, match="unexpected"):
        wire.result_from_wire(data)


def test_missing_key_rejected(result):
    data = wire.result_to_wire(result)
    del data["cycles"]
    with pytest.raises(wire.WireFormatError, match="missing"):
        wire.result_from_wire(data)


def test_failure_version_mismatch_rejected(failure):
    data = wire.failure_to_wire(failure)
    data["schema_version"] = 99
    with pytest.raises(wire.WireFormatError, match="99"):
        wire.failure_from_wire(data)


def test_non_object_rejected():
    with pytest.raises(wire.WireFormatError, match="expected an object"):
        wire.check_wire_version([], "result")


def test_encoding_enforces_frozen_set(result, monkeypatch):
    # A drifted encoder (new to_dict key) must fail at encode time, not
    # silently ship a payload every v1 client rejects.
    drifted = dict(result.to_dict(), novel=True)
    monkeypatch.setattr(type(result), "to_dict", lambda self: dict(drifted))
    with pytest.raises(wire.WireFormatError, match="novel"):
        wire.result_to_wire(result)
