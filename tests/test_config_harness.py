"""Configuration presets, make_config shorthand, reporting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.harness.reporting import format_table, geomean
from repro.api import simulate
from repro.harness.runner import make_config
from repro.sim.config import (
    BOWSConfig,
    DDOSConfig,
    GPUConfig,
    fermi_config,
    pascal_config,
)

# ---------------------------------------------------------------- config


def test_fermi_preset_shape():
    config = fermi_config()
    assert config.num_schedulers_per_sm == 2
    assert config.warp_size == 32
    assert config.l1d.num_sets * config.l1d.assoc * 128 == 16 * 1024


def test_pascal_preset_shape():
    config = pascal_config()
    assert config.num_schedulers_per_sm == 4
    assert config.num_sms > fermi_config().num_sms
    assert config.l1d.size_bytes == 48 * 1024


def test_preset_overrides():
    config = fermi_config(num_sms=7, scheduler="lrr")
    assert config.num_sms == 7
    assert config.scheduler == "lrr"


def test_replace_copies():
    base = fermi_config()
    changed = base.replace(num_sms=9)
    assert changed.num_sms == 9
    assert base.num_sms != 9


def test_ddos_config_validation():
    with pytest.raises(ValueError, match="unknown hashing"):
        DDOSConfig(hashing="crc32")


def test_max_threads_per_sm():
    config = fermi_config(max_warps_per_sm=10)
    assert config.max_threads_per_sm == 320


# ------------------------------------------------------------ make_config


def test_make_config_defaults():
    config = make_config()
    assert config.scheduler == "gto"
    assert config.bows is None
    assert config.ddos is None


def test_make_config_bows_true_is_adaptive_with_ddos():
    config = make_config("gto", bows=True)
    assert config.bows is not None and config.bows.adaptive
    assert config.ddos is not None


def test_make_config_bows_int_is_fixed_delay():
    config = make_config("gto", bows=1234)
    assert config.bows.delay_limit == 1234
    assert not config.bows.adaptive


def test_make_config_bows_without_ddos():
    config = make_config("gto", bows=500, ddos=False)
    assert config.bows is not None
    assert config.ddos is None


def test_make_config_explicit_objects():
    bows = BOWSConfig(delay_limit=42)
    ddos = DDOSConfig(hashing="modulo")
    config = make_config("lrr", bows=bows, ddos=ddos)
    assert config.bows is bows
    assert config.ddos is ddos


def test_make_config_pascal_preset():
    config = make_config("gto", preset="pascal")
    assert config.name.startswith("pascal")


def test_make_config_rejects_bad_inputs():
    with pytest.raises(ValueError):
        make_config(preset="volta")
    with pytest.raises(TypeError):
        make_config(bows=3.14)
    with pytest.raises(TypeError):
        make_config(ddos="yes")


def test_simulate_by_name_one_shot():
    config = make_config("gto", num_sms=1, max_warps_per_sm=4)
    result = simulate(
        "vecadd", config=config,
        params=dict(n_threads=64, per_thread=2, block_dim=32),
    )
    assert result.cycles > 0


# ------------------------------------------------------------- reporting


def test_format_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="T")


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_geomean_basics():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([0, -1]) == 0.0


@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001
