"""The shipped examples stay runnable (fast ones run in-process)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_all_examples_exist_and_have_main():
    expected = {
        "quickstart", "spin_detection", "scheduler_comparison",
        "contention_sweep", "custom_kernel", "adaptive_trace",
    }
    found = {p.stem for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        module = load_example(name)
        assert callable(module.main)


def test_custom_kernel_example_runs(capsys):
    load_example("custom_kernel").main()
    out = capsys.readouterr().out
    assert "pushed exactly once" in out
    assert "ground truth" in out


def test_spin_detection_example_runs(capsys):
    load_example("spin_detection").main()
    out = capsys.readouterr().out
    assert "Table I story" in out
