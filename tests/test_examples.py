"""The shipped examples stay runnable (fast ones run in-process)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = (
    "quickstart", "spin_detection", "scheduler_comparison",
    "contention_sweep", "custom_kernel", "adaptive_trace", "lint_kernel",
)


def test_all_examples_exist_and_have_main():
    found = {p.stem for p in EXAMPLES.glob("*.py")}
    assert set(ALL_EXAMPLES) <= found
    for name in ALL_EXAMPLES:
        module = load_example(name)
        assert callable(module.main)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_doctests_pass(name):
    """Docstring snippets stay truthful (CI also runs python -m doctest
    over examples/ — this is the same check inside tier-1)."""
    import doctest

    module = load_example(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{name}: {result.failed} doctest failure(s)"


def test_custom_kernel_example_runs(capsys):
    load_example("custom_kernel").main()
    out = capsys.readouterr().out
    assert "pushed exactly once" in out
    assert "ground truth" in out


def test_spin_detection_example_runs(capsys):
    load_example("spin_detection").main()
    out = capsys.readouterr().out
    assert "Table I story" in out


def test_lint_kernel_example_runs(capsys):
    load_example("lint_kernel").main()
    out = capsys.readouterr().out
    assert "SIB001" in out and "LOCK003" in out
    assert "counter_fixed: OK" in out
