"""Shared fixtures for the unit/integration test suite.

Tests run the simulator at deliberately tiny scale (one or two SMs, a
handful of warps) — behaviour, not magnitude, is under test here; the
paper-scale numbers live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.sim.config import GPUConfig, fermi_config


@pytest.fixture
def tiny_config() -> GPUConfig:
    """One SM, 4 warps, short rotation — fast and deterministic."""
    return fermi_config(
        num_sms=1,
        max_warps_per_sm=4,
        max_ctas_per_sm=4,
        num_schedulers_per_sm=2,
        max_cycles=2_000_000,
    )


@pytest.fixture
def small_config() -> GPUConfig:
    """One SM, 8 warps — enough for contention without slow runs."""
    return fermi_config(
        num_sms=1,
        max_warps_per_sm=8,
        max_ctas_per_sm=8,
        max_cycles=5_000_000,
    )


@pytest.fixture
def dual_sm_config() -> GPUConfig:
    return fermi_config(
        num_sms=2,
        max_warps_per_sm=8,
        max_ctas_per_sm=8,
        max_cycles=5_000_000,
    )


def run_program(source: str, config: GPUConfig, *, grid_dim: int = 1,
                block_dim: int = 32, params=None, memory=None,
                name: str = "test_kernel"):
    """Assemble and run a snippet; returns (result, memory)."""
    from repro.isa import assemble
    from repro.memory.memsys import GlobalMemory
    from repro.sim.gpu import GPU, KernelLaunch

    program = assemble(source, name=name)
    if memory is None:
        memory = GlobalMemory(1 << 16)
    gpu = GPU(config, memory=memory)
    result = gpu.launch(
        KernelLaunch(program, grid_dim, block_dim, params or {})
    )
    return result, memory
