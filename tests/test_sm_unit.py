"""SM internals: readiness, barriers, CTA retirement, occupancy, CAWA."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.memory.memsys import GlobalMemory, MemorySubsystem
from repro.metrics.stats import SimStats
from repro.sim.config import fermi_config
from repro.sim.sm import SM


def make_sm(source="mov %r1, 0\nexit", config=None, **config_overrides):
    if config is None:
        config = fermi_config(num_sms=1, max_warps_per_sm=4,
                              **config_overrides)
    program = assemble(source)
    memory = GlobalMemory(1 << 14)
    sm = SM(0, config, program, {}, memory, MemorySubsystem(config), {},
            SimStats())
    return sm


def test_launch_cta_fills_slots():
    sm = make_sm()
    sm.launch_cta(0, warps_per_cta=2, cta_dim=64, grid_dim=1, age_base=0)
    assert len(sm.warps) == 2
    assert sm.resident_ctas == 1
    assert not sm.idle


def test_capacity_checks():
    sm = make_sm()
    assert sm.can_accept_cta(4)
    assert not sm.can_accept_cta(5)
    sm.launch_cta(0, 4, 128, 1, 0)
    assert not sm.can_accept_cta(1)
    with pytest.raises(RuntimeError):
        sm.launch_cta(1, 1, 32, 1, 4)


def test_cta_limit():
    sm = make_sm(config=fermi_config(num_sms=1, max_warps_per_sm=8,
                                     max_ctas_per_sm=2))
    sm.launch_cta(0, 1, 32, 4, 0)
    sm.launch_cta(1, 1, 32, 4, 1)
    assert not sm.can_accept_cta(1)  # CTA limit, not warp limit


def test_warps_retire_and_slots_recycle():
    sm = make_sm()
    sm.launch_cta(0, 2, 64, 1, 0)
    now = 0
    while sm.warps:
        issued = sm.step(now)
        now += 1 if issued else 5
        assert now < 10_000
    assert sm.idle
    assert sm.can_accept_cta(4)


def test_ready_blocks_on_scoreboard():
    sm = make_sm("""
        ld.param %r_a, [x]
        add %r_b, %r_a, 1
        exit
    """)
    sm.params["x"] = 0
    sm.launch_cta(0, 1, 32, 1, 0)
    warp = next(iter(sm.warps.values()))
    assert sm._ready(warp, 0)
    sm._issue(warp, 0)  # ld.param reserves %r_a until +alu_latency
    assert not sm._ready(warp, 1)
    assert sm._ready(warp, sm.config.alu_latency)


def test_next_event_reflects_scoreboard():
    sm = make_sm("""
        ld.param %r_a, [x]
        add %r_b, %r_a, 1
        exit
    """)
    sm.params["x"] = 0
    sm.launch_cta(0, 1, 32, 1, 0)
    warp = next(iter(sm.warps.values()))
    sm._issue(warp, 0)
    assert sm.next_event(0) == sm.config.alu_latency


def test_barrier_blocks_until_all_arrive():
    sm = make_sm("bar.sync\nexit")
    sm.launch_cta(0, 2, 64, 1, 0)
    warps = list(sm.warps.values())
    sm._issue(warps[0], 0)
    assert warps[0].at_barrier
    assert not sm._ready(warps[0], 1)
    sm._issue(warps[1], 1)
    # Last arrival releases everyone.
    assert not warps[0].at_barrier
    assert not warps[1].at_barrier


def test_barriers_are_per_cta():
    sm = make_sm("bar.sync\nexit")
    sm.launch_cta(0, 1, 32, 2, 0)
    sm.launch_cta(1, 1, 32, 2, 1)
    warps = {w.cta_id: w for w in sm.warps.values()}
    sm._issue(warps[0], 0)
    # CTA 0's single warp releases itself immediately; CTA 1 untouched.
    assert not warps[0].at_barrier
    assert not warps[1].at_barrier  # has not even reached the barrier


def test_occupancy_accumulation():
    sm = make_sm()
    sm.launch_cta(0, 2, 64, 1, 0)
    warps = list(sm.warps.values())
    warps[0].backed_off = True
    sm.accumulate_occupancy(10.0)
    assert sm.stats.resident_warp_cycles == 20.0
    assert sm.stats.backed_off_warp_cycles == 10.0


def test_issue_counts_stats():
    sm = make_sm()
    sm.launch_cta(0, 1, 32, 1, 0)
    warp = next(iter(sm.warps.values()))
    sm._issue(warp, 0)
    assert sm.stats.warp_instructions == 1
    assert sm.stats.thread_instructions == 32
    assert sm.stats.active_lane_sum == 32


def test_sync_role_classification():
    sm = make_sm("""
        mov %r1, 0 !sync
        mov %r2, 0
        exit
    """)
    sm.launch_cta(0, 1, 32, 1, 0)
    warp = next(iter(sm.warps.values()))
    sm._issue(warp, 0)
    sm._issue(warp, 10)
    assert sm.stats.sync_thread_instructions == 32
    assert sm.stats.useful_thread_instructions == 32


def test_cawa_stall_charging():
    config = fermi_config(num_sms=1, max_warps_per_sm=4,
                          scheduler="cawa")
    sm = make_sm(config=config, source="""
        ld.param %r_a, [x]
        add %r_b, %r_a, 1
        exit
    """)
    sm.params["x"] = 0
    sm.launch_cta(0, 2, 64, 1, 0)
    warps = list(sm.warps.values())
    sm.step(0)
    # Warp that issued is not stalled; advance time and recharge.
    sm.step(3)
    stalls = [w.cawa_nstall for w in warps]
    assert any(s > 0 for s in stalls) or all(
        sm._ready(w, 3) for w in warps
    )
    assert all(w.cawa_cycles >= 0 for w in warps)


def test_partial_cta_masks_invalid_lanes():
    sm = make_sm()
    sm.launch_cta(0, 2, cta_dim=40, grid_dim=1, age_base=0)
    warps = sorted(sm.warps.values(), key=lambda w: w.warp_in_cta)
    assert int(warps[0].stack.active_mask.sum()) == 32
    assert int(warps[1].stack.active_mask.sum()) == 8
    assert warps[1].profiled_lane == 0
