"""Checkpoint format, corruption handling, and resume semantics.

The bitwise-identity contract (every matrix config, both engines, obs
and sanitizer on/off) lives in ``test_golden_equivalence.py``; this file
covers the container format itself — magic, checksum, versioning, code
fingerprint — and the ``simulate(checkpoint_every=...)`` /
``resume_simulation`` driving surface, including resuming a run that
exhausted its cycle budget.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import resume_simulation, simulate
from repro.kernels import build as build_workload
from repro.sim.checkpoint import (CheckpointError, SimCheckpoint,
                                  load_simulation)
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.progress import SimulationTimeout

PARAMS = dict(n_threads=128, n_buckets=8, items_per_thread=1, block_dim=64)


def _mid_run_sim(config=None, obs=None):
    config = config or GPUConfig.preset("fermi", scheduler="gto")
    workload = build_workload("ht", **PARAMS)
    gpu = GPU(config, memory=workload.memory, engine="fast", obs=obs)
    sim = gpu.begin(workload.launch)
    sim.run_until(1_000)
    assert not sim.finished
    return workload, sim


def _baseline_summary():
    return simulate("ht", params=PARAMS).stats.summary()


# ---------------------------------------------------------------------------
# Container format


def test_capture_records_meta():
    _, sim = _mid_run_sim()
    ckpt = SimCheckpoint.capture(sim)
    assert ckpt.meta["program"] == "ht"
    assert ckpt.meta["engine"] == "fast"
    assert ckpt.cycle == sim.now
    assert len(ckpt.meta["fingerprint"]) == 64


def test_bytes_round_trip_preserves_meta_and_state():
    _, sim = _mid_run_sim()
    ckpt = SimCheckpoint.capture(sim)
    again = SimCheckpoint.from_bytes(ckpt.to_bytes())
    assert again.meta == ckpt.meta
    assert again.payload == ckpt.payload
    assert again.restore().now == sim.now


def test_save_and_load_file(tmp_path):
    _, sim = _mid_run_sim()
    path = tmp_path / "deep" / "run.ckpt"
    saved = SimCheckpoint.capture(sim).save(path)
    assert saved == path and path.is_file()
    restored = load_simulation(path)
    assert restored.now == sim.now
    assert restored.run().stats.summary() == _baseline_summary()


def test_bad_magic_is_rejected(tmp_path):
    _, sim = _mid_run_sim()
    blob = SimCheckpoint.capture(sim).to_bytes()
    with pytest.raises(CheckpointError, match="magic"):
        SimCheckpoint.from_bytes(b"NOTCKPT!" + blob[8:])


def test_flipped_byte_fails_the_checksum(tmp_path):
    _, sim = _mid_run_sim()
    blob = bytearray(SimCheckpoint.capture(sim).to_bytes())
    blob[len(blob) // 2] ^= 0xFF
    with pytest.raises(CheckpointError, match="checksum"):
        SimCheckpoint.from_bytes(bytes(blob))


def test_truncated_file_is_rejected(tmp_path):
    _, sim = _mid_run_sim()
    path = tmp_path / "run.ckpt"
    SimCheckpoint.capture(sim).save(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(path)


def test_foreign_fingerprint_is_rejected_unless_overridden():
    _, sim = _mid_run_sim()
    ckpt = SimCheckpoint.capture(sim)
    ckpt.meta = dict(ckpt.meta, fingerprint="0" * 64)
    blob = ckpt.to_bytes()
    with pytest.raises(CheckpointError, match="fingerprint"):
        SimCheckpoint.from_bytes(blob)
    forced = SimCheckpoint.from_bytes(blob, check_fingerprint=False)
    assert forced.restore().now == sim.now


def test_missing_file_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(tmp_path / "nope.ckpt")


def test_unpicklable_state_is_wrapped():
    _, sim = _mid_run_sim()
    sim.not_serializable = lambda: None  # locals never pickle
    with pytest.raises(CheckpointError, match="not checkpointable"):
        SimCheckpoint.capture(sim)
    del sim.not_serializable
    payload = SimCheckpoint.capture(sim).payload
    assert pickle.loads(payload).now == sim.now


# ---------------------------------------------------------------------------
# Driving surface


def test_checkpoint_every_requires_a_path():
    with pytest.raises(ValueError, match="checkpoint_path"):
        simulate("ht", params=PARAMS, checkpoint_every=True)


def test_checkpoint_interval_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        simulate("ht", params=PARAMS, checkpoint_every=0,
                 checkpoint_path=tmp_path / "x.ckpt")
    with pytest.raises(ValueError):
        simulate("ht", params=PARAMS, checkpoint_every=-5,
                 checkpoint_path=tmp_path / "x.ckpt")


def test_autocheckpointing_run_matches_baseline_and_emits_events(tmp_path):
    path = tmp_path / "run.ckpt"
    result = simulate("ht", params=PARAMS, obs=True,
                      checkpoint_every=1_000, checkpoint_path=path)
    assert result.stats.summary() == _baseline_summary()
    # Periodic saves happened, were journaled as events, and the last
    # one is a loadable file (the lab layer removes it on success).
    saves = result.obs.bus.counts.get("checkpoint_saved", 0)
    assert saves >= 1
    assert path.is_file()
    assert SimCheckpoint.load(path).cycle <= result.cycles


def test_resume_accepts_checkpoint_object_and_live_simulation():
    _, sim = _mid_run_sim()
    ckpt = SimCheckpoint.capture(sim)
    from_ckpt = resume_simulation(ckpt)
    assert from_ckpt.stats.summary() == _baseline_summary()
    from_live = resume_simulation(sim)  # continues the original object
    assert from_live.stats.summary() == _baseline_summary()


def test_timed_out_run_resumes_from_its_checkpoint(tmp_path):
    """The watchdog-timeout story: a run that exhausts ``max_cycles``
    leaves its periodic checkpoint behind; resuming with a raised budget
    completes it bitwise-identically to a never-interrupted run."""
    path = tmp_path / "run.ckpt"
    config = GPUConfig.preset("fermi", scheduler="gto").replace(
        max_cycles=3_000)
    with pytest.raises(SimulationTimeout):
        simulate("ht", params=PARAMS, config=config,
                 checkpoint_every=1_000, checkpoint_path=path)
    assert path.is_file()
    ckpt = SimCheckpoint.load(path)
    assert 0 < ckpt.cycle <= 3_000

    with pytest.raises(ValueError, match="below the checkpoint's budget"):
        resume_simulation(path, extend_max_cycles=100)

    result = resume_simulation(path, extend_max_cycles=30_000_000)
    assert result.stats.summary() == _baseline_summary()
    workload = build_workload("ht", **PARAMS)
    workload.validate(result.memory)
