"""BOWS end-to-end: scheduling effects on real spin-lock executions."""

import pytest

from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import build

HT = dict(n_threads=256, n_buckets=8, items_per_thread=1, block_dim=128)
TB = dict(n_threads=128, n_cells=8, items_per_thread=1, block_dim=64)


def run_ht(bows=None, ddos=None, scheduler="gto", **config_overrides):
    config = make_config(
        scheduler, bows=bows, ddos=ddos,
        num_sms=1, max_warps_per_sm=8, max_cycles=8_000_000,
        **config_overrides,
    )
    return simulate(build("ht", **HT), config=config)


def test_bows_reduces_spin_instructions():
    base = run_ht()
    bows = run_ht(bows=2000)
    assert bows.stats.thread_instructions < base.stats.thread_instructions


def test_bows_reduces_failed_acquires():
    base = run_ht()
    bows = run_ht(bows=2000)
    base_fails = (base.stats.locks.inter_warp_fail
                  + base.stats.locks.intra_warp_fail)
    bows_fails = (bows.stats.locks.inter_warp_fail
                  + bows.stats.locks.intra_warp_fail)
    assert bows_fails < base_fails


def test_bows_reduces_memory_traffic():
    base = run_ht()
    bows = run_ht(bows=2000)
    assert (bows.stats.memory.total_transactions
            < base.stats.memory.total_transactions)


def test_bows_backs_warps_off():
    bows = run_ht(bows=2000)
    assert bows.stats.backed_off_fraction > 0.0
    base = run_ht()
    assert base.stats.backed_off_fraction == 0.0


def test_bows_correctness_under_all_schedulers():
    """BOWS must never break mutual exclusion (validation runs inside)."""
    for scheduler in ("lrr", "gto", "cawa"):
        run_ht(bows=1000, scheduler=scheduler)


def test_bows_with_static_annotations():
    """Programmer-annotation mode: BOWS without DDOS uses !sib roles."""
    result = run_ht(bows=2000, ddos=False)
    assert result.stats.backed_off_fraction > 0.0
    base = run_ht()
    assert result.stats.thread_instructions < base.stats.thread_instructions


def test_bows_adaptive_mode_runs():
    result = run_ht(bows=True)
    assert result.stats.sib_warp_instructions > 0


def test_bows_zero_delay_still_deprioritizes():
    """Delay 0: pure queue-reordering (no throttle) still cuts spin."""
    base = run_ht()
    bows0 = run_ht(bows=0)
    assert (bows0.stats.thread_instructions
            <= base.stats.thread_instructions)


def test_larger_delays_cut_more_spin():
    small = run_ht(bows=500)
    large = run_ht(bows=5000)
    assert (large.stats.locks.acquire_attempts
            < small.stats.locks.acquire_attempts)
    assert large.stats.backed_off_fraction > small.stats.backed_off_fraction


def test_tb_barrier_throttling_mutes_bows():
    """Paper: TB's own barrier throttling leaves little for BOWS."""
    config = make_config("gto", num_sms=1, max_warps_per_sm=8)
    base = simulate(build("tb", **TB), config=config)
    config_bows = make_config("gto", bows=True, num_sms=1,
                              max_warps_per_sm=8)
    bows = simulate(build("tb", **TB), config=config_bows)
    # At this tiny scale the adaptive walk is noisy; TB must merely
    # stay within +/-50% of the baseline (full-scale TB in benchmarks/
    # is held to a tighter band), and instruction count must not grow.
    assert bows.cycles < base.cycles * 1.5
    assert bows.cycles > base.cycles * 0.6
    assert (bows.stats.thread_instructions
            <= base.stats.thread_instructions * 1.05)


def test_bows_does_not_affect_sync_free_kernels_with_xor():
    """No detections -> scheduling identical to the baseline."""
    params = dict(n_threads=64, per_thread=8, block_dim=32)
    config = make_config("gto", num_sms=1, max_warps_per_sm=8)
    base = simulate(build("vecadd", **params), config=config)
    config_bows = make_config("gto", bows=5000, num_sms=1,
                              max_warps_per_sm=8)
    bows = simulate(build("vecadd", **params), config=config_bows)
    assert bows.cycles == base.cycles
    assert (bows.stats.warp_instructions == base.stats.warp_instructions)


def test_sib_instructions_counted():
    result = run_ht(bows=1000)
    assert result.stats.sib_warp_instructions > 0
    assert (result.stats.sib_thread_instructions
            >= result.stats.sib_warp_instructions)


def test_magic_locks_mode():
    """Ideal-blocking proxy: one acquire per critical section."""
    config = make_config("gto", magic_locks=True, num_sms=1,
                         max_warps_per_sm=8)
    result = simulate(build("ht", **HT), config=config, validate=False)
    locks = result.stats.locks
    assert locks.inter_warp_fail == 0
    assert locks.intra_warp_fail == 0
    assert locks.lock_success == HT["n_threads"] * HT["items_per_thread"]
    base = run_ht()
    assert (result.stats.thread_instructions
            < base.stats.thread_instructions)
