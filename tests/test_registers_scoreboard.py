"""Register file wrapping semantics and scoreboard hazard tracking."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.registers import RegisterFile, wrap_i32
from repro.sim.scoreboard import Scoreboard

# ---------------------------------------------------------------- wrap


def test_wrap_positive_in_range():
    values = np.array([0, 1, 2**31 - 1], dtype=np.int64)
    assert (wrap_i32(values) == values).all()


def test_wrap_overflow():
    values = np.array([2**31, 2**32 - 1, 2**32], dtype=np.int64)
    assert wrap_i32(values).tolist() == [-(2**31), -1, 0]


def test_wrap_negative():
    values = np.array([-1, -(2**31)], dtype=np.int64)
    assert wrap_i32(values).tolist() == [-1, -(2**31)]


@given(st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=32))
def test_wrap_matches_python_two_complement(values):
    wrapped = wrap_i32(np.array(values, dtype=np.int64))
    for raw, got in zip(values, wrapped):
        expected = ((raw + 2**31) % 2**32) - 2**31
        assert int(got) == expected


@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=8))
def test_wrap_is_idempotent(values):
    arr = np.array(values, dtype=np.int64)
    assert (wrap_i32(wrap_i32(arr)) == wrap_i32(arr)).all()


# ---------------------------------------------------------- register file


def test_register_masked_write():
    rf = RegisterFile(4, ["r1"], ["p1"])
    mask = np.array([True, False, True, False])
    rf.write("r1", np.array([5, 6, 7, 8]), mask)
    assert rf.read("r1").tolist() == [5, 0, 7, 0]


def test_predicate_masked_write():
    rf = RegisterFile(4, ["r1"], ["p1"])
    mask = np.array([False, True, True, False])
    rf.write_pred("p1", np.array([True, True, False, True]), mask)
    assert rf.read_pred("p1").tolist() == [False, True, False, False]


def test_register_write_wraps():
    rf = RegisterFile(2, ["r1"], [])
    rf.write("r1", np.array([2**31, -1]), np.array([True, True]))
    assert rf.read("r1").tolist() == [-(2**31), -1]


# -------------------------------------------------------------- scoreboard


def test_scoreboard_empty_is_ready():
    sb = Scoreboard()
    assert sb.ready(["r:r1", "p:p1"], now=0)


def test_scoreboard_blocks_until_release():
    sb = Scoreboard()
    sb.reserve(["r:r1"], release_cycle=10)
    assert not sb.ready(["r:r1"], now=5)
    assert sb.ready(["r:r1"], now=10)
    assert sb.ready(["r:r2"], now=5)


def test_scoreboard_keeps_latest_release():
    sb = Scoreboard()
    sb.reserve(["r:r1"], 10)
    sb.reserve(["r:r1"], 5)  # earlier reservation must not shrink it
    assert not sb.ready(["r:r1"], 7)
    sb.reserve(["r:r1"], 20)
    assert not sb.ready(["r:r1"], 15)


def test_next_release():
    sb = Scoreboard()
    sb.reserve(["r:r1"], 10)
    sb.reserve(["r:r2"], 30)
    assert sb.next_release(["r:r1"], 0) == 10
    assert sb.next_release(["r:r1", "r:r2"], 0) == 30
    assert sb.next_release(["r:r3"], 0) is None
    assert sb.next_release(["r:r1"], 15) is None


def test_flush_before():
    sb = Scoreboard()
    sb.reserve(["r:r1"], 10)
    sb.reserve(["r:r2"], 100)
    sb.flush_before(50)
    assert sb.ready(["r:r1"], 0)  # flushed
    assert not sb.ready(["r:r2"], 50)


@given(
    reservations=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 100)),
        max_size=20,
    ),
    query_time=st.integers(0, 120),
)
def test_scoreboard_ready_iff_all_released(reservations, query_time):
    sb = Scoreboard()
    latest = {}
    for name, release in reservations:
        sb.reserve([name], release)
        latest[name] = max(latest.get(name, 0), release)
    for name in ("a", "b", "c"):
        expected = latest.get(name, 0) <= query_time
        assert sb.ready([name], query_time) == expected
