"""Assembler: parsing, validation, and round-tripping."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AssemblyError,
    Imm,
    Mem,
    Opcode,
    Param,
    Pred,
    Reg,
    Sreg,
    assemble,
)

MINIMAL = """
    mov %r1, 5
    exit
"""


def test_minimal_program():
    program = assemble(MINIMAL)
    assert len(program) == 2
    assert program[0].opcode is Opcode.MOV
    assert program[1].opcode is Opcode.EXIT


def test_mov_operands():
    instr = assemble(MINIMAL)[0]
    assert instr.dst == Reg("r1")
    assert instr.srcs == (Imm(5),)


def test_comments_and_blank_lines():
    program = assemble(
        """
        // leading comment
        mov %r1, 1   // trailing comment
        # hash comment

        exit
        """
    )
    assert len(program) == 2


def test_labels_resolve():
    program = assemble(
        """
        mov %r1, 0
    LOOP:
        add %r1, %r1, 1
        setp.lt %p1, %r1, 10
        @%p1 bra LOOP
        exit
        """
    )
    branch = program[3]
    assert branch.target == "LOOP"
    assert branch.target_index == 1
    assert branch.is_backward_branch


def test_guard_parsing():
    program = assemble(
        """
        setp.eq %p1, %r1, 0
        @!%p1 bra OUT
        mov %r2, 1
    OUT:
        exit
        """
    )
    branch = program[1]
    assert branch.guard == Pred("p1")
    assert branch.guard_negated


def test_role_annotations():
    program = assemble(
        """
        atom.cas %r1, [%r2], 0, 1 !lock_try !sync
        exit
        """
    )
    assert program[0].roles == ("lock_try", "sync")
    assert program[0].has_role("lock_try")
    assert not program[0].has_role("sib")


def test_memory_operands():
    program = assemble(
        """
        ld.global %r1, [%r2]
        ld.global %r3, [%r2+8]
        ld.global %r4, [%r2+-4]
        st.global [%r5], %r1
        exit
        """
    )
    assert program[0].srcs[0] == Mem(Reg("r2"), 0)
    assert program[1].srcs[0] == Mem(Reg("r2"), 8)
    assert program[2].srcs[0] == Mem(Reg("r2"), -4)
    assert program[3].dst == Mem(Reg("r5"), 0)


def test_param_operand():
    program = assemble(
        """
        ld.param %r1, [my_param]
        exit
        """
    )
    assert program[0].srcs[0] == Param("my_param")


def test_special_registers():
    program = assemble(
        """
        mov %r1, %tid
        mov %r2, %gtid
        mov %r3, %laneid
        exit
        """
    )
    assert program[0].srcs[0] == Sreg("tid")
    assert program[1].srcs[0] == Sreg("gtid")


def test_bra_uni_alias():
    program = assemble(
        """
        bra.uni END
    END:
        exit
        """
    )
    assert program[0].opcode is Opcode.BRA
    assert program[0].guard is None


def test_setp_comparisons():
    for cmp in ("eq", "ne", "lt", "le", "gt", "ge"):
        program = assemble(f"setp.{cmp} %p1, %r1, %r2\nexit")
        assert program[0].cmp == cmp


def test_hex_immediates():
    program = assemble("mov %r1, 0xff\nexit")
    assert program[0].srcs[0] == Imm(255)


def test_negative_immediates():
    program = assemble("mov %r1, -42\nexit")
    assert program[0].srcs[0] == Imm(-42)


def test_atomics_shapes():
    program = assemble(
        """
        atom.cas %r1, [%r2], 0, 1
        atom.exch %r3, [%r2], 7
        atom.add %r4, [%r2], 1
        atom.min %r5, [%r2], %r1
        atom.max %r6, [%r2], %r1
        exit
        """
    )
    assert program[0].is_atomic and program[0].is_memory


# ---------------------------------------------------------------- errors


@pytest.mark.parametrize(
    "source, fragment",
    [
        ("bogus %r1, %r2\nexit", "unknown opcode"),
        ("setp.zz %p1, %r1, %r2\nexit", "unknown setp comparison"),
        ("add %r1, %r2\nexit", "expects 2 source"),
        ("bra\nexit", "exactly one label"),
        ("bra A, B\nexit", "exactly one label"),
        ("@%p1 !sync\nexit", "guard or role with no instruction"),
        ("mov %r1, %%bad\nexit", "cannot parse operand"),
        ("setp.eq %r1, %r2, %r3\nexit", "destination must be a predicate"),
        ("ld.global %r1, %r2\nexit", "must be a memory operand"),
        ("st.global %r1, %r2\nexit", "must be a memory operand"),
        ("ld.param %r1, [%r2]\nexit", "must be [param_name]"),
        ("atom.cas %r1, %r2, 0, 1\nexit", "memory operand"),
    ],
)
def test_parse_errors(source, fragment):
    with pytest.raises(AssemblyError, match=".*"):
        try:
            assemble(source)
        except AssemblyError as err:
            assert fragment in str(err)
            raise


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError, match="duplicate label"):
        assemble("A:\nmov %r1, 0\nA:\nexit")


def test_undefined_target_rejected():
    with pytest.raises(AssemblyError, match="undefined branch target"):
        assemble("bra NOWHERE\nexit")


def test_trailing_label_rejected():
    with pytest.raises(AssemblyError, match="at end of program"):
        assemble("exit\nDANGLING:")


def test_empty_program_rejected():
    with pytest.raises(AssemblyError, match="empty program"):
        assemble("// nothing here")


def test_fallthrough_end_rejected():
    with pytest.raises(ValueError, match="fall off the end"):
        assemble("exit\nmov %r1, 0")


def test_no_exit_rejected():
    with pytest.raises(ValueError, match="no 'exit'"):
        assemble("A:\nbra A")


# ------------------------------------------------------------ round-trip


def test_round_trip_disassembly():
    source = """
        ld.param %r_base, [data]
        mov %r_i, 0
    LOOP:
        shl %r_a, %r_i, 2
        add %r_a, %r_base, %r_a
        ld.global %r_v, [%r_a]
        atom.cas %r_o, [%r_a], 0, 1 !lock_try
        setp.lt %p1, %r_i, 10
        @%p1 bra LOOP !sib
        exit
    """
    first = assemble(source)
    second = assemble(first.to_text())
    assert len(first) == len(second)
    for a, b in zip(first.instructions, second.instructions):
        assert str(a) == str(b)
        assert a.target_index == b.target_index
        assert a.roles == b.roles


_REG_NAMES = st.sampled_from(["r1", "r2", "r3", "acc"])
_ALU = st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                        "min", "max"])


@st.composite
def _random_body(draw):
    lines = []
    for _ in range(draw(st.integers(1, 12))):
        op = draw(_ALU)
        dst = draw(_REG_NAMES)
        a = draw(_REG_NAMES)
        b = draw(st.one_of(_REG_NAMES,
                           st.integers(-100, 100).map(str)))
        b = f"%{b}" if not b.lstrip("-").isdigit() else b
        lines.append(f"    {op} %{dst}, %{a}, {b}")
    lines.append("    exit")
    return "\n".join(lines)


@given(_random_body())
def test_random_straightline_round_trips(body):
    first = assemble(body)
    second = assemble(first.to_text())
    assert [str(i) for i in first.instructions] == [
        str(i) for i in second.instructions
    ]
