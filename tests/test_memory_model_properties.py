"""Property tests: functional memory against a reference dict model."""

import numpy as np
from hypothesis import given, strategies as st

from repro.memory.memsys import GlobalMemory

WORDS = 64


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["write", "cas", "exch", "add"]))
        index = draw(st.integers(0, WORDS - 1))
        value = draw(st.integers(-(2**31), 2**31 - 1))
        if kind == "cas":
            compare = draw(st.integers(-4, 4))
            ops.append((kind, index, compare, value))
        else:
            ops.append((kind, index, value))
    return ops


def apply_reference(model, op):
    if op[0] == "write":
        model[op[1]] = op[2]
        return None
    if op[0] == "cas":
        old = model.get(op[1], 0)
        if old == op[2]:
            model[op[1]] = op[3]
        return old
    if op[0] == "exch":
        old = model.get(op[1], 0)
        model[op[1]] = op[2]
        return old
    if op[0] == "add":
        old = model.get(op[1], 0)
        model[op[1]] = old + op[2]
        return old
    raise AssertionError(op)


def apply_memory(memory, op):
    addr = op[1] * 4
    if op[0] == "write":
        memory.write_word(addr, op[2])
        return None
    old = memory.read_word(addr)
    if op[0] == "cas":
        if old == op[2]:
            memory.write_word(addr, op[3])
    elif op[0] == "exch":
        memory.write_word(addr, op[2])
    elif op[0] == "add":
        memory.write_word(addr, old + op[2])
    return old


@given(operations())
def test_rmw_sequences_match_reference(ops):
    """Sequential RMW semantics equal a dict model (atomicity is free
    in a single total order — which is exactly what the SM provides)."""
    memory = GlobalMemory(WORDS)
    model = {}
    for op in ops:
        expected = apply_reference(model, op)
        got = apply_memory(memory, op)
        assert got == expected
    for index in range(WORDS):
        assert memory.read_word(index * 4) == model.get(index, 0)


@given(
    st.lists(
        st.tuples(st.integers(0, WORDS - 1), st.integers(-(2**31), 2**31 - 1)),
        min_size=1, max_size=50,
    )
)
def test_vector_writes_match_scalar_writes(pairs):
    a = GlobalMemory(WORDS)
    b = GlobalMemory(WORDS)
    addrs = np.array([p[0] * 4 for p in pairs], dtype=np.int64)
    values = np.array([p[1] for p in pairs], dtype=np.int64)
    # Vector write applies in order; later duplicates win in both.
    for addr, value in zip(addrs, values):
        a.write_word(int(addr), int(value))
    b.write(addrs, values)
    assert (a.words == b.words).all()


@given(st.integers(1, WORDS), st.integers(1, 8))
def test_alloc_regions_never_overlap(n_words, align):
    memory = GlobalMemory(1 << 12)
    first = memory.alloc(n_words, align_words=align)
    second = memory.alloc(n_words, align_words=align)
    assert second >= first + n_words * 4
    assert (first // 4) % align == 0


@given(st.lists(st.integers(0, WORDS - 1), min_size=1, max_size=WORDS))
def test_store_then_load_array_roundtrip(indices):
    memory = GlobalMemory(WORDS * 2)
    base = memory.alloc(WORDS)
    values = list(range(len(indices)))
    memory.store_array(base, values)
    assert memory.load_array(base, len(values)).tolist() == values
