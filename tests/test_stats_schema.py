"""The ``SimStats.summary()`` reporting schema is frozen and versioned.

Downstream artifacts — lab result caches, sweep manifests,
``BENCH_hotloop.json``, the plotting pipeline — key on summary dicts.
This suite pins the exact key set (and order) to ``SUMMARY_KEYS`` and
the embedded ``schema_version`` to ``SUMMARY_SCHEMA_VERSION``: changing
either without bumping the version is a contract break this test makes
loud.
"""

from __future__ import annotations

from repro.api import simulate
from repro.metrics.stats import (SUMMARY_KEYS, SUMMARY_SCHEMA_VERSION,
                                 SimStats)
from repro.sim.config import GPUConfig


def test_summary_keys_are_frozen():
    summary = SimStats().summary()
    assert tuple(summary.keys()) == SUMMARY_KEYS


def test_summary_embeds_schema_version():
    assert SimStats().summary()["schema_version"] == SUMMARY_SCHEMA_VERSION
    assert SUMMARY_SCHEMA_VERSION == 1


def test_real_run_summary_matches_schema():
    result = simulate(
        "vecadd",
        config=GPUConfig.preset("fermi"),
        params=dict(n_threads=64, per_thread=2, block_dim=64),
    )
    summary = result.stats.summary()
    assert tuple(summary.keys()) == SUMMARY_KEYS
    assert summary["schema_version"] == SUMMARY_SCHEMA_VERSION
    assert summary["cycles"] > 0


def test_summary_values_are_json_plain():
    """Every summary value must serialize as-is (no numpy scalars)."""
    import json

    summary = SimStats().summary()
    assert json.loads(json.dumps(summary)) == summary
