"""The :func:`repro.api.simulate` facade: one entry point, four targets.

Covers target dispatch (name / Workload / KernelLaunch / Program),
config resolution (presets by name, scheduler override, watchdog
vocabulary), argument validation, the single-use workload guard, and
the deprecation path of the old harness entry points.
"""

from __future__ import annotations


import pytest

from repro.api import _resolve_config, simulate
from repro.isa import assemble
from repro.kernels import build as build_workload
from repro.kernels.base import WorkloadReuseError
from repro.memory.memsys import GlobalMemory
from repro.sim.config import GPUConfig
from repro.sim.gpu import KernelLaunch, SimResult

VECADD = dict(n_threads=64, per_thread=2, block_dim=64)


def test_simulate_by_name():
    result = simulate("vecadd", params=VECADD)
    assert isinstance(result, SimResult)
    assert result.cycles > 0


def test_simulate_workload_target():
    workload = build_workload("vecadd", **VECADD)
    result = simulate(workload, config=GPUConfig.preset("fermi"))
    assert result.cycles > 0


def test_workload_is_single_use():
    workload = build_workload("vecadd", **VECADD)
    simulate(workload)
    with pytest.raises(WorkloadReuseError):
        simulate(workload)


def test_workload_rejects_memory_and_params():
    workload = build_workload("vecadd", **VECADD)
    with pytest.raises(ValueError, match="memory"):
        simulate(workload, memory=GlobalMemory(256))
    with pytest.raises(ValueError, match="already built"):
        simulate(workload, params={"n_threads": 32})


def test_simulate_program_target():
    """A bare Program runs as one warp; params become ld.param values."""
    program = assemble(
        """
        ld.param %r_d, [dst]
        st.global [%r_d], %tid
        exit
        """
    )
    memory = GlobalMemory(1 << 12)
    dst = memory.alloc(32)
    result = simulate(program, memory=memory, params={"dst": dst})
    assert result.stats.warp_instructions == 3
    # All 32 lanes of the single warp store to the same word: the
    # highest lane lands last.
    assert memory.read_word(dst) == 31


def test_simulate_launch_target_rejects_params():
    program = assemble("exit")
    launch = KernelLaunch(program, grid_dim=1, block_dim=32, params={})
    assert simulate(launch).stats.warp_instructions == 1
    with pytest.raises(ValueError, match="launch.params"):
        simulate(launch, params={"x": 1})


def test_simulate_rejects_unknown_targets_and_configs():
    with pytest.raises(TypeError):
        simulate(42)
    with pytest.raises(TypeError):
        simulate("vecadd", config=3.14)


def test_config_resolution_vocabulary():
    assert _resolve_config(None, None, None) == GPUConfig.preset("fermi")
    assert _resolve_config("pascal", None, None) == \
        GPUConfig.preset("pascal")
    assert _resolve_config(None, "lrr", None).scheduler == "lrr"
    assert _resolve_config(None, None, False).no_progress_window == 0
    assert _resolve_config(None, None, 12345).no_progress_window == 12345
    base = GPUConfig.preset("fermi")
    assert _resolve_config(base, None, True) == base
    overridden = _resolve_config(
        None, None, {"no_progress_window": 99, "progress_epoch": 7})
    assert overridden.no_progress_window == 99
    assert overridden.progress_epoch == 7
    with pytest.raises(TypeError):
        _resolve_config(None, None, 1.5)


def test_engine_selection():
    fast = simulate("vecadd", params=VECADD, engine="fast")
    reference = simulate("vecadd", params=VECADD, engine="reference")
    assert fast.stats.summary() == reference.stats.summary()
    with pytest.raises(ValueError, match="engine"):
        simulate("vecadd", params=VECADD, engine="turbo")


def test_legacy_harness_entry_points_removed():
    """The deprecated run_workload/run_kernel shims are gone for good;
    make_config survives (pure configuration, no wiring to drift)."""
    import repro
    import repro.harness
    import repro.harness.runner as runner

    config = runner.make_config("gto")
    assert config == GPUConfig.preset("fermi", scheduler="gto")
    for name in ("run_workload", "run_kernel"):
        assert not hasattr(runner, name)
        assert not hasattr(repro, name)
        assert name not in repro.harness.__all__
    assert "run_workload" not in repro.__all__
