"""Dynamic sanitizer: unit checks, purity, and the plumbing around it.

Unit tests drive the :class:`Sanitizer` hooks directly with synthetic
thread/address traffic (one call per simulated access — no GPU needed);
integration tests assert the two contracts the rest of the repo relies
on: registered kernels run sanitize-clean, and turning the sanitizer on
never changes simulated state (stats bitwise identical on both engines).
"""

from __future__ import annotations

import pytest

from repro.analysis import Sanitizer, SanitizerConfig, as_sanitizer
from repro.api import simulate
from repro.sim.config import GPUConfig

HT = dict(n_threads=128, n_buckets=8, items_per_thread=1, block_dim=64)


def _thread(lane=0, warp=0, cta=0, sm=0):
    """note_* positional prefix: (sm, cta, warp_in_cta[, lane])."""
    return sm, cta, warp


# ----------------------------------------------------------------------
# Coercion and config

def test_as_sanitizer_coercions():
    assert as_sanitizer(None) is None
    assert as_sanitizer(False) is None
    assert isinstance(as_sanitizer(True), Sanitizer)
    config = SanitizerConfig(track_reads=True)
    assert as_sanitizer(config).config is config
    sanitizer = Sanitizer()
    assert as_sanitizer(sanitizer) is sanitizer
    with pytest.raises(TypeError):
        as_sanitizer("yes")


def test_config_round_trip_and_hashable():
    config = SanitizerConfig(max_diagnostics=5, track_reads=True)
    assert SanitizerConfig.from_dict(config.to_dict()) == config
    assert hash(config) != hash(SanitizerConfig())


# ----------------------------------------------------------------------
# Unit: the SAN* checks on synthetic traffic

def test_san001_write_write_race_detected():
    san = Sanitizer()
    san.begin_run("unit")
    # Warp 0 lane 0 acquires lock @64 and writes @100 while holding it.
    san.note_atomic(0, 0, 0, 0, 64, pc=1, cycle=10, lock_try=True,
                    success=True, release=False, wrote=True)
    san.note_store(0, 0, 0, [0], [100], pc=2, cycle=11, release=False)
    # Warp 1 lane 0 writes @100 with no lock: race.
    san.note_store(0, 0, 1, [0], [100], pc=7, cycle=20, release=False)
    (diag,) = san.diagnostics
    assert diag.id == "SAN001" and diag.detail["kind"] == "write-write"
    assert diag.detail["other_pc"] == 2
    assert not san.ok and san.races == [diag]


def test_common_lock_suppresses_race():
    san = Sanitizer()
    san.begin_run("unit")
    for warp in (0, 1):
        san.note_atomic(0, 0, warp, 0, 64, pc=1, cycle=10, lock_try=True,
                        success=True, release=False, wrote=True)
        san.note_store(0, 0, warp, [0], [100], pc=2, cycle=11,
                       release=False)
        san.note_atomic(0, 0, warp, 0, 64, pc=3, cycle=12, lock_try=False,
                        success=False, release=True, wrote=True)
    assert san.ok
    assert san.counters["lock_acquires"] == 2
    assert san.counters["lock_releases"] == 2


def test_barrier_epoch_establishes_happens_before():
    san = Sanitizer()
    san.begin_run("unit")
    san.note_atomic(0, 0, 0, 0, 64, pc=1, cycle=10, lock_try=True,
                    success=True, release=False, wrote=True)
    san.note_store(0, 0, 0, [0], [100], pc=2, cycle=11, release=False)
    san.note_barrier_release(cta=0, cycle=15)
    # After the CTA-wide barrier the unlocked write is ordered: no race.
    san.note_store(0, 0, 1, [0], [100], pc=7, cycle=20, release=False)
    assert san.ok and san.counters["barrier_epochs"] == 1


def test_unrelated_unlocked_writes_are_not_races():
    """Two lock-free writers conflict only when at least one side holds
    a lock — plain data-parallel output is not flagged."""
    san = Sanitizer()
    san.begin_run("unit")
    san.note_store(0, 0, 0, [0], [100], pc=2, cycle=11, release=False)
    san.note_store(0, 0, 1, [0], [100], pc=7, cycle=20, release=False)
    assert san.ok


def test_san002_divergent_barrier():
    san = Sanitizer()
    san.begin_run("unit")
    san.note_barrier(0, 0, 0, pc=5, cycle=30, stack_depth=2)
    (diag,) = san.diagnostics
    assert diag.id == "SAN002" and diag.severity == "error"
    san.note_barrier(0, 0, 1, pc=9, cycle=31, stack_depth=1)
    assert len(san.diagnostics) == 1  # converged warp is fine


def test_san003_release_without_hold():
    san = Sanitizer()
    san.begin_run("unit")
    san.note_atomic(0, 0, 0, 0, 64, pc=4, cycle=9, lock_try=False,
                    success=False, release=True, wrote=True)
    (diag,) = san.diagnostics
    assert diag.id == "SAN003"
    # Plain-store releases are checked the same way.
    san.note_store(0, 0, 2, [0], [64], pc=8, cycle=12, release=True)
    assert [d.id for d in san.diagnostics] == ["SAN003", "SAN003"]


def test_san004_plain_store_to_lock_word():
    san = Sanitizer()
    san.begin_run("unit")
    san.note_atomic(0, 0, 0, 0, 64, pc=1, cycle=10, lock_try=True,
                    success=False, release=False, wrote=False)
    san.note_store(0, 0, 1, [0], [64], pc=6, cycle=12, release=False)
    (diag,) = san.diagnostics
    assert diag.id == "SAN004" and diag.severity == "warning"


def test_read_write_race_is_opt_in():
    def drive(san):
        san.begin_run("unit")
        san.note_atomic(0, 0, 0, 0, 64, pc=1, cycle=10, lock_try=True,
                        success=True, release=False, wrote=True)
        san.note_store(0, 0, 0, [0], [100], pc=2, cycle=11, release=False)
        san.note_load(0, 0, 1, [0], [100], pc=7, cycle=20)

    quiet = Sanitizer()
    drive(quiet)
    assert quiet.ok

    loud = Sanitizer(SanitizerConfig(track_reads=True))
    drive(loud)
    (diag,) = loud.diagnostics
    assert diag.id == "SAN001" and diag.detail["kind"] == "read-write"


def test_diagnostics_dedup_by_pc_with_counts():
    san = Sanitizer()
    san.begin_run("unit")
    for cycle in (9, 10, 11):
        san.note_atomic(0, 0, 0, 0, 64, pc=4, cycle=cycle, lock_try=False,
                        success=False, release=True, wrote=True)
    assert len(san.diagnostics) == 1
    assert san.counts[("SAN003", 4)] == 3
    assert "[x3]" in san.render()


def test_max_diagnostics_cap():
    san = Sanitizer(SanitizerConfig(max_diagnostics=3))
    san.begin_run("unit")
    for pc in range(10):
        san.note_atomic(0, 0, 0, 0, 64, pc=pc, cycle=pc, lock_try=False,
                        success=False, release=True, wrote=True)
    assert len(san.diagnostics) <= 3


def test_to_dict_shape():
    san = Sanitizer()
    san.begin_run("ht")
    san.note_store(0, 0, 0, [0], [100], pc=2, cycle=11, release=False)
    data = san.to_dict()
    assert data["kernel"] == "ht" and data["ok"]
    assert data["counters"]["checked_writes"] == 1
    assert data["config"] == SanitizerConfig().to_dict()


# ----------------------------------------------------------------------
# Integration: simulate(sanitize=...)

def _config(**kwargs):
    return GPUConfig.preset("fermi", scheduler="gto", num_sms=1,
                            max_warps_per_sm=8, **kwargs)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_sanitize_on_is_clean_and_pure(engine):
    """The sanitizer is a pure observer: identical stats with it on,
    and a correct lock kernel produces zero findings."""
    config = _config()
    off = simulate("ht", config=config, params=HT, engine=engine)
    sanitizer = Sanitizer()
    on = simulate("ht", config=config, params=HT, engine=engine,
                  sanitize=sanitizer)
    assert on.stats.summary() == off.stats.summary()
    assert on.sanitizer is sanitizer
    assert sanitizer.ok, sanitizer.render()
    assert sanitizer.counters["lock_acquires"] > 0
    assert sanitizer.counters["lock_releases"] > 0
    assert sanitizer.counters["raw_writes"] >= \
        sanitizer.counters["checked_writes"]


def test_sanitize_true_and_barrier_epochs():
    result = simulate("reduction", config=_config(),
                      params=dict(n_threads=128, block_dim=64),
                      sanitize=True)
    assert result.sanitizer is not None and result.sanitizer.ok
    assert result.sanitizer.counters["barrier_epochs"] > 0


def test_sanitizer_findings_reach_the_event_bus():
    from repro.obs import EventBus
    from repro.obs.events import SanitizerFinding

    bus = EventBus()
    san = Sanitizer(bus=bus)
    san.begin_run("unit")
    san.note_barrier(0, 0, 0, pc=5, cycle=30, stack_depth=3)
    (event,) = list(bus)
    assert isinstance(event, SanitizerFinding)
    assert event.diag_id == "SAN002" and event.pc == 5


# ----------------------------------------------------------------------
# Lab / hashing / fuzz / hang-report plumbing

def test_runspec_sanitize_field_hashes_only_when_set():
    from repro.lab import RunSpec

    base = RunSpec(kernel="vecadd", config=_config(),
                   params=dict(n_threads=64, per_thread=2, block_dim=32))
    sanitized = RunSpec(kernel="vecadd", config=base.config,
                        params=dict(base.params),
                        sanitize=SanitizerConfig())
    assert base.content_hash() != sanitized.content_hash()
    assert "sanitize" not in base.to_dict()
    restored = RunSpec.from_dict(sanitized.to_dict())
    assert restored.sanitize == SanitizerConfig()
    assert restored.content_hash() == sanitized.content_hash()


def test_lab_run_carries_sanitizer_payload():
    from repro.lab import RunSpec, Runner

    spec = RunSpec(kernel="ht", config=_config(), params=dict(HT),
                   sanitize=SanitizerConfig())
    (run,) = Runner(workers=1).run_map([spec])
    assert run.ok and run.sanitizer is not None
    assert run.sanitizer["ok"] is True
    assert run.sanitizer["counters"]["lock_acquires"] > 0


def test_fuzzer_classifies_sanitizer_findings_as_races():
    from repro.fuzz import ScheduleFuzzer
    from repro.lab import Runner
    from repro.lab.results import RunResult
    from repro.metrics.stats import SimStats

    def racy(spec):
        return RunResult(
            spec_hash=spec.content_hash(), cycles=100,
            stats=SimStats(cycles=100),
            sanitizer={"ok": False, "diagnostics": [
                {"id": "SAN001", "pc": 9, "severity": "error",
                 "message": "write-write race on @100"},
            ]},
        )

    fuzzer = ScheduleFuzzer(
        "vecadd", params=dict(n_threads=64, per_thread=2, block_dim=32),
        budget_cycles=50_000, sanitize=True)
    assert fuzzer.spec_for(0).sanitize == SanitizerConfig()
    report = fuzzer.run(2, runner=Runner(workers=1, run_fn=racy),
                        shrink=False)
    assert not report.clean
    assert [f.kind for f in report.findings] == ["race", "race"]
    assert report.races[0].diagnostics[0]["id"] == "SAN001"
    assert "race" in report.summary()


def test_hang_report_carries_diagnostics():
    from repro.sim.progress import HangReport

    diag = {"id": "SAN003", "pc": 4, "severity": "error",
            "message": "release of lock @64 that this lane does not hold"}
    report = HangReport(kind="deadlock", cycle=500, window=100,
                        reason="all warps blocked", diagnostics=[diag])
    data = report.to_dict()
    assert data["diagnostics"] == [diag]
    assert HangReport.from_dict(data).diagnostics == [diag]
    assert "SAN003" in report.describe()
    # Absent diagnostics stay off the wire entirely.
    empty = HangReport(kind="deadlock", cycle=1, window=1, reason="r")
    assert "diagnostics" not in empty.to_dict()
