"""Metrics containers, the energy model, and the Table III cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cost import hardware_cost, history_bits_per_warp
from repro.energy.model import EnergyCosts, EnergyModel
from repro.memory.memsys import MemoryStats
from repro.metrics.stats import LockStats, SimStats
from repro.sim.config import DDOSConfig, fermi_config

# ---------------------------------------------------------------- stats


def test_lockstats_totals():
    locks = LockStats(lock_success=3, inter_warp_fail=5, intra_warp_fail=2,
                      wait_exit_success=1, wait_exit_fail=4)
    assert locks.total == 15
    assert locks.acquire_attempts == 10
    assert locks.fail_rate == pytest.approx(0.7)


def test_lockstats_empty_fail_rate():
    assert LockStats().fail_rate == 0.0


def test_simd_efficiency():
    stats = SimStats(warp_instructions=10, active_lane_sum=160)
    assert stats.simd_efficiency == pytest.approx(0.5)
    assert SimStats().simd_efficiency == 0.0


def test_backed_off_fraction():
    stats = SimStats(backed_off_warp_cycles=25.0, resident_warp_cycles=100.0)
    assert stats.backed_off_fraction == 0.25
    assert SimStats().backed_off_fraction == 0.0


def test_fraction_metrics():
    stats = SimStats(thread_instructions=100, sync_thread_instructions=60)
    assert stats.sync_instruction_fraction == 0.6
    stats.memory.sync_transactions = 3
    stats.memory.load_transactions = 4
    assert stats.sync_transaction_fraction == pytest.approx(0.75)


def test_merge_accumulates():
    a = SimStats(warp_instructions=5, thread_instructions=100)
    a.locks.lock_success = 2
    a.memory.load_transactions = 7
    b = SimStats(warp_instructions=3, thread_instructions=50)
    b.locks.lock_success = 1
    b.memory.load_transactions = 2
    a.merge(b)
    assert a.warp_instructions == 8
    assert a.locks.lock_success == 3
    assert a.memory.load_transactions == 9


def test_summary_keys():
    summary = SimStats().summary()
    for key in ("cycles", "ipc", "simd_efficiency", "lock_success"):
        assert key in summary


# --------------------------------------------------------------- energy


def make_stats(**kwargs) -> SimStats:
    stats = SimStats(cycles=1000, warp_instructions=100,
                     thread_instructions=3200)
    for name, value in kwargs.items():
        setattr(stats.memory, name, value)
    return stats


def test_energy_breakdown_sums():
    model = EnergyModel(num_sms=2)
    breakdown = model.evaluate(make_stats(l1_hits=10, l2_hits=5,
                                          dram_accesses=2,
                                          atomic_transactions=3))
    assert breakdown.total_pj == pytest.approx(
        breakdown.frontend_pj + breakdown.execution_pj
        + breakdown.memory_pj + breakdown.clocking_pj
    )
    assert breakdown.total_pj > 0


def test_energy_scales_with_instructions():
    model = EnergyModel()
    low = model.evaluate(make_stats())
    busy = make_stats()
    busy.warp_instructions *= 10
    busy.thread_instructions *= 10
    high = model.evaluate(busy)
    assert high.total_pj > low.total_pj


def test_dram_dominates_sram():
    costs = EnergyCosts()
    assert costs.dram_access_pj > costs.l2_access_pj > costs.l1_access_pj


@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_energy_monotone_in_memory_traffic(l1, dram):
    model = EnergyModel()
    a = model.evaluate(make_stats(l1_hits=l1, dram_accesses=dram))
    b = model.evaluate(make_stats(l1_hits=l1 + 1, dram_accesses=dram + 1))
    assert b.total_pj > a.total_pj


# ----------------------------------------------------------------- cost


def test_paper_cost_numbers():
    config = fermi_config(ddos=DDOSConfig())
    cost = hardware_cost(config)
    assert cost.sib_pt_bits == 560        # 16 x 35
    assert cost.history_bits == 9216      # 48 x 192
    assert cost.pending_delay_bits == 672  # 48 x 14
    assert cost.ddos_bits == 560 + 9216


def test_history_bits_per_warp_matches_paper():
    assert history_bits_per_warp(DDOSConfig()) == 192


def test_time_sharing_shrinks_history_cost():
    shared = hardware_cost(
        fermi_config(ddos=DDOSConfig(time_sharing=True)))
    private = hardware_cost(fermi_config(ddos=DDOSConfig()))
    assert shared.history_bits == private.history_bits // 48


@given(
    bits=st.sampled_from([2, 3, 4, 8]),
    length=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_history_cost_formula(bits, length):
    ddos = DDOSConfig(path_bits=bits, value_bits=bits,
                      history_length=length)
    assert history_bits_per_warp(ddos) == 3 * bits * length


def test_cost_uses_default_ddos_when_absent():
    cost = hardware_cost(fermi_config())
    assert cost.history_bits == 9216


def test_total_bytes():
    cost = hardware_cost(fermi_config(ddos=DDOSConfig()))
    assert cost.total_bytes == cost.total_bits / 8
