"""Multiple kernel launches against one GPU / one memory image."""

from repro.harness.runner import make_config
from repro.kernels import build
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import GPU


def test_sequential_launches_share_memory(tiny_config):
    """Two workloads allocated in one memory image run back to back."""
    memory = GlobalMemory(1 << 18)
    first = build("vecadd", n_threads=64, per_thread=2, block_dim=32,
                  memory=memory)
    second = build("ht", n_threads=64, n_buckets=8, items_per_thread=1,
                   block_dim=64, memory=memory)
    gpu = GPU(tiny_config, memory=memory)
    result_a = gpu.launch(first.launch)
    result_b = gpu.launch(second.launch)
    first.validate(memory)
    second.validate(memory)
    assert result_a.cycles > 0 and result_b.cycles > 0


def test_relaunching_same_program_is_idempotent_for_stats(tiny_config):
    """Each launch gets fresh SMs/stats; cycles match exactly."""
    memory = GlobalMemory(1 << 18)
    results = []
    for _ in range(2):
        workload = build("vecadd", n_threads=64, per_thread=2,
                         block_dim=32, memory=memory)
        gpu = GPU(tiny_config, memory=memory)
        results.append(gpu.launch(workload.launch))
    assert results[0].cycles == results[1].cycles
    assert (results[0].stats.warp_instructions
            == results[1].stats.warp_instructions)


def test_ddos_state_does_not_leak_across_launches():
    """A fresh launch starts with an empty SIB-PT."""
    config = make_config("gto", bows=True, num_sms=1, max_warps_per_sm=8)
    memory = GlobalMemory(1 << 18)
    spin = build("ht", n_threads=128, n_buckets=8, items_per_thread=1,
                 block_dim=64, memory=memory)
    gpu = GPU(config, memory=memory)
    first = gpu.launch(spin.launch)
    assert first.predicted_sibs()
    clean = build("vecadd", n_threads=64, per_thread=2, block_dim=32,
                  memory=memory)
    second = gpu.launch(clean.launch)
    assert second.predicted_sibs() == set()
