"""Schedule-perturbation fuzzing: determinism, classification, shrink.

Real-simulation coverage uses the tiny ``vecadd`` kernel (schedule
perturbation must never change a data-parallel kernel's result); the
hang-classification and shrink paths run against injected ``run_fn``
stubs keyed off each spec's ``PerturbConfig``, so they are fast and
exercise exactly the policy under test.
"""

from __future__ import annotations

import json

from repro.fuzz import FuzzReport, ScheduleFuzzer
from repro.kernels import WorkloadError
from repro.lab import Runner
from repro.lab.results import RunResult
from repro.metrics.stats import SimStats
from repro.sim.progress import (
    HangReport,
    SimulationLivelock,
    SimulationTimeout,
)

VECADD = dict(n_threads=64, per_thread=2, block_dim=32)


def _fuzzer(**kwargs) -> ScheduleFuzzer:
    defaults = dict(params=dict(VECADD), budget_cycles=50_000)
    defaults.update(kwargs)
    return ScheduleFuzzer("vecadd", **defaults)


def _ok(spec) -> RunResult:
    return RunResult(spec_hash=spec.content_hash(), cycles=100,
                     stats=SimStats(cycles=100))


def _stub_report(cycle: int = 1234) -> HangReport:
    return HangReport(kind="livelock", cycle=cycle, window=500,
                      reason="stub hang")


# ----------------------------------------------------------------------
# Real simulations


def test_clean_kernel_fuzzes_clean():
    report = _fuzzer().run(3)
    assert report.seeds == [0, 1, 2]
    assert report.clean == [0, 1, 2]
    assert not report.findings and not report.exhausted
    assert report.shrink is None
    assert "3 clean" in report.summary()


def test_same_seed_is_deterministic():
    fuzzer = _fuzzer()
    first = fuzzer.run([5], shrink=False)
    second = fuzzer.run([5], shrink=False)
    a, b = first.to_dict(), second.to_dict()
    a.pop("elapsed_s"), b.pop("elapsed_s")
    assert a == b
    # The perturbation is part of the spec's content hash: same seed,
    # same simulation; different seed, different simulation.
    assert (fuzzer.spec_for(5).content_hash()
            == fuzzer.spec_for(5).content_hash())
    assert (fuzzer.spec_for(5).content_hash()
            != fuzzer.spec_for(6).content_hash())


def test_perturbation_does_not_break_data_parallel_kernel():
    """Validation runs inside each fuzz run: a perturbed schedule must
    still compute the right answer for a sync-free kernel."""
    report = _fuzzer(sched_jitter=0.5, mem_jitter_cycles=40,
                     rotation_period=7).run(4)
    assert report.clean == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Classification (stubbed run_fn)


def test_hang_finding_carries_forensics_and_repro():
    def hang_on_seed_one(spec):
        if spec.config.perturb.seed == 1:
            raise SimulationLivelock("spin forever", _stub_report())
        return _ok(spec)

    runner = Runner(workers=1, run_fn=hang_on_seed_one)
    report = _fuzzer().run(3, runner=runner, shrink=False)
    assert report.clean == [0, 2]
    (finding,) = report.findings
    assert finding.seed == 1
    assert finding.kind == "livelock"
    assert finding.error_type == "SimulationLivelock"
    assert finding.hang is not None and finding.hang["cycle"] == 1234
    assert finding.perturb["seed"] == 1
    repro = report.repro_command()
    assert "--seed-base 1" in repro and "fuzz vecadd" in repro


def test_budget_timeout_is_not_a_hang_finding():
    def slow(spec):
        raise SimulationTimeout("still going", None)

    report = _fuzzer().run(2, runner=Runner(workers=1, run_fn=slow),
                           shrink=False)
    assert report.exhausted == [0, 1]
    assert not report.findings and not report.hangs


def test_validation_mismatch_classified():
    def wrong_answer(spec):
        raise WorkloadError("histogram mismatch at bucket 3")

    report = _fuzzer().run(1, runner=Runner(workers=1, run_fn=wrong_answer),
                           shrink=False)
    (finding,) = report.findings
    assert finding.kind == "validation"
    assert report.validation_failures and not report.hangs


def test_report_json_round_trips():
    def hang(spec):
        raise SimulationLivelock("x", _stub_report())

    report = _fuzzer().run(1, runner=Runner(workers=1, run_fn=hang),
                           shrink=False)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["findings"][0]["kind"] == "livelock"
    assert payload["first_hang_repro"].startswith("python -m repro fuzz")


# ----------------------------------------------------------------------
# Shrink


def test_shrink_isolates_the_culprit_axis():
    def jitter_sensitive(spec):
        if spec.config.perturb.sched_jitter > 0:
            raise SimulationLivelock("jitter exposed it", _stub_report())
        return _ok(spec)

    report = _fuzzer().run(1, runner=Runner(workers=1,
                                            run_fn=jitter_sensitive))
    assert report.shrink is not None
    assert report.shrink["axes"] == ["sched_jitter"]
    assert not report.shrink["schedule_independent"]
    assert report.shrink["perturb"]["mem_jitter_cycles"] == 0
    assert report.shrink["perturb"]["rotation_period"] == 0


def test_shrink_detects_schedule_independent_hang():
    def always_hangs(spec):
        raise SimulationLivelock("broken regardless", _stub_report())

    report = _fuzzer().run(1, runner=Runner(workers=1, run_fn=always_hangs))
    assert report.shrink["schedule_independent"]
    assert report.shrink["axes"] == []
    assert report.shrink["shrink_runs"] == 3


def test_fuzz_report_type_exported():
    assert isinstance(_fuzzer().run(0), FuzzReport)
