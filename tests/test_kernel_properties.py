"""Property-based tests: kernel invariants hold across random workloads.

These are the mutual-exclusion witnesses: whatever the seed, contention
level, or scheduler, every lock-protected update must survive, sums must
be conserved, and no lock may be left held.  Hypothesis drives the
workload parameters; each case fully simulates the kernel.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import build

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def config(scheduler="gto", bows=None):
    return make_config(scheduler, bows=bows, num_sms=1,
                       max_warps_per_sm=4, max_cycles=8_000_000)


@SLOW
@given(
    seed=st.integers(0, 1000),
    n_buckets=st.sampled_from([4, 8, 16]),
    scheduler=st.sampled_from(["lrr", "gto", "cawa"]),
)
def test_hashtable_mutual_exclusion(seed, n_buckets, scheduler):
    workload = build("ht", n_threads=64, n_buckets=n_buckets,
                     items_per_thread=1, block_dim=64, seed=seed)
    simulate(workload, config=config(scheduler))  # validate() runs inside


@SLOW
@given(
    seed=st.integers(0, 1000),
    n_accounts=st.sampled_from([8, 16, 32]),
    bows=st.sampled_from([None, 500, True]),
)
def test_atm_balance_conservation(seed, n_accounts, bows):
    workload = build("atm", n_threads=64, n_accounts=n_accounts,
                     rounds=1, block_dim=64, seed=seed)
    simulate(workload, config=config(bows=bows))


@SLOW
@given(seed=st.integers(0, 1000))
def test_tsp_global_minimum(seed):
    workload = build("tsp", n_threads=64, eval_iters=8, block_dim=64,
                     seed=seed)
    simulate(workload, config=config())


@SLOW
@given(
    seed=st.integers(0, 1000),
    n_particles=st.sampled_from([16, 24, 40]),
)
def test_cloth_ledger_replay(seed, n_particles):
    workload = build("ds", n_threads=64, n_particles=n_particles,
                     constraints_per_thread=1, block_dim=64, seed=seed)
    simulate(workload, config=config())


@SLOW
@given(
    n_cols=st.sampled_from([32, 64]),
    direction=st.sampled_from([1, 2]),
    bows=st.sampled_from([None, True]),
)
def test_nw_dataflow_order(n_cols, direction, bows):
    workload = build(f"nw{direction}", n_threads=64, n_cols=n_cols,
                     cell_work=2, block_dim=64)
    simulate(workload, config=config(bows=bows))


@SLOW
@given(seed=st.integers(0, 1000), bows=st.sampled_from([None, 1000]))
def test_tb_no_lost_bodies(seed, bows):
    workload = build("tb", n_threads=64, n_cells=8, items_per_thread=1,
                     block_dim=64, seed=seed)
    simulate(workload, config=config(bows=bows))


@SLOW
@given(n_cells=st.sampled_from([64, 128, 256]))
def test_st_signal_order(n_cells):
    workload = build("st", n_threads=64, n_cells=n_cells, cell_work=2,
                     block_dim=64)
    simulate(workload, config=config())


@SLOW
@given(
    seed=st.integers(0, 1000),
    kernel=st.sampled_from(["kmeans", "vecadd", "stencil", "histogram"]),
)
def test_sync_free_kernels_compute_correctly(seed, kernel):
    params = {"n_threads": 64, "block_dim": 32, "seed": seed}
    if kernel != "reduction":
        params["per_thread"] = 4
    workload = build(kernel, **params)
    simulate(workload, config=config())


def test_lock_table_is_empty_after_every_sync_kernel():
    """No kernel may finish with a lock recorded as held."""
    from repro.memory.memsys import GlobalMemory
    from repro.sim.gpu import GPU

    cases = {
        "ht": dict(n_threads=64, n_buckets=8, items_per_thread=1,
                   block_dim=64),
        "atm": dict(n_threads=64, n_accounts=16, rounds=1, block_dim=64),
        "ds": dict(n_threads=64, n_particles=16,
                   constraints_per_thread=1, block_dim=64),
    }
    for name, params in cases.items():
        workload = build(name, **params)
        gpu = GPU(config(), memory=workload.memory)
        gpu.launch(workload.launch)
        workload.validate(workload.memory)
