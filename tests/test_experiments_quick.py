"""Experiment harness smoke tests at quick scale.

The full-scale regenerations live in ``benchmarks/``; here we check that
each experiment function produces correctly-shaped rows and that the
headline directional claims already show up at reduced scale where they
robustly should.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.params import sync_free_params, sync_params


def test_params_registries_cover_all_kernels():
    for scale in ("full", "quick"):
        params = sync_params(scale)
        assert set(params) == set(E.KERNEL_ORDER)
        free = sync_free_params(scale)
        assert "ms" in free and "hl" in free
    with pytest.raises(ValueError):
        sync_params("huge")


def test_fig1_quick():
    result = E.fig1(scale="quick", buckets=(8, 32))
    assert [row["buckets"] for row in result.rows] == [8, 32]
    for row in result.rows:
        assert 0.0 <= row["sync_instr_frac"] <= 1.0
        assert row["gpu_us"] > 0 and row["cpu_us"] > 0
    # Contention raises the sync share.
    assert result.rows[0]["sync_instr_frac"] >= result.rows[1][
        "sync_instr_frac"] - 0.05


def test_fig2_quick_subset():
    result = E.fig2(scale="quick", kernels=["ht", "st"])
    assert len(result.rows) == 6  # 2 kernels x 3 schedulers
    ht_lrr = result.rows[0]
    assert ht_lrr["scheme"] == "lrr"
    total = (ht_lrr["lock_success"] + ht_lrr["inter_warp_fail"]
             + ht_lrr["intra_warp_fail"])
    assert total == pytest.approx(1.0, abs=0.01)  # normalized to itself


def test_fig3_quick():
    result = E.fig3(scale="quick", delay_factors=(0, 100))
    assert result.rows[0]["normalized_time"] == 1.0
    assert result.rows[1]["warp_instructions"] > result.rows[0][
        "warp_instructions"]


def test_fig9_quick_subset():
    result = E.fig9(scale="quick", kernels=["ht", "tb"])
    assert {row["kernel"] for row in result.rows} == {"ht", "tb"}
    for row in result.rows:
        for scheme in ("lrr", "gto", "cawa"):
            assert row[f"{scheme}_time"] > 0
            assert row[f"{scheme}+bows_energy"] > 0
    assert "speedup_vs_gto" in result.headline


def test_delay_sweep_and_projections():
    sweep = E.run_delay_sweep(
        scale="quick", kernels=["ht"], delays=(None, 0, 2000, "adaptive")
    )
    assert len(sweep) == 4
    f10 = E.fig10(sweep=sweep)
    f11 = E.fig11(sweep=sweep)
    f12 = E.fig12(sweep=sweep)
    f13 = E.fig13(sweep=sweep)
    row10 = f10.rows[0]
    assert row10["gto"] == 1.0
    assert row10["bows(2000)"] > 0
    row11 = f11.rows[0]
    assert row11["gto"] == 0.0
    assert row11["bows(2000)"] > 0.0
    row12 = f12.rows[0]
    assert row12["bows(2000)"] < row12["gto"]  # fewer attempts
    metrics = {r["metric"] for r in f13.rows}
    assert metrics == {"instructions", "memory_tx", "simd_eff"}


def test_fig14_quick():
    result = E.fig14(scale="quick", delays=(0, 3000))
    rows = {row["kernel"]: row for row in result.rows}
    assert rows["ms"]["bows(3000)"] > 1.0     # falsely throttled
    assert rows["kmeans"]["bows(3000)"] <= 1.02
    assert rows["ms"]["bows(3000)+xor"] <= 1.02


def test_fig16_quick():
    result = E.fig16(scale="quick", buckets=(8, 32))
    for row in result.rows:
        assert row["ideal_blocking_instr"] < 1.0
        assert row["ideal_blocking_instr"] <= row["bows_instr"]


def test_tab3_matches_paper():
    result = E.tab3()
    totals = next(r for r in result.rows if r["component"] == "TOTAL")
    assert totals["bits"] >= 10_000


def test_experiment_render():
    result = E.tab3()
    text = result.render()
    assert "tab3" in text and "SIB-PT" in text


def test_all_experiments_registry():
    assert set(E.ALL_EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "tab1", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "tab3",
    }
