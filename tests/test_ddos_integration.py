"""DDOS end-to-end: detection accuracy on real kernel executions."""

import pytest

from repro.harness.ddos_eval import evaluate_ddos, score_result
from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import build
from repro.sim.config import DDOSConfig

SYNC_CASES = {
    "ht": dict(n_threads=128, n_buckets=8, items_per_thread=1,
               block_dim=64),
    # TSP/ST need enough concurrently-spinning warps for the SIB-PT
    # confidence to outrun the aliasing-guard decrements (the paper's
    # machine has 48 warps per SM; short spin episodes train slowly).
    "tsp": dict(n_threads=128, eval_iters=4, block_dim=64),
    "st": dict(n_threads=256, n_cells=1024, cell_work=4, block_dim=128),
    "nw1": dict(n_threads=128, n_cols=32, cell_work=4, block_dim=64),
    "atm": dict(n_threads=128, n_accounts=16, rounds=1, block_dim=64),
}

FREE_CASES = {
    "kmeans": dict(n_threads=64, per_thread=16, block_dim=32),
    "ms": dict(n_threads=64, iterations=16, stride=256, block_dim=32),
    "hl": dict(n_threads=64, iterations=12, stride=512, block_dim=32),
    "vecadd": dict(n_threads=64, per_thread=8, block_dim=32),
    "histogram": dict(n_threads=64, per_thread=8, block_dim=32),
    "reduction": dict(n_threads=64, block_dim=32),
    "stencil": dict(n_threads=64, per_thread=8, block_dim=32),
}


def run_with_ddos(kernel, params, **ddos_overrides):
    config = make_config(
        "gto", ddos=DDOSConfig(**ddos_overrides),
        num_sms=1, max_warps_per_sm=8, max_cycles=5_000_000,
    )
    workload = build(kernel, **params)
    return simulate(workload, config=config)


@pytest.mark.parametrize("kernel", sorted(SYNC_CASES))
def test_xor_detects_every_exercised_spin_loop(kernel):
    result = run_with_ddos(kernel, SYNC_CASES[kernel])
    truth = result.launch.program.true_sibs()
    detected = result.predicted_sibs()
    # Every true spin loop is found...
    assert truth <= detected, (kernel, detected, truth)
    # ...and any extra detection is transient: on a merged wait/work
    # warp, a work loop's backward branch can briefly gain confidence
    # while warp-mates spin, but the aliasing guard drains it — by the
    # end of the run it is no longer predicted spin-inducing.
    for extra in detected - truth:
        assert not any(
            engine.is_sib(extra) for engine in result.ddos_engines
        ), (kernel, extra)


@pytest.mark.parametrize("kernel", sorted(FREE_CASES))
def test_xor_has_no_false_detections(kernel):
    result = run_with_ddos(kernel, FREE_CASES[kernel])
    assert result.predicted_sibs() == set(), kernel


@pytest.mark.parametrize("kernel", ["ms", "hl"])
def test_modulo_falsely_detects_power_of_two_strides(kernel):
    result = run_with_ddos(kernel, FREE_CASES[kernel], hashing="modulo")
    assert result.predicted_sibs(), kernel


@pytest.mark.parametrize("kernel", ["kmeans", "vecadd", "histogram"])
def test_modulo_clean_on_small_stride_loops(kernel):
    result = run_with_ddos(kernel, FREE_CASES[kernel], hashing="modulo")
    assert result.predicted_sibs() == set(), kernel


def test_narrow_hash_aliases():
    """2-bit hashes alias aggressively (Table I, width sweep)."""
    summary = evaluate_ddos(
        DDOSConfig(path_bits=2, value_bits=2),
        ["ms", "hl", "kmeans"],
        {k: FREE_CASES[k] for k in ("ms", "hl", "kmeans")},
        base_config=make_config("gto", num_sms=1, max_warps_per_sm=8),
    )
    wide = evaluate_ddos(
        DDOSConfig(path_bits=8, value_bits=8),
        ["ms", "hl", "kmeans"],
        {k: FREE_CASES[k] for k in ("ms", "hl", "kmeans")},
        base_config=make_config("gto", num_sms=1, max_warps_per_sm=8),
    )
    assert summary.avg_fsdr >= wide.avg_fsdr


def test_short_history_misses_detections():
    result = run_with_ddos("ht", SYNC_CASES["ht"], history_length=1)
    assert result.predicted_sibs() == set()


def test_score_result_metrics():
    result = run_with_ddos("ht", SYNC_CASES["ht"])
    outcome = score_result("ht", result)
    assert outcome.tsdr == 1.0
    assert outcome.fsdr == 0.0
    assert all(0.0 <= d <= 1.0 for d in outcome.true_dprs)


def test_detection_is_fast_relative_to_execution():
    """Paper: avg detection-phase ratio around 0.04 for true SIBs."""
    result = run_with_ddos("ht", SYNC_CASES["ht"])
    outcome = score_result("ht", result)
    assert outcome.true_dprs and max(outcome.true_dprs) < 0.6


def test_evaluate_ddos_summary_shape():
    summary = evaluate_ddos(
        DDOSConfig(),
        ["ht", "kmeans"],
        {"ht": SYNC_CASES["ht"], "kmeans": FREE_CASES["kmeans"]},
        base_config=make_config("gto", num_sms=1, max_warps_per_sm=8),
    )
    row = summary.as_row()
    assert set(row) == {"TSDR", "DPR(true)", "FSDR", "DPR(false)"}
    assert row["TSDR"] == 1.0
    assert row["FSDR"] == 0.0
