// SIB002: the loop stores every iteration (forward progress) yet claims !sib.
    mov %r_i, 0
    mov %r_out, 64
LOOP:
    add %r_i, %r_i, 1
    st.global [%r_out], %r_i
    setp.lt %p1, %r_i, 10
    @%p1 bra LOOP !sib
    exit
