// CFG001: the mov block is unreachable from kernel entry.
    bra END
    mov %r_dead, 1
END:
    exit
