// LOCK001 (+LOCK003): the lock is acquired but no release exists anywhere.
    mov %r_lock, 64
SPIN:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN !sib
    exit
