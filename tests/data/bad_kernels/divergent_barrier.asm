// BAR001: bar.sync reachable under divergence created by a %gtid branch.
    setp.eq %p1, %gtid, 0
    @%p1 bra SKIP
    bar.sync
SKIP:
    exit
