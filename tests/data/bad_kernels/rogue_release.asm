// LOCK002: releases a lock that no path can hold here.
    mov %r_lock, 64
    atom.exch %r_ig, [%r_lock], 0 !lock_release
    exit
