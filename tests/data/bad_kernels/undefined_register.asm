// REG001: %r_never_set is read before any definition.
    add %r_sum, %r_never_set, 1
    exit
