// SIB001: polls a global flag forever but the closing branch has no !sib.
    mov %r_flag_addr, 64
SPIN:
    ld.global %r_v, [%r_flag_addr]
    setp.eq %p1, %r_v, 0
    @%p1 bra SPIN
    exit
