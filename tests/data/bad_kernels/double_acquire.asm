// LOCK004: blocking re-acquire of a lock this lane already holds.
    mov %r_lock, 64
SPIN1:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN1 !sib
SPIN2:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN2 !sib
    atom.exch %r_ig, [%r_lock], 0 !lock_release
    exit
