// LOCK003: one path (through SKIP) exits while still holding the lock.
    mov %r_lock, 64
    mov %r_sel, 0
SPIN:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try
    setp.ne %p1, %r_old, 0
    @%p1 bra SPIN !sib
    setp.eq %p2, %r_sel, 0
    @%p2 bra SKIP
    atom.exch %r_ig, [%r_lock], 0 !lock_release
SKIP:
    exit
