"""SIMT reconvergence stack: divergence, reconvergence, lane exit."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.simt_stack import SIMTStack


def mask(*lanes, size=8):
    m = np.zeros(size, dtype=bool)
    for lane in lanes:
        m[lane] = True
    return m


def full(size=8):
    return np.ones(size, dtype=bool)


def test_initial_state():
    stack = SIMTStack(8, start_pc=3)
    assert stack.pc == 3
    assert stack.active_mask.all()
    assert stack.depth == 1
    assert not stack.finished


def test_partial_initial_mask():
    stack = SIMTStack(8, initial_mask=mask(0, 1, 2))
    assert int(stack.active_mask.sum()) == 3


def test_advance():
    stack = SIMTStack(8)
    stack.advance()
    assert stack.pc == 1


def test_uniform_taken_branch():
    stack = SIMTStack(8, start_pc=5)
    diverged = stack.branch(full(), target=2, rpc=10)
    assert not diverged
    assert stack.pc == 2
    assert stack.depth == 1


def test_uniform_not_taken_branch():
    stack = SIMTStack(8, start_pc=5)
    diverged = stack.branch(np.zeros(8, dtype=bool), target=2, rpc=10)
    assert not diverged
    assert stack.pc == 6


def test_divergence_executes_taken_path_first():
    stack = SIMTStack(8, start_pc=5)
    taken = mask(0, 1, 2)
    diverged = stack.branch(taken, target=20, rpc=30)
    assert diverged
    assert stack.depth == 3
    assert stack.pc == 20
    assert (stack.active_mask == taken).all()


def test_reconvergence_restores_full_mask():
    stack = SIMTStack(8, start_pc=5)
    taken = mask(0, 1)
    stack.branch(taken, target=20, rpc=30)
    # Taken path runs 20..29 then pops at the reconvergence point.
    for pc in range(20, 30):
        assert stack.pc == pc
        stack.advance()
    # Fall-through path now runs from 6.
    assert stack.pc == 6
    assert (stack.active_mask == ~taken).all()
    for _ in range(6, 30):
        stack.advance()
    # Reconverged: full mask at the RPC.
    assert stack.pc == 30
    assert stack.active_mask.all()
    assert stack.depth == 1


def test_branch_to_reconvergence_point_not_pushed():
    """Lanes branching straight to the RPC wait there, no stack entry."""
    stack = SIMTStack(8, start_pc=5)
    taken = mask(0, 1)
    # Taken target IS the reconvergence point (break-style branch).
    stack.branch(taken, target=30, rpc=30)
    assert stack.depth == 2
    assert stack.pc == 6  # fall-through runs first; taken waits at RPC
    assert (stack.active_mask == ~taken).all()


def test_loop_back_branch_keeps_loopers_active():
    stack = SIMTStack(8, start_pc=9)
    loopers = mask(2, 3)
    stack.branch(loopers, target=4, rpc=10)
    assert stack.pc == 4
    assert (stack.active_mask == loopers).all()


def test_exit_all_lanes_finishes():
    stack = SIMTStack(8)
    stack.exit_lanes(full())
    assert stack.finished


def test_exit_partial_lanes():
    stack = SIMTStack(8)
    stack.exit_lanes(mask(0, 1, 2))
    assert not stack.finished
    assert int(stack.active_mask.sum()) == 5


def test_exit_clears_lanes_from_all_entries():
    stack = SIMTStack(8, start_pc=5)
    stack.branch(mask(0, 1, 2, 3), target=20, rpc=30)
    stack.exit_lanes(mask(0, 1, 2, 3))  # entire taken path exits
    # The taken entry vanished; fall-through is now on top.
    assert stack.pc == 6
    assert int(stack.active_mask.sum()) == 4


def test_divergence_at_exit_reconvergence():
    from repro.isa.program import RECONVERGE_AT_EXIT

    stack = SIMTStack(8, start_pc=5)
    stack.branch(mask(0), target=20, rpc=RECONVERGE_AT_EXIT)
    assert stack.pc == 20
    stack.exit_lanes(mask(0))
    assert stack.pc == 6
    stack.exit_lanes(mask(1, 2, 3, 4, 5, 6, 7))
    assert stack.finished


def test_nested_divergence():
    stack = SIMTStack(8, start_pc=0)
    stack.branch(mask(0, 1, 2, 3), target=10, rpc=50)  # outer
    assert stack.pc == 10
    stack.branch(mask(0, 1), target=20, rpc=40)        # inner, on taken path
    assert stack.pc == 20
    assert stack.depth == 5
    # Run inner-taken to its RPC.
    for _ in range(20, 40):
        stack.advance()
    assert stack.pc == 11  # inner fall-through
    assert (stack.active_mask == mask(2, 3)).all()


@given(
    taken_lanes=st.lists(st.integers(0, 7), max_size=8),
    target=st.integers(0, 9),
)
def test_branch_preserves_lane_partition(taken_lanes, target):
    """After any branch, pushed masks partition the parent mask."""
    stack = SIMTStack(8, start_pc=5)
    taken = mask(*taken_lanes) if taken_lanes else np.zeros(8, dtype=bool)
    stack.branch(taken, target=target, rpc=12)
    entries = stack.entries()
    union = np.zeros(8, dtype=bool)
    for entry in entries[1:] if len(entries) > 1 else entries:
        overlap = np.logical_and(union, entry.mask)
        assert not overlap.any(), "pushed masks overlap"
        union |= entry.mask
    # Whatever is on top is a subset of the original full mask.
    assert int(stack.active_mask.sum()) <= 8
    assert stack.active_mask.any()


@given(st.data())
def test_random_walks_never_corrupt_masks(data):
    """Random branch/advance/exit sequences keep invariants."""
    stack = SIMTStack(8, start_pc=0)
    for _ in range(data.draw(st.integers(1, 30))):
        if stack.finished:
            break
        action = data.draw(st.sampled_from(["advance", "branch", "exit"]))
        if action == "advance":
            stack.advance()
        elif action == "branch":
            lanes = data.draw(st.lists(st.integers(0, 7), max_size=8))
            taken = mask(*lanes) if lanes else np.zeros(8, dtype=bool)
            pc = stack.pc
            stack.branch(taken, target=max(pc - 3, 0), rpc=pc + 4)
        else:
            lanes = data.draw(
                st.lists(st.integers(0, 7), min_size=1, max_size=8)
            )
            stack.exit_lanes(mask(*lanes))
        if not stack.finished:
            # TOS mask is never empty and depth is bounded.
            assert stack.active_mask.any()
            # Each divergence adds at most two entries.
            assert stack.depth <= 64
