"""Regeneration of every table and figure in the paper's evaluation.

Each ``fig*``/``tab*`` function runs the required simulations and returns
an :class:`ExperimentResult` whose rows mirror the paper's artifact
(kernels as rows, schemes as columns, values normalized the way the
paper normalizes them).  ``benchmarks/`` wraps these one-to-one;
EXPERIMENTS.md records paper-vs-measured for each.

Figures 10-13 share one parameter sweep (the same GTO+BOWS delay-limit
runs); :func:`run_delay_sweep` executes it once and the four figure
functions project different columns out of it.

Execution goes through :mod:`repro.lab`: every figure/table expands its
simulations into :class:`~repro.lab.RunSpec` batches and drives them
through the *current* lab runner (``repro.lab.current_runner()``).  The
default runner is serial and uncached — identical behaviour to the old
in-line loops — but installing a parallel, disk-cached runner (as the
CLI and ``benchmarks/`` do) fans each figure out across worker
processes and makes re-runs cache hits.  Results come back as
:class:`~repro.lab.RunResult` records exposing the same ``.cycles`` and
``.stats`` the figures read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness import ddos_eval
from repro.harness.cpu_model import CPUModel, gpu_time_us
from repro.harness.params import (
    KERNEL_ORDER,
    sync_free_params,
    sync_params,
)
from repro.harness.reporting import format_table, geomean
from repro.harness.runner import make_config
from repro.core.cost import hardware_cost
from repro.lab import RunResult, RunSpec, current_runner
from repro.metrics.stats import SimStats
from repro.sim.config import DDOSConfig, GPUConfig

#: Scheduler set of Figures 2, 9, 15.
BASELINES = ("lrr", "gto", "cawa")

#: Back-off delay-limit sweep of Figures 10-13 (None = plain GTO,
#: "adaptive" = the Figure 5 controller).
DELAY_SWEEP: Tuple = (None, 0, 500, 1000, 3000, 5000, "adaptive")


@dataclass
class ExperimentResult:
    """One regenerated artifact."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]]
    columns: Optional[List[str]] = None
    notes: str = ""
    #: Headline scalars (e.g. geomean speedups) for EXPERIMENTS.md.
    headline: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        text = format_table(self.rows, self.columns,
                            title=f"{self.experiment_id}: {self.title}")
        if self.headline:
            summary = ", ".join(
                f"{k}={v:.3f}" for k, v in self.headline.items()
            )
            text += f"\n  -> {summary}"
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


def _spec(kernel: str, config: GPUConfig, params: dict,
          validate: bool = True, label: Optional[str] = None) -> RunSpec:
    return RunSpec(kernel=kernel, config=config, params=dict(params),
                   validate=validate, label=label or kernel)


def _run_all(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Execute a batch through the current lab runner (raises on failure)."""
    return current_runner().run_map(specs)


def _run(kernel: str, config: GPUConfig, params: dict,
         validate: bool = True) -> RunResult:
    return _run_all([_spec(kernel, config, params, validate)])[0]


def _bows_variant(base: str, bows, preset: str = "fermi",
                  **overrides) -> GPUConfig:
    return make_config(base, bows=bows, preset=preset, **overrides)


# ----------------------------------------------------------------------
# Figure 1 — motivation: hashtable under contention


def fig1(scale: str = "full",
         buckets: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Figure 1b-e: GPU-vs-CPU time, instruction/memory overheads, SIMD.

    Sweeps hashtable bucket counts (fewer buckets = more contention) on
    the GTO baseline, comparing against the serial-CPU analytical model,
    and measuring the sync shares of dynamic instructions (1c) and
    memory transactions (1d) plus single- vs multi-warp SIMD efficiency
    (1e).
    """
    params = sync_params(scale)["ht"]
    if buckets is None:
        buckets = (8, 16, 32, 64, 128) if scale == "full" else (8, 32)
    cpu = CPUModel()
    specs = []
    for n_buckets in buckets:
        p = dict(params, n_buckets=n_buckets)
        specs.append(_spec("ht", make_config("gto"), p,
                           label=f"ht buckets={n_buckets}"))
        specs.append(_spec(
            "ht",
            make_config("gto", num_sms=1, max_warps_per_sm=1),
            dict(p, n_threads=32, block_dim=32),
            label=f"ht buckets={n_buckets} single-warp",
        ))
    runs = iter(_run_all(specs))
    rows = []
    for n_buckets in buckets:
        p = dict(params, n_buckets=n_buckets)
        result = next(runs)
        single = next(runs)
        stats = result.stats
        n_insertions = p["n_threads"] * p["items_per_thread"]
        rows.append({
            "buckets": n_buckets,
            "gpu_us": round(gpu_time_us(result.cycles), 1),
            "cpu_us": round(cpu.hashtable_time_us(n_insertions, n_buckets), 1),
            "sync_instr_frac": round(stats.sync_instruction_fraction, 3),
            "sync_mem_frac": round(stats.sync_transaction_fraction, 3),
            "simd_single_warp": round(single.stats.simd_efficiency, 3),
            "simd_multi_warp": round(stats.simd_efficiency, 3),
        })
    return ExperimentResult(
        "fig1",
        "Fine-grained synchronization overheads on the hashtable",
        rows,
        notes=(
            "paper: sync overhead 61-98% of instructions, 41-96% of "
            "memory traffic; SIMD efficiency collapses with multiple "
            "warps; GPU beats serial CPU once buckets grow"
        ),
    )


# ----------------------------------------------------------------------
# Figure 2 — lock/wait outcome distribution per baseline scheduler


def _lock_row(kernel: str, scheme: str, stats: SimStats,
              normalizer: float) -> Dict[str, object]:
    locks = stats.locks
    scale = 1.0 / normalizer if normalizer else 0.0
    return {
        "kernel": kernel,
        "scheme": scheme,
        "lock_success": round(locks.lock_success * scale, 3),
        "inter_warp_fail": round(locks.inter_warp_fail * scale, 3),
        "intra_warp_fail": round(locks.intra_warp_fail * scale, 3),
        "wait_exit_success": round(locks.wait_exit_success * scale, 3),
        "wait_exit_fail": round(locks.wait_exit_fail * scale, 3),
        "total_raw": locks.total,
    }


def fig2(scale: str = "full",
         kernels: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 2: synchronization outcome distribution under LRR/GTO/CAWA.

    Counts are normalized per kernel to the LRR total (the paper's bars
    are relative to LRR), so a bar above 1.0 means the policy caused
    *more* synchronization attempts than LRR.
    """
    params = sync_params(scale)
    kernels = list(kernels or KERNEL_ORDER)
    specs = [
        _spec(kernel, make_config(scheme), params[kernel],
              label=f"{kernel} {scheme}")
        for kernel in kernels for scheme in BASELINES
    ]
    runs = iter(_run_all(specs))
    rows = []
    for kernel in kernels:
        lrr_total: Optional[float] = None
        for scheme in BASELINES:
            result = next(runs)
            if lrr_total is None:
                lrr_total = float(result.stats.locks.total or 1)
            rows.append(_lock_row(kernel, scheme, result.stats, lrr_total))
    return ExperimentResult(
        "fig2",
        "Synchronization status distribution (normalized to LRR total)",
        rows,
        notes="paper: most failures are inter-warp; distribution is "
              "strongly scheduler-dependent",
    )


# ----------------------------------------------------------------------
# Figure 3 — software-only back-off hurts


def fig3(scale: str = "full",
         delay_factors: Sequence[int] = (0, 50, 100, 500, 1000),
         ) -> ExperimentResult:
    """Figure 3: in-kernel clock()-polling back-off delay on the hashtable.

    The paper's point: software back-off wastes issue slots executing
    the delay code itself, so (except at very high contention) it does
    not pay off — which motivates doing back-off in the *scheduler*.
    We report time, dynamic instructions, and energy, plus a GTO+BOWS
    reference row: hardware back-off reaches the same (or better) time
    while *removing* instructions instead of multiplying them.

    Known deviation: our scaled simulator under-prices issue slots
    (~30 resident warps vs ~700 on the paper's GTX1080), so the delay
    code's slot cost does not show up as lost time here; it shows up —
    exactly as the paper argues — as a large dynamic-instruction and
    energy overhead relative to BOWS.
    """
    params = sync_params(scale)["ht"]
    specs = []
    for factor in delay_factors:
        if factor == 0:
            specs.append(_spec("ht", make_config("gto"), params,
                               label="ht no-delay"))
        else:
            specs.append(_spec("ht_backoff", make_config("gto"),
                               dict(params, delay_factor=factor),
                               label=f"ht sw-delay({factor})"))
    specs.append(_spec("ht", make_config("gto", bows=True), params,
                       label="ht bows"))
    *delay_runs, bows = _run_all(specs)
    rows = []
    baseline = None
    for factor, result in zip(delay_factors, delay_runs):
        if baseline is None:
            baseline = result
        rows.append({
            "scheme": ("no delay" if factor == 0
                       else f"sw delay({factor})"),
            "normalized_time": round(result.cycles / baseline.cycles, 3),
            "warp_instructions": result.stats.warp_instructions,
            "normalized_energy": round(
                result.stats.dynamic_energy_pj
                / baseline.stats.dynamic_energy_pj, 3),
        })
    rows.append({
        "scheme": "BOWS (hardware)",
        "normalized_time": round(bows.cycles / baseline.cycles, 3),
        "warp_instructions": bows.stats.warp_instructions,
        "normalized_energy": round(
            bows.stats.dynamic_energy_pj
            / baseline.stats.dynamic_energy_pj, 3),
    })
    return ExperimentResult(
        "fig3",
        "Software back-off delay vs hardware back-off on the hashtable",
        rows,
        notes="paper: software back-off burns issue slots on delay code; "
              "BOWS achieves back-off in the scheduler for free",
    )


# ----------------------------------------------------------------------
# Table I — DDOS sensitivity


def _ddos_kernel_set(scale: str) -> Tuple[List[str], Dict[str, dict]]:
    sync = sync_params("quick" if scale == "quick" else "full")
    free = sync_free_params(scale)
    # DDOS accuracy needs both spinning and loop-rich sync-free kernels;
    # the heavy sync kernels run at reduced size to keep Table I cheap.
    kernels = ["ht", "atm", "tsp", "st", "nw1",
               "kmeans", "ms", "hl", "vecadd", "reduction", "histogram"]
    quick_sync = sync_params("quick")
    merged = {}
    for name in kernels:
        if name in free:
            merged[name] = free[name]
        else:
            merged[name] = quick_sync[name] if scale != "quick" else sync[name]
    return kernels, merged


def tab1(scale: str = "full") -> ExperimentResult:
    """Table I: DDOS detection accuracy vs design parameters.

    Five sub-sweeps — hashing function, hash width m=k, confidence
    threshold t, history length l, and time sharing — each scored as
    average TSDR / FSDR / detection-phase ratio over the kernel set.
    """
    kernels, kparams = _ddos_kernel_set(scale)
    base = make_config("gto", ddos=True)

    def evaluate(ddos: DDOSConfig) -> Dict[str, float]:
        summary = ddos_eval.evaluate_ddos(
            ddos, kernels, kparams, base_config=base
        )
        return summary.as_row()

    rows: List[Dict[str, object]] = []

    def add(sweep: str, setting: str, ddos: DDOSConfig) -> None:
        row: Dict[str, object] = {"sweep": sweep, "setting": setting}
        row.update(evaluate(ddos))
        rows.append(row)

    # Hashing function (at t=4, l=8).
    for hashing, bits in (("xor", 4), ("xor", 8),
                          ("modulo", 4), ("modulo", 8)):
        add("hashing", f"{hashing}, m=k={bits}",
            DDOSConfig(hashing=hashing, path_bits=bits, value_bits=bits))
    # Hash width (XOR).
    for bits in (2, 3, 4, 8):
        add("width", f"m=k={bits}",
            DDOSConfig(path_bits=bits, value_bits=bits))
    # Confidence threshold.
    for t in (2, 4, 8, 12):
        add("threshold", f"t={t}", DDOSConfig(confidence_threshold=t))
    # History length.
    for length in (1, 2, 4, 8):
        add("history", f"l={length}", DDOSConfig(history_length=length))
    # Time sharing.
    for sharing, bits in ((False, 8), (True, 8), (True, 4)):
        add("time-sharing", f"sh={int(sharing)}, m=k={bits}",
            DDOSConfig(time_sharing=sharing, path_bits=bits,
                       value_bits=bits))

    default = next(
        r for r in rows if r["sweep"] == "hashing"
        and r["setting"] == "xor, m=k=8"
    )
    return ExperimentResult(
        "tab1",
        "DDOS sensitivity to design parameters (avg over kernels)",
        rows,
        headline={
            "tsdr_default": float(default["TSDR"]),
            "fsdr_default": float(default["FSDR"]),
        },
        notes="paper: XOR m=k=8 achieves TSDR=1.0 with FSDR=0; MODULO "
              "falsely detects MS/HL power-of-two-stride loops; l>=8 and "
              "t=4 balance accuracy and detection speed; time sharing "
              "degrades accuracy",
    )


# ----------------------------------------------------------------------
# Figures 9 / 15 — BOWS on top of LRR/GTO/CAWA (Fermi / Pascal)


def _bows_matrix(scale: str, preset: str,
                 kernels: Optional[Sequence[str]] = None,
                 ) -> ExperimentResult:
    params = sync_params(scale)
    kernels = list(kernels or KERNEL_ORDER)
    specs = []
    for kernel in kernels:
        for base in BASELINES:
            specs.append(_spec(kernel, _bows_variant(base, None, preset),
                               params[kernel],
                               label=f"{kernel} {base} {preset}"))
            specs.append(_spec(kernel, _bows_variant(base, True, preset),
                               params[kernel],
                               label=f"{kernel} {base}+bows {preset}"))
    runs = iter(_run_all(specs))
    rows = []
    speedups: Dict[str, List[float]] = {b: [] for b in BASELINES}
    energy_savings: Dict[str, List[float]] = {b: [] for b in BASELINES}
    for kernel in kernels:
        row: Dict[str, object] = {"kernel": kernel}
        lrr_cycles = None
        lrr_energy = None
        for base in BASELINES:
            plain = next(runs)
            bows = next(runs)
            if lrr_cycles is None:
                lrr_cycles = plain.cycles
                lrr_energy = plain.stats.dynamic_energy_pj
            row[f"{base}_time"] = round(plain.cycles / lrr_cycles, 3)
            row[f"{base}+bows_time"] = round(bows.cycles / lrr_cycles, 3)
            row[f"{base}_energy"] = round(
                plain.stats.dynamic_energy_pj / lrr_energy, 3)
            row[f"{base}+bows_energy"] = round(
                bows.stats.dynamic_energy_pj / lrr_energy, 3)
            speedups[base].append(plain.cycles / bows.cycles)
            energy_savings[base].append(
                plain.stats.dynamic_energy_pj / bows.stats.dynamic_energy_pj
            )
        rows.append(row)
    headline = {}
    for base in BASELINES:
        headline[f"speedup_vs_{base}"] = geomean(speedups[base])
        headline[f"energy_saving_vs_{base}"] = geomean(energy_savings[base])
    return ExperimentResult(
        "fig9" if preset == "fermi" else "fig15",
        f"BOWS on {preset}: normalized time and dynamic energy (vs LRR)",
        rows,
        headline=headline,
        notes="paper (Fermi): BOWS speedup 2.2x/1.4x/1.5x and energy "
              "savings 2.3x/1.7x/1.6x vs LRR/GTO/CAWA; "
              "paper (Pascal): 1.9x/1.7x/1.5x speedups",
    )


def fig9(scale: str = "full", **kwargs) -> ExperimentResult:
    """Figure 9: normalized execution time and energy, GTX480-shaped."""
    return _bows_matrix(scale, "fermi", **kwargs)


def fig15(scale: str = "full", **kwargs) -> ExperimentResult:
    """Figure 15: the Figure 9 matrix on the GTX1080Ti-shaped config."""
    return _bows_matrix(scale, "pascal", **kwargs)


# ----------------------------------------------------------------------
# Figures 10-13 — back-off delay-limit sweep (shared runs)


def run_delay_sweep(
    scale: str = "full",
    kernels: Optional[Sequence[str]] = None,
    delays: Sequence = DELAY_SWEEP,
) -> Dict[Tuple[str, object], RunResult]:
    """GTO + BOWS at each delay limit, for each kernel (Figures 10-13)."""
    params = sync_params(scale)
    kernels = list(kernels or KERNEL_ORDER)
    keys: List[Tuple[str, object]] = []
    specs: List[RunSpec] = []
    for kernel in kernels:
        for delay in delays:
            if delay is None:
                config = make_config("gto")
            elif delay == "adaptive":
                config = make_config("gto", bows=True)
            else:
                config = make_config("gto", bows=int(delay))
            keys.append((kernel, delay))
            specs.append(_spec(kernel, config, params[kernel],
                               label=f"{kernel} delay={delay}"))
    return dict(zip(keys, _run_all(specs)))


def _sweep_table(
    sweep: Dict[Tuple[str, object], RunResult],
    value: Callable[[RunResult], float],
    normalize_to_gto: bool,
    fmt: Callable[[float], object] = lambda v: round(v, 3),
) -> List[Dict[str, object]]:
    kernels = sorted({k for k, _ in sweep}, key=KERNEL_ORDER.index)
    # Canonical column order: GTO baseline, fixed delays ascending,
    # adaptive last — derived from the sweep actually run.
    present = {d for _, d in sweep}
    delays = [d for d in present if d is None]
    delays += sorted(d for d in present if isinstance(d, int))
    delays += [d for d in present if d == "adaptive"]
    rows = []
    for kernel in kernels:
        row: Dict[str, object] = {"kernel": kernel}
        base = value(sweep[(kernel, None)]) if normalize_to_gto else 1.0
        base = base or 1.0
        for delay in delays:
            key = "gto" if delay is None else f"bows({delay})"
            row[key] = fmt(value(sweep[(kernel, delay)]) / base)
        rows.append(row)
    return rows


def fig10(sweep: Optional[Dict] = None,
          scale: str = "full") -> ExperimentResult:
    """Figure 10: execution time vs back-off delay limit (norm. to GTO)."""
    sweep = sweep if sweep is not None else run_delay_sweep(scale)
    rows = _sweep_table(sweep, lambda r: float(r.cycles), True)
    return ExperimentResult(
        "fig10", "Normalized execution time across delay limits", rows,
        notes="paper: small delays are inert (spin iterations already "
              "take longer), oversized delays throttle too hard (TSP); "
              "adaptive tracks the per-kernel sweet spot",
    )


def fig11(sweep: Optional[Dict] = None,
          scale: str = "full") -> ExperimentResult:
    """Figure 11: fraction of resident warps in the backed-off state."""
    sweep = sweep if sweep is not None else run_delay_sweep(scale)
    rows = _sweep_table(
        sweep, lambda r: r.stats.backed_off_fraction, False
    )
    return ExperimentResult(
        "fig11", "Average backed-off warp fraction across delay limits",
        rows,
        notes="paper: back-off only engages past a per-kernel threshold "
              "set by the natural spin-iteration time",
    )


def fig12(sweep: Optional[Dict] = None,
          scale: str = "full") -> ExperimentResult:
    """Figure 12: lock/wait outcome counts across delay limits (vs GTO)."""
    sweep = sweep if sweep is not None else run_delay_sweep(scale)
    rows = _sweep_table(
        sweep, lambda r: float(r.stats.locks.total or 1), True
    )
    headline = {}
    ht_vals = [
        (delay, float(result.stats.locks.acquire_attempts or 1))
        for (kernel, delay), result in sweep.items()
        if kernel == "ht"
    ]
    if ht_vals:
        base = dict(ht_vals).get(None)
        adaptive = dict(ht_vals).get("adaptive")
        if base and adaptive:
            headline["ht_attempt_reduction_adaptive"] = base / adaptive
    return ExperimentResult(
        "fig12",
        "Synchronization attempts across delay limits (normalized to GTO)",
        rows,
        headline=headline,
        notes="paper: BOWS reduces HT lock failures by 10.8x vs GTO",
    )


def fig13(sweep: Optional[Dict] = None,
          scale: str = "full") -> ExperimentResult:
    """Figure 13: instruction count, memory transactions, SIMD efficiency."""
    sweep = sweep if sweep is not None else run_delay_sweep(scale)
    instr = _sweep_table(
        sweep, lambda r: float(r.stats.thread_instructions), True)
    mem = _sweep_table(
        sweep, lambda r: float(r.stats.memory.total_transactions), True)
    simd = _sweep_table(sweep, lambda r: r.stats.simd_efficiency, False)
    rows = []
    for row in instr:
        rows.append(dict(row, metric="instructions"))
    for row in mem:
        rows.append(dict(row, metric="memory_tx"))
    for row in simd:
        rows.append(dict(row, metric="simd_eff"))
    adaptive_instr = [
        1.0 / row["bows(adaptive)"]
        for row in instr if row.get("bows(adaptive)")
    ]
    headline = {}
    if adaptive_instr:
        headline["instr_reduction_adaptive"] = geomean(adaptive_instr)
    return ExperimentResult(
        "fig13",
        "Dynamic overheads across delay limits (instr/mem normalized to "
        "GTO; SIMD absolute)",
        rows,
        headline=headline,
        notes="paper: BOWS cuts dynamic instructions 2.1x and L1D "
              "transactions 19% vs GTO; SIMD efficiency up 3.4x on HT",
    )


# ----------------------------------------------------------------------
# Figure 14 — cost of MODULO-hash false detections


def fig14(scale: str = "full",
          delays: Sequence = (0, 500, 1000, 3000, 5000),
          ) -> ExperimentResult:
    """Figure 14: BOWS + MODULO hashing on synchronization-free kernels.

    MODULO hashing falsely flags the power-of-two-stride loops of MS and
    HL as spins, so BOWS throttles innocent loops; with XOR hashing
    there are no false detections and results match the baseline.
    """
    free = sync_free_params(scale)
    kernels = ["ms", "hl", "kmeans", "vecadd"]
    if scale == "full":
        kernels.append("reduction")
    largest = delays[-1]
    specs = []
    for kernel in kernels:
        specs.append(_spec(kernel, make_config("gto"), free[kernel],
                           label=f"{kernel} gto"))
        for delay in delays:
            modulo = make_config(
                "gto", bows=int(delay),
                ddos=DDOSConfig(hashing="modulo"),
            )
            specs.append(_spec(kernel, modulo, free[kernel],
                               label=f"{kernel} modulo({delay})"))
        specs.append(_spec(kernel, make_config("gto", bows=int(largest)),
                           free[kernel], label=f"{kernel} xor({largest})"))
    runs = iter(_run_all(specs))
    rows = []
    slowdowns = []
    for kernel in kernels:
        base = next(runs)
        row: Dict[str, object] = {"kernel": kernel, "gto": 1.0}
        for delay in delays:
            result = next(runs)
            row[f"bows({delay})"] = round(result.cycles / base.cycles, 3)
        xor_result = next(runs)
        row[f"bows({largest})+xor"] = round(
            xor_result.cycles / base.cycles, 3)
        rows.append(row)
        slowdowns.append(row[f"bows({delays[-1]})"])
    return ExperimentResult(
        "fig14",
        "Detection-error overhead: GTO+BOWS with MODULO hashing on "
        "sync-free kernels (normalized to GTO)",
        rows,
        headline={"worst_modulo_slowdown": max(slowdowns)},
        notes="paper: only MS and HL regress (power-of-two strides); "
              "XOR hashing shows zero false detections so sync-free "
              "kernels match the baseline exactly",
    )


# ----------------------------------------------------------------------
# Figure 16 — sensitivity to contention


def fig16(scale: str = "full",
          buckets: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Figure 16: BOWS speedup and instruction count vs bucket count,
    with the magic-lock instruction count as the ideal-blocking (HQL)
    proxy."""
    params = sync_params(scale)["ht"]
    if buckets is None:
        buckets = (8, 16, 32, 64, 128) if scale == "full" else (8, 32)
    specs = []
    for n_buckets in buckets:
        p = dict(params, n_buckets=n_buckets)
        specs.append(_spec("ht", make_config("gto"), p,
                           label=f"ht buckets={n_buckets} gto"))
        specs.append(_spec("ht", make_config("gto", bows=True), p,
                           label=f"ht buckets={n_buckets} bows"))
        specs.append(_spec("ht", make_config("gto", magic_locks=True), p,
                           validate=False,
                           label=f"ht buckets={n_buckets} ideal"))
    runs = iter(_run_all(specs))
    rows = []
    speedups = []
    for n_buckets in buckets:
        base = next(runs)
        bows = next(runs)
        ideal = next(runs)
        base_instr = float(base.stats.thread_instructions)
        speedup = base.cycles / bows.cycles
        speedups.append(speedup)
        rows.append({
            "buckets": n_buckets,
            "bows_speedup": round(speedup, 3),
            "bows_instr": round(
                bows.stats.thread_instructions / base_instr, 3),
            "ideal_blocking_instr": round(
                ideal.stats.thread_instructions / base_instr, 3),
        })
    return ExperimentResult(
        "fig16",
        "Sensitivity to contention: HT bucket sweep "
        "(instr normalized to GTO)",
        rows,
        headline={
            "max_speedup": max(speedups),
            "min_speedup": min(speedups),
        },
        notes="paper: speedup 5x at high contention down to 1.2x at low; "
              "BOWS's instruction count approaches the ideal blocking "
              "lock as buckets grow",
    )


# ----------------------------------------------------------------------
# Table III — hardware cost


def tab3() -> ExperimentResult:
    """Table III: per-SM storage for DDOS + BOWS."""
    config = make_config("gto", bows=True)
    cost = hardware_cost(config)
    rows = [
        {"component": "SIB-PT", "bits": cost.sib_pt_bits,
         "paper_bits": 560},
        {"component": "History registers", "bits": cost.history_bits,
         "paper_bits": 9216},
        {"component": "Pending delay counters",
         "bits": cost.pending_delay_bits, "paper_bits": 672},
        {"component": "Backed-off queue",
         "bits": cost.backed_off_queue_bits, "paper_bits": 240},
        {"component": "TOTAL", "bits": cost.total_bits,
         "paper_bits": 560 + 9216 + 672 + 240},
    ]
    return ExperimentResult(
        "tab3", "DDOS and BOWS implementation cost per SM (bits)", rows,
        headline={"total_bytes": cost.total_bytes},
    )


# ----------------------------------------------------------------------

ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "tab1": tab1,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "tab3": tab3,
}
