"""DDOS detection-accuracy evaluation (paper Table I metrics).

Runs workloads under a given DDOS configuration and scores the SIB-PT
predictions against the kernels' ground-truth ``!sib`` annotations:

* **TSDR** (true spin detection rate): fraction of true spin-inducing
  branches that were confirmed;
* **FSDR** (false spin detection rate): fraction of non-spin-inducing
  *backward* branches falsely confirmed;
* **DPR** (detection phase ratio): (confirmation time - first encounter)
  / (last encounter - first encounter), averaged over the detected
  branches of the respective class — lower means faster detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.runner import make_config
from repro.sim.config import DDOSConfig, GPUConfig
from repro.sim.gpu import SimResult


@dataclass
class DetectionOutcome:
    """Per-kernel detection scoring."""

    kernel: str
    true_sibs: int
    detected_true: int
    false_candidates: int
    detected_false: int
    true_dprs: List[float] = field(default_factory=list)
    false_dprs: List[float] = field(default_factory=list)

    @property
    def tsdr(self) -> Optional[float]:
        if self.true_sibs == 0:
            return None
        return self.detected_true / self.true_sibs

    @property
    def fsdr(self) -> Optional[float]:
        if self.false_candidates == 0:
            return None
        return self.detected_false / self.false_candidates


def score_result(kernel: str, result: SimResult) -> DetectionOutcome:
    """Score one simulation's DDOS predictions against ground truth.

    A branch counts as detected if *any* SM's DDOS engine confirmed it.
    Candidate set for false detections = all backward branches executed
    that are not annotated ``!sib``.
    """
    program = result.launch.program
    truth = program.true_sibs()

    confirmed: Dict[int, Tuple[int, int, int]] = {}
    seen: Dict[int, Tuple[int, int]] = {}
    for engine in result.ddos_engines:
        for index, record in engine.detection_records().items():
            first, last = record.first_seen, record.last_seen
            if index in seen:
                first = min(first, seen[index][0])
                last = max(last, seen[index][1])
            seen[index] = (first, last)
            if record.confirmed_at is not None:
                if (
                    index not in confirmed
                    or record.confirmed_at < confirmed[index][0]
                ):
                    confirmed[index] = (record.confirmed_at, first, last)

    outcome = DetectionOutcome(
        kernel=kernel,
        true_sibs=len(truth),
        detected_true=0,
        false_candidates=0,
        detected_false=0,
    )
    for index, (first, last) in seen.items():
        is_true = index in truth
        detected = index in confirmed
        if is_true:
            if detected:
                outcome.detected_true += 1
        else:
            outcome.false_candidates += 1
            if detected:
                outcome.detected_false += 1
        if detected:
            confirmed_at = confirmed[index][0]
            span = max(last - first, 1)
            dpr = max(confirmed_at - first, 0) / span
            (outcome.true_dprs if is_true else outcome.false_dprs).append(dpr)
    return outcome


@dataclass
class AccuracySummary:
    """Aggregate Table I row."""

    avg_tsdr: float
    avg_true_dpr: float
    avg_fsdr: float
    avg_false_dpr: float
    outcomes: List[DetectionOutcome]

    def as_row(self) -> Dict[str, float]:
        return {
            "TSDR": round(self.avg_tsdr, 3),
            "DPR(true)": round(self.avg_true_dpr, 3),
            "FSDR": round(self.avg_fsdr, 3),
            "DPR(false)": round(self.avg_false_dpr, 3),
        }


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def summarize(outcomes: Iterable[DetectionOutcome]) -> AccuracySummary:
    outcomes = list(outcomes)
    tsdrs = [o.tsdr for o in outcomes if o.tsdr is not None]
    fsdrs = [o.fsdr for o in outcomes if o.fsdr is not None]
    true_dprs = [d for o in outcomes for d in o.true_dprs]
    false_dprs = [d for o in outcomes for d in o.false_dprs]
    return AccuracySummary(
        avg_tsdr=_mean(tsdrs),
        avg_true_dpr=_mean(true_dprs),
        avg_fsdr=_mean(fsdrs),
        avg_false_dpr=_mean(false_dprs),
        outcomes=outcomes,
    )


def evaluate_ddos(
    ddos: DDOSConfig,
    kernels: Sequence[str],
    kernel_params: Optional[Dict[str, Dict]] = None,
    base_config: Optional[GPUConfig] = None,
) -> AccuracySummary:
    """Run ``kernels`` with DDOS enabled (no BOWS) and score detections.

    Execution fans out through the current :mod:`repro.lab` runner; the
    per-kernel :class:`DetectionOutcome` is computed inside the worker
    and travels back (and through the result cache) as plain data.
    """
    # Imported lazily: the lab executes through this module's
    # score_result, so a top-level import would be circular.
    from repro.lab import RunSpec, current_runner

    kernel_params = kernel_params or {}
    specs = []
    for name in kernels:
        config = (base_config or make_config("gto")).replace(ddos=ddos)
        specs.append(RunSpec(
            kernel=name, config=config,
            params=dict(kernel_params.get(name, {})),
            label=f"ddos {name}",
        ))
    outcomes = []
    for run in current_runner().run_map(specs):
        assert run.ddos is not None, "DDOS scoring missing from run result"
        outcomes.append(DetectionOutcome(**run.ddos))
    return summarize(outcomes)
