"""Experiment harness: configuration shorthand, runners, and the code
that regenerates every table and figure of the paper's evaluation."""

from repro.harness.runner import make_config

__all__ = ["make_config"]
