"""Experiment harness: configuration shorthand, runners, and the code
that regenerates every table and figure of the paper's evaluation."""

from repro.harness.runner import make_config, run_kernel, run_workload

__all__ = ["make_config", "run_kernel", "run_workload"]
