"""Plain-text table rendering for experiment output.

Every experiment returns rows as dictionaries; these helpers render them
the way the paper's figures/tables read (kernels as columns or rows,
normalized values, geometric means).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; ignores non-positive values defensively."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None,
                float_fmt: str = "{:.3f}") -> None:
    print(format_table(rows, columns, title, float_fmt))
    print()
