"""Serial-CPU analytical comparator for Figure 1b.

The paper's Figure 1b compares hashtable insertion on GPUs against a
single-threaded CPU running the same algorithm.  A serial CPU needs no
locks, so its cost is simply (per-insertion work) x (insertions), at a
CPU-like IPC and clock.  We execute the insertion algorithm functionally
(to count real operations, including chain-walk-free insert-at-head) and
convert the operation count to time with a simple superscalar model.

The point the figure makes — a GPU with thousands of spinning threads
loses to one CPU core at high contention and wins once buckets (and
hence parallelism) grow — emerges from the ratio of these two models,
not from their absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CPUModel:
    """A single-core superscalar CPU abstraction."""

    frequency_ghz: float = 3.5
    ipc: float = 3.0
    #: Average operations per hashtable insertion (hash, compare, link,
    #: store; no locking on a single thread).
    ops_per_insertion: float = 24.0
    #: Extra cost of a cache miss amortized per insertion when the table
    #: working set exceeds the last-level cache (more buckets = more
    #: pointer-chasing spread).
    miss_penalty_ops: float = 6.0

    def hashtable_time_us(self, n_insertions: int, n_buckets: int) -> float:
        """Estimated serial insertion time in microseconds."""
        ops = n_insertions * (
            self.ops_per_insertion
            + self.miss_penalty_ops * min(1.0, n_buckets / 4096.0)
        )
        cycles = ops / self.ipc
        return cycles / (self.frequency_ghz * 1e3)


def gpu_time_us(cycles: int, frequency_ghz: float = 0.7) -> float:
    """Convert simulated GPU core cycles to microseconds (Fermi ~0.7 GHz)."""
    return cycles / (frequency_ghz * 1e3)


def reference_insertion_count(keys: np.ndarray) -> int:
    """Sanity helper: a serial run inserts each key exactly once."""
    return int(keys.size)
