"""Canonical workload parameters for the experiment harness.

Two scales:

* ``full`` — used by the ``benchmarks/`` regeneration targets.  Sized so
  contention (threads per lock / per bucket / per flag) sits in the
  paper's regime while a pure-Python cycle-level simulation finishes in
  seconds per run.
* ``quick`` — used by the test suite: same shapes, much smaller.

All experiments run the scaled GTX480-shaped machine
(:func:`repro.sim.config.fermi_config`) unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict

from repro.kernels import SYNC_KERNELS

#: Paper Figure 2/9 kernel order.
KERNEL_ORDER = list(SYNC_KERNELS)

FULL_PARAMS: Dict[str, dict] = {
    "ht": dict(n_threads=1024, n_buckets=16, items_per_thread=2,
               block_dim=256),
    "atm": dict(n_threads=768, n_accounts=48, rounds=1, block_dim=256),
    "tsp": dict(n_threads=512, eval_iters=200, block_dim=256),
    "ds": dict(n_threads=512, n_particles=64, constraints_per_thread=1,
               block_dim=256),
    "nw1": dict(n_threads=768, n_cols=128, cell_work=32, block_dim=256),
    "nw2": dict(n_threads=768, n_cols=128, cell_work=32, block_dim=256),
    "tb": dict(n_threads=512, n_cells=16, items_per_thread=2,
               block_dim=256),
    "st": dict(n_threads=512, n_cells=4096, cell_work=12, block_dim=256),
}

QUICK_PARAMS: Dict[str, dict] = {
    "ht": dict(n_threads=256, n_buckets=8, items_per_thread=1,
               block_dim=128),
    "atm": dict(n_threads=256, n_accounts=32, rounds=1, block_dim=128),
    "tsp": dict(n_threads=128, eval_iters=32, block_dim=64),
    "ds": dict(n_threads=256, n_particles=48, constraints_per_thread=1,
               block_dim=128),
    "nw1": dict(n_threads=256, n_cols=32, cell_work=8, block_dim=128),
    "nw2": dict(n_threads=256, n_cols=32, cell_work=8, block_dim=128),
    "tb": dict(n_threads=256, n_cells=16, items_per_thread=1,
               block_dim=128),
    # ST needs enough waiting warps for DDOS confidence to accumulate
    # against the producers' aliasing-guard decrements.
    "st": dict(n_threads=256, n_cells=1024, cell_work=8, block_dim=128),
}

#: Sync-free kernels for DDOS accuracy and Figure 14, full scale.
FULL_SYNC_FREE: Dict[str, dict] = {
    "kmeans": dict(n_threads=256, per_thread=16, block_dim=128),
    "ms": dict(n_threads=256, iterations=16, stride=256, block_dim=128),
    "hl": dict(n_threads=256, iterations=12, stride=512, block_dim=128),
    "vecadd": dict(n_threads=256, per_thread=8, block_dim=128),
    "reduction": dict(n_threads=256, block_dim=128),
    "stencil": dict(n_threads=256, per_thread=8, block_dim=128),
    "histogram": dict(n_threads=256, per_thread=8, block_dim=128),
}

QUICK_SYNC_FREE: Dict[str, dict] = {
    "kmeans": dict(n_threads=128, per_thread=8, block_dim=64),
    "ms": dict(n_threads=128, iterations=12, stride=256, block_dim=64),
    "hl": dict(n_threads=128, iterations=10, stride=512, block_dim=64),
    "vecadd": dict(n_threads=128, per_thread=4, block_dim=64),
    "reduction": dict(n_threads=128, block_dim=64),
    "stencil": dict(n_threads=128, per_thread=4, block_dim=64),
    "histogram": dict(n_threads=128, per_thread=4, block_dim=64),
}


def sync_params(scale: str = "full") -> Dict[str, dict]:
    if scale == "full":
        return {k: dict(v) for k, v in FULL_PARAMS.items()}
    if scale == "quick":
        return {k: dict(v) for k, v in QUICK_PARAMS.items()}
    raise ValueError(f"unknown scale {scale!r}")


def sync_free_params(scale: str = "full") -> Dict[str, dict]:
    if scale == "full":
        return {k: dict(v) for k, v in FULL_SYNC_FREE.items()}
    if scale == "quick":
        return {k: dict(v) for k, v in QUICK_SYNC_FREE.items()}
    raise ValueError(f"unknown scale {scale!r}")
