"""Configuration shorthand for the experiment harness.

Historically this module owned both the configuration vocabulary
(``make_config``) and workload execution (``run_workload`` /
``run_kernel``).  The execution shims predated the :func:`repro.api.simulate`
facade and duplicated its wiring decisions; they went through a
deprecation cycle and are now removed — call
``simulate(workload_or_name, config=...)`` (or, for batches,
``repro.api.submit``/``submit_many``) instead.  Only :func:`make_config`
remains: it is pure configuration, with no wiring to drift.
"""

from __future__ import annotations

from typing import Union

from repro.sim.config import BOWSConfig, DDOSConfig, GPUConfig


def make_config(
    scheduler: str = "gto",
    bows: Union[bool, int, str, BOWSConfig, None] = None,
    ddos: Union[bool, DDOSConfig, None] = None,
    preset: str = "fermi",
    **overrides,
) -> GPUConfig:
    """Build a GPU configuration (alias for :meth:`GPUConfig.preset`).

    See :meth:`repro.sim.config.GPUConfig.preset` for the argument
    vocabulary (this wrapper just reorders ``preset`` into a keyword).
    """
    return GPUConfig.preset(
        preset, scheduler=scheduler, bows=bows, ddos=ddos, **overrides
    )
