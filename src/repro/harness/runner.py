"""Configuration shorthand and one-call workload execution.

``make_config`` builds a :class:`~repro.sim.config.GPUConfig` from the
vocabulary the paper uses — a base policy (``lrr``/``gto``/``cawa``),
optionally "+BOWS" with a fixed or adaptive delay limit, and optionally
DDOS (on by default whenever BOWS is on, as in the paper's evaluation).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.kernels import build as build_workload
from repro.kernels.base import Workload, WorkloadReuseError
from repro.sim.config import BOWSConfig, DDOSConfig, GPUConfig
from repro.sim.config import fermi_config, pascal_config
from repro.sim.gpu import GPU, SimResult

_PRESETS = {"fermi": fermi_config, "pascal": pascal_config}


def make_config(
    scheduler: str = "gto",
    bows: Union[bool, int, str, BOWSConfig, None] = None,
    ddos: Union[bool, DDOSConfig, None] = None,
    preset: str = "fermi",
    **overrides,
) -> GPUConfig:
    """Build a GPU configuration.

    Args:
        scheduler: base policy — ``lrr``, ``gto``, or ``cawa``.
        bows: enable BOWS.  ``True`` → adaptive delay limit (the paper's
            default); an integer → fixed delay limit in cycles;
            ``"adaptive"`` → adaptive; a :class:`BOWSConfig` → verbatim.
        ddos: enable DDOS.  Defaults to on whenever BOWS is on (SIBs are
            then detected dynamically); pass ``False`` with BOWS on to
            fall back to static ``!sib`` annotations ("programmer
            annotation" mode).
        preset: ``fermi`` (GTX480-shaped) or ``pascal`` (GTX1080Ti-shaped).
        overrides: any :class:`GPUConfig` field, e.g. ``num_sms=1``.
    """
    if preset not in _PRESETS:
        raise ValueError(f"unknown preset {preset!r}; use {sorted(_PRESETS)}")

    bows_config: Optional[BOWSConfig]
    if bows is None or bows is False:
        bows_config = None
    elif isinstance(bows, BOWSConfig):
        bows_config = bows
    elif bows is True or bows == "adaptive":
        bows_config = BOWSConfig(adaptive=True)
    elif isinstance(bows, int):
        bows_config = BOWSConfig(delay_limit=bows, adaptive=False)
    else:
        raise TypeError(f"cannot interpret bows={bows!r}")

    ddos_config: Optional[DDOSConfig]
    if ddos is None:
        ddos_config = DDOSConfig() if bows_config is not None else None
    elif ddos is False:
        ddos_config = None
    elif ddos is True:
        ddos_config = DDOSConfig()
    elif isinstance(ddos, DDOSConfig):
        ddos_config = ddos
    else:
        raise TypeError(f"cannot interpret ddos={ddos!r}")

    return _PRESETS[preset](
        scheduler=scheduler, bows=bows_config, ddos=ddos_config, **overrides
    )


def run_workload(workload: Workload, config: GPUConfig,
                 validate: bool = True) -> SimResult:
    """Simulate ``workload`` under ``config`` (validating the result).

    A workload is single-use: execution mutates its memory image, so a
    second run would start from corrupted state and produce garbage
    results.  Re-running a consumed workload raises
    :class:`~repro.kernels.base.WorkloadReuseError`.
    """
    if workload.consumed:
        raise WorkloadReuseError(
            f"workload {workload.name!r} has already been executed and its "
            f"memory image mutated; build a fresh one with "
            f"repro.kernels.build({workload.name!r}, ...) for every run"
        )
    workload.consumed = True
    gpu = GPU(config, memory=workload.memory)
    result = gpu.launch(workload.launch)
    if validate and not config.magic_locks:
        workload.validate(result.memory)
    return result


def run_kernel(name: str, config: GPUConfig, validate: bool = True,
               **params) -> SimResult:
    """Build the named workload fresh and simulate it under ``config``.

    A workload's memory image is mutated by execution, so every run gets
    a fresh build — never reuse a :class:`Workload` across runs.
    """
    workload = build_workload(name, **params)
    return run_workload(workload, config, validate=validate)
