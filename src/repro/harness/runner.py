"""Legacy configuration/execution shims over the :mod:`repro.api` facade.

Historically this module owned both the configuration vocabulary
(``make_config``) and workload execution (``run_workload``/``run_kernel``).
Both now live elsewhere — the vocabulary in :meth:`GPUConfig.preset
<repro.sim.config.GPUConfig.preset>`, execution in
:func:`repro.api.simulate` — and these wrappers only delegate:

* :func:`make_config` is a thin alias for ``GPUConfig.preset`` and stays
  supported (it is pure configuration, with no wiring to drift);
* :func:`run_workload` and :func:`run_kernel` are deprecated — they
  predate the facade and duplicate its wiring decisions.  New code
  should call ``simulate(workload_or_name, config=...)``.
"""

from __future__ import annotations

import warnings
from typing import Union

from repro.api import simulate
from repro.kernels.base import Workload, WorkloadReuseError  # noqa: F401
from repro.sim.config import BOWSConfig, DDOSConfig, GPUConfig
from repro.sim.gpu import SimResult


def make_config(
    scheduler: str = "gto",
    bows: Union[bool, int, str, BOWSConfig, None] = None,
    ddos: Union[bool, DDOSConfig, None] = None,
    preset: str = "fermi",
    **overrides,
) -> GPUConfig:
    """Build a GPU configuration (alias for :meth:`GPUConfig.preset`).

    See :meth:`repro.sim.config.GPUConfig.preset` for the argument
    vocabulary (this wrapper just reorders ``preset`` into a keyword).
    """
    return GPUConfig.preset(
        preset, scheduler=scheduler, bows=bows, ddos=ddos, **overrides
    )


def run_workload(workload: Workload, config: GPUConfig,
                 validate: bool = True) -> SimResult:
    """Deprecated: call :func:`repro.api.simulate` instead.

    A workload is single-use: execution mutates its memory image, so a
    second run would start from corrupted state.  Re-running a consumed
    workload raises :class:`~repro.kernels.base.WorkloadReuseError`.
    """
    warnings.warn(
        "repro.harness.runner.run_workload is deprecated; use "
        "repro.api.simulate(workload, config=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return simulate(workload, config=config, validate=validate)


def run_kernel(name: str, config: GPUConfig, validate: bool = True,
               **params) -> SimResult:
    """Deprecated: call :func:`repro.api.simulate` instead.

    Builds the named workload fresh and simulates it — every run gets a
    fresh memory image.
    """
    warnings.warn(
        "repro.harness.runner.run_kernel is deprecated; use "
        "repro.api.simulate(name, config=..., params=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return simulate(name, config=config, params=params, validate=validate)
