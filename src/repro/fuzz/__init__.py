"""Seeded schedule-perturbation fuzzing (see :mod:`repro.fuzz.harness`)."""

from repro.fuzz.harness import (FuzzFinding, FuzzReport, ScheduleFuzzer)

__all__ = ["FuzzFinding", "FuzzReport", "ScheduleFuzzer"]
