"""Seeded schedule-perturbation fuzzing for synchronization kernels.

Sync bugs are schedule-dependent: a kernel that completes under the
shipped scheduler can livelock under a legal-but-unlucky issue order
(Sorensen et al., "Specifying and Testing GPU Workgroup Progress
Models"; Stuart & Owens catalog the lock idioms that deadlock under the
wrong scheduler).  :class:`ScheduleFuzzer` hunts for those orders: it
runs one kernel across a batch of seeded :class:`~repro.sim.config.
PerturbConfig`\\ s — scheduler tie-break jitter, randomized
memory-latency spreads, warp-priority rotation — through the
:mod:`repro.lab` runner, with the forward-progress watchdog
(:mod:`repro.sim.progress`) tightened to the fuzz budget so hangs
surface in thousands of cycles, not millions.

Every perturbation is a pure function of its seed, so any finding
reproduces deterministically from the :class:`FuzzReport`'s seed and
knobs; the report also *shrinks* the first hang, re-running it with each
perturbation axis disabled in turn to name the minimal set of axes that
still hangs (or to prove the hang is schedule-independent).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.lab.results import RunFailure
from repro.lab.runner import Runner
from repro.lab.spec import RunSpec
from repro.sim.config import GPUConfig, PerturbConfig

#: Error types counted as hangs (classification of the progress guard).
HANG_ERRORS = ("SimulationLivelock", "SimulationDeadlock")

#: Error types counted as schedule-dependent wrong answers.
VALIDATION_ERRORS = ("WorkloadError",)


@dataclass
class FuzzFinding:
    """One seed that hanged, raced, or produced a wrong answer."""

    seed: int
    #: "livelock" | "deadlock" | "race" | "validation" | "infra".
    kind: str
    error_type: str
    message: str
    spec_hash: str
    label: str
    #: Inline HangReport JSON for hangs (None for validation findings).
    hang: Optional[Dict[str, Any]] = None
    perturb: Dict[str, Any] = field(default_factory=dict)
    #: Sanitizer diagnostics (serialized) for "race" findings — the run
    #: *completed* but the sanitizer flagged synchronization errors,
    #: which distinguishes a racy schedule from a hanging one.
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign (JSON-ready)."""

    kernel: str
    params: Dict[str, Any]
    budget_cycles: int
    watchdog: int
    seeds: List[int]
    findings: List[FuzzFinding] = field(default_factory=list)
    #: Seeds that completed and validated.
    clean: List[int] = field(default_factory=list)
    #: Seeds that exhausted the cycle budget while still progressing.
    exhausted: List[int] = field(default_factory=list)
    #: Shrink result for the first hang: minimal perturbation axes that
    #: still reproduce it, plus how many shrink runs were spent.
    shrink: Optional[Dict[str, Any]] = None
    elapsed_s: float = 0.0

    @property
    def hangs(self) -> List[FuzzFinding]:
        return [f for f in self.findings if f.kind in ("livelock", "deadlock")]

    @property
    def races(self) -> List[FuzzFinding]:
        return [f for f in self.findings if f.kind == "race"]

    @property
    def validation_failures(self) -> List[FuzzFinding]:
        return [f for f in self.findings if f.kind == "validation"]

    @property
    def first_hang(self) -> Optional[FuzzFinding]:
        hangs = self.hangs
        return hangs[0] if hangs else None

    def repro_command(self, finding: Optional[FuzzFinding] = None) -> str:
        """CLI line that deterministically replays ``finding``."""
        finding = finding or self.first_hang
        if finding is None:
            return ""
        p = finding.perturb
        parts = [
            "python -m repro fuzz", self.kernel,
            "--seeds 1", f"--seed-base {finding.seed}",
            f"--budget-cycles {self.budget_cycles}",
            f"--watchdog {self.watchdog}",
            f"--jitter {p.get('sched_jitter', 0)}",
            f"--mem-jitter {p.get('mem_jitter_cycles', 0)}",
            f"--rotation {p.get('rotation_period', 0)}",
        ]
        for name, value in sorted(self.params.items()):
            parts.append(f"--param {name}={value}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "params": dict(self.params),
            "budget_cycles": self.budget_cycles,
            "watchdog": self.watchdog,
            "seeds": list(self.seeds),
            "findings": [f.to_dict() for f in self.findings],
            "clean": list(self.clean),
            "exhausted": list(self.exhausted),
            "shrink": self.shrink,
            "first_hang_repro": self.repro_command(),
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def summary(self) -> str:
        lines = [
            f"fuzz {self.kernel!r}: {len(self.seeds)} seed(s), "
            f"{len(self.clean)} clean, {len(self.exhausted)} "
            f"budget-exhausted, {len(self.hangs)} hang(s), "
            f"{len(self.races)} race(s), "
            f"{len(self.validation_failures)} validation failure(s)"
        ]
        for finding in self.findings:
            lines.append(
                f"  seed {finding.seed}: {finding.kind} "
                f"({finding.error_type})"
            )
        if self.first_hang is not None:
            lines.append(f"  reproduce: {self.repro_command()}")
            if self.shrink is not None:
                axes = self.shrink.get("axes") or ["none (hangs unperturbed)"]
                lines.append(
                    f"  shrunk to perturbation axes: {', '.join(axes)}"
                )
        return "\n".join(lines)


class ScheduleFuzzer:
    """Runs one kernel across seeded schedule perturbations.

    Args:
        kernel: registered kernel name (``repro.kernels.build``).
        params: workload parameters; defaults to the harness registry
            for ``scale``.
        base_config: configuration to perturb; defaults to the stock
            GTO fermi machine.
        budget_cycles: per-seed simulated-cycle budget (``max_cycles``).
        watchdog: no-progress window; defaults to ``budget_cycles // 4``
            so hangs classify well inside the budget.
        progress_epoch: sample period; defaults to ``watchdog // 8``.
        sched_jitter / mem_jitter_cycles / rotation_period: perturbation
            magnitudes (see :class:`~repro.sim.config.PerturbConfig`).
        validate: run functional validation on completing seeds, so the
            fuzzer also catches schedule-dependent wrong answers.
        sanitize: attach the dynamic sanitizer
            (:mod:`repro.analysis.sanitizer`) to every seed; completing
            runs with sanitizer findings become ``"race"`` findings,
            distinguishing racy schedules from hanging ones.
    """

    def __init__(
        self,
        kernel: str,
        params: Optional[Dict[str, Any]] = None,
        base_config: Optional[GPUConfig] = None,
        budget_cycles: int = 100_000,
        watchdog: Optional[int] = None,
        progress_epoch: Optional[int] = None,
        sched_jitter: float = 0.1,
        mem_jitter_cycles: int = 16,
        rotation_period: int = 401,
        validate: bool = True,
        scale: str = "quick",
        sanitize: bool = False,
    ) -> None:
        if base_config is None:
            base_config = GPUConfig.preset("fermi", scheduler="gto")
        if params is None:
            from repro.harness.params import sync_free_params, sync_params
            registry: Dict[str, dict] = {}
            registry.update(sync_free_params(scale))
            registry.update(sync_params(scale))
            params = dict(registry.get(kernel, {}))
        if watchdog is None:
            watchdog = max(1000, budget_cycles // 4)
        if progress_epoch is None:
            progress_epoch = max(250, watchdog // 8)
        self.kernel = kernel
        self.params = params
        self.budget_cycles = budget_cycles
        self.watchdog = watchdog
        self.progress_epoch = progress_epoch
        self.sched_jitter = sched_jitter
        self.mem_jitter_cycles = mem_jitter_cycles
        self.rotation_period = rotation_period
        self.validate = validate
        self.sanitize = sanitize
        self.base_config = base_config

    # ------------------------------------------------------------------

    def perturb_for(self, seed: int) -> PerturbConfig:
        return PerturbConfig(
            seed=seed,
            sched_jitter=self.sched_jitter,
            mem_jitter_cycles=self.mem_jitter_cycles,
            rotation_period=self.rotation_period,
        )

    def spec_for(self, seed: int,
                 perturb: Optional[PerturbConfig] = None) -> RunSpec:
        perturb = perturb if perturb is not None else self.perturb_for(seed)
        config = self.base_config.replace(
            perturb=perturb,
            max_cycles=self.budget_cycles,
            no_progress_window=self.watchdog,
            progress_epoch=self.progress_epoch,
        )
        sanitize = None
        if self.sanitize:
            from repro.analysis.sanitizer import SanitizerConfig
            sanitize = SanitizerConfig()
        return RunSpec(
            kernel=self.kernel,
            config=config,
            params=dict(self.params),
            validate=self.validate,
            sanitize=sanitize,
            label=f"{self.kernel}[seed={seed}]",
        )

    # ------------------------------------------------------------------

    def run(self, seeds: Union[int, Sequence[int]],
            runner: Optional[Runner] = None,
            shrink: bool = True,
            journal=None, resume: bool = False,
            server=None) -> FuzzReport:
        """Fuzz across ``seeds`` (an iterable, or N meaning 0..N-1).

        With ``journal`` (a path or
        :class:`~repro.lab.journal.SweepJournal`), every spec and
        outcome is appended durably so a killed campaign can be
        completed with ``resume=True`` — paired with a result cache on
        the runner, already-finished seeds come back as cache hits.

        ``server`` routes every seed through a ``repro serve`` daemon
        (address or connected client) instead of ``runner`` — the
        campaign then shares the daemon's cache and worker pool with
        every other client, and a re-run campaign is pure cache hits.
        """
        import time

        from repro.lab.journal import JournalError, SweepJournal, load_journal

        if isinstance(seeds, int):
            seeds = list(range(seeds))
        seeds = list(seeds)
        if runner is None and server is None:
            runner = Runner(workers=1)
        if resume and journal is not None:
            # Seeds with a journaled outcome were already fuzzed by the
            # killed campaign; only the remainder needs to run.
            journal_path = (journal.path if isinstance(journal, SweepJournal)
                            else journal)
            try:
                done = set(load_journal(journal_path).done)
            except JournalError:
                done = set()
            if done:
                seeds = [s for s in seeds
                         if self.spec_for(s).content_hash() not in done]
        owns_journal = journal is not None and not isinstance(
            journal, SweepJournal
        )
        if owns_journal:
            journal = SweepJournal(journal, resume=resume)
        start = time.perf_counter()
        try:
            if journal is not None:
                journal.record_note(
                    "fuzz", kernel=self.kernel, seeds=len(seeds),
                    resume=bool(resume),
                )
            batch = self._execute([self.spec_for(s) for s in seeds],
                                  runner, server, journal=journal)
        finally:
            if owns_journal:
                journal.close()

        report = FuzzReport(
            kernel=self.kernel, params=dict(self.params),
            budget_cycles=self.budget_cycles, watchdog=self.watchdog,
            seeds=seeds,
        )
        for seed, outcome in zip(seeds, batch.results):
            if outcome.ok:
                diags = ((outcome.sanitizer or {}).get("diagnostics")
                         if outcome.sanitizer is not None else None)
                if diags:
                    # Completed, but the sanitizer flagged sync errors
                    # under this schedule: a race, not a hang.
                    report.findings.append(FuzzFinding(
                        seed=seed,
                        kind="race",
                        error_type="SanitizerFinding",
                        message=diags[0].get("message", ""),
                        spec_hash=outcome.spec_hash,
                        label=outcome.label or "",
                        perturb=dataclasses.asdict(self.perturb_for(seed)),
                        diagnostics=list(diags),
                    ))
                else:
                    report.clean.append(seed)
                continue
            kind = self._classify(outcome)
            if kind == "exhausted":
                report.exhausted.append(seed)
                continue
            report.findings.append(FuzzFinding(
                seed=seed,
                kind=kind,
                error_type=outcome.error_type,
                message=outcome.message.splitlines()[0]
                        if outcome.message else "",
                spec_hash=outcome.spec_hash,
                label=outcome.spec.label if outcome.spec else "",
                hang=outcome.hang,
                perturb=dataclasses.asdict(self.perturb_for(seed)),
            ))

        first = report.first_hang
        if shrink and first is not None:
            report.shrink = self._shrink(first, runner, server)
        report.elapsed_s = time.perf_counter() - start
        return report

    @staticmethod
    def _execute(specs, runner, server, journal=None):
        """One batch through the unified submission API."""
        from repro.submit import submit_many

        if server is not None:
            return submit_many(specs, backend="server", server=server,
                               journal=journal, client_name="fuzz").report
        return submit_many(specs, runner=runner, journal=journal).report

    @staticmethod
    def _classify(failure: RunFailure) -> str:
        if failure.error_type in HANG_ERRORS:
            return failure.hang["kind"] if failure.hang else "livelock"
        if failure.error_type == "SimulationTimeout":
            # Budget exhausted while the progress guard still saw
            # forward progress: not a hang finding at fuzz budgets.
            return "exhausted"
        if failure.error_type in VALIDATION_ERRORS:
            return "validation"
        return "infra"

    # ------------------------------------------------------------------

    def _shrink(self, finding: FuzzFinding,
                runner: Optional[Runner],
                server=None) -> Dict[str, Any]:
        """Greedy axis shrink: disable each perturbation axis in turn,
        keeping any removal that still reproduces the hang."""
        current = self.perturb_for(finding.seed)
        axes = [
            ("sched_jitter", 0.0),
            ("mem_jitter_cycles", 0),
            ("rotation_period", 0),
        ]
        runs = 0
        for name, off in axes:
            if getattr(current, name) == off:
                continue
            candidate = dataclasses.replace(current, **{name: off})
            spec = self.spec_for(finding.seed, perturb=candidate)
            outcome = self._execute([spec], runner, server).results[0]
            runs += 1
            if not outcome.ok and outcome.error_type in HANG_ERRORS:
                current = candidate  # axis not needed for the hang
        remaining = [
            name for name, off in axes if getattr(current, name) != off
        ]
        return {
            "seed": finding.seed,
            "axes": remaining,
            "perturb": dataclasses.asdict(current),
            "shrink_runs": runs,
            "schedule_independent": not remaining,
        }
