"""One submission API over every execution backend.

Callers that want a simulation executed hold a :class:`~repro.lab.spec.
RunSpec` and should not care *where* it runs — in this process through a
:class:`~repro.lab.runner.Runner`, or in a resident ``repro serve``
daemon shared with every other tool on the machine.  :func:`submit` and
:func:`submit_many` are that indifference point:

    from repro.api import submit

    handle = submit(spec)                          # in-process (today)
    handle = submit(spec, backend="server",
                    server="/tmp/repro.sock")      # via the daemon

Either way the caller gets a :class:`RunHandle` with the same three
affordances — ``.done``, ``.stream()`` (progress records), and
``.result()`` / ``.outcome()`` — and, by construction, the same
payload: both backends execute through
:func:`repro.lab.runner.execute_run` against the same content-addressed
cache, so a result is bitwise-identical whichever road it traveled.

Backends:

``local``
    Synchronous-eager: the spec runs to completion (through the given
    or ambient :class:`Runner` — cache, retries, timeouts included)
    before :func:`submit` returns, exactly like today's direct calls.
    The handle is already done; ``stream()`` replays the run's obs
    time-series from the result.

``server``
    The spec travels to a ``repro serve`` daemon (address or live
    :class:`~repro.serve.client.ServeClient`), which dedupes it against
    the shared cache and all in-flight work, executes at most once, and
    streams progress back live.

:class:`SubmitBatch` is the many-spec variant; its :attr:`~SubmitBatch.
report` is an ordinary :class:`~repro.lab.runner.BatchReport`, so sweep
/ bench / fuzz code consumes either backend's outcomes identically.
"""

from __future__ import annotations

import time
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Union)

from repro.lab.results import LabError, RunFailure, RunResult
from repro.lab.runner import BatchReport, Runner
from repro.lab.spec import RunSpec

#: Valid ``backend=`` values.
BACKENDS = ("local", "server")


class RunFailedError(LabError):
    """`.result()` was asked for a run that failed; carries the record."""

    def __init__(self, failure: RunFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def _replay_progress(outcome: Union[RunResult, RunFailure]
                     ) -> List[Dict[str, Any]]:
    """Synthesize the progress feed a server client would have seen.

    The local backend completes before the handle exists, so streaming
    is a replay: lifecycle marks bracketing the obs time-series rows the
    run actually collected (none when the spec skipped obs).
    """
    records: List[Dict[str, Any]] = [
        {"kind": "lifecycle", "phase": "started",
         "spec_hash": outcome.spec_hash},
    ]
    if isinstance(outcome, RunResult):
        series = (outcome.obs or {}).get("series") or {}
        for row in series.get("rows", []):
            records.append({"kind": "sample", "row": row})
        records.append({"kind": "lifecycle", "phase": "finished",
                        "cycles": outcome.cycles})
    else:
        records.append({"kind": "lifecycle", "phase": "failed",
                        "error": outcome.error_type})
    return records


class RunHandle:
    """One submitted run, backend-agnostic.

    ``done`` / ``stream()`` / ``outcome()`` / ``result()`` behave
    identically whether the run executed in-process (already complete)
    or is simulating in a daemon right now (progress arrives live).
    """

    def __init__(self, spec: RunSpec, backend: str, *,
                 outcome: Optional[Union[RunResult, RunFailure]] = None,
                 serve_handle=None, owned_client=None) -> None:
        self.spec = spec
        self.backend = backend
        self._outcome = outcome
        self._serve_handle = serve_handle
        self._owned_client = owned_client

    @property
    def done(self) -> bool:
        if self._outcome is not None:
            return True
        return self._serve_handle is not None and self._serve_handle.done

    @property
    def status(self) -> str:
        """Submission status: ``completed`` (local) or the daemon's
        ``queued`` / ``attached`` / ``cached``."""
        if self._serve_handle is not None:
            return self._serve_handle.status
        return "completed"

    def stream(self) -> Iterator[Dict[str, Any]]:
        """Yield progress records (``kind``: ``lifecycle`` / ``sample``
        / ``event`` / ``event_gap``) until the run is terminal."""
        if self._serve_handle is not None:
            for message in self._serve_handle.stream():
                yield message.get("data", message)
            return
        yield from _replay_progress(self._outcome)

    def outcome(self, timeout: Optional[float] = None
                ) -> Union[RunResult, RunFailure]:
        """Block for the terminal record — a result *or* a failure."""
        if self._outcome is None:
            self._outcome = self._serve_handle.outcome(timeout)
            self._release_client()
        return self._outcome

    def result(self, timeout: Optional[float] = None) -> RunResult:
        """Block for the :class:`RunResult`; a failed run raises
        :class:`RunFailedError` carrying the failure record."""
        outcome = self.outcome(timeout)
        if isinstance(outcome, RunFailure):
            raise RunFailedError(outcome)
        return outcome

    def wait(self, timeout: Optional[float] = None) -> bool:
        if self._outcome is not None:
            return True
        return self._serve_handle.wait(timeout)

    def _release_client(self) -> None:
        if self._owned_client is not None:
            self._owned_client.close()
            self._owned_client = None


class SubmitBatch:
    """Handles for a batch of submissions, resolvable as a report."""

    def __init__(self, handles: List[RunHandle], backend: str, *,
                 report: Optional[BatchReport] = None,
                 owned_client=None) -> None:
        self.handles = handles
        self.backend = backend
        self._report = report
        self._owned_client = owned_client

    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self) -> Iterator[RunHandle]:
        return iter(self.handles)

    def outcomes(self, timeout: Optional[float] = None
                 ) -> List[Union[RunResult, RunFailure]]:
        """Every outcome, in submission order (blocks until all done)."""
        return [h.outcome(timeout) for h in self.handles]

    def results(self, timeout: Optional[float] = None) -> List[RunResult]:
        """All results; raises :class:`RunFailedError` on any failure."""
        return [h.result(timeout) for h in self.handles]

    @property
    def report(self) -> BatchReport:
        """The batch as a :class:`~repro.lab.runner.BatchReport` — the
        shape sweep/bench/fuzz reporting already consumes.  Blocks
        until every handle is terminal."""
        if self._report is None:
            start = time.perf_counter()
            results = self.outcomes()
            self._report = BatchReport(
                results=results, elapsed_s=time.perf_counter() - start,
            )
            if self._owned_client is not None:
                self._owned_client.close()
                self._owned_client = None
        return self._report


def _normalize_backend(backend: str, server) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "server" and server is None:
        raise ValueError(
            "backend='server' needs server= (a daemon address or a "
            "connected repro.serve.ServeClient)"
        )
    return backend


def _as_client(server, name: Optional[str]):
    """Return ``(client, owned)`` for an address or live client."""
    from repro.serve.client import ServeClient

    if isinstance(server, ServeClient):
        return server, False
    return ServeClient(server, name=name or "submit"), True


def submit(
    spec: RunSpec,
    *,
    backend: str = "local",
    server=None,
    runner: Optional[Runner] = None,
    client_name: Optional[str] = None,
    stream: bool = True,
    priority: int = 0,
) -> RunHandle:
    """Execute one :class:`RunSpec` on the chosen backend.

    Args:
        spec: the fully-described simulation to run.
        backend: ``"local"`` (in this process, synchronously — the
            handle returns already done) or ``"server"`` (submitted to
            a ``repro serve`` daemon; the handle resolves as the daemon
            reports back).
        server: daemon address (Unix-socket path or ``host:port``) or a
            connected :class:`~repro.serve.client.ServeClient`.
            Required — and only meaningful — for ``backend="server"``.
        runner: the :class:`Runner` for the local backend (defaults to
            the ambient :func:`repro.lab.current_runner`).
        client_name: client identity for the daemon's fairness
            accounting (server backend).
        stream: ask the daemon for live progress records (server
            backend; the local backend can always replay).
        priority: scheduling priority within this client's queue
            (server backend; higher dispatches first).

    Returns:
        A :class:`RunHandle`.
    """
    backend = _normalize_backend(backend, server)
    if backend == "local":
        from repro.lab import current_runner

        run = (runner or current_runner()).run_many([spec])
        return RunHandle(spec, "local", outcome=run.results[0])
    client, owned = _as_client(server, client_name)
    try:
        handle = client.submit(spec, stream=stream, priority=priority)
    except Exception:
        if owned:
            client.close()
        raise
    return RunHandle(spec, "server", serve_handle=handle,
                     owned_client=client if owned else None)


def submit_many(
    specs: Sequence[RunSpec],
    *,
    backend: str = "local",
    server=None,
    runner: Optional[Runner] = None,
    client_name: Optional[str] = None,
    journal=None,
    stream: bool = False,
    priority: int = 0,
) -> SubmitBatch:
    """Execute a batch of specs on the chosen backend.

    The local backend is one :meth:`Runner.run_many` call — cache,
    retries, journal, and drain semantics are exactly today's.  The
    server backend submits every spec over one connection (the daemon
    dedupes and schedules fairly against other clients) and, when
    ``journal`` is given, mirrors spec/done/failed records into it
    client-side so ``repro sweep --resume`` works on the client's
    journal too.
    """
    specs = list(specs)
    backend = _normalize_backend(backend, server)
    if backend == "local":
        from repro.lab import current_runner

        report = (runner or current_runner()).run_many(
            specs, journal=journal
        )
        handles = [
            RunHandle(spec, "local", outcome=outcome)
            for spec, outcome in zip(specs, report.results)
        ]
        return SubmitBatch(handles, "local", report=report)

    from repro.lab.journal import SweepJournal

    client, owned = _as_client(server, client_name)
    own_journal = journal is not None and not isinstance(journal,
                                                        SweepJournal)
    if own_journal:
        journal = SweepJournal(journal, resume=True)
    try:
        handles = []
        for spec in specs:
            if journal is not None:
                journal.record_spec(spec)
            serve_handle = client.submit(spec, stream=stream,
                                         priority=priority)
            handles.append(RunHandle(spec, "server",
                                     serve_handle=serve_handle))
        if journal is not None:
            start = time.perf_counter()
            results = []
            for handle in handles:
                outcome = handle.outcome()
                results.append(outcome)
                if isinstance(outcome, RunResult):
                    journal.record_done(outcome.spec_hash,
                                        from_cache=outcome.from_cache,
                                        cycles=outcome.cycles)
                else:
                    journal.record_failed(outcome.spec_hash,
                                          error_type=outcome.error_type,
                                          transient=outcome.transient)
            batch = SubmitBatch(handles, "server")
            batch._report = BatchReport(
                results=results, elapsed_s=time.perf_counter() - start,
            )
            if owned:
                client.close()
            return batch
        return SubmitBatch(handles, "server",
                           owned_client=client if owned else None)
    except Exception:
        if owned:
            client.close()
        raise
    finally:
        if own_journal:
            journal.close()


__all__ = [
    "BACKENDS",
    "RunFailedError",
    "RunHandle",
    "SubmitBatch",
    "submit",
    "submit_many",
]
