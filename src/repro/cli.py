"""Command-line interface: regenerate paper artifacts and run kernels.

Usage::

    python -m repro list                      # what can run
    python -m repro experiment fig9           # regenerate Figure 9
    python -m repro experiment tab1 --scale quick
    python -m repro run ht --scheduler gto --bows adaptive
    python -m repro run ht --param n_buckets=8 --param n_threads=512
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import ALL_EXPERIMENTS, run_delay_sweep
from repro.harness.runner import make_config, run_workload
from repro.kernels import build as build_workload, kernel_names


def _parse_params(items: List[str]) -> dict:
    params = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--param expects name=value, got {item!r}")
        name, value = item.split("=", 1)
        params[name] = int(value)
    return params


def _cmd_list(_args) -> int:
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("kernels:    ", ", ".join(kernel_names()))
    return 0


def _cmd_experiment(args) -> int:
    name = args.name
    if name not in ALL_EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; try: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}"
        )
    func = ALL_EXPERIMENTS[name]
    start = time.time()
    if name in ("fig10", "fig11", "fig12", "fig13"):
        sweep = run_delay_sweep(scale=args.scale)
        result = func(sweep=sweep)
    elif name == "tab3":
        result = func()
    else:
        result = func(scale=args.scale)
    print(result.render())
    print(f"\n[{name} regenerated in {time.time() - start:.1f}s]")
    return 0


def _cmd_run(args) -> int:
    bows: object = None
    if args.bows == "adaptive":
        bows = True
    elif args.bows is not None:
        bows = int(args.bows)
    config = make_config(
        args.scheduler,
        bows=bows,
        ddos=None if not args.no_ddos else False,
        preset=args.preset,
    )
    params = _parse_params(args.param)
    workload = build_workload(args.kernel, **params)
    start = time.time()
    result = run_workload(workload, config)
    elapsed = time.time() - start
    stats = result.stats
    print(f"kernel {args.kernel}: {result.cycles} cycles "
          f"({elapsed:.1f}s wall)")
    for key, value in stats.summary().items():
        print(f"  {key:28s}{value}")
    if result.ddos_engines:
        print(f"  detected SIBs: {sorted(result.predicted_sibs())} "
              f"(truth: {sorted(workload.launch.program.true_sibs())})")
    print("  validation: OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOWS/DDOS reproduction (HPCA 2018) — cycle-level "
                    "SIMT GPU simulation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and kernels")

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name", help="fig1..fig16 / tab1 / tab3")
    exp.add_argument("--scale", choices=("full", "quick"), default="full")

    run = sub.add_parser("run", help="simulate one kernel")
    run.add_argument("kernel", choices=kernel_names())
    run.add_argument("--scheduler", choices=("lrr", "gto", "cawa"),
                     default="gto")
    run.add_argument("--bows", default=None,
                     help="'adaptive' or a fixed delay limit in cycles")
    run.add_argument("--no-ddos", action="store_true",
                     help="use static !sib annotations instead of DDOS")
    run.add_argument("--preset", choices=("fermi", "pascal"),
                     default="fermi")
    run.add_argument("--param", action="append", default=[],
                     metavar="NAME=VALUE",
                     help="workload parameter override (repeatable)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "run":
        return _cmd_run(args)
    raise SystemExit(2)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
