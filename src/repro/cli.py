"""Command-line interface: regenerate paper artifacts and run kernels.

Usage::

    python -m repro list                      # what can run
    python -m repro experiment fig9           # regenerate Figure 9
    python -m repro experiment tab1 --scale quick
    python -m repro experiment fig10 --workers 8      # parallel + cached
    python -m repro run ht --scheduler gto --bows adaptive
    python -m repro run ht --param n_buckets=8 --param n_threads=512
    python -m repro run atm --watchdog 100000 --progress-epoch 5000
    python -m repro profile ht --bows adaptive --json profile.json
    python -m repro profile ht --quick --trace trace.json
    python -m repro fuzz ht --seeds 16 --budget-cycles 50000
    python -m repro bench --out BENCH_hotloop.json --min-speedup 2.0
    python -m repro sweep --kernel ht --kernel tsp --bows none,1000,adaptive
    python -m repro sweep --kernel ht --journal sweep.jsonl
    python -m repro sweep --resume sweep.jsonl    # finish a killed sweep
    python -m repro cache stats
    python -m repro cache verify [--repair]       # per-entry integrity
    python -m repro cache clear [--stale-only]
    python -m repro serve /tmp/repro.sock         # start the job daemon
    python -m repro serve /tmp/repro.sock --status
    python -m repro sweep --kernel ht --server /tmp/repro.sock
    python -m repro run ht --server /tmp/repro.sock

Exit codes distinguish failure classes so CI and the fuzzer can react
without parsing output: 0 success, 1 generic failure, 2 usage error,
3 hang (deadlock/livelock/cycle-cap timeout), 4 validation mismatch,
5 transient/infrastructure error (worth retrying), 130 interrupted
(a drained SIGINT/SIGTERM; see docs/robustness.md).

``experiment`` and ``sweep`` execute through :mod:`repro.lab`: runs fan
out over a process pool and completed simulations land in the on-disk
result cache (``.lab_cache/`` by default), so regenerating a figure
twice — or regenerating Figures 10-13, which share one delay sweep — is
a cache hit instead of hours of re-simulation.

``serve`` starts the resident job daemon (:mod:`repro.serve`); ``run``,
``sweep``, ``fuzz``, and ``bench`` all take ``--server ADDRESS`` to
submit their work to it instead of simulating in-process — one shared
worker pool, one shared cache, concurrent duplicate submissions deduped
to a single simulation (see docs/serve.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.api import simulate
from repro.harness.experiments import ALL_EXPERIMENTS, run_delay_sweep
from repro.harness.reporting import format_table
from repro.kernels import build as build_workload, kernel_names
from repro.kernels.base import WorkloadError
from repro.lab import ResultCache, Runner, Sweep, use_runner
from repro.lab.runner import RunTimeout, TransientRunError
from repro.sim.config import GPUConfig
from repro.sim.progress import SimulationHang

#: Exit codes for machine consumers (CI, the fuzzer's repro command).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_HANG = 3
EXIT_VALIDATION = 4
EXIT_TRANSIENT = 5
EXIT_INTERRUPTED = 130


def _parse_params(items: List[str]) -> dict:
    params = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--param expects name=value, got {item!r}")
        name, value = item.split("=", 1)
        params[name] = int(value)
    return params


def _cmd_list(_args) -> int:
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("kernels:    ", ", ".join(kernel_names()))
    return 0


def _make_lab_runner(args) -> Runner:
    """Build a lab runner from the shared --workers/--no-cache flags."""
    import os

    workers = args.workers
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = print if getattr(args, "progress", False) else None
    return Runner(workers=workers, cache=cache, progress=progress,
                  checkpoint_dir=getattr(args, "checkpoint_dir", None))


def _add_lab_options(parser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker processes (default: CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: .lab_cache)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-run progress lines")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="autocheckpoint running simulations to DIR; "
                             "killed/timed-out runs resume mid-simulation")


def _cmd_experiment(args) -> int:
    name = args.name
    if name not in ALL_EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; try: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}"
        )
    func = ALL_EXPERIMENTS[name]
    start = time.time()
    runner = _make_lab_runner(args)
    with use_runner(runner):
        if name in ("fig10", "fig11", "fig12", "fig13"):
            sweep = run_delay_sweep(scale=args.scale)
            result = func(sweep=sweep)
        elif name == "tab3":
            result = func()
        else:
            result = func(scale=args.scale)
    print(result.render())
    report = runner.last_report
    detail = ""
    if report is not None:
        detail = (f"; {report.total} runs, {report.cache_hits} cached, "
                  f"{report.executed} simulated")
    print(f"\n[{name} regenerated in {time.time() - start:.1f}s{detail}]")
    return 0


def _parse_bows_axis(values: List[str]) -> List[object]:
    axis: List[object] = []
    for chunk in values:
        for item in chunk.split(","):
            item = item.strip()
            if item in ("none", "off", ""):
                axis.append(None)
            elif item == "adaptive":
                axis.append("adaptive")
            else:
                try:
                    axis.append(int(item))
                except ValueError:
                    raise SystemExit(
                        f"--bows expects 'none', 'adaptive', or an integer "
                        f"delay in cycles, got {item!r}") from None
    return axis or [None]


def _cmd_sweep(args) -> int:
    if args.resume:
        return _cmd_sweep_resume(args)
    kernels = args.kernel or ["ht"]
    schedulers = [s for chunk in (args.scheduler or ["gto"])
                  for s in chunk.split(",")]
    sweep = Sweep(
        args.name,
        kernel=kernels,
        scheduler=schedulers,
        bows=_parse_bows_axis(args.bows or []),
    )
    sweep.axis("preset", [args.preset])
    sweep.axis("scale", [args.scale])
    if args.obs:
        sweep.axis("obs", [True])
    for item in args.param:
        if "=" not in item:
            raise SystemExit(f"--param expects name=value[,value...], "
                             f"got {item!r}")
        name, values = item.split("=", 1)
        try:
            sweep.axis(name, [int(v) for v in values.split(",")])
        except ValueError:
            raise SystemExit(f"--param {name} values must be integers, "
                             f"got {values!r}") from None
    start = time.time()
    if args.server:
        result = sweep.run(journal=args.journal, server=args.server)
    else:
        result = sweep.run(runner=_make_lab_runner(args),
                           journal=args.journal)
    rows = [
        {k: v for k, v in row.items() if k not in ("preset", "scale")}
        for row in result.rows()
    ]
    print(format_table(rows, title=f"sweep {args.name!r} "
                                   f"({len(rows)} runs, {args.scale} scale)"))
    report = result.report
    print(f"\n[{report.total} runs: {report.cache_hits} cached, "
          f"{report.executed} simulated, {len(report.failures)} failed "
          f"in {time.time() - start:.1f}s]")
    if args.journal:
        print(f"[journal at {args.journal}; finish a killed sweep with "
              f"'repro sweep --resume {args.journal}']")
    if args.manifest:
        result.write_manifest(args.manifest)
        print(f"[manifest written to {args.manifest}]")
    if report.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_FAILURE if report.failures else EXIT_OK


def _cmd_sweep_resume(args) -> int:
    """Complete a crashed/killed sweep from its journal."""
    from repro.lab import resume_sweep
    from repro.lab.journal import JournalError, load_journal

    try:
        state = load_journal(args.resume)
    except JournalError as exc:
        raise SystemExit(f"sweep --resume: {exc}")
    print(f"[resuming {args.resume}: {len(state.specs)} spec(s), "
          f"{len(state.done)} already done, {len(state.pending)} pending]")
    start = time.time()
    report = resume_sweep(args.resume, runner=_make_lab_runner(args))
    print(f"[{report.total} runs: {report.cache_hits} cached, "
          f"{report.executed} simulated, {len(report.failures)} failed "
          f"in {time.time() - start:.1f}s]")
    if report.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_FAILURE if report.failures else EXIT_OK


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        print(cache.stats().render())
        return 0
    if args.cache_command == "verify":
        report = cache.verify(repair=args.repair)
        print(report.render(verbose=True))
        if report.quarantined:
            print(f"[{len(report.quarantined)} corrupt entr(ies) moved to "
                  f"quarantine; they will be recomputed on next use]")
        # Corrupt entries left in place are an error; after --repair the
        # store is clean again (the defects are preserved in quarantine).
        if report.corrupt and not args.repair:
            return EXIT_FAILURE
        return EXIT_OK
    if args.cache_command == "clear":
        removed = cache.clear(stale_only=args.stale_only)
        what = "stale " if args.stale_only else ""
        print(f"removed {removed} {what}cached result(s) "
              f"from {cache.directory}")
        return 0
    raise SystemExit(2)


def _watchdog_overrides(args) -> dict:
    """Config overrides from the shared --watchdog family of flags."""
    overrides = {}
    if getattr(args, "max_cycles", None) is not None:
        overrides["max_cycles"] = args.max_cycles
    if getattr(args, "watchdog", None) is not None:
        overrides["no_progress_window"] = args.watchdog
    if getattr(args, "progress_epoch", None) is not None:
        overrides["progress_epoch"] = args.progress_epoch
    if getattr(args, "invariants", False):
        overrides["invariant_checks"] = True
    return overrides


def _add_watchdog_options(parser) -> None:
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="hard simulated-cycle budget")
    parser.add_argument("--watchdog", type=int, default=None,
                        help="no-progress window in cycles before the run "
                             "is classified as hung (0 disables)")
    parser.add_argument("--progress-epoch", type=int, default=None,
                        help="cycles between progress-monitor samples")
    parser.add_argument("--invariants", action="store_true",
                        help="enable per-epoch microarchitectural "
                             "invariant checks (debug)")


def _failure_exit_code(failure) -> int:
    """Map a lab :class:`~repro.lab.results.RunFailure` to the CLI's
    exit-code contract (hang=3, validation=4, transient=5)."""
    if failure.hung or failure.error_type in (
            "SimulationLivelock", "SimulationDeadlock", "SimulationTimeout"):
        return EXIT_HANG
    if failure.error_type == "WorkloadError":
        return EXIT_VALIDATION
    if failure.transient:
        return EXIT_TRANSIENT
    return EXIT_FAILURE


def _cmd_run_server(args, config, params) -> int:
    """``repro run --server``: submit the run to a serve daemon."""
    from repro.lab.spec import RunSpec
    from repro.serve import ServeError
    from repro.submit import submit

    spec = RunSpec(kernel=args.kernel, config=config, params=params,
                   engine=args.engine, label=args.kernel)
    start = time.time()
    try:
        handle = submit(spec, backend="server", server=args.server,
                        client_name="run")
        for record in handle.stream():
            if args.progress_stream:
                print(f"  [{record.get('kind')}] "
                      + " ".join(f"{k}={v}" for k, v in record.items()
                                 if k != "kind"))
        outcome = handle.outcome()
    except (OSError, ServeError) as exc:
        print(f"kernel {args.kernel}: daemon unreachable "
              f"({type(exc).__name__}): {exc}")
        return EXIT_TRANSIENT
    elapsed = time.time() - start
    if not outcome.ok:
        print(f"kernel {args.kernel}: FAILED ({outcome.error_type})")
        print(outcome.describe())
        return _failure_exit_code(outcome)
    how = "cached" if outcome.from_cache else "simulated"
    print(f"kernel {args.kernel}: {outcome.cycles} cycles "
          f"({how} via {args.server}, {elapsed:.1f}s wall)")
    for key, value in outcome.stats.summary().items():
        print(f"  {key:28s}{value}")
    if config.ddos is not None:
        print(f"  detected SIBs: {sorted(outcome.predicted_sibs)}")
    print("  validation: OK")
    return EXIT_OK


def _cmd_run(args) -> int:
    bows: object = None
    if args.bows == "adaptive":
        bows = True
    elif args.bows is not None:
        bows = int(args.bows)
    config = GPUConfig.preset(
        args.preset,
        scheduler=args.scheduler,
        bows=bows,
        ddos=None if not args.no_ddos else False,
    )
    overrides = _watchdog_overrides(args)
    if overrides:
        config = config.replace(**overrides)
    params = _parse_params(args.param)
    if args.server:
        return _cmd_run_server(args, config, params)
    workload = build_workload(args.kernel, **params)
    start = time.time()
    try:
        result = simulate(workload, config=config, engine=args.engine)
    except SimulationHang as exc:
        print(f"kernel {args.kernel}: HANG ({type(exc).__name__})")
        print(exc.args[0] if exc.args else str(exc))
        return EXIT_HANG
    except WorkloadError as exc:
        print(f"kernel {args.kernel}: VALIDATION FAILED")
        print(str(exc))
        return EXIT_VALIDATION
    except (OSError, RunTimeout, TransientRunError) as exc:
        print(f"kernel {args.kernel}: transient error "
              f"({type(exc).__name__}): {exc}")
        return EXIT_TRANSIENT
    elapsed = time.time() - start
    stats = result.stats
    print(f"kernel {args.kernel}: {result.cycles} cycles "
          f"({elapsed:.1f}s wall)")
    for key, value in stats.summary().items():
        print(f"  {key:28s}{value}")
    if result.ddos_engines:
        print(f"  detected SIBs: {sorted(result.predicted_sibs())} "
              f"(truth: {sorted(workload.launch.program.true_sibs())})")
    print("  validation: OK")
    return EXIT_OK


def _cmd_profile(args) -> int:
    """Run one kernel with full observability and emit a profile report."""
    from repro.obs import ObsConfig, Observability
    from repro.obs.profile import build_profile
    from repro.sim.trace import Tracer

    bows: object = None
    if args.bows == "adaptive":
        bows = True
    elif args.bows is not None:
        bows = int(args.bows)
    config = GPUConfig.preset(
        args.preset,
        scheduler=args.scheduler,
        bows=bows,
        ddos=None if not args.no_ddos else False,
    )
    overrides = _watchdog_overrides(args)
    if overrides:
        config = config.replace(**overrides)
    params = _parse_params(args.param)
    if args.quick and not params:
        from repro.harness.params import QUICK_PARAMS

        params = dict(QUICK_PARAMS.get(args.kernel, {}))
    workload = build_workload(args.kernel, **params)
    obs = Observability(ObsConfig(
        event_capacity=args.event_capacity,
        sample_interval=args.sample_interval,
    ))
    tracer = Tracer(capacity=args.trace_capacity)
    start = time.time()
    try:
        result = simulate(workload, config=config, engine=args.engine,
                          tracer=tracer, obs=obs)
    except SimulationHang as exc:
        print(f"kernel {args.kernel}: HANG ({type(exc).__name__})")
        print(exc.args[0] if exc.args else str(exc))
        return EXIT_HANG
    except WorkloadError as exc:
        print(f"kernel {args.kernel}: VALIDATION FAILED")
        print(str(exc))
        return EXIT_VALIDATION
    except (OSError, RunTimeout, TransientRunError) as exc:
        print(f"kernel {args.kernel}: transient error "
              f"({type(exc).__name__}): {exc}")
        return EXIT_TRANSIENT
    elapsed = time.time() - start
    report = build_profile(result, tracer, workload=args.kernel,
                           scheduler=args.scheduler, engine=args.engine)
    text = report.to_markdown()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[profile report written to {args.out}]")
    else:
        print(text)
    if args.json:
        report.to_json(args.json)
        print(f"[profile JSON written to {args.json}]")
    if args.trace:
        written = tracer.export_chrome_trace(args.trace, counters=obs.series)
        print(f"[chrome trace ({written} issue events + counter tracks) "
              f"written to {args.trace}]")
    print(f"\n[{args.kernel} profiled in {elapsed:.1f}s: "
          f"{result.cycles} cycles, {obs.bus.total_events} events, "
          f"{len(obs.series.rows) if obs.series else 0} sample intervals]")
    return EXIT_OK


def _cmd_fuzz(args) -> int:
    from repro.fuzz import ScheduleFuzzer

    bows: object = None
    if args.bows == "adaptive":
        bows = True
    elif args.bows is not None:
        bows = int(args.bows)
    config = GPUConfig.preset(
        args.preset,
        scheduler=args.scheduler,
        bows=bows,
    )
    overrides = _watchdog_overrides(args)
    if overrides:
        config = config.replace(**overrides)
    params = _parse_params(args.param) or None
    fuzzer = ScheduleFuzzer(
        args.kernel,
        params=params,
        base_config=config,
        budget_cycles=args.budget_cycles,
        watchdog=args.watchdog,
        progress_epoch=args.progress_epoch,
        sched_jitter=args.jitter,
        mem_jitter_cycles=args.mem_jitter,
        rotation_period=args.rotation,
        scale=args.scale,
        sanitize=args.sanitize,
    )
    workers = args.workers
    if workers is None or workers <= 0:
        workers = 1
    runner = None if args.server else Runner(
        workers=workers, cache=None,
        progress=print if args.progress else None,
    )
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    journal = args.resume or args.journal
    report = fuzzer.run(seeds, runner=runner, shrink=not args.no_shrink,
                        journal=journal, resume=bool(args.resume),
                        server=args.server)
    if args.json:
        report.write(args.json)
        print(f"[fuzz report written to {args.json}]")
    print(report.summary())
    if report.hangs:
        return EXIT_HANG
    if report.validation_failures or report.races:
        return EXIT_VALIDATION
    if any(f.kind == "infra" for f in report.findings):
        return EXIT_TRANSIENT
    return EXIT_OK


def _cmd_lint(args) -> int:
    import json as json_mod

    from repro.analysis.lint import lint_all, lint_kernel

    if args.all == (args.kernel is not None):
        print("lint: specify exactly one of KERNEL or --all",
              file=sys.stderr)
        return 2
    params = _parse_params(args.param) or None
    if args.all:
        reports = lint_all(
            {name: params for name in kernel_names()} if params else None
        )
    else:
        reports = {args.kernel: lint_kernel(args.kernel, params)}

    failed = any(not rep.ok for rep in reports.values())
    if args.format == "json":
        payload = {
            "ok": not failed,
            "kernels": {name: rep.to_dict() for name, rep in
                        sorted(reports.items())},
        }
        text = json_mod.dumps(payload, indent=2, sort_keys=True)
    else:
        text = "\n".join(rep.render() for _, rep in sorted(reports.items()))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[lint report written to {args.out}]")
    else:
        print(text)
    return EXIT_FAILURE if failed else EXIT_OK


def _cmd_bench(args) -> int:
    from repro.bench import (BenchError, load_benchmark, run_benchmark,
                             write_benchmark)

    try:
        payload = run_benchmark(quick=args.quick, reps=args.reps,
                                progress=print, server=args.server)
    except BenchError as exc:
        print(f"bench: EQUIVALENCE FAILURE: {exc}")
        return EXIT_VALIDATION
    summary = payload["summary"]
    print(f"\nspeedup: min {summary['min_speedup']:.2f}x, "
          f"geomean {summary['geomean_speedup']:.2f}x, "
          f"max {summary['max_speedup']:.2f}x "
          f"(peak RSS {summary['peak_rss_mb']:.0f} MiB)")
    if args.baseline:
        committed = load_benchmark(args.baseline)
        if committed is None:
            print(f"bench: no compatible baseline at {args.baseline}")
        else:
            by_key = {(e["kernel"], e["mode"]): e
                      for e in committed["entries"]}
            for entry in payload["entries"]:
                ref = by_key.get((entry["kernel"], entry["mode"]))
                if ref is None:
                    continue
                delta = entry["speedup"] / ref["speedup"] - 1.0
                print(f"  vs baseline {entry['kernel']}/{entry['mode']}: "
                      f"{ref['speedup']:.2f}x -> {entry['speedup']:.2f}x "
                      f"({delta:+.0%})")
    if args.out:
        write_benchmark(payload, args.out)
        print(f"[benchmark record written to {args.out}]")
    if (args.min_speedup is not None
            and summary["min_speedup"] < args.min_speedup):
        print(f"bench: FAILED — min speedup {summary['min_speedup']:.2f}x "
              f"< required {args.min_speedup:.2f}x")
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_serve(args) -> int:
    """Start (or query / stop) the resident simulation daemon."""
    import json as json_mod
    import os

    from repro.serve import ServeClient, ServeDaemon, ServeError

    if args.status or args.stop:
        try:
            with ServeClient(args.address, name="cli") as client:
                if args.status:
                    status = client.status()
                    status.pop("type", None)
                    print(json_mod.dumps(status, indent=2, sort_keys=True))
                if args.stop:
                    client.shutdown_daemon(drain=not args.abort)
                    print(f"[daemon at {args.address} asked to "
                          f"{'abort' if args.abort else 'drain'}]")
        except (OSError, ServeError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return EXIT_TRANSIENT
        return EXIT_OK

    workers = args.workers
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    daemon = ServeDaemon(
        args.address,
        workers=workers,
        mode=args.mode,
        cache=False if args.no_cache else ResultCache(args.cache_dir),
        journal=args.journal,
        timeout_s=args.timeout_s,
        retries=args.retries,
        grace_s=args.grace_s,
        max_inflight_per_client=args.max_inflight,
        checkpoint_dir=args.checkpoint_dir,
        progress=None if args.quiet else print,
    )
    return daemon.serve_forever()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BOWS/DDOS reproduction (HPCA 2018) — cycle-level "
                    "SIMT GPU simulation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and kernels")

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name", help="fig1..fig16 / tab1 / tab3")
    exp.add_argument("--scale", choices=("full", "quick"), default="full")
    _add_lab_options(exp)

    swp = sub.add_parser(
        "sweep",
        help="run a cartesian (kernel x scheduler x bows) sweep",
    )
    swp.add_argument("--name", default="cli-sweep",
                     help="sweep name (manifest/reporting)")
    swp.add_argument("--kernel", action="append", default=[],
                     choices=kernel_names(), metavar="KERNEL",
                     help="kernel to include (repeatable; default: ht)")
    swp.add_argument("--scheduler", action="append", default=[],
                     metavar="POLICY[,POLICY...]",
                     help="base scheduler axis (default: gto)")
    swp.add_argument("--bows", action="append", default=[],
                     metavar="LIMIT[,LIMIT...]",
                     help="BOWS axis: 'none', a delay limit, or 'adaptive'")
    swp.add_argument("--preset", choices=("fermi", "pascal"),
                     default="fermi")
    swp.add_argument("--scale", choices=("full", "quick"), default="quick")
    swp.add_argument("--param", action="append", default=[],
                     metavar="NAME=VALUE[,VALUE...]",
                     help="workload parameter axis (repeatable)")
    swp.add_argument("--manifest", default=None,
                     help="write the sweep manifest JSON to this path")
    swp.add_argument("--journal", default=None, metavar="PATH",
                     help="append specs and outcomes to a durable JSONL "
                          "journal, making the sweep resumable")
    swp.add_argument("--resume", default=None, metavar="PATH",
                     help="complete a killed sweep from its journal "
                          "(finished specs come back as cache hits)")
    swp.add_argument("--server", default=None, metavar="ADDRESS",
                     help="submit the sweep to a 'repro serve' daemon at "
                          "ADDRESS (socket path or host:port) instead of "
                          "simulating in-process")
    swp.add_argument("--obs", action="store_true",
                     help="collect observability (time series + events) "
                          "on every run; with --server the samples "
                          "stream back live")
    _add_lab_options(swp)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry counts and sizes")
    verify = cache_sub.add_parser(
        "verify",
        help="per-entry size + integrity scan (exit 1 on corrupt entries "
             "unless --repair quarantines them)",
    )
    verify.add_argument("--repair", action="store_true",
                        help="move corrupt entries to quarantine/ so they "
                             "are recomputed on next use")
    clear = cache_sub.add_parser("clear", help="delete cached results")
    clear.add_argument("--stale-only", action="store_true",
                       help="only drop entries from old code fingerprints")
    for sub_parser in (stats, verify, clear):
        sub_parser.add_argument("--cache-dir", default=None,
                                help="cache directory (default: .lab_cache)")

    run = sub.add_parser("run", help="simulate one kernel")
    run.add_argument("kernel", choices=kernel_names())
    run.add_argument("--scheduler", choices=("lrr", "gto", "cawa"),
                     default="gto")
    run.add_argument("--bows", default=None,
                     help="'adaptive' or a fixed delay limit in cycles")
    run.add_argument("--no-ddos", action="store_true",
                     help="use static !sib annotations instead of DDOS")
    run.add_argument("--preset", choices=("fermi", "pascal"),
                     default="fermi")
    run.add_argument("--param", action="append", default=[],
                     metavar="NAME=VALUE",
                     help="workload parameter override (repeatable)")
    run.add_argument("--engine", choices=("fast", "reference"),
                     default="fast",
                     help="execution engine (both are bitwise-equivalent; "
                          "'reference' is the seed implementation)")
    run.add_argument("--server", default=None, metavar="ADDRESS",
                     help="submit the run to a 'repro serve' daemon at "
                          "ADDRESS instead of simulating in-process")
    run.add_argument("--progress-stream", action="store_true",
                     help="with --server, print streamed progress records "
                          "(lifecycle marks, obs samples) as they arrive")
    _add_watchdog_options(run)

    prof = sub.add_parser(
        "profile",
        help="simulate one kernel with full observability and report "
             "hot spots, back-off timelines, and DDOS decisions",
    )
    prof.add_argument("kernel", choices=kernel_names())
    prof.add_argument("--scheduler", choices=("lrr", "gto", "cawa"),
                      default="gto")
    prof.add_argument("--bows", default=None,
                      help="'adaptive' or a fixed delay limit in cycles")
    prof.add_argument("--no-ddos", action="store_true",
                      help="use static !sib annotations instead of DDOS")
    prof.add_argument("--preset", choices=("fermi", "pascal"),
                      default="fermi")
    prof.add_argument("--param", action="append", default=[],
                      metavar="NAME=VALUE",
                      help="workload parameter override (repeatable)")
    prof.add_argument("--engine", choices=("fast", "reference"),
                      default="fast")
    prof.add_argument("--quick", action="store_true",
                      help="use the quick-scale harness parameters "
                           "(CI smoke size)")
    prof.add_argument("--sample-interval", type=int, default=500,
                      help="cycles between time-series samples")
    prof.add_argument("--event-capacity", type=int, default=200_000,
                      help="event ring-log capacity")
    prof.add_argument("--trace-capacity", type=int, default=200_000,
                      help="issue-tracer ring-buffer capacity")
    prof.add_argument("--out", default=None, metavar="PATH",
                      help="write the markdown report to PATH "
                           "(default: stdout)")
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="write the profile JSON to PATH")
    prof.add_argument("--trace", default=None, metavar="PATH",
                      help="write Chrome trace JSON (issue timeline + "
                           "sampled counter tracks) to PATH")
    _add_watchdog_options(prof)

    bench = sub.add_parser(
        "bench",
        help="measure fast-engine speedup on the fixed kernel matrix",
    )
    bench.add_argument("--quick", action="store_true",
                       help="shrunk matrix for CI smoke runs")
    bench.add_argument("--reps", type=int, default=3,
                       help="repetitions per engine (min wall time kept)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="write the versioned benchmark JSON to PATH")
    bench.add_argument("--min-speedup", type=float, default=None,
                       metavar="X",
                       help="fail (exit 1) if any entry's speedup < X")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="committed BENCH_hotloop.json to compare "
                            "against (prints per-entry deltas)")
    bench.add_argument("--server", default=None, metavar="ADDRESS",
                       help="route runs through a 'repro serve' daemon "
                            "(smoke only: the daemon dedupes reps, so "
                            "wall timings are not comparable)")

    fuzz = sub.add_parser(
        "fuzz",
        help="hunt for schedule-dependent hangs with seeded perturbations",
    )
    fuzz.add_argument("kernel", choices=kernel_names())
    fuzz.add_argument("--seeds", type=int, default=16,
                      help="number of perturbation seeds to try")
    fuzz.add_argument("--seed-base", type=int, default=0,
                      help="first seed (seeds are seed-base..seed-base+N-1)")
    fuzz.add_argument("--budget-cycles", type=int, default=100_000,
                      help="per-seed simulated-cycle budget")
    fuzz.add_argument("--jitter", type=float, default=0.1,
                      help="scheduler tie-break jitter probability [0,1]")
    fuzz.add_argument("--mem-jitter", type=int, default=16,
                      help="max extra memory latency in cycles")
    fuzz.add_argument("--rotation", type=int, default=401,
                      help="warp-priority rotation period (0 disables)")
    fuzz.add_argument("--scheduler", choices=("lrr", "gto", "cawa"),
                      default="gto")
    fuzz.add_argument("--bows", default=None,
                      help="'adaptive' or a fixed delay limit in cycles")
    fuzz.add_argument("--preset", choices=("fermi", "pascal"),
                      default="fermi")
    fuzz.add_argument("--scale", choices=("full", "quick"), default="quick")
    fuzz.add_argument("--param", action="append", default=[],
                      metavar="NAME=VALUE",
                      help="workload parameter override (repeatable)")
    fuzz.add_argument("--workers", type=int, default=None,
                      help="parallel worker processes (default: 1)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip shrinking the first hang")
    fuzz.add_argument("--json", default=None, metavar="PATH",
                      help="write the full fuzz report JSON to PATH")
    fuzz.add_argument("--progress", action="store_true",
                      help="print per-run progress lines")
    fuzz.add_argument("--watchdog", type=int, default=None,
                      help="no-progress window (default: budget/4)")
    fuzz.add_argument("--progress-epoch", type=int, default=None,
                      help="progress-monitor sample period")
    fuzz.add_argument("--invariants", action="store_true",
                      help="enable invariant checks during fuzz runs")
    fuzz.add_argument("--sanitize", action="store_true",
                      help="attach the dynamic sanitizer to every seed; "
                           "completed-but-racy schedules become 'race' "
                           "findings (exit 4)")
    fuzz.add_argument("--journal", default=None, metavar="PATH",
                      help="append per-seed outcomes to a durable JSONL "
                           "journal, making the campaign resumable")
    fuzz.add_argument("--resume", default=None, metavar="PATH",
                      help="continue a killed campaign from its journal, "
                           "skipping seeds with a recorded outcome")
    fuzz.add_argument("--server", default=None, metavar="ADDRESS",
                      help="submit every seed to a 'repro serve' daemon "
                           "at ADDRESS instead of a local worker pool")

    lint = sub.add_parser(
        "lint",
        help="static kernel lint: spin/SIB classification, lock "
             "discipline, divergent barriers, dataflow checks",
    )
    lint.add_argument("kernel", nargs="?", choices=kernel_names(),
                      default=None,
                      help="kernel to lint (omit with --all)")
    lint.add_argument("--all", action="store_true",
                      help="lint every registered kernel")
    lint.add_argument("--param", action="append", default=[],
                      metavar="NAME=VALUE",
                      help="workload parameter override (repeatable)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (json is the Table I "
                           "static-oracle source; see EXPERIMENTS.md)")
    lint.add_argument("--out", default=None, metavar="PATH",
                      help="write the report to PATH instead of stdout")

    serve = sub.add_parser(
        "serve",
        help="run the resident simulation daemon: shared worker pool, "
             "cache dedup, streamed progress (see docs/serve.md)",
    )
    serve.add_argument("address",
                       help="listen address: a Unix-socket path or "
                            "host:port")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker pool size (default: CPU count)")
    serve.add_argument("--mode", choices=("process", "thread"),
                       default="process",
                       help="worker pool kind (process isolates "
                            "simulations; thread is for tests)")
    serve.add_argument("--no-cache", action="store_true",
                       help="skip the shared on-disk result cache")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: .lab_cache)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append every submission and outcome to a "
                            "durable JSONL journal (resumable via "
                            "'repro sweep --resume PATH')")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="per-run wall-clock timeout in seconds")
    serve.add_argument("--retries", type=int, default=1,
                       help="retry budget for transient failures")
    serve.add_argument("--grace-s", type=float, default=30.0,
                       help="drain grace for in-flight runs on "
                            "SIGTERM/SIGINT")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="fairness budget: at most N of any one "
                            "client's jobs on workers at once")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="autocheckpoint running simulations to DIR")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    serve.add_argument("--status", action="store_true",
                       help="print a running daemon's status JSON and exit")
    serve.add_argument("--stop", action="store_true",
                       help="ask a running daemon to drain and stop")
    serve.add_argument("--abort", action="store_true",
                       help="with --stop: abort without draining")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise SystemExit(2)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
