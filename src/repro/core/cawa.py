"""CAWA criticality estimation (Lee et al., ISCA 2015; paper Section II).

CAWA predicts which warp will finish last — the *critical* warp — and
prioritizes it.  The criticality metric is::

    criticality = nInst * CPIavg + nStall

where ``nInst`` estimates the remaining dynamic instruction count from
branch outcomes (a taken backward branch implies the loop body will run
again, so the estimate grows by the loop length), ``CPIavg`` is the warp's
average cycles-per-instruction, and ``nStall`` accumulates cycles the warp
spent unable to issue.

The paper's observation (reproduced here): on busy-wait code the
criticality predictor rewards *spinning* warps — every spin iteration's
backward branch inflates ``nInst`` — so CAWA tends to prioritize exactly
the warps BOWS wants to throttle.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.sim.warp import Warp


class CAWAPredictor:
    """Online criticality bookkeeping for the warps of one SM."""

    #: Floor for the remaining-instruction estimate (a live warp always
    #: has at least a few instructions left).
    MIN_REMAINING = 1.0

    def on_issue(self, warp: Warp, instr: Instruction, now: int) -> None:
        """Update ``nInst``/CPI inputs when ``warp`` issues ``instr``."""
        warp.cawa_issued += 1
        warp.cawa_ninst = max(warp.cawa_ninst - 1.0, self.MIN_REMAINING)

    def on_branch(self, warp: Warp, instr: Instruction,
                  taken_any: bool) -> None:
        """Grow the remaining-instruction estimate on taken backward branches."""
        if taken_any and instr.is_backward_branch:
            assert instr.target_index is not None
            warp.cawa_ninst += float(instr.index - instr.target_index)

    def charge_stall(self, warp: Warp, cycles: float) -> None:
        warp.cawa_nstall += cycles

    def charge_elapsed(self, warp: Warp, cycles: float) -> None:
        warp.cawa_cycles += cycles

    @staticmethod
    def criticality(warp: Warp) -> float:
        return warp.criticality
