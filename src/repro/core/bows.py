"""BOWS — Back-Off Warp Spinning (paper Section III).

Per-SM unit holding the two pieces of scheduling state BOWS adds:

* the **backed-off queue** — FIFO of warps that executed a spin-inducing
  branch and are therefore deprioritized: they may only issue when no
  normal warp can, and leave the queue (reverting to normal priority) as
  soon as they issue their next instruction;
* the **pending back-off delay** per warp — set when a warp exits the
  backed-off state, it enforces a minimum interval between the starts of
  two consecutive spin-loop iterations by the same warp: a warp whose
  delay has not expired is not eligible for issue from the backed-off
  queue at all.

The delay limit is either fixed or driven by the adaptive controller
(:class:`~repro.core.adaptive.AdaptiveDelayController`), fed with
per-window total/SIB instruction counts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Set

from repro.core.adaptive import AdaptiveDelayController
from repro.obs.bus import null_emitter
from repro.obs.events import AdaptiveDelayUpdate, BackoffEnter, BackoffExit
from repro.sim.config import BOWSConfig
from repro.sim.warp import Warp


class BOWSUnit:
    """Backed-off queue, pending delays, and window accounting for one SM."""

    def __init__(self, config: BOWSConfig, sm_id: int = 0, bus=None) -> None:
        self.config = config
        self.sm_id = sm_id
        # Pre-bound event sinks (repro.obs); all three fire only on cold
        # branches (state transitions / window ends), never per issue.
        if bus is not None:
            self._emit_enter = bus.emitter(BackoffEnter)
            self._emit_exit = bus.emitter(BackoffExit)
            self._emit_delay = bus.emitter(AdaptiveDelayUpdate)
        else:
            self._emit_enter = null_emitter
            self._emit_exit = null_emitter
            self._emit_delay = null_emitter
        self._queue: Deque[int] = deque()
        self._queued: Set[int] = set()
        self._controller: Optional[AdaptiveDelayController] = (
            AdaptiveDelayController(config) if config.adaptive else None
        )
        self._window_end = config.window
        self._window_start = 0
        self._window_total = 0
        self._window_sib = 0
        self._window_stores = 0

    def __getstate__(self):
        """Checkpointing: drop the emitter closures; queue, controller,
        and window counters pickle as-is (SM rebinds after restore)."""
        state = self.__dict__.copy()
        state["_emit_enter"] = None
        state["_emit_exit"] = None
        state["_emit_delay"] = None
        return state

    def _rebind_events(self, bus) -> None:
        if bus is not None:
            self._emit_enter = bus.emitter(BackoffEnter)
            self._emit_exit = bus.emitter(BackoffExit)
            self._emit_delay = bus.emitter(AdaptiveDelayUpdate)
        else:
            self._emit_enter = null_emitter
            self._emit_exit = null_emitter
            self._emit_delay = null_emitter

    # ------------------------------------------------------------------

    @property
    def delay_limit(self) -> int:
        if self._controller is not None:
            return self._controller.delay_limit
        return self.config.delay_limit

    @property
    def controller(self) -> Optional[AdaptiveDelayController]:
        """The adaptive controller, if any (for inspection/plotting)."""
        return self._controller

    @property
    def backed_off_slots(self) -> Set[int]:
        return set(self._queued)

    def queue_order(self) -> Iterable[int]:
        """Warp slots in backed-off FIFO order (oldest first)."""
        return iter(self._queue)

    # ------------------------------------------------------------------
    # Event hooks

    def on_sib_executed(self, warp: Warp, now: int) -> None:
        """Warp executed a SIB with at least one lane looping: back off."""
        warp.backed_off = True
        if warp.warp_slot not in self._queued:
            self._queue.append(warp.warp_slot)
            self._queued.add(warp.warp_slot)
            self._emit_enter(
                cycle=now, sm_id=self.sm_id,
                warp_slot=warp.warp_slot, cta_id=warp.cta_id,
            )

    def on_issue(self, warp: Warp, now: int, is_sib: bool,
                 is_store: bool = False) -> None:
        """Account an issued instruction; release the warp if backed off."""
        self._window_total += 1
        if is_sib:
            self._window_sib += 1
        if is_store:
            self._window_stores += 1
        if self._controller is not None and now >= self._window_end:
            elapsed = max(now - self._window_start, 1)
            window_total = self._window_total
            window_sib = self._window_sib
            self._controller.end_window(
                window_total, window_sib, elapsed,
                self._window_stores,
            )
            self._window_total = 0
            self._window_sib = 0
            self._window_stores = 0
            self._window_start = now
            self._window_end = now + self.config.window
            self._emit_delay(
                cycle=now, sm_id=self.sm_id,
                delay_limit=self._controller.delay_limit,
                window_total=window_total, window_sib=window_sib,
                direction=self._controller.direction,
            )
        if warp.backed_off:
            # Exiting the backed-off state: normal priority is restored
            # and the pending back-off delay starts counting down.
            warp.backed_off = False
            warp.pending_delay_until = now + self.delay_limit
            self._discard(warp.warp_slot)
            self._emit_exit(
                cycle=now, sm_id=self.sm_id,
                warp_slot=warp.warp_slot, cta_id=warp.cta_id,
                delay_until=warp.pending_delay_until,
            )

    def on_warp_reset(self, warp_slot: int) -> None:
        """Warp slot reused by a new CTA: forget its backed-off state."""
        self._discard(warp_slot)

    # ------------------------------------------------------------------
    # Scheduling queries

    def eligible(self, warp: Warp, now: int) -> bool:
        """May this warp issue at ``now`` given its BOWS state?"""
        if not warp.backed_off:
            return True
        return now >= warp.pending_delay_until

    def select_backed_off(self, ready_slots: Set[int], now: int,
                          warps_by_slot) -> Optional[int]:
        """Pick the frontmost eligible backed-off warp, FIFO order."""
        for slot in self._queue:
            if slot not in ready_slots:
                continue
            warp = warps_by_slot[slot]
            if now >= warp.pending_delay_until:
                return slot
        return None

    def next_delay_expiry(self, now: int, warps_by_slot) -> Optional[int]:
        """Earliest pending-delay expiry after ``now`` (for fast-forward)."""
        expiries = [
            warps_by_slot[slot].pending_delay_until
            for slot in self._queue
            if slot in warps_by_slot
            and warps_by_slot[slot].pending_delay_until > now
        ]
        return min(expiries) if expiries else None

    # ------------------------------------------------------------------

    def _discard(self, warp_slot: int) -> None:
        if warp_slot in self._queued:
            self._queued.discard(warp_slot)
            self._queue.remove(warp_slot)
