"""The paper's contributions: DDOS spin detection and BOWS scheduling.

* :mod:`repro.core.ddos` — Dynamic Detection Of Spinning (Section IV):
  per-warp path/value history registers and the shared spin-inducing-
  branch prediction table (SIB-PT).
* :mod:`repro.core.bows` — Back-Off Warp Spinning (Section III): the
  backed-off queue and pending back-off delay that deprioritize and
  throttle spinning warps.
* :mod:`repro.core.adaptive` — the adaptive back-off delay-limit
  controller (Figure 5).
* :mod:`repro.core.cawa` — the CAWA criticality-aware baseline scheduler
  the paper compares against.
* :mod:`repro.core.cost` — the Table III hardware storage-cost model.
"""

from repro.core.adaptive import AdaptiveDelayController
from repro.core.bows import BOWSUnit
from repro.core.cost import hardware_cost
from repro.core.ddos import DDOSEngine, hash_modulo, hash_xor

__all__ = [
    "AdaptiveDelayController",
    "BOWSUnit",
    "DDOSEngine",
    "hardware_cost",
    "hash_modulo",
    "hash_xor",
]
