"""Hardware storage-cost model for DDOS and BOWS (paper Table III).

Computes per-SM storage bits from the configuration, reproducing the
paper's accounting:

* SIB-PT: 16 entries × 35 bits = 560 bits;
* history registers: 48 warps × 192 bits = 9216 bits
  (per warp: ``l`` path hashes of ``m`` bits + ``2l`` value hashes of
  ``k`` bits; with m=k=8, l=8 that is 64 + 128 = 192 bits);
* pending delay counters: 48 warps × 14 bits (back-off delays to 10,000
  cycles fit in 14 bits);
* backed-off queue: 48 × 5-bit warp ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.config import DDOSConfig, GPUConfig

#: SIB-PT entry: PC tag + confidence + prediction bit (paper: 35 bits).
SIB_PT_ENTRY_BITS = 35


@dataclass(frozen=True)
class HardwareCost:
    """Per-SM storage requirements in bits."""

    sib_pt_bits: int
    history_bits: int
    pending_delay_bits: int
    backed_off_queue_bits: int

    @property
    def ddos_bits(self) -> int:
        return self.sib_pt_bits + self.history_bits

    @property
    def bows_bits(self) -> int:
        return self.pending_delay_bits + self.backed_off_queue_bits

    @property
    def total_bits(self) -> int:
        return self.ddos_bits + self.bows_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8


def history_bits_per_warp(ddos: DDOSConfig) -> int:
    """Path + value history register bits for one warp."""
    path = ddos.history_length * ddos.path_bits
    value = 2 * ddos.history_length * ddos.value_bits
    return path + value


def hardware_cost(config: GPUConfig,
                  max_delay_cycles: int = 10_000,
                  hw_warps_per_sm: int = 48) -> HardwareCost:
    """Per-SM cost of DDOS + BOWS.

    Args:
        config: must carry a ``ddos`` configuration.
        max_delay_cycles: largest supported back-off delay (sets the
            pending-delay counter width; the paper budgets 14 bits for
            10,000 cycles).
        hw_warps_per_sm: hardware warp contexts budgeted per SM.  The
            paper's GTX480 SM holds 48 warps; our scaled simulation runs
            fewer, so the *hardware* budget is a parameter.
    """
    ddos = config.ddos or DDOSConfig()
    sib_pt = ddos.sib_pt_entries * SIB_PT_ENTRY_BITS
    n_history_sets = 1 if ddos.time_sharing else hw_warps_per_sm
    history = n_history_sets * history_bits_per_warp(ddos)
    delay_bits = max(math.ceil(math.log2(max_delay_cycles + 1)), 1)
    pending = hw_warps_per_sm * delay_bits
    queue_id_bits = max(math.ceil(math.log2(hw_warps_per_sm)), 1)
    queue = hw_warps_per_sm * queue_id_bits
    return HardwareCost(
        sib_pt_bits=sib_pt,
        history_bits=history,
        pending_delay_bits=pending,
        backed_off_queue_bits=queue,
    )
