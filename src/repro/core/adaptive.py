"""Adaptive back-off delay-limit estimation.

Two controllers are provided:

* ``"paper"`` — the paper's Figure 5 pseudo-code.  Over successive
  windows of ``T`` cycles it raises the delay limit by one step while
  the dynamic share of spin-inducing branches is non-negligible
  (``SIB > FRAC1 * total``), drops it by a double step when the
  useful ratio ``total / SIB`` degrades versus the previous window
  (``< FRAC2 *`` previous), and clamps to ``[min_limit, max_limit]``.

* ``"hillclimb"`` (default for ``adaptive=True``) — extremum seeking on
  the *useful instruction rate*.  Each window measures
  ``(total - SIB) / elapsed_cycles``; if the rate improved since the
  last window the controller keeps moving the delay limit in the same
  direction, otherwise it reverses.  This finds each kernel's
  Figure 10 sweet spot directly: lock-contended kernels (HT/ATM/DS)
  climb toward large delays because removing spin traffic speeds up
  the real work, while wait/work-merged kernels (ST/NW) descend to
  zero because any delay gates productive iterations.

Why the extension: the paper's trigger counts *all* dynamic SIB
executions.  A spin iteration is only ~5-7 instructions, of which
exactly one is the SIB, so with the paper's FRAC1=0.5 the increase rule
cannot fire on any of our kernels; with a FRAC1 small enough to fire on
spin-heavy kernels it also fires on merged wait/work loops (BH-ST,
dataflow NW), whose closing branch is a SIB on *productive* iterations
too — ramping the delay there throttles real work.  The rate-seeking
controller needs no workload-dependent threshold.  Both controllers are
compared by ``benchmarks/test_ablation_controllers.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.config import BOWSConfig


@dataclass
class WindowSample:
    """Instruction counts observed during one execution window."""

    total_instructions: int
    sib_instructions: int
    elapsed_cycles: int = 0
    store_instructions: int = 0

    @property
    def useful_ratio(self) -> Optional[float]:
        if self.sib_instructions == 0:
            return None
        return self.total_instructions / self.sib_instructions

    @property
    def progress_rate(self) -> float:
        """Global stores per cycle: a forward-progress proxy.

        Spin iterations issue no stores (they retry a CAS and loop);
        critical sections and real work do.  Counting committed global
        stores per window therefore tracks end-to-end progress without
        any workload annotation — exactly the signal an extremum-seeking
        throttle needs.
        """
        elapsed = max(self.elapsed_cycles, 1)
        return self.store_instructions / elapsed


class AdaptiveDelayController:
    """Per-SM adaptive delay-limit estimation."""

    def __init__(self, config: BOWSConfig) -> None:
        self.config = config
        if config.controller == "hillclimb":
            # Start from no throttle: kernels that a delay can only hurt
            # (merged wait/work loops) never pay a transient, while
            # spin-bound kernels climb from zero as each step improves
            # the measured useful rate.
            self.delay_limit = config.min_limit
        elif config.controller == "paper":
            self.delay_limit = config.delay_limit
        else:
            raise ValueError(
                f"unknown adaptive controller {config.controller!r}"
            )
        self._previous: Optional[WindowSample] = None
        self._direction = 1
        self._streak = 0
        self._dry_windows = 0
        self.windows_observed = 0
        #: Delay limit after each window — the controller's trajectory,
        #: for inspection/plotting (see examples/adaptive_trace.py).
        self.history: list = []

    @property
    def direction(self) -> int:
        """Current hill-climb search direction (+1 raising, -1 lowering)."""
        return self._direction

    def end_window(self, total_instructions: int, sib_instructions: int,
                   elapsed_cycles: int = 0,
                   store_instructions: int = 0) -> int:
        """Process one window's counts; returns the new delay limit."""
        sample = WindowSample(total_instructions, sib_instructions,
                              elapsed_cycles, store_instructions)
        self.windows_observed += 1
        if self.config.controller == "paper":
            self._paper_step(sample)
        else:
            self._hillclimb_step(sample)
        cfg = self.config
        self.delay_limit = max(cfg.min_limit,
                               min(cfg.max_limit, self.delay_limit))
        self._previous = sample
        self.history.append(self.delay_limit)
        return self.delay_limit

    # ------------------------------------------------------------------

    def _paper_step(self, sample: WindowSample) -> None:
        cfg = self.config
        if sample.sib_instructions > cfg.frac1 * sample.total_instructions:
            self.delay_limit += cfg.delay_step
        else:
            # Spin share negligible: throttling harder only adds
            # handoff/signal latency, so ramp back down.
            self.delay_limit -= cfg.delay_step
        ratio = sample.useful_ratio
        prev_ratio = self._previous.useful_ratio if self._previous else None
        if (
            ratio is not None
            and prev_ratio is not None
            and ratio < cfg.frac2 * prev_ratio
        ):
            self.delay_limit -= 2 * cfg.delay_step

    def _hillclimb_step(self, sample: WindowSample) -> None:
        cfg = self.config
        if sample.store_instructions == 0:
            # No progress signal this window.  Sparse stores are normal
            # for heavily-serialized kernels (hold), but a long dry
            # stretch usually means the throttle itself froze progress
            # (an over-throttled kernel stops storing *because* of the
            # delay) — blow the fuse and halve the limit so the climb
            # can re-earn it once stores resume.
            self._dry_windows += 1
            if self._dry_windows >= 10:
                self.delay_limit //= 2
                self._dry_windows = 0
                self._streak = 0
                self._direction = -1
            return
        self._dry_windows = 0
        if self._previous is not None:
            if sample.progress_rate < self._previous.progress_rate:
                self._direction = -self._direction
                self._streak = 0
            else:
                self._streak = min(self._streak + 1, 2)
        # Accelerate while the climb keeps paying off (the optimum can
        # be an order of magnitude above the step size), reset to the
        # base step on every reversal so oscillation stays tight.
        step = cfg.delay_step * (1 << self._streak)
        self.delay_limit += self._direction * step
