"""DDOS — Dynamic Detection Of Spinning (paper Section IV).

A thread is *spinning* between two dynamic instances of an instruction if
it executes the instruction twice without an observable change to net
system state (Li et al.).  Tracking every register of every GPU thread is
impractical, so DDOS approximates: per warp it profiles only the first
active thread, and only at ``setp`` instructions (which compute loop exit
conditions on NVIDIA GPUs), recording

* a *path history* of hashed ``setp`` PCs, and
* a *value history* of hashed ``setp`` source-operand values.

A repeating joint path+value pattern means the profiled thread is
re-evaluating the same exit condition over the same values — a spin.  The
detector locks onto a candidate period with the match pointer, requires
``period - 1`` further consecutive matches (the paper's *remaining
matches* counter), then marks the warp spinning; any mismatch clears the
state (Figure 7b step 5).

Warp spinning states feed a per-SM *spin-inducing branch prediction table*
(SIB-PT): a backward branch executed by a spinning warp gains confidence;
a backward branch taken by a non-spinning warp loses confidence (guarding
against hash aliasing).  A branch is predicted spin-inducing while its
confidence is at or above the threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.obs.bus import null_emitter
from repro.obs.events import SIBCleared, SIBDetected
from repro.sim.config import DDOSConfig


def hash_xor(value: int, bits: int) -> int:
    """XOR-fold a 32-bit value into ``bits`` bits (paper Section IV-B).

    Folds successive ``bits``-wide slices of the value together, so
    changes anywhere in the word perturb the hash — this is what removes
    the MODULO scheme's blindness to high-order-bit-only changes.
    """
    value &= 0xFFFFFFFF
    mask = (1 << bits) - 1
    result = 0
    while value:
        result ^= value & mask
        value >>= bits
    return result


def hash_modulo(value: int, bits: int) -> int:
    """Keep the least-significant ``bits`` bits (paper's MODULO hashing).

    Blind to changes above bit ``bits-1`` — a ``for`` loop whose induction
    variable increments by a power of two ≥ ``2**bits`` looks value-stable
    and is falsely detected as a spin (paper Section VI-B, Figure 14).
    """
    return value & ((1 << bits) - 1)


_HASHES = {"xor": hash_xor, "modulo": hash_modulo}

#: One history event: (path hash, value hash of src0, value hash of src1).
_Entry = Tuple[int, int, int]


@dataclass
class _WarpHistory:
    """Path/value history registers and match FSM for one warp slot."""

    entries: Deque[_Entry]
    match_period: Optional[int] = None
    remaining_matches: int = 0
    spinning: bool = False

    def reset(self) -> None:
        self.entries.clear()
        self.match_period = None
        self.remaining_matches = 0
        self.spinning = False


@dataclass
class _BranchRecord:
    """SIB-PT entry plus detection-accuracy bookkeeping."""

    confidence: int = 0
    first_seen: Optional[int] = None
    last_seen: Optional[int] = None
    confirmed_at: Optional[int] = None


class DDOSEngine:
    """Per-SM DDOS unit: warp histories plus the shared SIB-PT."""

    def __init__(self, config: DDOSConfig, program: Program,
                 n_warp_slots: int, sm_id: int = 0, bus=None) -> None:
        self.config = config
        self.program = program
        self.sm_id = sm_id
        # Pre-bound event sinks (repro.obs): no per-decision branch on
        # "is observability attached?" — the disabled path is a no-op.
        if bus is not None:
            self._emit_detected = bus.emitter(SIBDetected)
            self._emit_cleared = bus.emitter(SIBCleared)
        else:
            self._emit_detected = null_emitter
            self._emit_cleared = null_emitter
        self._hash = _HASHES[config.hashing]
        self._histories: Dict[int, _WarpHistory] = {
            slot: _WarpHistory(deque(maxlen=config.history_length))
            for slot in range(n_warp_slots)
        }
        #: SIB-PT: branch instruction index -> record.
        self.sib_pt: Dict[int, _BranchRecord] = {}
        #: All backward branches ever seen (for accuracy metrics).
        self._seen_branches: Dict[int, _BranchRecord] = {}
        self._n_warp_slots = n_warp_slots
        # Time-sharing state: which warp currently owns the (single)
        # history register set.
        self._shared_owner = 0
        self._shared_epoch_end = config.time_sharing_epoch

    def __getstate__(self):
        """Checkpointing: drop the emitter closures; histories, the
        SIB-PT, and time-sharing state pickle as-is (the ``_hash``
        module-level function pickles by reference)."""
        state = self.__dict__.copy()
        state["_emit_detected"] = None
        state["_emit_cleared"] = None
        return state

    def _rebind_events(self, bus) -> None:
        if bus is not None:
            self._emit_detected = bus.emitter(SIBDetected)
            self._emit_cleared = bus.emitter(SIBCleared)
        else:
            self._emit_detected = null_emitter
            self._emit_cleared = null_emitter

    # ------------------------------------------------------------------
    # Event hooks (called by the SM at execution)

    def on_setp(self, warp_slot: int, instr: Instruction,
                value0: int, value1: int, now: int) -> None:
        """Profiled thread executed a ``setp``: update histories."""
        history = self._history_for(warp_slot, now)
        if history is None:
            return
        cfg = self.config
        entry: _Entry = (
            self._hash(instr.index, cfg.path_bits),
            self._hash(int(value0), cfg.value_bits),
            self._hash(int(value1), cfg.value_bits),
        )
        self._insert(history, entry)

    def on_backward_branch(self, warp_slot: int, instr: Instruction,
                           taken_any: bool, now: int) -> None:
        """A warp executed a backward branch: update the SIB-PT."""
        record = self._seen_branches.setdefault(instr.index, _BranchRecord())
        if record.first_seen is None:
            record.first_seen = now
        record.last_seen = now

        spinning = self.warp_spinning(warp_slot)
        if spinning:
            entry = self._sib_pt_entry(instr.index)
            if entry is None:
                return
            entry.confidence += 1
            if entry.confidence == self.config.confidence_threshold:
                # Crossed the prediction threshold from below: the
                # branch is now predicted spin-inducing.
                self._emit_detected(
                    cycle=now, sm_id=self.sm_id, branch=instr.index,
                    confidence=entry.confidence,
                )
            if (
                entry.confidence >= self.config.confidence_threshold
                and entry.confirmed_at is None
            ):
                entry.confirmed_at = now
                record.confirmed_at = record.confirmed_at or now
        elif taken_any:
            entry = self.sib_pt.get(instr.index)
            if entry is not None and entry.confidence > 0:
                entry.confidence -= 1
                if entry.confidence == self.config.confidence_threshold - 1:
                    # Fell below the threshold: prediction turned off
                    # (the aliasing guard drained it).
                    self._emit_cleared(
                        cycle=now, sm_id=self.sm_id, branch=instr.index,
                    )

    # ------------------------------------------------------------------
    # Queries

    def warp_spinning(self, warp_slot: int) -> bool:
        history = self._current_history(warp_slot)
        return history.spinning if history is not None else False

    def is_sib(self, branch_index: int) -> bool:
        """Is this branch currently predicted spin-inducing?"""
        entry = self.sib_pt.get(branch_index)
        return (
            entry is not None
            and entry.confidence >= self.config.confidence_threshold
        )

    def predicted_sibs(self) -> Set[int]:
        """Branches this engine ever confirmed as spin-inducing.

        The live prediction (:meth:`is_sib`) follows the confidence
        counter up *and* down — after a kernel's spinning phase ends,
        the aliasing guard legitimately drains confidence.  For
        reporting and accuracy scoring, "was confirmed at any point"
        is the meaningful notion.
        """
        return {
            index
            for index, record in self._seen_branches.items()
            if record.confirmed_at is not None
        }

    def detection_records(self) -> Dict[int, _BranchRecord]:
        """Bookkeeping for accuracy metrics (TSDR/FSDR/DPR)."""
        return dict(self._seen_branches)

    def confirmed_records(self) -> Dict[int, _BranchRecord]:
        return {
            index: record
            for index, record in self._seen_branches.items()
            if record.confirmed_at is not None
        }

    # ------------------------------------------------------------------
    # Internals

    def _history_for(self, warp_slot: int, now: int) -> Optional[_WarpHistory]:
        """History registers for a warp, honoring time-sharing."""
        if not self.config.time_sharing:
            return self._histories[warp_slot]
        # One physical register set, rotated among warps each epoch.
        while now >= self._shared_epoch_end:
            self._shared_epoch_end += self.config.time_sharing_epoch
            self._shared_owner = (self._shared_owner + 1) % self._n_warp_slots
            self._histories[0].reset()
        if warp_slot != self._shared_owner:
            return None
        return self._histories[0]

    def _current_history(self, warp_slot: int) -> Optional[_WarpHistory]:
        if not self.config.time_sharing:
            return self._histories[warp_slot]
        if warp_slot != self._shared_owner:
            return None
        return self._histories[0]

    def _insert(self, history: _WarpHistory, entry: _Entry) -> None:
        """Shift in a new history entry and run the match FSM."""
        entries = history.entries
        if history.match_period is not None:
            period = history.match_period
            if len(entries) >= period and entries[period - 1] == entry:
                # entries[period-1] is the event one full period ago.
                if history.remaining_matches > 0:
                    history.remaining_matches -= 1
                if history.remaining_matches == 0:
                    history.spinning = True
                entries.appendleft(entry)
                return
            # Mismatch: the FSM resets (match pointer / remaining matches
            # cleared, spinning state lost); the shift registers keep
            # their contents, as in Figure 7b step 5.  Fall through to
            # candidate-period search with the new entry.
            history.match_period = None
            history.remaining_matches = 0
            history.spinning = False

        entries.appendleft(entry)
        # Look for the most recent earlier occurrence of this entry: its
        # distance is the candidate period (the match pointer).
        for distance in range(1, len(entries)):
            if entries[distance] == entry:
                history.match_period = distance
                history.remaining_matches = max(distance - 1, 1)
                return

    def _sib_pt_entry(self, branch_index: int) -> Optional[_BranchRecord]:
        """SIB-PT entry for a branch, allocating (with eviction) if needed."""
        entry = self.sib_pt.get(branch_index)
        if entry is not None:
            return entry
        if len(self.sib_pt) >= self.config.sib_pt_entries:
            victim = min(self.sib_pt, key=lambda i: self.sib_pt[i].confidence)
            if self.sib_pt[victim].confidence > 0:
                return None  # table full of useful entries; drop the update
            del self.sib_pt[victim]
        entry = _BranchRecord(confidence=0)
        self.sib_pt[branch_index] = entry
        return entry
