"""Top-level GPU: kernel launch, CTA dispatch, and the simulation loop.

The loop steps all SMs one cycle at a time; whenever no SM can issue, it
fast-forwards directly to the earliest cycle at which any warp might
become ready (a memory writeback, a fence completing, a BOWS back-off
delay expiring).  Fast-forwarding is purely a host-performance
optimization: per-cycle accounting (occupancy sampling, CAWA stall
charging) is weighted by the skipped interval, so results are identical
to stepping every cycle.

If no warp can ever become ready again the workload has deadlocked; the
simulator raises :class:`SimulationDeadlock` with per-warp diagnostics —
this is exactly how SIMT-induced deadlocks (paper Section IV) manifest.
Livelocks (warps issuing spin iterations forever) are classified by the
:class:`~repro.sim.progress.ProgressMonitor`, sampled from the loop every
``config.progress_epoch`` cycles; see :mod:`repro.sim.progress`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.energy.model import EnergyModel
from repro.isa.program import Program
from repro.memory.memsys import GlobalMemory, MemorySubsystem
from repro.metrics.stats import SimStats
from repro.obs import Observability, as_observability
from repro.sim.config import GPUConfig
# Re-exported here for backwards compatibility: these were defined in
# this module before the forward-progress guard existed.
from repro.sim.progress import (  # noqa: F401
    HangReport,
    ProgressMonitor,
    SimulationDeadlock,
    SimulationHang,
    SimulationLivelock,
    SimulationTimeout,
    build_hang_report,
)
from repro.sim.sm import ENGINES, SM, WarpKey


@dataclass
class KernelLaunch:
    """A kernel invocation: program, grid geometry, scalar parameters."""

    program: Program
    grid_dim: int
    block_dim: int
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0:
            raise ValueError("grid and block dimensions must be positive")


@dataclass
class SimResult:
    """Outcome of one kernel execution."""

    stats: SimStats
    cycles: int
    memory: GlobalMemory
    config: GPUConfig
    launch: KernelLaunch
    sms: List[SM]
    #: Attached :class:`repro.obs.Observability` (event bus + time
    #: series) when the run collected any; None otherwise.
    obs: Optional[Observability] = None
    #: Attached :class:`repro.analysis.Sanitizer` when the run executed
    #: with ``sanitize=``; None otherwise.  Inspect ``.diagnostics`` /
    #: ``.ok`` / ``.render()``.
    sanitizer: Optional[object] = None

    @property
    def ddos_engines(self):
        return [sm.ddos for sm in self.sms if sm.ddos is not None]

    def predicted_sibs(self) -> set:
        """Union of SIB predictions across all SMs' DDOS engines."""
        predicted = set()
        for engine in self.ddos_engines:
            predicted |= engine.predicted_sibs()
        return predicted


class GPU:
    """A multi-SM GPU instance bound to one global-memory image."""

    def __init__(self, config: GPUConfig,
                 memory: Optional[GlobalMemory] = None,
                 tracer=None, engine: str = "fast", obs=None,
                 sanitizer=None) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.config = config
        self.memory = memory if memory is not None else GlobalMemory()
        #: Optional :class:`repro.sim.trace.Tracer` capturing issues.
        self.tracer = tracer
        #: Optional :class:`repro.obs.Observability` (accepts ``True``
        #: or an :class:`repro.obs.ObsConfig` as shorthand): collects
        #: decision events and interval time series during launches.
        self.obs = as_observability(obs)
        #: Optional :class:`repro.analysis.Sanitizer` (accepts ``True``
        #: or a :class:`repro.analysis.SanitizerConfig` as shorthand):
        #: execution-time synchronization checking.  A pure observer —
        #: stats are bitwise identical with it on or off.
        from repro.analysis.sanitizer import as_sanitizer

        self.sanitizer = as_sanitizer(sanitizer)
        #: ``"fast"`` (pre-decoded, event-driven readiness — the default)
        #: or ``"reference"`` (the seed per-cycle re-scan implementation).
        #: Both produce bitwise-identical statistics; see
        #: :mod:`repro.sim.sm`.
        self.engine = engine

    def begin(self, launch: KernelLaunch) -> "Simulation":
        """Construct (but do not run) a resumable simulation of ``launch``."""
        config = self.config
        stats = SimStats()
        memsys = MemorySubsystem(config)
        obs = self.obs
        bus = obs.bus if obs is not None else None
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.begin_run(launch.program.name, bus=bus)
            sanitizer.attach_memory(self.memory)
        lock_table: Dict[int, Tuple[WarpKey, int]] = {}
        sms = [
            SM(
                sm_id=i,
                config=config,
                program=launch.program,
                params=launch.params,
                memory=self.memory,
                memsys=memsys,
                lock_table=lock_table,
                stats=stats,
                tracer=self.tracer,
                engine=self.engine,
                bus=bus,
                sanitizer=sanitizer,
            )
            for i in range(config.num_sms)
        ]

        warp_size = config.warp_size
        warps_per_cta = -(-launch.block_dim // warp_size)
        if warps_per_cta > config.max_warps_per_sm:
            raise ValueError(
                f"CTA of {launch.block_dim} threads needs {warps_per_cta} "
                f"warps; SM holds only {config.max_warps_per_sm}"
            )

        sim = Simulation(
            config=config,
            launch=launch,
            memory=self.memory,
            memsys=memsys,
            stats=stats,
            sms=sms,
            lock_table=lock_table,
            tracer=self.tracer,
            obs=obs,
            sanitizer=sanitizer,
            engine=self.engine,
            warps_per_cta=warps_per_cta,
        )
        sim._dispatch()
        if config.no_progress_window > 0:
            sim.monitor = ProgressMonitor(
                config, sms, self.memory, stats, tracer=self.tracer,
                bus=bus,
            )
        if obs is not None:
            sim.sampler = obs.begin_run(
                stats, memsys.stats, warp_size=config.warp_size
            )
        return sim

    def launch(self, launch: KernelLaunch) -> SimResult:
        """Run ``launch`` to completion and return statistics."""
        return self.begin(launch).run()


class Simulation:
    """One in-flight kernel execution, advanceable and checkpointable.

    Created by :meth:`GPU.begin`; :meth:`run` drives it to completion
    (optionally autocheckpointing every N cycles), :meth:`run_until`
    advances to a cycle boundary, and :meth:`checkpoint` captures the
    complete machine state as a :class:`~repro.sim.checkpoint.SimCheckpoint`.

    Checkpoints are only ever taken *between* loop iterations — the
    state is exactly "about to execute cycle ``now``" — which is what
    makes a resumed run bitwise-identical to an uninterrupted one.  The
    object pickles as a whole graph: classes that hold closures
    (pre-bound emitters, the decoded program) drop them in their own
    ``__getstate__`` and :meth:`_rebind` rebuilds every one of them
    after restore, so ordering hazards between partially-restored
    objects cannot arise.
    """

    def __init__(self, config, launch, memory, memsys, stats, sms,
                 lock_table, tracer, obs, sanitizer, engine,
                 warps_per_cta) -> None:
        self.config = config
        self.launch = launch
        self.memory = memory
        self.memsys = memsys
        self.stats = stats
        self.sms = sms
        self.lock_table = lock_table
        self.tracer = tracer
        self.obs = obs
        self.sanitizer = sanitizer
        self.engine = engine
        self.warps_per_cta = warps_per_cta
        self.monitor: Optional[ProgressMonitor] = None
        self.sampler = None
        self.now = 0
        self.next_cta = 0
        self.age_counter = 0
        self.finished = False
        self.result: Optional[SimResult] = None

    # -- dispatch -------------------------------------------------------

    def _dispatch(self) -> None:
        launch = self.launch
        warps_per_cta = self.warps_per_cta
        for sm in self.sms:
            while (
                self.next_cta < launch.grid_dim
                and sm.can_accept_cta(warps_per_cta)
            ):
                sm.launch_cta(
                    cta_id=self.next_cta,
                    warps_per_cta=warps_per_cta,
                    cta_dim=launch.block_dim,
                    grid_dim=launch.grid_dim,
                    age_base=self.age_counter,
                )
                self.next_cta += 1
                self.age_counter += warps_per_cta

    # -- the cycle loop -------------------------------------------------

    def _advance(self, stop_cycle: Optional[int] = None) -> bool:
        """Advance until completion (→ True) or ``now >= stop_cycle``
        at an iteration boundary (→ False).  Raises on hang/timeout."""
        if self.finished:
            return True
        config = self.config
        launch = self.launch
        sms = self.sms
        monitor = self.monitor
        sampler = self.sampler
        bus = self.obs.bus if self.obs is not None else None
        stats = self.stats
        now = self.now
        # Bound methods hoisted out of the cycle loop (locals only —
        # rebuilt on every call, never part of checkpointed state).
        steps = [sm.step for sm in sms]
        next_events = [sm.next_event for sm in sms]
        occupancies = [sm.accumulate_occupancy for sm in sms]
        try:
            while True:
                if stop_cycle is not None and now >= stop_cycle:
                    return False
                issued = 0
                for step in steps:
                    issued += step(now)
                if self.next_cta < launch.grid_dim:
                    self._dispatch()  # refill any SM that freed CTA slots
                if (self.next_cta >= launch.grid_dim
                        and all(sm.idle for sm in sms)):
                    break
                if sampler is not None and now >= sampler.next_sample:
                    sampler.sample(now)  # before the monitor, which can raise
                if monitor is not None and now >= monitor.next_sample:
                    monitor.sample(now)  # raises on a classified hang
                if now >= config.max_cycles:
                    report = None
                    if monitor is not None:
                        report = monitor.timeout_report(now)
                    else:
                        report = build_hang_report(
                            "timeout", now, sms, memory=self.memory,
                            stats=stats, tracer=self.tracer,
                            reason="exceeded max_cycles (watchdog disabled)",
                            bus=bus,
                        )
                    raise SimulationTimeout(
                        f"kernel {launch.program.name!r} exceeded "
                        f"{config.max_cycles} cycles\n" + report.describe(),
                        report,
                    )
                if issued:
                    next_now = now + 1
                else:
                    events = [
                        e for e in (ne(now) for ne in next_events)
                        if e is not None
                    ]
                    if not events:
                        report = build_hang_report(
                            "deadlock", now, sms, memory=self.memory,
                            stats=stats, tracer=self.tracer,
                            reason="no warp can ever become ready again",
                            bus=bus,
                        )
                        raise SimulationDeadlock(report.describe(), report)
                    next_now = min(events)
                dt = next_now - now
                for occupancy in occupancies:
                    occupancy(dt)
                now = next_now
        finally:
            self.now = now
        self._finish()
        return True

    def _finish(self) -> SimResult:
        stats = self.stats
        now = self.now
        stats.cycles = now
        stats.memory.merge(self.memsys.stats)
        if self.obs is not None:
            self.obs.end_run(now)
        energy = EnergyModel(num_sms=self.config.num_sms).evaluate(stats)
        stats.dynamic_energy_pj = energy.total_pj
        self.finished = True
        self.result = SimResult(
            stats=stats,
            cycles=now,
            memory=self.memory,
            config=self.config,
            launch=self.launch,
            sms=self.sms,
            obs=self.obs,
            sanitizer=self.sanitizer,
        )
        return self.result

    # -- public driving -------------------------------------------------

    def run_until(self, cycle: int) -> bool:
        """Advance to the first iteration boundary at/after ``cycle``;
        returns True when the kernel completed before reaching it."""
        return self._advance(stop_cycle=cycle)

    def run(self, checkpoint_every=None, checkpoint_path=None) -> SimResult:
        """Drive the simulation to completion.

        With ``checkpoint_every`` (``True`` → ``config.progress_epoch``
        cycles, or an explicit positive cycle count), the machine state
        is saved to ``checkpoint_path`` between advance chunks, so a
        run killed or timed out mid-flight resumes from the last epoch
        instead of restarting.  The final checkpoint file is removed on
        successful completion by the *lab* layer (which owns retries),
        not here.
        """
        interval = self._resolve_interval(checkpoint_every)
        if interval is None:
            self._advance()
            return self.result
        if checkpoint_path is None:
            raise ValueError(
                "checkpoint_every requires checkpoint_path "
                "(where should the state go?)"
            )
        while True:
            if self._advance(stop_cycle=self.now + interval):
                return self.result
            self.save_checkpoint(checkpoint_path)

    def _resolve_interval(self, checkpoint_every) -> Optional[int]:
        if checkpoint_every is None or checkpoint_every is False:
            return None
        if checkpoint_every is True:
            return self.config.progress_epoch
        interval = int(checkpoint_every)
        if interval <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        return interval

    # -- checkpointing --------------------------------------------------

    def checkpoint(self):
        """Capture the full machine state (see :mod:`repro.sim.checkpoint`)."""
        from repro.sim.checkpoint import SimCheckpoint

        return SimCheckpoint.capture(self)

    def save_checkpoint(self, path):
        """Capture + atomically write a checkpoint, emitting
        :class:`~repro.obs.events.CheckpointSaved` when a bus is attached."""
        saved = self.checkpoint().save(path)
        bus = self.obs.bus if self.obs is not None else None
        if bus is not None:
            from repro.obs.events import CheckpointSaved

            bus.publish(CheckpointSaved(
                cycle=self.now,
                path=str(saved),
                size_bytes=saved.stat().st_size,
            ))
        return saved

    # -- pickling -------------------------------------------------------

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._rebind()

    def _rebind(self) -> None:
        """Rebuild every closure dropped by ``__getstate__`` hooks.

        Runs once, after the *entire* object graph has been restored, so
        no hook ever touches a partially-restored peer.
        """
        bus = self.obs.bus if self.obs is not None else None
        for sm in self.sms:
            sm._rebind_events(bus)
        if self.monitor is not None:
            self.monitor._rebind_events(bus)
        if self.sanitizer is not None:
            self.sanitizer._rebind_events()
