"""Top-level GPU: kernel launch, CTA dispatch, and the simulation loop.

The loop steps all SMs one cycle at a time; whenever no SM can issue, it
fast-forwards directly to the earliest cycle at which any warp might
become ready (a memory writeback, a fence completing, a BOWS back-off
delay expiring).  Fast-forwarding is purely a host-performance
optimization: per-cycle accounting (occupancy sampling, CAWA stall
charging) is weighted by the skipped interval, so results are identical
to stepping every cycle.

If no warp can ever become ready again the workload has deadlocked; the
simulator raises :class:`SimulationDeadlock` with per-warp diagnostics —
this is exactly how SIMT-induced deadlocks (paper Section IV) manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.energy.model import EnergyModel
from repro.isa.program import Program
from repro.memory.memsys import GlobalMemory, MemorySubsystem
from repro.metrics.stats import SimStats
from repro.sim.config import GPUConfig
from repro.sim.sm import SM, WarpKey


class SimulationDeadlock(RuntimeError):
    """No warp can ever become ready again (e.g. SIMT-induced deadlock)."""


class SimulationTimeout(RuntimeError):
    """The run exceeded ``config.max_cycles``."""


@dataclass
class KernelLaunch:
    """A kernel invocation: program, grid geometry, scalar parameters."""

    program: Program
    grid_dim: int
    block_dim: int
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0:
            raise ValueError("grid and block dimensions must be positive")


@dataclass
class SimResult:
    """Outcome of one kernel execution."""

    stats: SimStats
    cycles: int
    memory: GlobalMemory
    config: GPUConfig
    launch: KernelLaunch
    sms: List[SM]

    @property
    def ddos_engines(self):
        return [sm.ddos for sm in self.sms if sm.ddos is not None]

    def predicted_sibs(self) -> set:
        """Union of SIB predictions across all SMs' DDOS engines."""
        predicted = set()
        for engine in self.ddos_engines:
            predicted |= engine.predicted_sibs()
        return predicted


class GPU:
    """A multi-SM GPU instance bound to one global-memory image."""

    def __init__(self, config: GPUConfig,
                 memory: Optional[GlobalMemory] = None,
                 tracer=None) -> None:
        self.config = config
        self.memory = memory if memory is not None else GlobalMemory()
        #: Optional :class:`repro.sim.trace.Tracer` capturing issues.
        self.tracer = tracer

    def launch(self, launch: KernelLaunch) -> SimResult:
        """Run ``launch`` to completion and return statistics."""
        config = self.config
        stats = SimStats()
        memsys = MemorySubsystem(config)
        lock_table: Dict[int, Tuple[WarpKey, int]] = {}
        sms = [
            SM(
                sm_id=i,
                config=config,
                program=launch.program,
                params=launch.params,
                memory=self.memory,
                memsys=memsys,
                lock_table=lock_table,
                stats=stats,
                tracer=self.tracer,
            )
            for i in range(config.num_sms)
        ]

        warp_size = config.warp_size
        warps_per_cta = -(-launch.block_dim // warp_size)
        if warps_per_cta > config.max_warps_per_sm:
            raise ValueError(
                f"CTA of {launch.block_dim} threads needs {warps_per_cta} "
                f"warps; SM holds only {config.max_warps_per_sm}"
            )

        next_cta = 0
        age_counter = 0

        def dispatch() -> None:
            nonlocal next_cta, age_counter
            for sm in sms:
                while (
                    next_cta < launch.grid_dim
                    and sm.can_accept_cta(warps_per_cta)
                ):
                    sm.launch_cta(
                        cta_id=next_cta,
                        warps_per_cta=warps_per_cta,
                        cta_dim=launch.block_dim,
                        grid_dim=launch.grid_dim,
                        age_base=age_counter,
                    )
                    next_cta += 1
                    age_counter += warps_per_cta

        dispatch()
        now = 0
        while True:
            issued = 0
            for sm in sms:
                issued += sm.step(now)
            if next_cta < launch.grid_dim:
                dispatch()  # refill any SM that freed CTA slots
            if next_cta >= launch.grid_dim and all(sm.idle for sm in sms):
                break
            if now >= config.max_cycles:
                raise SimulationTimeout(
                    f"kernel {launch.program.name!r} exceeded "
                    f"{config.max_cycles} cycles"
                )
            if issued:
                next_now = now + 1
            else:
                events = [sm.next_event(now) for sm in sms]
                events = [e for e in events if e is not None]
                if not events:
                    raise SimulationDeadlock(self._deadlock_report(sms, now))
                next_now = min(events)
            dt = next_now - now
            for sm in sms:
                sm.accumulate_occupancy(dt)
            now = next_now

        stats.cycles = now
        stats.memory.merge(memsys.stats)
        energy = EnergyModel(num_sms=config.num_sms).evaluate(stats)
        stats.dynamic_energy_pj = energy.total_pj
        return SimResult(
            stats=stats,
            cycles=now,
            memory=self.memory,
            config=config,
            launch=launch,
            sms=sms,
        )

    @staticmethod
    def _deadlock_report(sms: List[SM], now: int) -> str:
        lines = [f"simulation deadlocked at cycle {now}; warp states:"]
        for sm in sms:
            for slot, warp in sorted(sm.warps.items()):
                if warp.finished:
                    continue
                state = "barrier" if warp.at_barrier else f"pc={warp.pc}"
                lines.append(
                    f"  SM{sm.sm_id} slot {slot} cta {warp.cta_id}: {state}"
                )
        lines.append(
            "hint: a warp blocked forever at a barrier or reconvergence "
            "point usually indicates a SIMT-induced deadlock "
            "(paper Section IV)"
        )
        return "\n".join(lines)
