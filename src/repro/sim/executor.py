"""Vectorized functional evaluation of ALU and compare operations.

These helpers are pure: they read operand lane-vectors and produce result
lane-vectors.  All sequencing, masking, and timing live in the SM.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.isa.instructions import Imm, Mem, Opcode, Operand, Param, Pred, Reg, Sreg
from repro.sim.registers import wrap_i32
from repro.sim.warp import Warp


def read_operand(warp: Warp, operand: Operand,
                 params: Dict[str, int]) -> np.ndarray:
    """Lane vector of ``operand``'s value."""
    if isinstance(operand, Reg):
        return warp.regs.read(operand.name)
    if isinstance(operand, Imm):
        return np.full(warp.regs.warp_size, operand.value, dtype=np.int64)
    if isinstance(operand, Sreg):
        return warp.sregs[operand.name]
    if isinstance(operand, Pred):
        return warp.regs.read_pred(operand.name).astype(np.int64)
    if isinstance(operand, Param):
        return np.full(warp.regs.warp_size, params[operand.name], dtype=np.int64)
    raise TypeError(f"cannot read operand {operand!r}")


def effective_addresses(warp: Warp, mem: Mem) -> np.ndarray:
    """Per-lane byte addresses of a ``[base + offset]`` operand."""
    return warp.regs.read(mem.base.name) + np.int64(mem.offset)


def eval_alu(opcode: Opcode, srcs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate an ALU opcode over lane vectors (32-bit wrapped)."""
    if opcode is Opcode.MOV:
        result = srcs[0]
    elif opcode is Opcode.ADD:
        result = srcs[0] + srcs[1]
    elif opcode is Opcode.SUB:
        result = srcs[0] - srcs[1]
    elif opcode is Opcode.MUL:
        result = srcs[0] * srcs[1]
    elif opcode is Opcode.MAD:
        result = srcs[0] * srcs[1] + srcs[2]
    elif opcode is Opcode.DIV:
        divisor = np.where(srcs[1] == 0, 1, srcs[1])
        result = np.where(srcs[1] == 0, 0,
                          np.fix(srcs[0] / divisor).astype(np.int64))
    elif opcode is Opcode.REM:
        divisor = np.where(srcs[1] == 0, 1, srcs[1])
        quotient = np.fix(srcs[0] / divisor).astype(np.int64)
        result = np.where(srcs[1] == 0, srcs[0], srcs[0] - quotient * divisor)
    elif opcode is Opcode.AND:
        result = np.bitwise_and(srcs[0], srcs[1])
    elif opcode is Opcode.OR:
        result = np.bitwise_or(srcs[0], srcs[1])
    elif opcode is Opcode.XOR:
        result = np.bitwise_xor(srcs[0], srcs[1])
    elif opcode is Opcode.NOT:
        result = np.bitwise_not(srcs[0])
    elif opcode is Opcode.SHL:
        shift = np.clip(srcs[1], 0, 31)
        result = np.left_shift(srcs[0], shift)
    elif opcode is Opcode.SHR:
        shift = np.clip(srcs[1], 0, 31)
        result = np.right_shift(srcs[0], shift)
    elif opcode is Opcode.MIN:
        result = np.minimum(srcs[0], srcs[1])
    elif opcode is Opcode.MAX:
        result = np.maximum(srcs[0], srcs[1])
    else:
        raise ValueError(f"not an ALU opcode: {opcode}")
    return wrap_i32(np.asarray(result, dtype=np.int64))


def eval_cmp(cmp: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Evaluate a ``setp`` comparison, producing a boolean lane vector."""
    if cmp == "eq":
        return a == b
    if cmp == "ne":
        return a != b
    if cmp == "lt":
        return a < b
    if cmp == "le":
        return a <= b
    if cmp == "gt":
        return a > b
    if cmp == "ge":
        return a >= b
    raise ValueError(f"unknown comparison {cmp!r}")
