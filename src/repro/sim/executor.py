"""Vectorized functional evaluation of ALU and compare operations.

These helpers are pure: they read operand lane-vectors and produce result
lane-vectors.  All sequencing, masking, and timing live in the SM.

The module also hosts the fast engine's instruction format: a
:class:`DecodedProgram` pre-resolves every instruction once per
(program, machine, params) combination into a :class:`DecodedOp` — a
record of closure-bound operand readers and a specialized execute
handler — so the per-issue hot path never touches ``isinstance``
dispatch or opcode if-chains.  Handlers replicate the reference
execution paths in :class:`repro.sim.sm.SM` statement for statement;
the golden-equivalence suite (``tests/test_golden_equivalence.py``)
asserts the two engines produce bitwise-identical statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.isa.instructions import Imm, Mem, Opcode, Operand, Param, Pred, Reg, Sreg
from repro.isa.program import Program
from repro.sim.config import GPUConfig
from repro.sim.registers import wrap_i32
from repro.sim.warp import Warp


def read_operand(warp: Warp, operand: Operand,
                 params: Dict[str, int]) -> np.ndarray:
    """Lane vector of ``operand``'s value."""
    if isinstance(operand, Reg):
        return warp.regs.read(operand.name)
    if isinstance(operand, Imm):
        return np.full(warp.regs.warp_size, operand.value, dtype=np.int64)
    if isinstance(operand, Sreg):
        return warp.sregs[operand.name]
    if isinstance(operand, Pred):
        return warp.regs.read_pred(operand.name).astype(np.int64)
    if isinstance(operand, Param):
        return np.full(warp.regs.warp_size, params[operand.name], dtype=np.int64)
    raise TypeError(f"cannot read operand {operand!r}")


def effective_addresses(warp: Warp, mem: Mem) -> np.ndarray:
    """Per-lane byte addresses of a ``[base + offset]`` operand."""
    return warp.regs.read(mem.base.name) + np.int64(mem.offset)


def eval_alu(opcode: Opcode, srcs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate an ALU opcode over lane vectors (32-bit wrapped)."""
    if opcode is Opcode.MOV:
        result = srcs[0]
    elif opcode is Opcode.ADD:
        result = srcs[0] + srcs[1]
    elif opcode is Opcode.SUB:
        result = srcs[0] - srcs[1]
    elif opcode is Opcode.MUL:
        result = srcs[0] * srcs[1]
    elif opcode is Opcode.MAD:
        result = srcs[0] * srcs[1] + srcs[2]
    elif opcode is Opcode.DIV:
        divisor = np.where(srcs[1] == 0, 1, srcs[1])
        result = np.where(srcs[1] == 0, 0,
                          np.fix(srcs[0] / divisor).astype(np.int64))
    elif opcode is Opcode.REM:
        divisor = np.where(srcs[1] == 0, 1, srcs[1])
        quotient = np.fix(srcs[0] / divisor).astype(np.int64)
        result = np.where(srcs[1] == 0, srcs[0], srcs[0] - quotient * divisor)
    elif opcode is Opcode.AND:
        result = np.bitwise_and(srcs[0], srcs[1])
    elif opcode is Opcode.OR:
        result = np.bitwise_or(srcs[0], srcs[1])
    elif opcode is Opcode.XOR:
        result = np.bitwise_xor(srcs[0], srcs[1])
    elif opcode is Opcode.NOT:
        result = np.bitwise_not(srcs[0])
    elif opcode is Opcode.SHL:
        shift = np.clip(srcs[1], 0, 31)
        result = np.left_shift(srcs[0], shift)
    elif opcode is Opcode.SHR:
        shift = np.clip(srcs[1], 0, 31)
        result = np.right_shift(srcs[0], shift)
    elif opcode is Opcode.MIN:
        result = np.minimum(srcs[0], srcs[1])
    elif opcode is Opcode.MAX:
        result = np.maximum(srcs[0], srcs[1])
    else:
        raise ValueError(f"not an ALU opcode: {opcode}")
    return wrap_i32(np.asarray(result, dtype=np.int64))


def eval_cmp(cmp: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Evaluate a ``setp`` comparison, producing a boolean lane vector."""
    if cmp == "eq":
        return a == b
    if cmp == "ne":
        return a != b
    if cmp == "lt":
        return a < b
    if cmp == "le":
        return a <= b
    if cmp == "gt":
        return a > b
    if cmp == "ge":
        return a >= b
    raise ValueError(f"unknown comparison {cmp!r}")


# ---------------------------------------------------------------------------
# Pre-decoded execution records (the fast engine's instruction format).

#: Reads one operand's lane vector from a warp.
OperandReader = Callable[[Warp], np.ndarray]

#: Latency class of an ALU opcode serviced by the SFU pipe.
_SFU_OPCODES = (Opcode.MUL, Opcode.MAD, Opcode.DIV, Opcode.REM)


def _frozen(vector: np.ndarray) -> np.ndarray:
    """Mark a shared constant lane vector read-only (safety net)."""
    vector.setflags(write=False)
    return vector


def _make_reader(operand: Operand, warp_size: int,
                 params: Dict[str, int]) -> OperandReader:
    """Closure-bound equivalent of :func:`read_operand` for one operand."""
    if isinstance(operand, Reg):
        name = operand.name
        return lambda warp: warp.regs.read(name)
    if isinstance(operand, Imm):
        vector = _frozen(np.full(warp_size, operand.value, dtype=np.int64))
        return lambda warp: vector
    if isinstance(operand, Sreg):
        name = operand.name
        return lambda warp: warp.sregs[name]
    if isinstance(operand, Pred):
        name = operand.name
        return lambda warp: warp.regs.read_pred(name).astype(np.int64)
    if isinstance(operand, Param):
        vector = _frozen(
            np.full(warp_size, params[operand.name], dtype=np.int64)
        )
        return lambda warp: vector
    raise TypeError(f"cannot read operand {operand!r}")


def _make_mask_fn(instr) -> OperandReader:
    """Closure-bound equivalent of :meth:`Warp.exec_mask`."""
    if instr.guard is None:
        return lambda warp: warp.stack.active_mask.copy()
    name = instr.guard.name
    if instr.guard_negated:
        return lambda warp: np.logical_and(
            warp.stack.active_mask, ~warp.regs.read_pred(name)
        )
    return lambda warp: np.logical_and(
        warp.stack.active_mask, warp.regs.read_pred(name)
    )


class DecodedOp:
    """One instruction decoded for the fast engine.

    Everything the issue path needs is precomputed: the exec-mask
    closure, scoreboard keys, instruction-class flags, and a
    specialized ``handler(sm, warp, dop, exec_mask, now)`` that
    replicates the reference ``SM._execute_*`` path for this opcode.
    """

    __slots__ = (
        "instr", "index", "opcode", "mask_fn", "handler",
        "hazard_keys", "dst_keys", "is_branch", "is_sync", "is_store",
        "static_sib",
    )

    def __init__(self, instr, mask_fn, handler, static_sib: bool) -> None:
        self.instr = instr
        self.index = instr.index
        self.opcode = instr.opcode
        self.mask_fn = mask_fn
        self.handler = handler
        self.hazard_keys = instr.hazard_keys
        self.dst_keys: Tuple[str, ...] = (
            (instr.dst_key,) if instr.dst_key is not None else ()
        )
        self.is_branch = instr.is_branch
        self.is_sync = instr.has_role("sync")
        self.is_store = instr.opcode is Opcode.ST_GLOBAL
        self.static_sib = static_sib


def _div(srcs):
    divisor = np.where(srcs[1] == 0, 1, srcs[1])
    return np.where(srcs[1] == 0, 0,
                    np.fix(srcs[0] / divisor).astype(np.int64))


def _rem(srcs):
    divisor = np.where(srcs[1] == 0, 1, srcs[1])
    quotient = np.fix(srcs[0] / divisor).astype(np.int64)
    return np.where(srcs[1] == 0, srcs[0], srcs[0] - quotient * divisor)


#: Raw (pre-wrap) lane-vector computation per ALU opcode — each entry is
#: the matching :func:`eval_alu` branch, bound at decode time so the hot
#: path skips the opcode if-chain.
_ALU_OPS = {
    Opcode.MOV: lambda s: s[0],
    Opcode.ADD: lambda s: s[0] + s[1],
    Opcode.SUB: lambda s: s[0] - s[1],
    Opcode.MUL: lambda s: s[0] * s[1],
    Opcode.MAD: lambda s: s[0] * s[1] + s[2],
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.AND: lambda s: np.bitwise_and(s[0], s[1]),
    Opcode.OR: lambda s: np.bitwise_or(s[0], s[1]),
    Opcode.XOR: lambda s: np.bitwise_xor(s[0], s[1]),
    Opcode.NOT: lambda s: np.bitwise_not(s[0]),
    Opcode.SHL: lambda s: np.left_shift(s[0], np.clip(s[1], 0, 31)),
    Opcode.SHR: lambda s: np.right_shift(s[0], np.clip(s[1], 0, 31)),
    Opcode.MIN: lambda s: np.minimum(s[0], s[1]),
    Opcode.MAX: lambda s: np.maximum(s[0], s[1]),
}


def _make_alu_handler(instr, warp_size, params, alu_latency, sfu_latency):
    opcode = instr.opcode
    dst_name = instr.dst.name
    dst_keys = (instr.dst_key,)
    latency = sfu_latency if opcode in _SFU_OPCODES else alu_latency
    if opcode is Opcode.SELP:
        read_a = _make_reader(instr.srcs[0], warp_size, params)
        read_b = _make_reader(instr.srcs[1], warp_size, params)
        pred_name = instr.srcs[2].name

        def handler(sm, warp, dop, exec_mask, now):
            a = read_a(warp)
            b = read_b(warp)
            pred = warp.regs.read_pred(pred_name)
            result = np.where(pred, a, b)
            warp.regs.write(dst_name, result, exec_mask)
            warp.scoreboard.reserve(dst_keys, now + latency)
            warp.stack.advance()

        return handler

    readers = tuple(
        _make_reader(src, warp_size, params) for src in instr.srcs
    )
    try:
        alu_op = _ALU_OPS[opcode]
    except KeyError:
        raise ValueError(f"not an ALU opcode: {opcode}") from None

    def handler(sm, warp, dop, exec_mask, now):
        result = wrap_i32(
            np.asarray(alu_op([read(warp) for read in readers]),
                       dtype=np.int64)
        )
        warp.regs.write(dst_name, result, exec_mask)
        warp.scoreboard.reserve(dst_keys, now + latency)
        warp.stack.advance()

    return handler


def _make_setp_handler(instr, warp_size, params, alu_latency):
    read_a = _make_reader(instr.srcs[0], warp_size, params)
    read_b = _make_reader(instr.srcs[1], warp_size, params)
    cmp = instr.cmp
    dst_name = instr.dst.name
    dst_keys = (instr.dst_key,)

    def handler(sm, warp, dop, exec_mask, now):
        a = read_a(warp)
        b = read_b(warp)
        result = eval_cmp(cmp, a, b)
        warp.regs.write_pred(dst_name, result, exec_mask)
        warp.scoreboard.reserve(dst_keys, now + alu_latency)
        # DDOS profiles one fixed thread per warp (the first live lane).
        lane = warp.profiled_lane
        ddos = sm.ddos
        if ddos is not None and lane >= 0 and exec_mask[lane]:
            ddos.on_setp(warp.warp_slot, instr, int(a[lane]), int(b[lane]),
                         now)
        warp.stack.advance()

    return handler


def _make_branch_handler(instr, program: Program):
    target = instr.target_index
    assert target is not None
    guard_name = instr.guard.name if instr.guard is not None else None
    negated = instr.guard_negated
    rpc = (program.reconvergence_point(instr.index)
           if instr.guard is not None else None)
    wait_branch = instr.has_role("wait_branch")
    is_backward = instr.is_backward_branch

    def handler(sm, warp, dop, exec_mask, now):
        active = warp.stack.active_mask
        if guard_name is None:
            taken_mask = active.copy()
            warp.stack.uniform_jump(target)
        else:
            guard = warp.regs.read_pred(guard_name)
            if negated:
                guard = ~guard
            taken_mask = np.logical_and(guard, active)
            warp.stack.branch(guard, target, rpc)
        n_taken = int(np.count_nonzero(taken_mask))
        taken_any = n_taken > 0
        n_not_taken = int(np.count_nonzero(active)) - n_taken

        if wait_branch:
            sm.stats.locks.wait_exit_fail += n_taken
            sm.stats.locks.wait_exit_success += n_not_taken

        if sm.ddos is not None and is_backward:
            sm.ddos.on_backward_branch(warp.warp_slot, instr, taken_any, now)
        if sm.cawa is not None:
            sm.cawa.on_branch(warp, instr, taken_any)
        # Re-query SIB status: the backward-branch hook above may have
        # just trained DDOS past its confidence threshold (the reference
        # path has the same read-after-train ordering).
        if sm.bows is not None and taken_any and sm._is_sib(instr):
            sm.bows.on_sib_executed(warp, now)

    return handler


def _make_exit_handler(instr):
    index = instr.index

    def handler(sm, warp, dop, exec_mask, now):
        if exec_mask.any():
            warp.stack.exit_lanes(exec_mask)
            warp.refresh_profiled_lane()
        if not warp.finished and warp.stack.pc == index:
            # Guarded exit: surviving lanes continue past it.
            warp.stack.advance()

    return handler


def _bar_handler(sm, warp, dop, exec_mask, now):
    warp.stack.advance()
    warp.at_barrier = True
    sm.stats.barrier_waits += 1
    sm._emit_bar_arrive(
        cycle=now, sm_id=sm.sm_id, cta_id=warp.cta_id,
        warp_slot=warp.warp_slot,
    )
    if sm.san is not None:
        sm.san.note_barrier(
            sm.sm_id, warp.cta_id, warp.warp_in_cta, dop.index, now,
            warp.stack.depth,
        )
    sm._barrier_arrive(warp.cta_id, now=now, skip_slot=warp.warp_slot)


def _membar_handler(sm, warp, dop, exec_mask, now):
    warp.membar_until = max(now + 1, warp.last_store_completion)
    warp.stack.advance()


def _nop_handler(sm, warp, dop, exec_mask, now):
    warp.stack.advance()


def _make_clock_handler(instr, warp_size, alu_latency):
    dst_name = instr.dst.name
    dst_keys = (instr.dst_key,)

    def handler(sm, warp, dop, exec_mask, now):
        values = np.full(warp_size, now, dtype=np.int64)
        warp.regs.write(dst_name, values, exec_mask)
        warp.scoreboard.reserve(dst_keys, now + alu_latency)
        warp.stack.advance()

    return handler


def _make_ld_param_handler(instr, warp_size, params, alu_latency):
    value = params[instr.srcs[0].name]
    values = _frozen(np.full(warp_size, value, dtype=np.int64))
    dst_name = instr.dst.name
    dst_keys = (instr.dst_key,)

    def handler(sm, warp, dop, exec_mask, now):
        warp.regs.write(dst_name, values, exec_mask)
        warp.scoreboard.reserve(dst_keys, now + alu_latency)
        warp.stack.advance()

    return handler


def _make_load_handler(instr, warp_size):
    mem_op = instr.srcs[0]
    base_name = mem_op.base.name
    offset = np.int64(mem_op.offset)
    dst_name = instr.dst.name
    dst_keys = (instr.dst_key,)
    bypass = instr.opcode is Opcode.LD_GLOBAL_CG
    sync = instr.has_role("sync")
    index = instr.index

    def handler(sm, warp, dop, exec_mask, now):
        addrs = warp.regs.read(base_name) + offset
        active_addrs = addrs[exec_mask]
        values = np.zeros(warp_size, dtype=np.int64)
        if active_addrs.size:
            values[exec_mask] = sm.memory.read(active_addrs)
        warp.regs.write(dst_name, values, exec_mask)
        if sm.san is not None:
            sm.san.note_load(
                sm.sm_id, warp.cta_id, warp.warp_in_cta,
                np.nonzero(exec_mask)[0], active_addrs, index, now,
            )
        result = sm.memsys.load(sm.sm_id, active_addrs, now,
                                bypass_l1=bypass, sync=sync)
        warp.scoreboard.reserve(dst_keys, result.completion)
        warp.stack.advance()

    return handler


def _make_store_handler(instr, warp_size, params):
    mem_op = instr.dst
    base_name = mem_op.base.name
    offset = np.int64(mem_op.offset)
    read_src = _make_reader(instr.srcs[0], warp_size, params)
    sync = instr.has_role("sync")
    lock_release = instr.has_role("lock_release")
    index = instr.index

    def handler(sm, warp, dop, exec_mask, now):
        addrs = warp.regs.read(base_name) + offset
        values = read_src(warp)
        active_addrs = addrs[exec_mask]
        if active_addrs.size:
            sm.memory.write(active_addrs, values[exec_mask])
        if sm.san is not None:
            sm.san.note_store(
                sm.sm_id, warp.cta_id, warp.warp_in_cta,
                np.nonzero(exec_mask)[0], active_addrs, index, now,
                release=lock_release,
            )
        result = sm.memsys.store(sm.sm_id, active_addrs, now, sync=sync)
        warp.last_store_completion = max(
            warp.last_store_completion, result.completion
        )
        if lock_release:
            for addr in active_addrs:
                sm.lock_table.pop(int(addr), None)
        warp.stack.advance()

    return handler


def _make_atomic_handler(instr, warp_size, params):
    mem_op = instr.srcs[0]
    base_name = mem_op.base.name
    offset = np.int64(mem_op.offset)
    readers = tuple(
        _make_reader(src, warp_size, params) for src in instr.srcs[1:]
    )
    op = instr.opcode
    is_lock_try = instr.has_role("lock_try")
    lock_release = instr.has_role("lock_release")
    sync = instr.has_role("sync") or is_lock_try
    index = instr.index
    dst_name = instr.dst.name if instr.dst is not None else None
    dst_keys = (instr.dst_key,) if instr.dst_key is not None else ()

    def handler(sm, warp, dop, exec_mask, now):
        addrs = warp.regs.read(base_name) + offset
        operands = [read(warp) for read in readers]
        old_values = np.zeros(warp_size, dtype=np.int64)
        warp_key = (warp.cta_id, warp.warp_in_cta)
        magic = sm.config.magic_locks and is_lock_try
        memory = sm.memory
        for lane in np.nonzero(exec_mask)[0]:
            addr = int(addrs[lane])
            old = memory.read_word(addr)
            if op is Opcode.ATOM_CAS:
                compare = int(operands[0][lane])
                new = int(operands[1][lane])
                if magic:
                    # Ideal-blocking proxy: every acquire succeeds at
                    # once and the lock is never observed held.
                    old = compare
                elif old == compare:
                    memory.write_word(addr, new)
            elif op is Opcode.ATOM_EXCH:
                memory.write_word(addr, int(operands[0][lane]))
            elif op is Opcode.ATOM_ADD:
                memory.write_word(addr, old + int(operands[0][lane]))
            elif op is Opcode.ATOM_MIN:
                memory.write_word(addr, min(old, int(operands[0][lane])))
            elif op is Opcode.ATOM_MAX:
                memory.write_word(addr, max(old, int(operands[0][lane])))
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unhandled atomic {op}")
            old_values[lane] = old

            if is_lock_try and op is Opcode.ATOM_CAS:
                sm._record_lock_attempt(
                    addr, old == int(operands[0][lane]) or magic,
                    warp, warp_key, int(lane), now,
                )
            if lock_release:
                sm.lock_table.pop(addr, None)
            if sm.san is not None:
                # magic mode already forced ``old = compare`` above, so
                # the CAS-success test below covers it too.
                cas_hit = (op is Opcode.ATOM_CAS
                           and old == int(operands[0][lane]))
                sm.san.note_atomic(
                    sm.sm_id, warp.cta_id, warp.warp_in_cta, int(lane),
                    addr, index, now,
                    lock_try=is_lock_try,
                    success=is_lock_try
                    and (cas_hit or op is not Opcode.ATOM_CAS),
                    release=lock_release,
                    wrote=op is not Opcode.ATOM_CAS
                    or (cas_hit and not magic),
                )

        if dst_name is not None:
            warp.regs.write(dst_name, old_values, exec_mask)
        result = sm.memsys.atomic(sm.sm_id, addrs[exec_mask], now, sync=sync)
        if dst_keys:
            warp.scoreboard.reserve(dst_keys, result.completion)
        warp.stack.advance()
        sm.stats.atomic_warp_instructions += 1

    return handler


def _decode_one(instr, program: Program, warp_size: int,
                params: Dict[str, int], alu_latency: int, sfu_latency: int,
                static_sibs) -> DecodedOp:
    op = instr.opcode
    if op is Opcode.BRA:
        handler = _make_branch_handler(instr, program)
    elif op is Opcode.EXIT:
        handler = _make_exit_handler(instr)
    elif op is Opcode.SETP:
        handler = _make_setp_handler(instr, warp_size, params, alu_latency)
    elif op is Opcode.BAR_SYNC:
        handler = _bar_handler
    elif op is Opcode.MEMBAR:
        handler = _membar_handler
    elif op is Opcode.CLOCK:
        handler = _make_clock_handler(instr, warp_size, alu_latency)
    elif op is Opcode.LD_PARAM:
        handler = _make_ld_param_handler(instr, warp_size, params,
                                         alu_latency)
    elif op in (Opcode.LD_GLOBAL, Opcode.LD_GLOBAL_CG):
        handler = _make_load_handler(instr, warp_size)
    elif op is Opcode.ST_GLOBAL:
        handler = _make_store_handler(instr, warp_size, params)
    elif instr.is_atomic:
        handler = _make_atomic_handler(instr, warp_size, params)
    elif op is Opcode.NOP:
        handler = _nop_handler
    else:
        handler = _make_alu_handler(instr, warp_size, params, alu_latency,
                                    sfu_latency)
    return DecodedOp(
        instr, _make_mask_fn(instr), handler,
        static_sib=instr.index in static_sibs,
    )


class DecodedProgram:
    """A program decoded once for one (machine, params) combination."""

    __slots__ = ("program", "ops")

    def __init__(self, program: Program, warp_size: int,
                 params: Dict[str, int], alu_latency: int,
                 sfu_latency: int) -> None:
        self.program = program
        static_sibs = program.true_sibs()
        self.ops: List[DecodedOp] = [
            _decode_one(instr, program, warp_size, params, alu_latency,
                        sfu_latency, static_sibs)
            for instr in program.instructions
        ]

    def __getitem__(self, index: int) -> DecodedOp:
        return self.ops[index]


def decode_program(program: Program, config: GPUConfig,
                   params: Dict[str, int]) -> DecodedProgram:
    """Decode ``program`` once per (machine, params); cached on the program.

    The cache key covers everything decoding bakes in: warp size, ALU/SFU
    latencies, and the kernel parameters (``ld.param`` values are resolved
    to constant lane vectors at decode time).
    """
    key = (
        config.warp_size, config.alu_latency, config.sfu_latency,
        tuple(sorted(params.items())),
    )
    cache = program.__dict__.setdefault("_decoded_cache", {})
    decoded = cache.get(key)
    if decoded is None:
        decoded = DecodedProgram(
            program, config.warp_size, params,
            config.alu_latency, config.sfu_latency,
        )
        cache[key] = decoded
    return decoded
