"""Versioned simulator checkpoints: crash-safe save/resume of a live run.

A checkpoint captures the *complete* machine state of an in-flight
:class:`~repro.sim.gpu.Simulation` — warps (SIMT stacks, register files,
scoreboards), the memory subsystem and global-memory image, scheduler
queues and order caches, DDOS path/value history registers, BOWS
back-off queues and adaptive-delay controller state, progress-monitor
witnesses, and observability sampler offsets — so a run interrupted at
an epoch boundary can resume and produce **bitwise-identical**
statistics to an uninterrupted run (enforced by
``tests/test_golden_equivalence.py``).

The capture mechanism is a single :mod:`pickle` of the whole simulation
object graph: shared references (one ``SimStats`` written by every SM,
one lock table, one global memory) survive through the pickle memo, and
numpy register files, ``random.Random`` perturbation state, deques, and
heaps all round-trip exactly.  The only things that cannot ride along
are *closures* — pre-bound event-bus emitters and the fast engine's
decoded program — which each owner drops in ``__getstate__`` and
:class:`~repro.sim.gpu.Simulation` deterministically rebuilds in one
rebind pass after the full graph is restored.

On-disk format (``*.ckpt``)::

    8 bytes   magic  b"RPCKPT01"
    32 bytes  SHA-256 over the body
    N bytes   body: pickle of {"format": int, "meta": dict, "sim": bytes}

``meta`` records the kernel name, capture cycle, engine, and the repro
code fingerprint; loading verifies magic, checksum, format version, and
(by default) that the fingerprint matches the current source tree, so a
checkpoint can never silently resume under different simulator code.
All failures raise :class:`CheckpointError` — a corrupt checkpoint is a
diagnosable condition, never an arbitrary unpickling crash.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict

#: File magic; the trailing two digits version the *container* layout.
MAGIC = b"RPCKPT01"

#: Version of the body schema (bump on incompatible state changes).
FORMAT_VERSION = 1

_CHECKSUM_BYTES = 32


class CheckpointError(RuntimeError):
    """A checkpoint could not be captured, written, read, or restored."""


def _code_fingerprint() -> str:
    # Late import: repro.lab depends on repro.sim, not the reverse.
    from repro.lab.cache import code_fingerprint

    return code_fingerprint()


@dataclass
class SimCheckpoint:
    """One captured simulation state plus its identifying metadata.

    The simulation rides as already-pickled ``payload`` bytes, so a
    checkpoint is fully decoupled from the live simulation it was taken
    from: the run can keep advancing, and :meth:`restore` materializes
    an independent copy every time it is called.
    """

    meta: Dict[str, Any]
    payload: bytes

    # -- capture / restore ---------------------------------------------

    @classmethod
    def capture(cls, sim) -> "SimCheckpoint":
        """Snapshot ``sim`` (a :class:`~repro.sim.gpu.Simulation`)."""
        try:
            payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # unpicklable attachment (e.g. a lambda)
            raise CheckpointError(
                f"simulation state is not checkpointable: {exc}"
            ) from exc
        meta = {
            "program": sim.launch.program.name,
            "cycle": sim.now,
            "engine": sim.engine,
            "fingerprint": _code_fingerprint(),
        }
        return cls(meta=meta, payload=payload)

    def restore(self):
        """Materialize a fresh :class:`~repro.sim.gpu.Simulation`."""
        try:
            return pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint state could not be restored: {exc}"
            ) from exc

    @property
    def cycle(self) -> int:
        return int(self.meta.get("cycle", 0))

    # -- wire format ----------------------------------------------------

    def to_bytes(self) -> bytes:
        body = pickle.dumps(
            {"format": FORMAT_VERSION, "meta": self.meta, "sim": self.payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return MAGIC + hashlib.sha256(body).digest() + body

    @classmethod
    def from_bytes(cls, blob: bytes,
                   check_fingerprint: bool = True) -> "SimCheckpoint":
        header = len(MAGIC) + _CHECKSUM_BYTES
        if len(blob) < header or not blob.startswith(MAGIC):
            raise CheckpointError(
                "not a repro checkpoint (bad magic); expected a file "
                "written by SimCheckpoint.save"
            )
        checksum = blob[len(MAGIC):header]
        body = blob[header:]
        if hashlib.sha256(body).digest() != checksum:
            raise CheckpointError(
                "checkpoint is corrupt (checksum mismatch) — likely a "
                "torn or truncated write"
            )
        try:
            record = pickle.loads(body)
            fmt = record["format"]
            meta = record["meta"]
            payload = record["sim"]
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint body could not be decoded: {exc}"
            ) from exc
        if fmt != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {fmt} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        if check_fingerprint:
            current = _code_fingerprint()
            recorded = meta.get("fingerprint")
            if recorded != current:
                raise CheckpointError(
                    "checkpoint was captured under different simulator "
                    f"code (fingerprint {str(recorded)[:16]}… vs current "
                    f"{current[:16]}…); resuming would not be "
                    "bitwise-faithful.  Pass check_fingerprint=False to "
                    "override."
                )
        return cls(meta=meta, payload=payload)

    # -- file I/O --------------------------------------------------------

    def save(self, path) -> Path:
        """Atomically write the checkpoint to ``path`` (temp + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = self.to_bytes()
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    @classmethod
    def load(cls, path, check_fingerprint: bool = True) -> "SimCheckpoint":
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {path} could not be read: {exc}"
            ) from exc
        return cls.from_bytes(blob, check_fingerprint=check_fingerprint)


def load_simulation(path, check_fingerprint: bool = True):
    """Convenience: load ``path`` and restore its simulation."""
    return SimCheckpoint.load(
        path, check_fingerprint=check_fingerprint
    ).restore()


def checkpoint_bytes_roundtrip(sim) -> Any:
    """Capture → serialize → parse → restore (test helper: exercises the
    full wire format without touching disk)."""
    blob = SimCheckpoint.capture(sim).to_bytes()
    return SimCheckpoint.from_bytes(blob).restore()


__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CheckpointError",
    "SimCheckpoint",
    "load_simulation",
    "checkpoint_bytes_roundtrip",
]
