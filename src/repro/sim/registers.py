"""Per-warp vector register file.

Each architectural register holds one 32-bit value per lane; values are
stored as ``numpy.int64`` lane vectors and wrapped to signed 32-bit on
write, so ALU semantics match PTX ``.s32``/``.b32`` arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

_INT32_MASK = np.int64(0xFFFFFFFF)
_SIGN_BIT = np.int64(0x80000000)


def wrap_i32(values: np.ndarray) -> np.ndarray:
    """Wrap int64 lane values to signed 32-bit two's complement."""
    # Sign-extend bits 0..31: (v & MASK) is in [0, 2**32); XOR-ing the
    # sign bit then subtracting it maps [2**31, 2**32) onto the negative
    # range, bit-identical to the obvious where() formulation but with
    # fewer temporaries.
    wrapped = np.bitwise_and(values, _INT32_MASK)
    np.bitwise_xor(wrapped, _SIGN_BIT, out=wrapped)
    np.subtract(wrapped, _SIGN_BIT, out=wrapped)
    return wrapped


class RegisterFile:
    """Vector registers and predicate registers for one warp."""

    def __init__(self, warp_size: int, reg_names: Iterable[str],
                 pred_names: Iterable[str]) -> None:
        self.warp_size = warp_size
        self._regs: Dict[str, np.ndarray] = {
            name: np.zeros(warp_size, dtype=np.int64) for name in reg_names
        }
        self._preds: Dict[str, np.ndarray] = {
            name: np.zeros(warp_size, dtype=bool) for name in pred_names
        }

    def read(self, name: str) -> np.ndarray:
        """Lane vector for register ``name`` (do not mutate)."""
        return self._regs[name]

    def write(self, name: str, values: np.ndarray, mask: np.ndarray) -> None:
        """Write ``values`` into lanes selected by ``mask``."""
        reg = self._regs[name]
        reg[mask] = wrap_i32(np.asarray(values, dtype=np.int64))[mask]

    def read_pred(self, name: str) -> np.ndarray:
        return self._preds[name]

    def write_pred(self, name: str, values: np.ndarray,
                   mask: np.ndarray) -> None:
        pred = self._preds[name]
        pred[mask] = np.asarray(values, dtype=bool)[mask]

    def register_names(self) -> Iterable[str]:
        return self._regs.keys()
