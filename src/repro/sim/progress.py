"""Forward-progress guard: hang classification and forensics.

The paper's workloads are spin-lock and barrier kernels — exactly the
programs that wedge a SIMT machine.  A *deadlocked* run stops issuing
entirely and is caught by the GPU loop's no-event check, but a
*livelocked* run (a warp spinning on a lock that will never be released)
keeps issuing spin iterations forever and, without this module, burns
silently until ``max_cycles``.

:class:`ProgressMonitor` is sampled from :meth:`repro.sim.gpu.GPU.launch`
every ``config.progress_epoch`` cycles.  Each sample is cheap: per-warp
retired-instruction counters and PCs, plus global digests (the
functional-memory write version, lock acquisitions, warp completions).
When *none* of the global digests move for a full
``config.no_progress_window``, the window is classified:

* **deadlock** — no warp issued anything during the window (defensive;
  the no-event fast-forward check usually fires first);
* **livelock** — warps issued, but every issuing warp stayed inside a
  small PC footprint (a spin loop), nothing observable changed, and
  there is synchronization evidence (failed lock acquires, sync/atomic
  traffic, DDOS-detected spinning, or BOWS back-off);
* **slow-but-progressing** — anything else; the run continues and, if it
  ultimately exhausts ``max_cycles``, the timeout carries the same
  :class:`HangReport` diagnostics.

Classification raises :class:`SimulationDeadlock` or
:class:`SimulationLivelock` carrying a structured, JSON-serializable
:class:`HangReport`: per-SM/per-warp PC and SIMT stack, scoreboard
pending state, barrier membership, lock-owner inference from the atomic
trace, and the last issued instructions from an attached
:class:`~repro.sim.trace.Tracer` ring buffer.

:class:`InvariantChecker` (``config.invariant_checks``, opt-in debug
mode) additionally asserts micro-architectural sanity every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "HangReport",
    "InvariantChecker",
    "InvariantViolation",
    "ProgressMonitor",
    "SimulationDeadlock",
    "SimulationHang",
    "SimulationLivelock",
    "SimulationTimeout",
    "build_hang_report",
]


# ----------------------------------------------------------------------
# Exceptions

class SimulationHang(RuntimeError):
    """Base of all no-forward-progress failures; carries a HangReport.

    The ``report`` attribute survives pickling (process-pool workers
    raise these across process boundaries back to the lab runner).
    """

    def __init__(self, message: str,
                 report: Optional["HangReport"] = None) -> None:
        super().__init__(message)
        self.report = report

    def __reduce__(self):
        return (type(self), (self.args[0], self.report))


class SimulationDeadlock(SimulationHang):
    """No warp can ever become ready again (e.g. SIMT-induced deadlock)."""


class SimulationLivelock(SimulationHang):
    """Warps keep issuing but only re-execute spin loops with no
    observable global-state change (e.g. a never-released lock)."""


class SimulationTimeout(SimulationHang):
    """The run exceeded ``config.max_cycles`` while still progressing."""


class InvariantViolation(AssertionError):
    """An opt-in micro-architectural invariant failed (simulator bug)."""


# ----------------------------------------------------------------------
# HangReport

@dataclass
class HangReport:
    """Structured forensics for a hung (or timed-out) simulation.

    Everything is plain data: ``to_dict()`` round-trips through JSON, so
    lab manifests can embed reports verbatim.
    """

    #: "deadlock" | "livelock" | "timeout".
    kind: str
    #: Cycle at which the hang was classified.
    cycle: int
    #: No-progress window observed before classification (0 = unknown).
    window: int
    #: One-line human classification rationale.
    reason: str
    #: Per-warp state: sm, slot, cta, warp_in_cta, pc, finished,
    #: at_barrier, backed_off, spinning (DDOS), issued, issued_in_window,
    #: pc_footprint, simt_stack [(pc, rpc, n_active)], scoreboard
    #: {reg: release_cycle}, lock_fail_addr, lock_fails.
    warps: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-CTA barrier membership: cta, sm, waiting/live warp slots.
    barriers: List[Dict[str, Any]] = field(default_factory=list)
    #: Lock-owner inference from the atomic trace: addr, holder
    #: (cta, warp_in_cta, lane), waiter warp labels.
    locks: List[Dict[str, Any]] = field(default_factory=list)
    #: Global memory/progress digests at classification time.
    digests: Dict[str, Any] = field(default_factory=dict)
    #: Last-N issued instructions (stringified Tracer records).
    trace_tail: List[str] = field(default_factory=list)
    #: Last-K scheduler/sync decision events (stringified repro.obs
    #: events) when an event bus was attached — what DDOS/BOWS and the
    #: lock/barrier machinery decided right before the hang.
    events_tail: List[str] = field(default_factory=list)
    #: Sanitizer findings (serialized repro.analysis Diagnostics) when
    #: the run had the dynamic sanitizer attached — a race detected
    #: before the hang usually *explains* the hang.
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "cycle": self.cycle,
            "window": self.window,
            "reason": self.reason,
            "warps": [dict(w) for w in self.warps],
            "barriers": [dict(b) for b in self.barriers],
            "locks": [dict(l) for l in self.locks],
            "digests": dict(self.digests),
            "trace_tail": list(self.trace_tail),
            "events_tail": list(self.events_tail),
        }
        if self.diagnostics:
            data["diagnostics"] = [dict(d) for d in self.diagnostics]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HangReport":
        return cls(
            kind=data["kind"],
            cycle=data["cycle"],
            window=data.get("window", 0),
            reason=data.get("reason", ""),
            warps=list(data.get("warps", [])),
            barriers=list(data.get("barriers", [])),
            locks=list(data.get("locks", [])),
            digests=dict(data.get("digests", {})),
            trace_tail=list(data.get("trace_tail", [])),
            events_tail=list(data.get("events_tail", [])),
            diagnostics=list(data.get("diagnostics", [])),
        )

    # -- presentation ---------------------------------------------------

    def spinning_warps(self) -> List[Dict[str, Any]]:
        """Warps that issued during the window without leaving a small
        PC footprint — the livelock suspects."""
        return [
            w for w in self.warps
            if not w["finished"] and w.get("issued_in_window", 0) > 0
        ]

    def describe(self) -> str:
        """Multi-line human rendering (also the exception message)."""
        lines = [
            f"simulation {self.kind} at cycle {self.cycle}: {self.reason}",
            "warp states:",
        ]
        for w in self.warps:
            if w["finished"]:
                continue
            state = "barrier" if w["at_barrier"] else f"pc={w['pc']}"
            flags = []
            if w.get("backed_off"):
                flags.append("backed-off")
            if w.get("spinning"):
                flags.append("spinning")
            if w.get("issued_in_window"):
                flags.append(f"issued {w['issued_in_window']} in window")
            if w.get("lock_fail_addr") is not None:
                flags.append(f"failing CAS on lock @{w['lock_fail_addr']}")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  SM{w['sm']} slot {w['slot']} cta {w['cta']}: "
                f"{state}{suffix}"
            )
        for lock in self.locks:
            holder = lock.get("holder")
            held = (
                f"held by cta {holder['cta']} warp {holder['warp_in_cta']} "
                f"lane {holder['lane']}" if holder else "holder unknown"
            )
            waiters = lock.get("waiters") or []
            lines.append(
                f"  lock @{lock['addr']}: {held}; "
                f"{len(waiters)} warp(s) spinning on it"
            )
        if self.events_tail:
            lines.append("last scheduler/sync decisions:")
            for line in self.events_tail[-8:]:
                lines.append(f"  {line}")
        if self.diagnostics:
            lines.append("sanitizer findings before the hang:")
            for d in self.diagnostics[:8]:
                lines.append(
                    f"  {d.get('id', '?')} at pc {d.get('pc', '?')}: "
                    f"{d.get('message', '')}"
                )
        if self.kind == "deadlock":
            lines.append(
                "hint: a warp blocked forever at a barrier or reconvergence "
                "point usually indicates a SIMT-induced deadlock "
                "(paper Section IV)"
            )
        elif self.kind == "livelock":
            lines.append(
                "hint: spinning warps with a never-changing global state "
                "usually indicate a leaked lock or a flag that is never "
                "signalled (paper Section IV)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Report construction

def _warp_snapshot(sm, slot: int, warp,
                   issued_in_window: int = 0,
                   footprint: Optional[Set[int]] = None) -> Dict[str, Any]:
    finished = warp.finished
    stack = [] if finished else [
        (e.pc, e.rpc, int(e.mask.sum())) for e in warp.stack.entries()
    ]
    spinning = False
    if sm.ddos is not None:
        spinning = sm.ddos.warp_spinning(slot)
    return {
        "sm": sm.sm_id,
        "slot": slot,
        "cta": warp.cta_id,
        "warp_in_cta": warp.warp_in_cta,
        "pc": None if finished else warp.pc,
        "finished": finished,
        "at_barrier": warp.at_barrier,
        "backed_off": warp.backed_off,
        "spinning": spinning,
        "issued": warp.issued_instructions,
        "issued_in_window": issued_in_window,
        "pc_footprint": sorted(footprint) if footprint else [],
        "simt_stack": stack,
        "scoreboard": dict(warp.scoreboard._pending),
        "lock_fail_addr": warp.lock_fail_addr,
        "lock_fails": warp.lock_fails,
    }


def build_hang_report(
    kind: str,
    now: int,
    sms,
    memory=None,
    stats=None,
    tracer=None,
    window: int = 0,
    reason: str = "",
    issued_in_window: Optional[Dict[Tuple, int]] = None,
    footprints: Optional[Dict[Tuple, Set[int]]] = None,
    bus=None,
) -> HangReport:
    """Assemble a :class:`HangReport` from live simulator state.

    Tolerates missing context (``memory``/``stats``/``tracer`` may be
    None) so the no-event deadlock path can report without a monitor.
    """
    issued_in_window = issued_in_window or {}
    footprints = footprints or {}
    warps: List[Dict[str, Any]] = []
    barriers: List[Dict[str, Any]] = []
    lock_table: Dict[int, Tuple] = {}
    for sm in sms:
        lock_table = sm.lock_table  # shared GPU-wide table
        for slot, warp in sorted(sm.warps.items()):
            key = (sm.sm_id, slot, warp.cta_id, warp.warp_in_cta)
            warps.append(_warp_snapshot(
                sm, slot, warp,
                issued_in_window=issued_in_window.get(key, 0),
                footprint=footprints.get(key),
            ))
        for cta_id, slots in sorted(sm._cta_slots.items()):
            waiting = [s for s in slots if sm.warps[s].at_barrier]
            if waiting:
                live = [s for s in slots if not sm.warps[s].finished]
                barriers.append({
                    "sm": sm.sm_id,
                    "cta": cta_id,
                    "waiting_slots": waiting,
                    "live_slots": live,
                })

    locks: List[Dict[str, Any]] = []
    contended: Dict[int, List[str]] = {}
    for w in warps:
        addr = w.get("lock_fail_addr")
        if addr is not None and not w["finished"]:
            contended.setdefault(addr, []).append(
                f"SM{w['sm']}:w{w['slot']}"
            )
    for addr in sorted(set(contended) | set(lock_table)):
        holder = lock_table.get(addr)
        locks.append({
            "addr": addr,
            "holder": (
                {"cta": holder[0][0], "warp_in_cta": holder[0][1],
                 "lane": holder[1]}
                if holder is not None else None
            ),
            "waiters": contended.get(addr, []),
        })

    digests: Dict[str, Any] = {}
    if memory is not None:
        digests["memory_version"] = memory.version
    if stats is not None:
        digests["lock_success"] = stats.locks.lock_success
        digests["lock_fail"] = (
            stats.locks.inter_warp_fail + stats.locks.intra_warp_fail
        )
        digests["warp_instructions"] = stats.warp_instructions
    # stats.memory is only merged after a completed run; mid-run the
    # live counters sit on the (shared) memory subsystem.
    memstats = sms[0].memsys.stats if sms else None
    if memstats is not None:
        digests["atomic_transactions"] = memstats.atomic_transactions
        digests["sync_transactions"] = memstats.sync_transactions

    tail: List[str] = []
    if tracer is not None:
        tail = [str(r) for r in tracer.tail(32)]

    events_tail: List[str] = []
    if bus is not None:
        from repro.obs.events import format_event
        events_tail = [format_event(e) for e in bus.tail(20)]

    diagnostics: List[Dict[str, Any]] = []
    sanitizer = sms[0].san if sms else None
    if sanitizer is not None:
        diagnostics = [d.to_dict() for d in sanitizer.diagnostics]

    return HangReport(
        kind=kind, cycle=now, window=window, reason=reason,
        warps=warps, barriers=barriers, locks=locks,
        digests=digests, trace_tail=tail, events_tail=events_tail,
        diagnostics=diagnostics,
    )


# ----------------------------------------------------------------------
# ProgressMonitor

class ProgressMonitor:
    """Classifies no-progress windows from cheap per-epoch samples.

    Global progress is witnessed by any of: a functional-memory write
    (``GlobalMemory.version``), a successful lock acquisition, a warp
    finishing or retiring (its CTA leaving the SM), or a warp's sampled
    PC footprint growing beyond ``hang_footprint_limit`` (the warp is
    covering new code, not spinning).  When none of these move for a
    full ``no_progress_window``, the window is classified (module
    docstring) and a :class:`SimulationHang` subclass is raised.
    """

    def __init__(self, config, sms, memory, stats, tracer=None,
                 bus=None) -> None:
        self.config = config
        self.sms = sms
        self.memory = memory
        self.stats = stats
        self.tracer = tracer
        self.bus = bus
        if bus is not None:
            from repro.obs.events import HangSuspected
            self._emit_hang = bus.emitter(HangSuspected)
        else:
            from repro.obs.bus import null_emitter
            self._emit_hang = null_emitter
        self.window = config.no_progress_window
        self.epoch = max(1, min(config.progress_epoch, max(self.window, 1)))
        self.footprint_limit = config.hang_footprint_limit
        self.next_sample = self.epoch
        self.checker = (
            InvariantChecker(config) if config.invariant_checks else None
        )
        #: Last classification outcome ("progressing" or the stall
        #: rationale); surfaced in timeout reports.
        self.last_assessment = "progressing"
        self._baseline_issued: Dict[Tuple, int] = {}
        self._reset_window(0)

    def __getstate__(self):
        """Checkpointing: drop the emitter closure; every witness
        (baselines, footprints, window bases) pickles as-is."""
        state = self.__dict__.copy()
        state["_emit_hang"] = None
        return state

    def _rebind_events(self, bus) -> None:
        self.bus = bus
        if bus is not None:
            from repro.obs.events import HangSuspected
            self._emit_hang = bus.emitter(HangSuspected)
        else:
            from repro.obs.bus import null_emitter
            self._emit_hang = null_emitter

    # ------------------------------------------------------------------

    def _global_digest(self) -> Dict[str, int]:
        locks = self.stats.locks
        return {
            "memory_version": self.memory.version,
            "lock_success": locks.lock_success,
        }

    def _warp_keys(self):
        for sm in self.sms:
            for slot, warp in sm.warps.items():
                yield (sm.sm_id, slot, warp.cta_id, warp.warp_in_cta), sm, warp

    # ------------------------------------------------------------------

    def sample(self, now: int) -> None:
        """Take one epoch sample; raises on a classified hang."""
        self.next_sample = now + self.epoch
        if self.checker is not None:
            self.checker.check(now, self.sms)

        progressed = self._global_digest() != self._baseline
        issued_in_window: Dict[Tuple, int] = {}
        sync_evidence = False
        any_issued = False
        seen: Set[Tuple] = set()
        for key, sm, warp in self._warp_keys():
            seen.add(key)
            if key not in self._baseline_issued:
                # Freshly-dispatched warp: a CTA slot turned over, which
                # itself witnesses progress.
                progressed = True
                self._baseline_issued[key] = warp.issued_instructions
                continue
            delta = warp.issued_instructions - self._baseline_issued[key]
            issued_in_window[key] = delta
            if warp.finished:
                if key not in self._baseline_finished:
                    progressed = True  # finished during this window
                continue
            if delta > 0:
                any_issued = True
                footprint = self._footprints.setdefault(key, set())
                footprint.add(warp.pc)
                if len(footprint) > self.footprint_limit:
                    progressed = True
                if warp.backed_off or (
                    sm.ddos is not None and sm.ddos.warp_spinning(key[1])
                ):
                    sync_evidence = True
        if set(self._baseline_issued) - seen:
            progressed = True  # a CTA retired: its warps made progress

        if progressed:
            self._reset_window(now)
            return
        if now - self._window_start < self.window:
            return

        # A full window with zero observable progress: classify.
        window = now - self._window_start
        if not any_issued:
            self.last_assessment = "deadlock"
            reason = ("no warp issued any instruction for "
                      f"{window} cycles")
            self._emit_hang(cycle=now, hang_kind="deadlock", reason=reason)
            report = self._report("deadlock", now, window, reason,
                                  issued_in_window)
            raise SimulationDeadlock(report.describe(), report)

        sync_evidence = sync_evidence or self._sync_traffic_moved()
        if sync_evidence:
            self.last_assessment = "livelock"
            reason = (
                f"warps kept issuing for {window} cycles but no memory "
                "write, lock acquisition, or warp completion occurred "
                "(spin loops re-executing with no global-state change)"
            )
            self._emit_hang(cycle=now, hang_kind="livelock", reason=reason)
            report = self._report(
                "livelock", now, window, reason, issued_in_window,
            )
            raise SimulationLivelock(report.describe(), report)

        # Issuing, tiny footprints, but no sync traffic at all: likely a
        # pure-compute loop we cannot prove is a spin.  Keep running —
        # max_cycles remains the backstop and will carry this verdict.
        self.last_assessment = (
            "suspected livelock (small PC footprints, no global progress, "
            "but no synchronization traffic to confirm)"
        )
        self._emit_hang(
            cycle=now, hang_kind="suspected", reason=self.last_assessment,
        )

    # ------------------------------------------------------------------

    def _memstats(self):
        """The live mid-run memory counters (``stats.memory`` is only
        merged from the subsystem after a completed run)."""
        return self.sms[0].memsys.stats if self.sms else self.stats.memory

    def _sync_traffic_moved(self) -> bool:
        """Did lock-acquire failures or sync/atomic traffic occur since
        the window started?  (Monotone counters: compare to window base.)"""
        locks = self.stats.locks
        mem = self._memstats()
        base = self._window_sync_base
        return (
            locks.inter_warp_fail + locks.intra_warp_fail > base[0]
            or mem.atomic_transactions > base[1]
            or mem.sync_transactions > base[2]
        )

    def _reset_window(self, now: int) -> None:
        self._window_start = now
        self._baseline = self._global_digest()
        self._baseline_issued = {}
        self._baseline_finished: Set[Tuple] = set()
        for key, _sm, warp in self._warp_keys():
            self._baseline_issued[key] = warp.issued_instructions
            if warp.finished:
                self._baseline_finished.add(key)
        self._footprints: Dict[Tuple, Set[int]] = {}
        locks = self.stats.locks
        mem = self._memstats()
        self._window_sync_base = (
            locks.inter_warp_fail + locks.intra_warp_fail,
            mem.atomic_transactions,
            mem.sync_transactions,
        )
        self.last_assessment = "progressing"

    def _report(self, kind: str, now: int, window: int, reason: str,
                issued_in_window: Dict[Tuple, int]) -> HangReport:
        return build_hang_report(
            kind, now, self.sms,
            memory=self.memory, stats=self.stats, tracer=self.tracer,
            window=window, reason=reason,
            issued_in_window=issued_in_window,
            footprints=self._footprints,
            bus=self.bus,
        )

    def timeout_report(self, now: int) -> HangReport:
        """Diagnostics for a ``max_cycles`` exhaustion (same shape)."""
        issued = {}
        for key, _sm, warp in self._warp_keys():
            base = self._baseline_issued.get(key, warp.issued_instructions)
            issued[key] = warp.issued_instructions - base
        reason = f"exceeded max_cycles while {self.last_assessment}"
        self._emit_hang(cycle=now, hang_kind="timeout", reason=reason)
        return self._report(
            "timeout", now, now - self._window_start, reason, issued,
        )


# ----------------------------------------------------------------------
# InvariantChecker

class InvariantChecker:
    """Opt-in per-epoch micro-architectural sanity assertions.

    Catches simulator bugs close to their cause instead of as a wrong
    result (or hang) millions of cycles later.  Checked per live warp:

    * scoreboard-entry balance — every pending key names a register or
      predicate the program declares, and the entry count is bounded;
    * SIMT-stack depth bounds — 1 <= depth <= warp_size + 1 (each
      divergence splits lanes, so leaf groups cannot exceed lanes);
    * reconvergence sanity — entry masks are non-empty, PCs and RPCs
      are within program bounds, and live lanes are a subset of the
      warp's initially-valid lanes.
    """

    def __init__(self, config) -> None:
        self.config = config

    def check(self, now: int, sms) -> None:
        for sm in sms:
            known = None
            for slot, warp in sm.warps.items():
                if warp.finished:
                    continue
                if known is None:
                    known = (
                        set(warp.program.registers())
                        | set(warp.program.predicates())
                    )
                self._check_scoreboard(now, sm, slot, warp, known)
                self._check_stack(now, sm, slot, warp)

    def _fail(self, now: int, sm, slot: int, what: str) -> None:
        raise InvariantViolation(
            f"invariant violated at cycle {now} on SM{sm.sm_id} "
            f"warp slot {slot}: {what}"
        )

    def _check_scoreboard(self, now, sm, slot, warp, known) -> None:
        pending = warp.scoreboard._pending
        if len(pending) > len(known):
            self._fail(now, sm, slot,
                       f"scoreboard holds {len(pending)} entries for "
                       f"{len(known)} architectural names")
        for name, release in pending.items():
            if name not in known:
                self._fail(now, sm, slot,
                           f"scoreboard entry for unknown register {name!r}")
            if not isinstance(release, int) or release < 0:
                self._fail(now, sm, slot,
                           f"scoreboard release {release!r} for {name!r} "
                           "is not a non-negative cycle")

    def _check_stack(self, now, sm, slot, warp) -> None:
        entries = warp.stack.entries()
        depth = len(entries)
        if not 1 <= depth <= warp.stack.warp_size + 1:
            self._fail(now, sm, slot,
                       f"SIMT stack depth {depth} outside "
                       f"[1, {warp.stack.warp_size + 1}]")
        n_prog = len(warp.program)
        valid = warp.sregs["tid"] < warp.sregs["ntid"]
        for entry in entries:
            if not entry.mask.any():
                self._fail(now, sm, slot, "empty SIMT-stack entry mask")
            if (entry.mask & ~valid).any():
                self._fail(now, sm, slot,
                           "SIMT-stack entry activates an invalid lane")
            if not (-1 <= entry.pc < n_prog):
                self._fail(now, sm, slot,
                           f"SIMT-stack pc {entry.pc} outside program")
            if not (-1 <= entry.rpc < n_prog):
                self._fail(now, sm, slot,
                           f"SIMT-stack rpc {entry.rpc} outside program")
