"""Baseline warp-scheduling policies: LRR, GTO, CAWA (paper Section II).

Each SM owns ``num_schedulers_per_sm`` scheduler instances; resident warps
are partitioned among them by warp slot (as on real hardware, a warp is
pinned to one scheduler).  Every cycle each scheduler picks at most one
ready warp to issue.

BOWS is deliberately *not* a scheduler subclass: per the paper it extends
any existing policy.  The SM first asks the base policy to choose among
ready, non-backed-off warps; only when none exists does it consult the
BOWS backed-off queue (:meth:`repro.core.bows.BOWSUnit.select_backed_off`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.sim.config import GPUConfig, PerturbConfig
from repro.sim.warp import Warp


class WarpScheduler:
    """Base class: a priority-ordering policy over one scheduler's warps."""

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, config: GPUConfig, slots: List[int]) -> None:
        self.config = config
        self.slots = list(slots)
        self.last_issued: Optional[int] = None

    def select(self, ready: Set[int], warps: Dict[int, Warp],
               now: int) -> Optional[int]:
        """Pick a warp slot from ``ready`` (subset of ``self.slots``)."""
        raise NotImplementedError

    def notify_issue(self, slot: int, now: int) -> None:
        self.last_issued = slot

    def enable_order_cache(self) -> None:
        """Allow the policy to cache warp-membership-derived orderings.

        Only the SM's fast engine opts in: it guarantees
        :meth:`invalidate_order` is called whenever the resident-warp
        set changes (CTA launch/retire).  Policies without a derived
        ordering ignore this.
        """

    def invalidate_order(self) -> None:
        """Resident-warp set changed; drop any cached ordering."""


class LRRScheduler(WarpScheduler):
    """Loose round-robin: rotate through warps, skipping unready ones."""

    name = "lrr"

    def __init__(self, config: GPUConfig, slots: List[int]) -> None:
        super().__init__(config, slots)
        self._pointer = 0

    def select(self, ready: Set[int], warps: Dict[int, Warp],
               now: int) -> Optional[int]:
        n = len(self.slots)
        for i in range(n):
            slot = self.slots[(self._pointer + i) % n]
            if slot in ready:
                return slot
        return None

    def notify_issue(self, slot: int, now: int) -> None:
        super().notify_issue(slot, now)
        # Advance past the issued warp so its peers get the next turns.
        self._pointer = (self.slots.index(slot) + 1) % len(self.slots)


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest with periodic age-priority rotation.

    Strict GTO can livelock spin-lock code (a spinning warp stays
    greedily scheduled while the lock holder starves); following the
    paper (Section IV-C) the age priority is rotated every
    ``gto_rotation_period`` cycles.
    """

    name = "gto"

    def __init__(self, config: GPUConfig, slots: List[int]) -> None:
        super().__init__(config, slots)
        self._cache_order = False
        self._by_age: Optional[List[int]] = None
        self._rank: Optional[Dict[int, int]] = None

    def enable_order_cache(self) -> None:
        self._cache_order = True
        self._by_age = None
        self._rank = None

    def invalidate_order(self) -> None:
        self._by_age = None
        self._rank = None

    def select(self, ready: Set[int], warps: Dict[int, Warp],
               now: int) -> Optional[int]:
        if self.last_issued is not None and self.last_issued in ready:
            return self.last_issued
        if self._cache_order:
            # Cached-order path: "first ready slot in the rotated age
            # order" == "ready slot minimizing rotated age rank" — an
            # O(|ready|) min instead of a scan over all resident slots.
            if not ready:
                return None
            rank = self._rank
            if rank is None:
                self._sort_by_age(warps)
                rank = self._rank
            n = len(rank)
            period = self.config.gto_rotation_period
            rotation = (now // period) % n if period > 0 else 0
            return min(ready, key=lambda s: (rank[s] - rotation) % n)
        order = self.priority_order(warps, now)
        for slot in order:
            if slot in ready:
                return slot
        return None

    def _sort_by_age(self, warps: Dict[int, Warp]) -> None:
        by_age = sorted(
            (slot for slot in self.slots if slot in warps),
            key=lambda s: warps[s].age,
        )
        self._by_age = by_age
        self._rank = {slot: i for i, slot in enumerate(by_age)}

    def priority_order(self, warps: Dict[int, Warp], now: int) -> List[int]:
        """Oldest-first order, rotated every rotation period."""
        by_age = self._by_age
        if by_age is None:
            if self._cache_order:
                self._sort_by_age(warps)
                by_age = self._by_age
            else:
                by_age = sorted(
                    (slot for slot in self.slots if slot in warps),
                    key=lambda s: warps[s].age,
                )
        if not by_age:
            return []
        period = self.config.gto_rotation_period
        rotation = (now // period) % len(by_age) if period > 0 else 0
        return by_age[rotation:] + by_age[:rotation]


class CAWAScheduler(WarpScheduler):
    """Criticality-aware: always issue the most critical ready warp."""

    name = "cawa"

    def select(self, ready: Set[int], warps: Dict[int, Warp],
               now: int) -> Optional[int]:
        best: Optional[int] = None
        best_crit = float("-inf")
        for slot in self.slots:
            if slot not in ready:
                continue
            crit = warps[slot].criticality
            if crit > best_crit:
                best_crit = crit
                best = slot
        return best


class PerturbedScheduler(WarpScheduler):
    """Seeded perturbation layered over any base policy (fuzzing).

    Not a policy of its own: the schedule-perturbation fuzzer
    (:mod:`repro.fuzz`) wraps the configured base scheduler with this to
    explore the space of legal-but-unlucky issue orders.  Two knobs:

    * *tie-break jitter* — with probability ``sched_jitter`` the base
      policy's pick is replaced by a seeded-random choice among the
      ready warps;
    * *priority rotation* — every ``rotation_period`` cycles a rotating
      warp slot is force-prioritized whenever it is ready, emulating
      adversarial age/priority reassignment.

    Both are deterministic in (seed, cycle, issue history), so a fuzz
    seed replays its schedule exactly.
    """

    name = "perturbed"

    def __init__(self, base: WarpScheduler, perturb: PerturbConfig,
                 salt: int) -> None:
        super().__init__(base.config, base.slots)
        self.base = base
        self.perturb = perturb
        self._rng = random.Random(perturb.seed * 1000003 + salt)

    def select(self, ready: Set[int], warps: Dict[int, Warp],
               now: int) -> Optional[int]:
        if not ready:
            return None
        p = self.perturb
        if p.rotation_period > 0 and self.slots:
            pivot = self.slots[(now // p.rotation_period) % len(self.slots)]
            if pivot in ready:
                return pivot
        if p.sched_jitter > 0 and self._rng.random() < p.sched_jitter:
            return self._rng.choice(sorted(ready))
        return self.base.select(ready, warps, now)

    def notify_issue(self, slot: int, now: int) -> None:
        super().notify_issue(slot, now)
        self.base.notify_issue(slot, now)

    def enable_order_cache(self) -> None:
        self.base.enable_order_cache()

    def invalidate_order(self) -> None:
        self.base.invalidate_order()


_SCHEDULERS = {
    cls.name: cls for cls in (LRRScheduler, GTOScheduler, CAWAScheduler)
}


def make_scheduler(name: str, config: GPUConfig,
                   slots: List[int],
                   salt: int = 0) -> WarpScheduler:
    """Instantiate a scheduler policy by name (``lrr``/``gto``/``cawa``).

    When ``config.perturb`` is set the policy is wrapped in a
    :class:`PerturbedScheduler` seeded from ``config.perturb.seed`` and
    ``salt`` (unique per scheduler instance across the GPU).
    """
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None
    scheduler = cls(config, slots)
    if config.perturb is not None:
        scheduler = PerturbedScheduler(scheduler, config.perturb, salt)
    return scheduler


def scheduler_names() -> List[str]:
    return sorted(_SCHEDULERS)
