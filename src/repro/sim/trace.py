"""Optional execution tracing: a ring buffer of issued instructions.

Attach a :class:`Tracer` to an :class:`~repro.sim.gpu.GPU` before launch
to capture per-issue records (cycle, SM, warp, PC, opcode, active
lanes).  Intended for debugging kernels and scheduler policies; the
tracer costs nothing when not attached.

Example::

    tracer = Tracer(capacity=10_000)
    gpu = GPU(config)
    tracer.attach(gpu)
    gpu.launch(launch)
    for record in tracer.records()[-10:]:
        print(record)
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.isa.instructions import Instruction
from repro.sim.warp import Warp


@dataclass(frozen=True)
class TraceRecord:
    """One issued instruction."""

    cycle: int
    sm_id: int
    warp_slot: int
    cta_id: int
    pc: int
    opcode: str
    active_lanes: int
    backed_off: bool

    def __str__(self) -> str:
        flags = " B" if self.backed_off else ""
        return (
            f"[{self.cycle:>8}] SM{self.sm_id} w{self.warp_slot:02d} "
            f"cta{self.cta_id} pc={self.pc:<4} {self.opcode:<12} "
            f"lanes={self.active_lanes}{flags}"
        )


class Tracer:
    """Ring buffer of issue events, with optional filtering."""

    def __init__(self, capacity: int = 100_000,
                 predicate: Optional[Callable[[TraceRecord], bool]] = None,
                 ) -> None:
        if capacity <= 0:
            raise ValueError(
                f"Tracer capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.predicate = predicate
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def attach(self, gpu) -> None:
        """Instrument ``gpu`` so future launches record issues."""
        gpu.tracer = self

    def record(self, cycle: int, warp: Warp, instr: Instruction,
               active_lanes: int) -> None:
        entry = TraceRecord(
            cycle=cycle,
            sm_id=warp.sm_id,
            warp_slot=warp.warp_slot,
            cta_id=warp.cta_id,
            pc=instr.index,
            opcode=instr.opcode.value,
            active_lanes=active_lanes,
            backed_off=warp.backed_off,
        )
        if self.predicate is not None and not self.predicate(entry):
            return
        records = self._records
        # Count drops only on actual evictions: compare against the
        # deque's own bound, which (unlike the ``capacity`` attribute)
        # cannot drift out of sync with the buffer.
        if len(records) == records.maxlen:
            self.dropped += 1
        records.append(entry)

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def tail(self, n: int) -> List[TraceRecord]:
        """The last ``n`` issue records (newest last).

        Hang forensics: :mod:`repro.sim.progress` embeds the tail in a
        :class:`~repro.sim.progress.HangReport` to show what the machine
        was issuing when it stopped making progress.
        """
        if n <= 0:
            return []
        records = self._records
        if len(records) <= n:
            return list(records)
        return [records[i] for i in range(len(records) - n, len(records))]

    def export_chrome_trace(self, path, counters=None) -> int:
        """Dump the ring buffer as Chrome ``trace_event`` JSON.

        Load the file in ``chrome://tracing`` or Perfetto to see the
        issue timeline — one process track per SM, one thread track per
        warp slot (named with its CTA, e.g. ``warp 03 (cta 1)``, and
        ordered numerically via ``thread_sort_index``), one cycle mapped
        to one microsecond.  Issues from a backed-off warp are named
        ``<opcode> [backed-off]`` so spin and back-off phases stand out;
        per-event args carry the PC, CTA, and active-lane count.

        ``counters`` optionally takes a
        :class:`repro.obs.sampler.TimeSeries` (or any object with a
        ``perfetto_events()`` method) whose sampled metrics are merged
        in as counter tracks.  Returns the number of issue events
        written (counter events excluded).
        """
        events: List[dict] = []
        tracks = {}
        for record in self._records:
            track = (record.sm_id, record.warp_slot)
            tracks.setdefault(track, record.cta_id)
            name = record.opcode
            if record.backed_off:
                name += " [backed-off]"
            events.append({
                "name": name,
                "ph": "X",
                "ts": record.cycle,
                "dur": 1,
                "pid": record.sm_id,
                "tid": record.warp_slot,
                "cat": "backed-off" if record.backed_off else "issue",
                "args": {
                    "pc": record.pc,
                    "cta": record.cta_id,
                    "active_lanes": record.active_lanes,
                    "backed_off": record.backed_off,
                },
            })
        metadata: List[dict] = []
        for sm_id in sorted({sm for sm, _ in tracks}):
            metadata.append({
                "name": "process_name", "ph": "M", "pid": sm_id,
                "args": {"name": f"SM{sm_id}"},
            })
        for (sm_id, slot), cta in sorted(tracks.items()):
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": sm_id,
                "tid": slot, "args": {"name": f"warp {slot:02d} (cta {cta})"},
            })
            metadata.append({
                "name": "thread_sort_index", "ph": "M", "pid": sm_id,
                "tid": slot, "args": {"sort_index": slot},
            })
        counter_events: List[dict] = []
        if counters is not None:
            counter_events = counters.perfetto_events()
        payload = {
            "traceEvents": metadata + events + counter_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.sim.trace.Tracer",
                "time_unit": "1 ts = 1 GPU cycle",
                "dropped_records": self.dropped,
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(events)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)
