"""Optional execution tracing: a ring buffer of issued instructions.

Attach a :class:`Tracer` to an :class:`~repro.sim.gpu.GPU` before launch
to capture per-issue records (cycle, SM, warp, PC, opcode, active
lanes).  Intended for debugging kernels and scheduler policies; the
tracer costs nothing when not attached.

Example::

    tracer = Tracer(capacity=10_000)
    gpu = GPU(config)
    tracer.attach(gpu)
    gpu.launch(launch)
    for record in tracer.records()[-10:]:
        print(record)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.isa.instructions import Instruction
from repro.sim.warp import Warp


@dataclass(frozen=True)
class TraceRecord:
    """One issued instruction."""

    cycle: int
    sm_id: int
    warp_slot: int
    cta_id: int
    pc: int
    opcode: str
    active_lanes: int
    backed_off: bool

    def __str__(self) -> str:
        flags = " B" if self.backed_off else ""
        return (
            f"[{self.cycle:>8}] SM{self.sm_id} w{self.warp_slot:02d} "
            f"cta{self.cta_id} pc={self.pc:<4} {self.opcode:<12} "
            f"lanes={self.active_lanes}{flags}"
        )


class Tracer:
    """Ring buffer of issue events, with optional filtering."""

    def __init__(self, capacity: int = 100_000,
                 predicate: Optional[Callable[[TraceRecord], bool]] = None,
                 ) -> None:
        self.capacity = capacity
        self.predicate = predicate
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def attach(self, gpu) -> None:
        """Instrument ``gpu`` so future launches record issues."""
        gpu.tracer = self

    def record(self, cycle: int, warp: Warp, instr: Instruction,
               active_lanes: int) -> None:
        entry = TraceRecord(
            cycle=cycle,
            sm_id=warp.sm_id,
            warp_slot=warp.warp_slot,
            cta_id=warp.cta_id,
            pc=instr.index,
            opcode=instr.opcode.value,
            active_lanes=active_lanes,
            backed_off=warp.backed_off,
        )
        if self.predicate is not None and not self.predicate(entry):
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(entry)

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)
