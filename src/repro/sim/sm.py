"""Streaming multiprocessor: issue arbitration and instruction execution.

Per cycle, each of the SM's warp schedulers issues at most one instruction
from a ready warp.  Readiness = not finished, not blocked at a barrier or
memory fence, and the instruction's registers clear the scoreboard.

BOWS arbitration (paper Figure 8) is layered on the base policy:

1. the base policy chooses among ready warps that are *not* backed off
   (greedy/oldest/criticality per policy);
2. only if none exists is the backed-off queue consulted, FIFO, and a
   backed-off warp is eligible only once its pending back-off delay has
   expired;
3. a warp leaving the backed-off state reverts to normal priority and its
   pending delay register restarts.

DDOS hooks: ``setp`` executions update the issuing warp's path/value
history (profiled thread = first active lane); backward branches consult
and train the SIB-PT.

Two engines share this class and produce bitwise-identical statistics:

* ``engine="reference"`` (the default for directly-constructed SMs) —
  the seed implementation: every scheduler re-scans all of its warps'
  readiness each cycle and every issue re-reads operands through
  :func:`repro.sim.executor.read_operand`.
* ``engine="fast"`` (what :class:`repro.sim.gpu.GPU` uses by default) —
  warps are pre-decoded once per program
  (:func:`repro.sim.executor.decode_program`) and tracked in
  per-scheduler ready sets plus a ready-event heap keyed by each warp's
  next possible issue cycle, so idle warps cost no per-cycle host work.
  A warp's readiness inputs (scoreboard, memory fence) only change when
  the warp itself issues, so its cached ``_ready_from`` is refreshed
  exactly there; barrier releases re-register freed warps immediately
  so a warp freed by an earlier scheduler's issue can still issue from
  a later scheduler in the same cycle, as in the reference engine.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.bows import BOWSUnit
from repro.core.cawa import CAWAPredictor
from repro.core.ddos import DDOSEngine
from repro.isa.instructions import Instruction, Mem, Opcode
from repro.isa.program import Program
from repro.memory.memsys import GlobalMemory, MemorySubsystem
from repro.metrics.stats import SimStats
from repro.obs.bus import null_emitter
from repro.obs.events import (
    BarrierArrive,
    BarrierRelease,
    LockAcquireFail,
    LockAcquireSuccess,
)
from repro.sim.config import GPUConfig
from repro.sim.executor import (
    decode_program,
    effective_addresses,
    eval_alu,
    eval_cmp,
    read_operand,
)
from repro.sim.schedulers import make_scheduler
from repro.sim.warp import Warp

#: Identifies a warp across the whole GPU for lock-holder tracking.
WarpKey = Tuple[int, int]  # (cta_id, warp_in_cta)

#: Valid values for the ``engine`` argument of :class:`SM` and
#: :class:`repro.sim.gpu.GPU`.
ENGINES = ("fast", "reference")


def _noop_trace(cycle, warp, instr, active_lanes) -> None:
    """Pre-bound sink used when no tracer is attached (hot path)."""


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        program: Program,
        params: Dict[str, int],
        memory: GlobalMemory,
        memsys: MemorySubsystem,
        lock_table: Dict[int, Tuple[WarpKey, int]],
        stats: SimStats,
        tracer=None,
        engine: str = "reference",
        bus=None,
        sanitizer=None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.tracer = tracer
        self.sm_id = sm_id
        self.config = config
        self.program = program
        self.params = params
        self.memory = memory
        self.memsys = memsys
        self.lock_table = lock_table
        self.stats = stats
        #: Dynamic sanitizer (None when off — every hook site guards on
        #: ``self.san is not None`` so the hot path pays one test).
        self.san = sanitizer

        self.warps: Dict[int, Warp] = {}
        self._free_slots: List[int] = list(range(config.max_warps_per_sm))
        self._cta_slots: Dict[int, List[int]] = {}
        self._barrier_pending: Dict[int, Set[int]] = {}

        n_sched = config.num_schedulers_per_sm
        self.schedulers = [
            make_scheduler(
                config.scheduler,
                config,
                [s for s in range(config.max_warps_per_sm) if s % n_sched == i],
                salt=sm_id * n_sched + i,
            )
            for i in range(n_sched)
        ]
        self.bows: Optional[BOWSUnit] = (
            BOWSUnit(config.bows, sm_id=sm_id, bus=bus)
            if config.bows is not None else None
        )
        self.ddos: Optional[DDOSEngine] = (
            DDOSEngine(config.ddos, program, config.max_warps_per_sm,
                       sm_id=sm_id, bus=bus)
            if config.ddos is not None
            else None
        )
        #: Pre-bound obs event sinks (no-ops when no bus is attached);
        #: all emission sites are off the per-issue critical path.
        if bus is not None:
            self._emit_lock_ok = bus.emitter(LockAcquireSuccess)
            self._emit_lock_fail = bus.emitter(LockAcquireFail)
            self._emit_bar_arrive = bus.emitter(BarrierArrive)
            self._emit_bar_release = bus.emitter(BarrierRelease)
        else:
            self._emit_lock_ok = null_emitter
            self._emit_lock_fail = null_emitter
            self._emit_bar_arrive = null_emitter
            self._emit_bar_release = null_emitter
        self.cawa: Optional[CAWAPredictor] = (
            CAWAPredictor() if config.scheduler == "cawa" else None
        )
        #: Static SIB annotations, used when BOWS runs without DDOS
        #: (the paper's "programmer or compiler identified" mode).
        self._static_sibs = program.true_sibs()
        self._last_charge = 0

        self.engine = engine
        self._fast = engine == "fast"
        #: Pre-bound tracer sink: no per-issue branch on ``tracer``.
        self._trace = tracer.record if tracer is not None else _noop_trace
        if self._fast:
            self._decoded_prog = decode_program(program, config, params)
            #: Per-scheduler sets of slots ready to issue right now,
            #: split by BOWS state so the reference loop's per-cycle
            #: "normal" subset is available without recomputation.
            self._ready_normal: List[Set[int]] = [
                set() for _ in self.schedulers
            ]
            self._ready_backed: List[Set[int]] = [
                set() for _ in self.schedulers
            ]
            #: (ready_from, slot) heap of warps waiting on a known cycle.
            self._wait_heap: List[Tuple[int, int]] = []
            #: slot -> its live heap key (guards against stale entries).
            self._waiting: Dict[int, int] = {}
            self._sched_of = [
                slot % n_sched for slot in range(config.max_warps_per_sm)
            ]
            #: O(1) occupancy counters mirrored from the warp states.
            self._n_live = 0
            self._n_backed = 0
            for scheduler in self.schedulers:
                scheduler.enable_order_cache()
            # Skip the per-SM dispatch wrapper frames on the hot path.
            self.step = self._step_fast
            self.next_event = self._next_event_fast

    # ------------------------------------------------------------------
    # Checkpointing

    def __getstate__(self):
        """Drop the closures (emitters, decoded program) for pickling.

        Everything else — warps, schedulers, ready sets, wait heap,
        BOWS/DDOS units — pickles as-is with shared identity preserved;
        :meth:`repro.sim.gpu.Simulation._rebind` calls
        :meth:`_rebind_events` after the whole graph is restored.
        """
        state = self.__dict__.copy()
        state["_emit_lock_ok"] = None
        state["_emit_lock_fail"] = None
        state["_emit_bar_arrive"] = None
        state["_emit_bar_release"] = None
        if self._fast:
            state["_decoded_prog"] = None
        return state

    def _rebind_events(self, bus) -> None:
        """Rebuild dropped closures after a checkpoint restore."""
        if bus is not None:
            self._emit_lock_ok = bus.emitter(LockAcquireSuccess)
            self._emit_lock_fail = bus.emitter(LockAcquireFail)
            self._emit_bar_arrive = bus.emitter(BarrierArrive)
            self._emit_bar_release = bus.emitter(BarrierRelease)
        else:
            self._emit_lock_ok = null_emitter
            self._emit_lock_fail = null_emitter
            self._emit_bar_arrive = null_emitter
            self._emit_bar_release = null_emitter
        if self.bows is not None:
            self.bows._rebind_events(bus)
        if self.ddos is not None:
            self.ddos._rebind_events(bus)
        if self._fast:
            # Re-decode deterministically; each live warp's cached op is
            # re-derived from its restored PC.  The pickled _sb_max /
            # _ready_from ints are kept verbatim (recomputing them could
            # observe a differently-pruned scoreboard).
            self._decoded_prog = decode_program(
                self.program, self.config, self.params
            )
            ops = self._decoded_prog.ops
            for warp in self.warps.values():
                # Finished warps never issue again (the live engine stops
                # refreshing them, and their PC may sit past the program
                # end); leave their cache unset.
                if not warp.finished:
                    warp._decoded = ops[warp.stack.pc]

    # ------------------------------------------------------------------
    # CTA residency

    def can_accept_cta(self, warps_per_cta: int) -> bool:
        within_cta_limit = len(self._cta_slots) < self.config.max_ctas_per_sm
        return within_cta_limit and len(self._free_slots) >= warps_per_cta

    def launch_cta(self, cta_id: int, warps_per_cta: int, cta_dim: int,
                   grid_dim: int, age_base: int) -> None:
        """Place one CTA's warps into free warp slots."""
        if not self.can_accept_cta(warps_per_cta):
            raise RuntimeError(f"SM{self.sm_id} cannot accept CTA {cta_id}")
        slots = [self._free_slots.pop(0) for _ in range(warps_per_cta)]
        self._cta_slots[cta_id] = slots
        for i, slot in enumerate(slots):
            self.warps[slot] = Warp(
                program=self.program,
                warp_slot=slot,
                sm_id=self.sm_id,
                cta_id=cta_id,
                warp_in_cta=i,
                cta_dim=cta_dim,
                grid_dim=grid_dim,
                warp_size=self.config.warp_size,
                age=age_base + i,
            )
            if self.bows is not None:
                self.bows.on_warp_reset(slot)
            if self._fast:
                # Fresh warps are always immediately issuable (empty
                # scoreboard, no fence): straight to the ready set.
                warp = self.warps[slot]
                self._refresh(warp)
                self._ready_normal[self._sched_of[slot]].add(slot)
                self._n_live += 1
        for scheduler in self.schedulers:
            scheduler.invalidate_order()

    @property
    def resident_ctas(self) -> int:
        return len(self._cta_slots)

    @property
    def idle(self) -> bool:
        return not self.warps

    # ------------------------------------------------------------------
    # Per-cycle operation

    def step(self, now: int) -> int:
        """Let every scheduler try to issue; returns instructions issued."""
        if self._fast:
            return self._step_fast(now)
        if self.cawa is not None:
            self._charge_cawa(now)
        issued = 0
        for scheduler in self.schedulers:
            self.stats.issue_slots += 1
            ready = {
                slot
                for slot in scheduler.slots
                if slot in self.warps and self._ready(self.warps[slot], now)
            }
            if not ready:
                continue
            if self.bows is not None:
                normal = {
                    slot for slot in ready if not self.warps[slot].backed_off
                }
                slot = scheduler.select(normal, self.warps, now)
                if slot is None:
                    slot = self.bows.select_backed_off(ready, now, self.warps)
            else:
                slot = scheduler.select(ready, self.warps, now)
            if slot is None:
                continue
            warp = self.warps[slot]
            self._issue(warp, now)
            scheduler.notify_issue(slot, now)
            self.stats.issued_slots += 1
            issued += 1
            if warp.finished:
                # A finished warp never blocks its CTA's barrier: its
                # exit may release warp-mates already waiting there.
                self._barrier_arrive(warp.cta_id, now=now)
                self._retire_if_cta_done(warp.cta_id, now=now)
        return issued

    def _step_fast(self, now: int) -> int:
        """Fast-engine :meth:`step`: O(schedulers + ready warps) per cycle.

        Semantics are identical to the reference loop; only the ready-set
        computation differs — instead of re-scanning every warp, warps
        whose wake-up cycle arrived are drained from the wait heap into
        their scheduler's ready set, and issuing warps are re-registered
        with a freshly cached ``_ready_from``.
        """
        if self.cawa is not None:
            self._charge_cawa(now)
        heap = self._wait_heap
        waiting = self._waiting
        warps = self.warps
        while heap and heap[0][0] <= now:
            t, slot = heappop(heap)
            if waiting.get(slot) == t:
                del waiting[slot]
                sets = (
                    self._ready_backed
                    if warps[slot].backed_off else self._ready_normal
                )
                sets[self._sched_of[slot]].add(slot)
        issued = 0
        stats = self.stats
        bows = self.bows
        for i, scheduler in enumerate(self.schedulers):
            stats.issue_slots += 1
            normal = self._ready_normal[i]
            backed = self._ready_backed[i]
            if not normal and not backed:
                continue
            slot = scheduler.select(normal, warps, now)
            if slot is not None:
                normal.discard(slot)
            elif bows is not None:
                slot = bows.select_backed_off(backed, now, warps)
                if slot is None:
                    continue
                backed.discard(slot)
            else:
                continue
            warp = warps[slot]
            was_backed = warp.backed_off
            self._issue_fast(warp, now)
            if warp.backed_off != was_backed:
                self._n_backed += 1 if warp.backed_off else -1
            scheduler.notify_issue(slot, now)
            stats.issued_slots += 1
            issued += 1
            if warp.finished:
                self._n_live -= 1
                # A finished warp never blocks its CTA's barrier: its
                # exit may release warp-mates already waiting there.
                self._barrier_arrive(warp.cta_id, now=now, skip_slot=slot)
                self._retire_if_cta_done(warp.cta_id, now=now)
            else:
                self._refresh(warp)
                if not warp.at_barrier:
                    self._register(warp, now)
        return issued

    def _refresh(self, warp: Warp) -> None:
        """Re-cache the warp's decoded op and earliest issue cycle.

        Called after every issue by ``warp`` (and at launch) — the only
        points where its PC, scoreboard, or memory fence can change.
        """
        dop = self._decoded_prog.ops[warp.stack.pc]
        warp._decoded = dop
        pending = warp.scoreboard._pending
        sb_max = 0
        if pending:
            for key in dop.hazard_keys:
                release = pending.get(key)
                if release is not None and release > sb_max:
                    sb_max = release
        warp._sb_max = sb_max
        membar = warp.membar_until
        warp._ready_from = membar if membar > sb_max else sb_max

    def _register(self, warp: Warp, now: int) -> None:
        """File the warp under ready-now or the wait heap."""
        t = warp._ready_from
        slot = warp.warp_slot
        if t <= now:
            sets = (
                self._ready_backed if warp.backed_off
                else self._ready_normal
            )
            sets[self._sched_of[slot]].add(slot)
        else:
            heappush(self._wait_heap, (t, slot))
            self._waiting[slot] = t

    def _ready(self, warp: Warp, now: int) -> bool:
        if warp.finished or warp.at_barrier:
            return False
        if warp.membar_until > now:
            return False
        instr = warp.current_instruction()
        return warp.scoreboard.ready(warp.hazard_names(instr), now)

    def next_event(self, now: int) -> Optional[int]:
        """Earliest cycle after ``now`` when some warp may become ready."""
        if self._fast:
            return self._next_event_fast(now)
        best: Optional[int] = None

        def consider(t: Optional[int]) -> None:
            nonlocal best
            if t is not None and t > now and (best is None or t < best):
                best = t

        for warp in self.warps.values():
            if warp.finished or warp.at_barrier:
                continue
            if warp.membar_until > now:
                consider(warp.membar_until)
                continue
            instr = warp.current_instruction()
            release = warp.scoreboard.next_release(
                warp.hazard_names(instr), now
            )
            if release is not None:
                consider(release)
                continue
            # Ready except (possibly) for its BOWS pending delay.
            if warp.backed_off and warp.pending_delay_until > now:
                consider(warp.pending_delay_until)
            else:
                consider(now + 1)
        return best

    def _next_event_fast(self, now: int) -> Optional[int]:
        """Fast-engine :meth:`next_event` over the cached per-warp scalars.

        Requires :meth:`_step_fast` to have drained the wait heap at
        ``now`` (the GPU loop always steps before asking).  The ready
        sets and the waiting map then partition exactly the warps the
        reference scan would visit (non-finished, non-barrier), so no
        per-warp state checks are needed:

        * a ready non-backed-off warp contributes ``now + 1`` — the
          smallest candidate any warp can contribute, so return it;
        * a ready backed-off warp contributes its pending delay (or
          ``now + 1`` once expired);
        * a waiting warp replicates the reference chain's fence-first
          quirk: ``membar_until`` if fenced — even when a scoreboard
          release lands later — else the scoreboard release.  The heap
          keys (``max`` of the two) must not be used here.
        """
        for ready in self._ready_normal:
            if ready:
                return now + 1
        best: Optional[int] = None
        warps = self.warps
        for ready in self._ready_backed:
            for slot in ready:
                warp = warps[slot]
                t = warp.pending_delay_until
                if t <= now:
                    return now + 1
                if best is None or t < best:
                    best = t
        for slot in self._waiting:
            warp = warps[slot]
            membar = warp.membar_until
            t = membar if membar > now else warp._sb_max
            if best is None or t < best:
                best = t
        return best

    def accumulate_occupancy(self, dt: float) -> None:
        """Weight the current backed-off/live warp counts by ``dt`` cycles."""
        if self._fast:
            self.stats.resident_warp_cycles += dt * self._n_live
            self.stats.backed_off_warp_cycles += dt * self._n_backed
            return
        live = sum(1 for w in self.warps.values() if not w.finished)
        backed = sum(
            1 for w in self.warps.values()
            if not w.finished and w.backed_off
        )
        self.stats.resident_warp_cycles += dt * live
        self.stats.backed_off_warp_cycles += dt * backed

    # ------------------------------------------------------------------
    # Issue / execute

    def _issue(self, warp: Warp, now: int) -> None:
        instr = warp.current_instruction()
        exec_mask = warp.exec_mask(instr)
        n_exec = int(exec_mask.sum())
        is_sib = self._is_sib(instr)
        if self.tracer is not None:
            self.tracer.record(now, warp, instr, n_exec)

        # Bookkeeping common to all instructions.
        stats = self.stats
        stats.warp_instructions += 1
        stats.thread_instructions += n_exec
        stats.active_lane_sum += n_exec
        if instr.has_role("sync"):
            stats.sync_thread_instructions += n_exec
        else:
            stats.useful_thread_instructions += n_exec
        if is_sib:
            stats.sib_warp_instructions += 1
            stats.sib_thread_instructions += n_exec
        warp.issued_instructions += 1
        warp.thread_instructions += n_exec
        if self.cawa is not None:
            self.cawa.on_issue(warp, instr, now)
        if self.bows is not None:
            self.bows.on_issue(
                warp, now, is_sib,
                is_store=instr.opcode is Opcode.ST_GLOBAL,
            )

        op = instr.opcode
        if op is Opcode.BRA:
            self._execute_branch(warp, instr, exec_mask, now)
        elif op is Opcode.EXIT:
            self._execute_exit(warp, instr, exec_mask)
        elif op is Opcode.SETP:
            self._execute_setp(warp, instr, exec_mask, now)
        elif op is Opcode.BAR_SYNC:
            warp.stack.advance()
            warp.at_barrier = True
            stats.barrier_waits += 1
            self._emit_bar_arrive(
                cycle=now, sm_id=self.sm_id, cta_id=warp.cta_id,
                warp_slot=warp.warp_slot,
            )
            if self.san is not None:
                self.san.note_barrier(
                    self.sm_id, warp.cta_id, warp.warp_in_cta,
                    instr.index, now, warp.stack.depth,
                )
            self._barrier_arrive(warp.cta_id, now=now)
        elif op is Opcode.MEMBAR:
            warp.membar_until = max(now + 1, warp.last_store_completion)
            warp.stack.advance()
        elif op is Opcode.CLOCK:
            values = np.full(self.config.warp_size, now, dtype=np.int64)
            warp.regs.write(instr.dst.name, values, exec_mask)
            self._reserve(warp, instr, now + self.config.alu_latency)
            warp.stack.advance()
        elif op is Opcode.LD_PARAM:
            value = self.params[instr.srcs[0].name]
            values = np.full(self.config.warp_size, value, dtype=np.int64)
            warp.regs.write(instr.dst.name, values, exec_mask)
            self._reserve(warp, instr, now + self.config.alu_latency)
            warp.stack.advance()
        elif op in (Opcode.LD_GLOBAL, Opcode.LD_GLOBAL_CG):
            self._execute_load(warp, instr, exec_mask, now)
        elif op is Opcode.ST_GLOBAL:
            self._execute_store(warp, instr, exec_mask, now)
        elif instr.is_atomic:
            self._execute_atomic(warp, instr, exec_mask, now)
            stats.atomic_warp_instructions += 1
        elif op is Opcode.NOP:
            warp.stack.advance()
        else:
            self._execute_alu(warp, instr, exec_mask, now)

    def _issue_fast(self, warp: Warp, now: int) -> None:
        """Fast-engine :meth:`_issue`: pre-decoded record, no dispatch.

        Mirrors the reference prologue field for field, then jumps
        straight to the op's specialized handler.
        """
        dop = warp._decoded
        exec_mask = dop.mask_fn(warp)
        n_exec = int(np.count_nonzero(exec_mask))
        ddos = self.ddos
        if dop.is_branch:
            if ddos is not None:
                is_sib = ddos.is_sib(dop.index)
            else:
                is_sib = dop.static_sib if self.bows is not None else False
        else:
            is_sib = False
        self._trace(now, warp, dop.instr, n_exec)

        stats = self.stats
        stats.warp_instructions += 1
        stats.thread_instructions += n_exec
        stats.active_lane_sum += n_exec
        if dop.is_sync:
            stats.sync_thread_instructions += n_exec
        else:
            stats.useful_thread_instructions += n_exec
        if is_sib:
            stats.sib_warp_instructions += 1
            stats.sib_thread_instructions += n_exec
        warp.issued_instructions += 1
        warp.thread_instructions += n_exec
        if self.cawa is not None:
            self.cawa.on_issue(warp, dop.instr, now)
        if self.bows is not None:
            self.bows.on_issue(warp, now, is_sib, is_store=dop.is_store)

        dop.handler(self, warp, dop, exec_mask, now)

    # -- straight-line ops ---------------------------------------------

    def _execute_alu(self, warp: Warp, instr: Instruction,
                     exec_mask: np.ndarray, now: int) -> None:
        if instr.opcode is Opcode.SELP:
            a = read_operand(warp, instr.srcs[0], self.params)
            b = read_operand(warp, instr.srcs[1], self.params)
            pred = warp.regs.read_pred(instr.srcs[2].name)
            result = np.where(pred, a, b)
        else:
            srcs = [read_operand(warp, s, self.params) for s in instr.srcs]
            result = eval_alu(instr.opcode, srcs)
        warp.regs.write(instr.dst.name, result, exec_mask)
        latency = self.config.alu_latency
        if instr.opcode in (Opcode.MUL, Opcode.MAD, Opcode.DIV, Opcode.REM):
            latency = self.config.sfu_latency
        self._reserve(warp, instr, now + latency)
        warp.stack.advance()

    def _execute_setp(self, warp: Warp, instr: Instruction,
                      exec_mask: np.ndarray, now: int) -> None:
        a = read_operand(warp, instr.srcs[0], self.params)
        b = read_operand(warp, instr.srcs[1], self.params)
        result = eval_cmp(instr.cmp, a, b)
        warp.regs.write_pred(instr.dst.name, result, exec_mask)
        self._reserve(warp, instr, now + self.config.alu_latency)
        # DDOS profiles one fixed thread per warp (the first live lane);
        # setp executions that do not include it leave the history
        # registers untouched, exactly as a per-thread tracker would.
        lane = warp.profiled_lane
        if self.ddos is not None and lane >= 0 and exec_mask[lane]:
            self.ddos.on_setp(
                warp.warp_slot, instr, int(a[lane]), int(b[lane]), now
            )
        warp.stack.advance()

    # -- control flow ----------------------------------------------------

    def _execute_branch(self, warp: Warp, instr: Instruction,
                        exec_mask: np.ndarray, now: int) -> None:
        assert instr.target_index is not None
        active = warp.stack.active_mask
        if instr.guard is None:
            taken_mask = active.copy()
            warp.stack.uniform_jump(instr.target_index)
        else:
            guard = warp.regs.read_pred(instr.guard.name)
            if instr.guard_negated:
                guard = ~guard
            taken_mask = np.logical_and(guard, active)
            rpc = self.program.reconvergence_point(instr.index)
            warp.stack.branch(guard, instr.target_index, rpc)
        taken_any = bool(taken_mask.any())
        n_taken = int(taken_mask.sum())
        n_not_taken = int(active.sum()) - n_taken

        if instr.has_role("wait_branch"):
            # Backward branch of a wait/signal loop: lanes that take it
            # failed to observe the signal this iteration.
            self.stats.locks.wait_exit_fail += n_taken
            self.stats.locks.wait_exit_success += n_not_taken

        if self.ddos is not None and instr.is_backward_branch:
            self.ddos.on_backward_branch(
                warp.warp_slot, instr, taken_any, now
            )
        if self.cawa is not None:
            self.cawa.on_branch(warp, instr, taken_any)
        if (
            self.bows is not None
            and taken_any
            and self._is_sib(instr)
        ):
            self.bows.on_sib_executed(warp, now)

    def _execute_exit(self, warp: Warp, instr: Instruction,
                      exec_mask: np.ndarray) -> None:
        if exec_mask.any():
            warp.stack.exit_lanes(exec_mask)
            warp.refresh_profiled_lane()
        if not warp.finished and warp.stack.pc == instr.index:
            # Guarded exit: surviving lanes continue past it.
            warp.stack.advance()

    # -- memory ----------------------------------------------------------

    def _execute_load(self, warp: Warp, instr: Instruction,
                      exec_mask: np.ndarray, now: int) -> None:
        mem_op = instr.srcs[0]
        addrs = effective_addresses(warp, mem_op)
        active_addrs = addrs[exec_mask]
        values = np.zeros(self.config.warp_size, dtype=np.int64)
        if active_addrs.size:
            values[exec_mask] = self.memory.read(active_addrs)
        warp.regs.write(instr.dst.name, values, exec_mask)
        if self.san is not None:
            self.san.note_load(
                self.sm_id, warp.cta_id, warp.warp_in_cta,
                np.nonzero(exec_mask)[0], active_addrs, instr.index, now,
            )
        bypass = instr.opcode is Opcode.LD_GLOBAL_CG
        result = self.memsys.load(
            self.sm_id, active_addrs, now,
            bypass_l1=bypass, sync=instr.has_role("sync"),
        )
        self._reserve(warp, instr, result.completion)
        warp.stack.advance()

    def _execute_store(self, warp: Warp, instr: Instruction,
                       exec_mask: np.ndarray, now: int) -> None:
        mem_op = instr.dst
        addrs = effective_addresses(warp, mem_op)
        values = read_operand(warp, instr.srcs[0], self.params)
        active_addrs = addrs[exec_mask]
        if active_addrs.size:
            self.memory.write(active_addrs, values[exec_mask])
        if self.san is not None:
            self.san.note_store(
                self.sm_id, warp.cta_id, warp.warp_in_cta,
                np.nonzero(exec_mask)[0], active_addrs, instr.index, now,
                release=instr.has_role("lock_release"),
            )
        result = self.memsys.store(
            self.sm_id, active_addrs, now, sync=instr.has_role("sync")
        )
        warp.last_store_completion = max(
            warp.last_store_completion, result.completion
        )
        if instr.has_role("lock_release"):
            for addr in active_addrs:
                self.lock_table.pop(int(addr), None)
        warp.stack.advance()

    def _execute_atomic(self, warp: Warp, instr: Instruction,
                        exec_mask: np.ndarray, now: int) -> None:
        mem_op = instr.srcs[0]
        addrs = effective_addresses(warp, mem_op)
        operands = [
            read_operand(warp, s, self.params) for s in instr.srcs[1:]
        ]
        old_values = np.zeros(self.config.warp_size, dtype=np.int64)
        warp_key: WarpKey = (warp.cta_id, warp.warp_in_cta)
        is_lock_try = instr.has_role("lock_try")
        magic = self.config.magic_locks and is_lock_try
        for lane in np.nonzero(exec_mask)[0]:
            addr = int(addrs[lane])
            old = self.memory.read_word(addr)
            op = instr.opcode
            if op is Opcode.ATOM_CAS:
                compare = int(operands[0][lane])
                new = int(operands[1][lane])
                if magic:
                    # Ideal-blocking proxy: every acquire succeeds at
                    # once and the lock is never observed held.
                    old = compare
                elif old == compare:
                    self.memory.write_word(addr, new)
            elif op is Opcode.ATOM_EXCH:
                self.memory.write_word(addr, int(operands[0][lane]))
            elif op is Opcode.ATOM_ADD:
                self.memory.write_word(addr, old + int(operands[0][lane]))
            elif op is Opcode.ATOM_MIN:
                self.memory.write_word(addr, min(old, int(operands[0][lane])))
            elif op is Opcode.ATOM_MAX:
                self.memory.write_word(addr, max(old, int(operands[0][lane])))
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unhandled atomic {op}")
            old_values[lane] = old

            if is_lock_try and instr.opcode is Opcode.ATOM_CAS:
                self._record_lock_attempt(
                    addr, old == int(operands[0][lane]) or magic,
                    warp, warp_key, int(lane), now,
                )
            if instr.has_role("lock_release"):
                self.lock_table.pop(addr, None)
            if self.san is not None:
                # magic mode already forced ``old = compare`` above, so
                # the CAS-success test below covers it too.
                cas_hit = (op is Opcode.ATOM_CAS
                           and old == int(operands[0][lane]))
                self.san.note_atomic(
                    self.sm_id, warp.cta_id, warp.warp_in_cta, int(lane),
                    addr, instr.index, now,
                    lock_try=is_lock_try,
                    success=is_lock_try
                    and (cas_hit or op is not Opcode.ATOM_CAS),
                    release=instr.has_role("lock_release"),
                    wrote=op is not Opcode.ATOM_CAS
                    or (cas_hit and not magic),
                )

        if instr.dst is not None:
            warp.regs.write(instr.dst.name, old_values, exec_mask)
        result = self.memsys.atomic(
            self.sm_id, addrs[exec_mask], now,
            sync=instr.has_role("sync") or is_lock_try,
        )
        if instr.dst is not None:
            self._reserve(warp, instr, result.completion)
        warp.stack.advance()

    def _record_lock_attempt(self, addr: int, success: bool, warp: Warp,
                             warp_key: WarpKey, lane: int,
                             now: int = 0) -> None:
        locks = self.stats.locks
        if success:
            locks.lock_success += 1
            self.lock_table[addr] = (warp_key, lane)
            warp.lock_fail_addr = None
            self._emit_lock_ok(
                cycle=now, sm_id=self.sm_id, warp_slot=warp.warp_slot,
                addr=addr, lane=lane,
            )
        else:
            holder = self.lock_table.get(addr)
            if holder is not None and holder[0] == warp_key:
                locks.intra_warp_fail += 1
                conflict = "intra"
            else:
                locks.inter_warp_fail += 1
                conflict = "inter"
            # Hang forensics: remember which lock this warp is stuck on.
            warp.lock_fail_addr = addr
            warp.lock_fails += 1
            self._emit_lock_fail(
                cycle=now, sm_id=self.sm_id, warp_slot=warp.warp_slot,
                addr=addr, lane=lane, conflict=conflict,
            )

    # ------------------------------------------------------------------
    # Helpers

    def _reserve(self, warp: Warp, instr: Instruction,
                 release_cycle: int) -> None:
        name = warp.dst_name(instr)
        if name is not None:
            warp.scoreboard.reserve([name], release_cycle)

    def _is_sib(self, instr: Instruction) -> bool:
        """Is this branch currently identified as spin-inducing?"""
        if not instr.is_branch:
            return False
        if self.ddos is not None:
            return self.ddos.is_sib(instr.index)
        if self.bows is not None:
            # Programmer/compiler annotation mode.
            return instr.index in self._static_sibs
        return False

    def _barrier_arrive(self, cta_id: int, now: Optional[int] = None,
                        skip_slot: Optional[int] = None) -> None:
        slots = self._cta_slots.get(cta_id, [])
        waiting = [
            self.warps[s] for s in slots if not self.warps[s].finished
        ]
        if waiting and all(w.at_barrier for w in waiting):
            self._emit_bar_release(
                cycle=now, sm_id=self.sm_id, cta_id=cta_id,
                released=len(waiting),
            )
            if self.san is not None:
                self.san.note_barrier_release(cta_id, now)
            for w in waiting:
                w.at_barrier = False
                # Fast engine: released warps become schedulable at once,
                # so a warp freed by an earlier scheduler's issue can
                # still issue from a later scheduler this same cycle.
                # The issuing warp itself (``skip_slot``) is registered
                # by the post-issue code in ``_step_fast``.
                if self._fast and w.warp_slot != skip_slot:
                    self._register(w, now)

    def _retire_if_cta_done(self, cta_id: int,
                            now: Optional[int] = None) -> None:
        slots = self._cta_slots.get(cta_id)
        if slots is None:
            return
        if all(self.warps[s].finished for s in slots):
            # A finished warp can never block a barrier.
            self._barrier_arrive(cta_id, now=now)
            for slot in slots:
                del self.warps[slot]
                if self.bows is not None:
                    self.bows.on_warp_reset(slot)
            del self._cta_slots[cta_id]
            self._free_slots.extend(slots)
            self._free_slots.sort()
            for scheduler in self.schedulers:
                scheduler.invalidate_order()

    def _charge_cawa(self, now: int) -> None:
        dt = now - self._last_charge
        if dt <= 0:
            return
        self._last_charge = now
        if self._fast:
            for warp in self.warps.values():
                if warp.finished:
                    continue
                warp.cawa_cycles += dt
                if warp.at_barrier or warp._ready_from > now:
                    warp.cawa_nstall += dt
            return
        for warp in self.warps.values():
            if warp.finished:
                continue
            warp.cawa_cycles += dt
            if not self._ready(warp, now):
                warp.cawa_nstall += dt
