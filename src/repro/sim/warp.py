"""Warp state: registers, SIMT stack, scoreboard, scheduling flags.

A warp is the schedulable unit.  Besides the architectural state (register
file, reconvergence stack) it carries the per-warp bookkeeping used by the
schedulers and by the paper's mechanisms:

* ``age`` — dynamic warp id used by GTO ("older" = launched earlier);
* ``backed_off`` / ``pending_delay_until`` — BOWS state (Section III);
* ``cawa_*`` — inputs to the CAWA criticality estimate (Section II);
* ``at_barrier`` / ``membar_until`` — synchronization stalls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim.registers import RegisterFile
from repro.sim.scoreboard import Scoreboard
from repro.sim.simt_stack import SIMTStack


class Warp:
    """One warp resident on an SM."""

    def __init__(
        self,
        program: Program,
        warp_slot: int,
        sm_id: int,
        cta_id: int,
        warp_in_cta: int,
        cta_dim: int,
        grid_dim: int,
        warp_size: int,
        age: int,
    ) -> None:
        self.program = program
        self.warp_slot = warp_slot
        self.sm_id = sm_id
        self.cta_id = cta_id
        self.warp_in_cta = warp_in_cta
        self.age = age

        first_tid = warp_in_cta * warp_size
        tids = first_tid + np.arange(warp_size, dtype=np.int64)
        valid = tids < cta_dim
        self.regs = RegisterFile(
            warp_size, program.registers(), program.predicates()
        )
        self.stack = SIMTStack(warp_size, start_pc=0, initial_mask=valid)
        self.scoreboard = Scoreboard()
        self.sregs = {
            "tid": tids,
            "ntid": np.full(warp_size, cta_dim, dtype=np.int64),
            "ctaid": np.full(warp_size, cta_id, dtype=np.int64),
            "nctaid": np.full(warp_size, grid_dim, dtype=np.int64),
            "laneid": np.arange(warp_size, dtype=np.int64),
            "warpid": np.full(warp_size, warp_slot, dtype=np.int64),
            "gtid": cta_id * cta_dim + tids,
        }

        # DDOS profiles one fixed thread per warp: the lowest-numbered
        # live lane (Section IV-A's "first active thread").  Updated
        # only when lanes exit.
        self.profiled_lane: int = int(np.argmax(valid)) if valid.any() else -1

        # Synchronization stalls.
        self.at_barrier = False
        self.membar_until = 0
        self.last_store_completion = 0

        # BOWS state.
        self.backed_off = False
        self.pending_delay_until = 0

        # Hang forensics: last lock address this warp failed to acquire
        # and how many acquires have failed (repro.sim.progress).
        self.lock_fail_addr: Optional[int] = None
        self.lock_fails = 0

        # CAWA criticality inputs.
        self.cawa_ninst = float(program.static_size)
        self.cawa_nstall = 0.0
        self.cawa_cycles = 0.0
        self.cawa_issued = 0

        # Stats.
        self.issued_instructions = 0
        self.thread_instructions = 0

        # Fast-engine cache (repro.sim.sm, engine="fast").  Refreshed by
        # the SM after each of this warp's issues — the only time its
        # readiness inputs can change:
        #   _decoded    — DecodedOp for the current PC;
        #   _sb_max     — max pending scoreboard release over the current
        #                 instruction's hazard keys (0 = none pending);
        #   _ready_from — first cycle the warp can issue,
        #                 max(membar_until, _sb_max).
        # The reference engine ignores all three.
        self._decoded = None
        self._sb_max = 0
        self._ready_from = 0

    def __getstate__(self):
        """Checkpointing: drop the cached DecodedOp (closure-bound); the
        SM re-derives it from the restored PC in ``_rebind_events``.
        ``_sb_max`` / ``_ready_from`` are plain ints and ride along."""
        state = self.__dict__.copy()
        state["_decoded"] = None
        return state

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.stack.finished

    def refresh_profiled_lane(self) -> None:
        """Re-pick the profiled thread after lanes exit."""
        live = self.stack.live_mask()
        if self.profiled_lane >= 0 and live[self.profiled_lane]:
            return
        self.profiled_lane = int(np.argmax(live)) if live.any() else -1

    @property
    def pc(self) -> int:
        return self.stack.pc

    def current_instruction(self) -> Instruction:
        return self.program[self.stack.pc]

    def exec_mask(self, instr: Instruction) -> np.ndarray:
        """Lanes that actually execute ``instr`` (active ∧ guard)."""
        active = self.stack.active_mask
        if instr.guard is None:
            return active.copy()
        guard = self.regs.read_pred(instr.guard.name)
        if instr.guard_negated:
            guard = ~guard
        return np.logical_and(active, guard)

    def hazard_names(self, instr: Instruction) -> tuple:
        """Scoreboard keys read or written by ``instr`` (precomputed)."""
        return instr.hazard_keys

    def dst_name(self, instr: Instruction) -> Optional[str]:
        return instr.dst_key

    # ------------------------------------------------------------------
    # CAWA accessors (Section II: criticality = nInst * CPIavg + nStall).

    @property
    def cawa_cpi(self) -> float:
        if self.cawa_issued == 0:
            return 1.0
        return max(self.cawa_cycles / self.cawa_issued, 1.0)

    @property
    def criticality(self) -> float:
        return self.cawa_ninst * self.cawa_cpi + self.cawa_nstall

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else f"pc={self.pc}"
        return (
            f"Warp(slot={self.warp_slot}, sm={self.sm_id}, cta={self.cta_id},"
            f" {state})"
        )
