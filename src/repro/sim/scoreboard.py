"""Per-warp scoreboard: blocks issue until in-flight writes complete.

The scoreboard records, per destination register, the cycle at which its
pending write becomes visible.  An instruction may issue only when every
register it reads or writes has no pending write completing after the
current cycle (read-after-write and write-after-write protection; the
in-order, single-issue-per-warp front end makes WAR hazards impossible).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class Scoreboard:
    """Tracks pending register writebacks for one warp."""

    def __init__(self) -> None:
        self._pending: Dict[str, int] = {}

    def ready(self, names: Iterable[str], now: int) -> bool:
        """True when none of ``names`` has a write completing after ``now``."""
        pending = self._pending
        if not pending:
            return True
        for name in names:
            release = pending.get(name)
            if release is not None and release > now:
                return False
        return True

    def reserve(self, names: Iterable[str], release_cycle: int) -> None:
        """Mark ``names`` as written back at ``release_cycle``."""
        for name in names:
            current = self._pending.get(name, 0)
            if release_cycle > current:
                self._pending[name] = release_cycle

    def next_release(self, names: Iterable[str], now: int) -> Optional[int]:
        """Earliest cycle > now when all of ``names`` become available."""
        latest = now
        found = False
        for name in names:
            release = self._pending.get(name)
            if release is not None and release > latest:
                latest = release
                found = True
        return latest if found else None

    def flush_before(self, now: int) -> None:
        """Drop entries already released (bounds memory in long runs)."""
        self._pending = {
            name: release
            for name, release in self._pending.items()
            if release > now
        }
