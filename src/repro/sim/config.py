"""GPU, BOWS, and DDOS configuration dataclasses (paper Table II).

Two presets mirror the paper's evaluation machines, scaled down so that a
pure-Python cycle-level simulation finishes in seconds:

* :func:`fermi_config` — GTX480-shaped: fewer SMs than Pascal, 2 warp
  schedulers per SM, and *more resident warps per scheduler* (the regime
  where the baseline scheduling policy matters most, Section VI-D).
* :func:`pascal_config` — GTX1080Ti-shaped: more SMs, 4 schedulers per SM,
  so each scheduler arbitrates between fewer warps.

The scale knob (``num_sms``, ``max_ctas_per_sm``) preserves the paper's
*ratios* (warps per scheduler) rather than absolute core counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache with LRU replacement."""

    size_bytes: int
    line_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class BOWSConfig:
    """Back-Off Warp Spinning parameters (paper Table II, top)."""

    #: Fixed back-off delay limit in cycles; ignored when adaptive=True.
    delay_limit: int = 1000
    #: Use an adaptive delay-limit controller.
    adaptive: bool = False
    #: Which adaptive controller: "hillclimb" (extremum seeking on the
    #: useful-instruction rate; default) or "paper" (Figure 5 rules).
    #: See repro.core.adaptive for why both exist.
    controller: str = "hillclimb"
    #: Adaptive controller: execution window length T.
    window: int = 1000
    #: Adaptive controller: delay step.
    delay_step: int = 250
    #: Adaptive controller: clamp range.  The paper's Table II lists
    #: "Min Limit 1000 / Maximum Limit 1000", which would pin the
    #: adaptive delay — clearly a typo (Figure 10 plots adaptive apart
    #: from the fixed-1000 curve, and Table III budgets 14-bit counters
    #: for delays up to 10,000 cycles).  We use [0, 10000].
    min_limit: int = 0
    max_limit: int = 10000
    #: Adaptive controller: SIB-fraction trigger (FRAC1).  The paper
    #: uses 0.5; a spin iteration is ~5-7 instructions of which exactly
    #: one is the SIB, so the warp-level SIB share of a fully-spinning
    #: SM tops out near 0.2 and a 0.5 threshold can never fire.  We use
    #: 0.1 ("a non-negligible ratio of dynamic spin-inducing branches"),
    #: which reproduces the intended ramp-up behaviour.
    frac1: float = 0.1
    #: Adaptive controller: useful-ratio degradation trigger (FRAC2).
    frac2: float = 0.8


@dataclass(frozen=True)
class DDOSConfig:
    """Dynamic Detection Of Spinning parameters (paper Table II, middle)."""

    #: "xor" or "modulo" hashing of PCs and setp source values.
    hashing: str = "xor"
    #: Hashed path entry width in bits (paper's m).
    path_bits: int = 8
    #: Hashed value entry width in bits (paper's k).
    value_bits: int = 8
    #: History length in setp events (paper's l).
    history_length: int = 8
    #: SIB-PT confidence threshold (paper's t).
    confidence_threshold: int = 4
    #: SIB-PT capacity (entries per SM).
    sib_pt_entries: int = 16
    #: Time-share one history-register set among warps (Table I, last rows).
    time_sharing: bool = False
    #: Epoch length in cycles when time-sharing.
    time_sharing_epoch: int = 1000

    def __post_init__(self) -> None:
        if self.hashing not in ("xor", "modulo"):
            raise ValueError(f"unknown hashing {self.hashing!r}")


@dataclass(frozen=True)
class PerturbConfig:
    """Seeded schedule-perturbation knobs (the fuzzing surface).

    All perturbations are deterministic functions of ``seed`` and the
    simulated cycle, so a hang found by the fuzzer reproduces exactly
    from its reported seed.  They perturb *timing only* — functional
    execution is untouched — which is precisely what exposes
    schedule-dependent synchronization bugs (Sorensen et al.,
    "Specifying and Testing GPU Workgroup Progress Models").
    """

    seed: int = 0
    #: Probability that a scheduler's pick is replaced by a uniformly
    #: random choice among the ready warps (tie-break jitter).
    sched_jitter: float = 0.05
    #: Maximum extra cycles added to each L2/DRAM access completion
    #: (randomized memory-latency spread).  0 disables.
    mem_jitter_cycles: int = 0
    #: Force-prioritize a rotating warp slot every this many cycles
    #: (warp-priority rotation).  0 disables.
    rotation_period: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sched_jitter <= 1.0:
            raise ValueError("sched_jitter must be in [0, 1]")
        if self.mem_jitter_cycles < 0 or self.rotation_period < 0:
            raise ValueError("perturbation magnitudes must be >= 0")


@dataclass(frozen=True)
class GPUConfig:
    """Top-level machine description (paper Table II, bottom)."""

    name: str = "fermi-scaled"
    num_sms: int = 2
    warp_size: int = 32
    max_warps_per_sm: int = 16
    max_ctas_per_sm: int = 8
    num_schedulers_per_sm: int = 2
    registers_per_sm: int = 32768

    # Timing (cycles).
    alu_latency: int = 4
    sfu_latency: int = 8
    l1_hit_latency: int = 28
    l2_hit_latency: int = 60
    dram_latency: int = 200
    atomic_latency: int = 20       # added on top of L2 latency
    l2_service_interval: int = 2   # per-transaction bank occupancy
    #: Bank occupancy of one atomic RMW.  Atomics hold the L2 bank for a
    #: read-modify-write turnaround, so a storm of failed lock-acquire
    #: CASes delays every other access to that bank — including the lock
    #: holder's own critical-section traffic and its release.  This is
    #: the "compete for memory bandwidth" overhead of busy waiting the
    #: paper identifies (Sections I-II).
    atomic_service_interval: int = 16
    dram_service_interval: int = 8
    num_l2_banks: int = 4

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 128, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 128, 8)
    )

    # Scheduling.
    scheduler: str = "gto"
    #: GTO age-rotation period (cycles); the paper rotates every 50,000
    #: cycles to avoid livelock under strict GTO (Section IV-C).
    gto_rotation_period: int = 50000

    bows: Optional[BOWSConfig] = None
    ddos: Optional[DDOSConfig] = None

    #: When set, every ``!lock_try`` CAS succeeds immediately — the
    #: idealized queueing-lock *instruction count* proxy used for the
    #: "Ideal Blocking Inst. Count" curve of Figure 16b.  Mutual
    #: exclusion is not enforced in this mode, so only instruction
    #: counts (not memory contents) are meaningful.
    magic_locks: bool = False

    #: Cap on simulated cycles (safety net against livelock in experiments).
    max_cycles: int = 30_000_000

    #: Forward-progress watchdog: a run that makes no observable global
    #: progress (no memory write, no lock acquisition, no warp
    #: completing) for this many cycles is classified and aborted as a
    #: deadlock or livelock (see :mod:`repro.sim.progress`).  0 disables
    #: the watchdog; detection latency is bounded by
    #: ``no_progress_window + progress_epoch``.
    no_progress_window: int = 500_000
    #: Cycles between ProgressMonitor samples (clamped to the window).
    progress_epoch: int = 25_000
    #: A warp re-executing at most this many distinct sampled PCs during
    #: a no-progress window counts as stuck in a spin loop.
    hang_footprint_limit: int = 16
    #: Run the (slow) per-epoch InvariantChecker: scoreboard-entry
    #: balance, SIMT-stack depth bounds, reconvergence sanity.
    invariant_checks: bool = False

    #: Seeded schedule perturbation (fuzzing); None = faithful timing.
    perturb: Optional[PerturbConfig] = None

    def replace(self, **changes) -> "GPUConfig":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @classmethod
    def preset(
        cls,
        name: str = "fermi",
        *,
        scheduler: str = "gto",
        bows: Union[bool, int, str, BOWSConfig, None] = None,
        ddos: Union[bool, DDOSConfig, None] = None,
        **overrides,
    ) -> "GPUConfig":
        """Build a configuration from a named machine preset.

        This is the one place the paper's configuration vocabulary is
        interpreted:

        Args:
            name: ``"fermi"`` (GTX480-shaped) or ``"pascal"``
                (GTX1080Ti-shaped).
            scheduler: base policy — ``lrr``, ``gto``, or ``cawa``.
            bows: enable BOWS.  ``True`` or ``"adaptive"`` → adaptive
                delay limit (the paper's default); an integer → fixed
                delay limit in cycles; a :class:`BOWSConfig` → verbatim.
            ddos: enable DDOS.  Defaults to on whenever BOWS is on (SIBs
                are then detected dynamically); pass ``False`` with BOWS
                on to fall back to static ``!sib`` annotations
                ("programmer annotation" mode).
            overrides: any :class:`GPUConfig` field, e.g. ``num_sms=1``.
        """
        if name not in _PRESET_BUILDERS:
            raise ValueError(
                f"unknown preset {name!r}; use {sorted(_PRESET_BUILDERS)}"
            )

        bows_config: Optional[BOWSConfig]
        if bows is None or bows is False:
            bows_config = None
        elif isinstance(bows, BOWSConfig):
            bows_config = bows
        elif bows is True or bows == "adaptive":
            bows_config = BOWSConfig(adaptive=True)
        elif isinstance(bows, int):
            bows_config = BOWSConfig(delay_limit=bows, adaptive=False)
        else:
            raise TypeError(f"cannot interpret bows={bows!r}")

        ddos_config: Optional[DDOSConfig]
        if ddos is None:
            ddos_config = DDOSConfig() if bows_config is not None else None
        elif ddos is False:
            ddos_config = None
        elif ddos is True:
            ddos_config = DDOSConfig()
        elif isinstance(ddos, DDOSConfig):
            ddos_config = ddos
        else:
            raise TypeError(f"cannot interpret ddos={ddos!r}")

        return _PRESET_BUILDERS[name](
            scheduler=scheduler, bows=bows_config, ddos=ddos_config,
            **overrides,
        )


def fermi_config(**overrides) -> GPUConfig:
    """GTX480-shaped scaled configuration (paper Table II, left column)."""
    base = GPUConfig(
        name="fermi-scaled",
        num_sms=2,
        max_warps_per_sm=16,
        max_ctas_per_sm=8,
        num_schedulers_per_sm=2,
        l1d=CacheConfig(16 * 1024, 128, 4),
        l2=CacheConfig(64 * 1024, 128, 8),
    )
    return base.replace(**overrides) if overrides else base


def pascal_config(**overrides) -> GPUConfig:
    """GTX1080Ti-shaped scaled configuration (paper Table II, right column).

    Twice the SMs of the Fermi preset and four schedulers per SM, so each
    scheduler sees roughly a quarter of the warps a Fermi scheduler does —
    the property driving the Section VI-D discussion.
    """
    base = GPUConfig(
        name="pascal-scaled",
        num_sms=4,
        max_warps_per_sm=16,
        max_ctas_per_sm=8,
        num_schedulers_per_sm=4,
        l1_hit_latency=22,
        l2_hit_latency=50,
        dram_latency=160,
        num_l2_banks=8,
        l1d=CacheConfig(48 * 1024, 128, 6),
        l2=CacheConfig(128 * 1024, 128, 16),
    )
    return base.replace(**overrides) if overrides else base


#: Preset name → builder, consumed by :meth:`GPUConfig.preset`.
_PRESET_BUILDERS = {"fermi": fermi_config, "pascal": pascal_config}
