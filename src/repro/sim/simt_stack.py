"""Stack-based SIMT reconvergence (pre-Volta semantics).

Each warp owns a stack of ``(pc, rpc, active_mask)`` entries.  The top of
stack (TOS) determines the next PC and which lanes execute.  On a divergent
conditional branch the TOS becomes the reconvergence entry (its PC is set
to the branch's immediate post-dominator) and one entry per divergent path
is pushed.  When a pushed entry's PC reaches its RPC it is popped, lanes
re-merge, and execution resumes below.

This faithfully reproduces the behaviour the paper depends on: lanes that
exit a spin loop *wait at the reconvergence point* for their warp-mates
still spinning, which is why intra-warp lock handoff must be written with
the "done flag" pattern of Figure 1a (otherwise: SIMT-induced deadlock,
Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.isa.program import RECONVERGE_AT_EXIT

#: RPC value for the base stack entry: only "reconverges" at thread exit.
_NO_RPC = -1


@dataclass
class StackEntry:
    pc: int
    rpc: int
    mask: np.ndarray  # bool[warp_size]

    def clone(self) -> "StackEntry":
        return StackEntry(self.pc, self.rpc, self.mask.copy())


class SIMTStack:
    """Per-warp reconvergence stack."""

    def __init__(self, warp_size: int, start_pc: int = 0,
                 initial_mask: Optional[np.ndarray] = None) -> None:
        self.warp_size = warp_size
        if initial_mask is None:
            initial_mask = np.ones(warp_size, dtype=bool)
        else:
            initial_mask = np.asarray(initial_mask, dtype=bool).copy()
        self._stack: List[StackEntry] = [
            StackEntry(start_pc, _NO_RPC, initial_mask)
        ]

    # ------------------------------------------------------------------
    # Queries

    @property
    def finished(self) -> bool:
        return not self._stack

    @property
    def pc(self) -> int:
        return self._stack[-1].pc

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean lane mask of the TOS entry (do not mutate)."""
        return self._stack[-1].mask

    @property
    def depth(self) -> int:
        return len(self._stack)

    def live_mask(self) -> np.ndarray:
        """Union of all entries' masks: lanes that have not exited."""
        live = np.zeros(self.warp_size, dtype=bool)
        for entry in self._stack:
            np.logical_or(live, entry.mask, out=live)
        return live

    def entries(self) -> List[StackEntry]:
        """Copy of the stack, bottom first (for inspection/tests)."""
        return [e.clone() for e in self._stack]

    # ------------------------------------------------------------------
    # Updates

    def advance(self) -> None:
        """Move the TOS past a non-branch instruction (pc += 1)."""
        top = self._stack[-1]
        top.pc += 1
        self._maybe_pop()

    def branch(self, taken_mask: np.ndarray, target: int, rpc: int) -> bool:
        """Apply a (possibly divergent) conditional branch at the TOS.

        Args:
            taken_mask: lanes (within the TOS mask) that take the branch.
            target: branch target instruction index.
            rpc: reconvergence index from the program analysis
                (``RECONVERGE_AT_EXIT`` maps to "never", handled by exit).

        Returns:
            True when the branch diverged (both paths non-empty).
        """
        top = self._stack[-1]
        active = top.mask
        taken = np.logical_and(taken_mask, active)
        fall = np.logical_and(~taken_mask, active)
        n_taken = int(taken.sum())
        n_fall = int(fall.sum())
        fall_pc = top.pc + 1

        if n_taken and not n_fall:
            top.pc = target
            self._maybe_pop()
            return False
        if n_fall and not n_taken:
            top.pc = fall_pc
            self._maybe_pop()
            return False

        # Divergence: TOS becomes the reconvergence entry.
        if rpc == RECONVERGE_AT_EXIT:
            # Paths only meet at exit; model as reconverging "nowhere":
            # the reconvergence entry keeps the full mask but is only
            # reached when both children exit (exit() clears their lanes).
            reconv_pc = _NO_RPC
        else:
            reconv_pc = rpc
        top.pc = reconv_pc
        # Push fall-through first, taken on top (taken path runs first).
        # Lane groups already sitting at the reconvergence point are not
        # pushed; they simply wait in the reconvergence entry.
        if reconv_pc == _NO_RPC or fall_pc != reconv_pc:
            self._stack.append(StackEntry(fall_pc, reconv_pc, fall))
        if reconv_pc == _NO_RPC or target != reconv_pc:
            self._stack.append(StackEntry(target, reconv_pc, taken))
        self._maybe_pop()
        return True

    def uniform_jump(self, target: int) -> None:
        """Unconditional branch of the whole TOS entry."""
        self._stack[-1].pc = target
        self._maybe_pop()

    def exit_lanes(self, mask: np.ndarray) -> None:
        """Retire ``mask`` lanes (an ``exit`` executed under that mask)."""
        for entry in self._stack:
            entry.mask = np.logical_and(entry.mask, ~mask)
        self._stack = [e for e in self._stack if e.mask.any()]
        self._maybe_pop()

    # ------------------------------------------------------------------

    def _maybe_pop(self) -> None:
        """Pop entries whose PC reached their reconvergence point."""
        while self._stack:
            top = self._stack[-1]
            if top.rpc != _NO_RPC and top.pc == top.rpc:
                self._stack.pop()
                continue
            if not top.mask.any():
                self._stack.pop()
                continue
            break

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [
            f"(pc={e.pc}, rpc={e.rpc}, n={int(e.mask.sum())})"
            for e in self._stack
        ]
        return f"SIMTStack[{' '.join(parts)}]"
