"""Cycle-level SIMT GPU simulator substrate.

The pipeline abstraction is deliberately GPGPU-Sim-shaped: per-SM warp
schedulers issue at most one instruction per scheduler per cycle from
ready warps; a per-warp scoreboard enforces data hazards; a stack-based
SIMT reconvergence unit handles divergence; loads/stores/atomics flow
through a coalescer into L1/L2/DRAM timing models.

Import submodules directly (``repro.sim.gpu``, ``repro.sim.config``,
``repro.sim.schedulers``); this package init stays import-light because
``repro.core`` depends on ``repro.sim.config`` while ``repro.sim.sm``
depends on ``repro.core`` — eager re-exports here would close an import
cycle.
"""
