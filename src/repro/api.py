"""Stable simulation facade: one entry point for every way to run a kernel.

Every consumer of the simulator — the CLI, the experiment harness, the
lab runner, the fuzzer, the benchmarks — wires a GPU the same way, so
that wiring lives here exactly once.  :func:`simulate` accepts any of the
four things callers naturally hold:

* a kernel **name** (``"ht"``) — built fresh via :func:`repro.kernels.build`
  with ``params`` forwarded to the builder;
* a built :class:`~repro.kernels.base.Workload` — validated after the run
  and guarded against accidental reuse;
* a bare :class:`~repro.sim.gpu.KernelLaunch`;
* a bare :class:`~repro.isa.program.Program` — wrapped in a single-warp
  launch (one CTA of one warp), the idiom unit tests use.

Quickstart::

    from repro.api import simulate
    from repro.sim.config import GPUConfig

    result = simulate("ht", config=GPUConfig.preset("fermi", bows="adaptive"))
    print(result.stats.summary())
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.isa.program import Program
from repro.kernels import build as build_workload
from repro.kernels.base import Workload, WorkloadReuseError
from repro.memory.memsys import GlobalMemory
from repro.sim.checkpoint import SimCheckpoint
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, KernelLaunch, SimResult, Simulation
# The unified submission API lives in repro.submit; re-exported here so
# `from repro.api import submit` is the one import every tool needs.
from repro.submit import (RunFailedError, RunHandle, SubmitBatch, submit,
                          submit_many)

#: What :func:`simulate` accepts as its target.
SimTarget = Union[str, Workload, KernelLaunch, Program]

#: How :func:`simulate` accepts watchdog overrides.
WatchdogSpec = Union[None, bool, int, Dict[str, int]]


def _resolve_config(config: Union[GPUConfig, str, None],
                    scheduler: Optional[str],
                    watchdog: WatchdogSpec) -> GPUConfig:
    if config is None:
        config = GPUConfig.preset("fermi")
    elif isinstance(config, str):
        config = GPUConfig.preset(config)
    elif not isinstance(config, GPUConfig):
        raise TypeError(f"cannot interpret config={config!r}")
    if scheduler is not None:
        config = config.replace(scheduler=scheduler)
    if watchdog is None:
        return config
    if watchdog is False:
        return config.replace(no_progress_window=0)
    if watchdog is True:
        return config  # keep the preset's watchdog settings
    if isinstance(watchdog, int):
        return config.replace(no_progress_window=watchdog)
    if isinstance(watchdog, dict):
        return config.replace(**watchdog)
    raise TypeError(f"cannot interpret watchdog={watchdog!r}")


def simulate(
    target: SimTarget,
    *,
    config: Union[GPUConfig, str, None] = None,
    scheduler: Optional[str] = None,
    params: Optional[Dict[str, int]] = None,
    memory: Optional[GlobalMemory] = None,
    tracer=None,
    watchdog: WatchdogSpec = None,
    engine: str = "fast",
    validate: bool = True,
    obs=None,
    sanitize=None,
    checkpoint_every=None,
    checkpoint_path=None,
) -> SimResult:
    """Simulate ``target`` and return its :class:`SimResult`.

    Args:
        target: a kernel name, :class:`Workload`, :class:`KernelLaunch`,
            or :class:`Program` (run as one warp).
        config: a :class:`GPUConfig`, a preset name (``"fermi"`` /
            ``"pascal"``), or None for the Fermi preset.  Build richer
            configurations with :meth:`GPUConfig.preset`.
        scheduler: override the config's base policy
            (``lrr``/``gto``/``cawa``).
        params: kernel parameters.  For a named target they go to the
            workload builder; for a launch/program target they become
            the launch's ``ld.param`` values.
        memory: initial global-memory image for launch/program targets
            (workloads carry their own).
        tracer: optional :class:`repro.sim.trace.Tracer` recording issues.
        watchdog: forward-progress watchdog control — ``False``/``0``
            disables it, an integer sets ``no_progress_window``, a dict
            overrides any watchdog-related config fields verbatim.
        engine: ``"fast"`` (default) or ``"reference"``; both produce
            bitwise-identical statistics (see :mod:`repro.sim.sm`).
        validate: for workload targets, run the workload's functional
            validation after simulation (skipped under ``magic_locks``,
            whose results are intentionally not meaningful).
        obs: observability collection — ``True`` for the defaults, an
            :class:`repro.obs.ObsConfig` to tune, or a prepared
            :class:`repro.obs.Observability`.  The collected event bus
            and time series come back on ``result.obs``; collection
            never changes simulated behavior (statistics stay bitwise
            identical).
        sanitize: dynamic synchronization sanitizer — ``True`` for the
            defaults, a :class:`repro.analysis.SanitizerConfig` to tune,
            or a prepared :class:`repro.analysis.Sanitizer`.  Findings
            come back on ``result.sanitizer`` (see ``docs/analysis.md``);
            like obs, it never changes simulated behavior.
        checkpoint_every: autocheckpoint the complete machine state to
            ``checkpoint_path`` every N cycles (``True`` uses
            ``config.progress_epoch``), so a run killed or timed out by
            the watchdog can be continued with :func:`resume_simulation`
            instead of rerun.  Checkpointing never changes simulated
            behavior — a resumed run is bitwise-identical to an
            uninterrupted one (see ``docs/robustness.md``).
        checkpoint_path: where autocheckpoints go (required when
            ``checkpoint_every`` is set).

    Returns:
        The :class:`SimResult`, whose ``stats.summary()`` is the stable
        reporting schema (see :class:`repro.metrics.stats.SimStats`).
    """
    config = _resolve_config(config, scheduler, watchdog)

    if isinstance(target, str):
        target = build_workload(target, **(params or {}))
        params = None

    if isinstance(target, Workload):
        if memory is not None:
            raise ValueError(
                "workload targets carry their own memory image; "
                "the memory= argument is only for launch/program targets"
            )
        if params is not None:
            raise ValueError(
                "params= applies when building a kernel by name or "
                "launching a bare program; this workload is already built"
            )
        workload = target
        if workload.consumed:
            raise WorkloadReuseError(
                f"workload {workload.name!r} has already been executed and "
                f"its memory image mutated; build a fresh one with "
                f"repro.kernels.build({workload.name!r}, ...) for every run"
            )
        workload.consumed = True
        gpu = GPU(config, memory=workload.memory, tracer=tracer,
                  engine=engine, obs=obs, sanitizer=sanitize)
        result = gpu.begin(workload.launch).run(
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        if validate and not config.magic_locks:
            workload.validate(result.memory)
        return result

    if isinstance(target, Program):
        target = KernelLaunch(
            program=target,
            grid_dim=1,
            block_dim=config.warp_size,
            params=dict(params or {}),
        )
    elif params is not None:
        raise ValueError(
            "params= is ignored for a prepared KernelLaunch; set "
            "launch.params instead"
        )

    if not isinstance(target, KernelLaunch):
        raise TypeError(f"cannot simulate target {target!r}")

    gpu = GPU(config, memory=memory, tracer=tracer, engine=engine, obs=obs,
              sanitizer=sanitize)
    return gpu.begin(target).run(
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def resume_simulation(
    checkpoint,
    *,
    check_fingerprint: bool = True,
    checkpoint_every=None,
    checkpoint_path=None,
    extend_max_cycles: Optional[int] = None,
) -> SimResult:
    """Continue a checkpointed simulation to completion.

    Args:
        checkpoint: a path to a ``*.ckpt`` file, a loaded
            :class:`~repro.sim.checkpoint.SimCheckpoint`, or a live
            :class:`~repro.sim.gpu.Simulation`.
        check_fingerprint: refuse checkpoints captured under different
            simulator code (pass ``False`` to override — the resumed
            run is then *not* guaranteed bitwise-faithful).
        checkpoint_every / checkpoint_path: keep autocheckpointing the
            continued run (same semantics as :func:`simulate`).
        extend_max_cycles: raise the cycle budget before resuming — the
            remedy for a run that hit :class:`SimulationTimeout`; only
            the watchdog's budget check reads this, so the continued
            execution stays cycle-exact.

    Returns:
        The completed :class:`SimResult`.  Functional validation is the
        caller's business (the lab layer rebuilds the deterministic
        workload and validates against the result's memory image).
    """
    if isinstance(checkpoint, Simulation):
        sim = checkpoint
    else:
        if not isinstance(checkpoint, SimCheckpoint):
            checkpoint = SimCheckpoint.load(
                checkpoint, check_fingerprint=check_fingerprint
            )
        sim = checkpoint.restore()
    if extend_max_cycles is not None:
        if extend_max_cycles < sim.config.max_cycles:
            raise ValueError(
                f"extend_max_cycles={extend_max_cycles} is below the "
                f"checkpoint's budget of {sim.config.max_cycles}"
            )
        sim.config = sim.config.replace(max_cycles=extend_max_cycles)
    return sim.run(
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
