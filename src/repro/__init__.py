"""repro — reproduction of "Warp Scheduling for Fine-Grained Synchronization".

ElTantawy & Aamodt, HPCA 2018: BOWS (Back-Off Warp Spinning) + DDOS
(Dynamic Detection Of Spinning), reproduced on a from-scratch cycle-level
SIMT GPU simulator.

Quickstart::

    from repro import GPUConfig, simulate

    baseline = simulate("ht", config=GPUConfig.preset("fermi"))
    bows = simulate("ht", config=GPUConfig.preset("fermi", bows=True))
    print(baseline.cycles / bows.cycles)  # BOWS speedup

:func:`repro.api.simulate` is the single simulation entry point — it also
accepts a built :class:`Workload`, a :class:`KernelLaunch`, or a bare
:class:`Program`, and selects the execution engine (``fast`` by default;
``reference`` is the bitwise-equivalent seed implementation).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.analysis import (
    Diagnostic,
    LintReport,
    Sanitizer,
    SanitizerConfig,
    lint_all,
    lint_kernel,
    lint_program,
)
from repro.api import simulate
from repro.core import hardware_cost
from repro.core.adaptive import AdaptiveDelayController
from repro.core.bows import BOWSUnit
from repro.core.ddos import DDOSEngine, hash_modulo, hash_xor
from repro.harness.runner import make_config
from repro.isa import AssemblyError, Program, assemble
from repro.kernels import (
    SYNC_FREE_KERNELS,
    SYNC_KERNELS,
    Workload,
    WorkloadError,
    build as build_workload,
    kernel_names,
)
from repro.memory.memsys import GlobalMemory
from repro.sim.config import (
    BOWSConfig,
    DDOSConfig,
    GPUConfig,
    PerturbConfig,
    fermi_config,
    pascal_config,
)
from repro.sim.gpu import (
    GPU,
    KernelLaunch,
    SimResult,
)
from repro.sim.progress import (
    HangReport,
    SimulationDeadlock,
    SimulationHang,
    SimulationLivelock,
    SimulationTimeout,
)

__version__ = "1.0.0"

__all__ = [
    "GPU",
    "AdaptiveDelayController",
    "AssemblyError",
    "BOWSConfig",
    "BOWSUnit",
    "DDOSConfig",
    "DDOSEngine",
    "Diagnostic",
    "GPUConfig",
    "GlobalMemory",
    "HangReport",
    "KernelLaunch",
    "LintReport",
    "PerturbConfig",
    "Program",
    "Sanitizer",
    "SanitizerConfig",
    "SYNC_FREE_KERNELS",
    "SYNC_KERNELS",
    "SimResult",
    "SimulationDeadlock",
    "SimulationHang",
    "SimulationLivelock",
    "SimulationTimeout",
    "Workload",
    "WorkloadError",
    "assemble",
    "build_workload",
    "fermi_config",
    "hardware_cost",
    "hash_modulo",
    "hash_xor",
    "kernel_names",
    "lint_all",
    "lint_kernel",
    "lint_program",
    "make_config",
    "pascal_config",
    "simulate",
    "__version__",
]
