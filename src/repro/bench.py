"""Hot-loop benchmark: fast-engine speedup over the reference engine.

Runs a fixed kernel matrix — ``ht``, ``nw1``, ``atm``, each with the
baseline GTO machine and with adaptive BOWS — once per engine through
the :mod:`repro.lab` runner (serial, uncached), and reports:

* simulated **cycles per wall-clock second** for each engine (the hot
  loop's figure of merit — cycle counts are identical by construction,
  so the ratio is exactly the wall-time speedup);
* the **per-phase breakdown** (workload build / simulate / score) from
  the lab's :class:`~repro.lab.results.RunResult` phases;
* **peak RSS** of the benchmarking process;
* a per-entry **equivalence check**: both engines' full
  ``stats.summary()`` dicts must be identical, else the benchmark
  fails — a fast engine that changes simulated results is a bug, not a
  speedup.

Each engine runs ``reps`` times per entry and the *minimum* wall time is
kept: wall-clock minima are the standard noise filter for throughput
benchmarks on shared machines (the minimum is the run with the least
interference).

The JSON written to ``BENCH_hotloop.json`` is versioned
(``schema_version``) and committed to the repository; CI's bench-smoke
job and ``benchmarks/perf/test_hotloop_perf.py`` compare fresh runs
against it.  Regenerate with::

    PYTHONPATH=src python -m repro bench --out BENCH_hotloop.json
"""

from __future__ import annotations

import json
import platform
import resource
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.lab.results import RunResult
from repro.lab.runner import Runner
from repro.lab.spec import RunSpec
from repro.metrics.stats import SUMMARY_SCHEMA_VERSION
from repro.sim.config import GPUConfig
from repro.sim.sm import ENGINES
from repro.submit import submit_many

#: Version of the BENCH_hotloop.json layout.
BENCH_SCHEMA_VERSION = 1

#: The fixed benchmark matrix: (kernel, builder params).  Empty params
#: mean the kernel builder's defaults — full-size workloads that keep a
#: single entry under ~2s of reference-engine wall time.
FULL_MATRIX: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("ht", {}),
    ("nw1", {}),
    ("atm", {}),
)

#: Shrunk matrix for CI smoke runs (same kernels, quick-scale shapes).
QUICK_MATRIX: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("ht", {"n_threads": 256, "n_buckets": 8, "items_per_thread": 1,
            "block_dim": 128}),
    ("nw1", {"n_threads": 256, "n_cols": 32, "cell_work": 8,
             "block_dim": 128}),
    ("atm", {"n_threads": 256, "n_accounts": 32, "rounds": 1,
             "block_dim": 128}),
)

#: The two machine configurations benchmarked per kernel.
MODES: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("baseline", {}),
    ("bows", {"bows": "adaptive"}),
)


class BenchError(RuntimeError):
    """The benchmark could not produce a valid record."""


def _peak_rss_mb() -> float:
    """Peak resident set of this process in MiB (Linux: ru_maxrss is KiB)."""
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss_kb /= 1024.0
    return round(rss_kb / 1024.0, 1)


def _best(results: List[RunResult]) -> RunResult:
    """The rep with the smallest simulate-phase wall time."""
    return min(results, key=lambda r: r.phases["simulate_s"])


def _engine_record(result: RunResult) -> Dict[str, Any]:
    simulate_s = result.phases["simulate_s"]
    return {
        "wall_s": round(result.elapsed_s, 4),
        "simulate_s": round(simulate_s, 4),
        "cycles_per_sec": round(result.cycles / simulate_s, 1),
        "phases": {k: round(v, 4) for k, v in result.phases.items()},
    }


def run_benchmark(
    quick: bool = False,
    reps: int = 3,
    progress=None,
    matrix: Optional[Tuple[Tuple[str, Dict[str, int]], ...]] = None,
    server=None,
) -> Dict[str, Any]:
    """Run the matrix and return the BENCH_hotloop.json payload.

    ``matrix`` restricts the run to a subset of (kernel, params) pairs
    (the perf smoke test measures just ``ht``); default is the full or
    quick matrix per ``quick``.

    ``server`` routes the runs through a ``repro serve`` daemon instead
    of an in-process serial runner.  Note the daemon dedupes identical
    specs and the rep label is not part of the content hash, so the
    reps of one entry collapse to a single execution — fine for smoke
    (the client path is what's being exercised), not for careful wall
    timing, which wants the default in-process path.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if matrix is None:
        matrix = QUICK_MATRIX if quick else FULL_MATRIX
    # Serial + uncached on purpose: the benchmark measures wall time, so
    # no parallel interference and no cache short-circuits.
    runner = (None if server is not None
              else Runner(workers=1, mode="serial", cache=None, retries=0))

    def _run_reps(specs: List[RunSpec]) -> List[RunResult]:
        if server is not None:
            batch = submit_many(specs, backend="server", server=server,
                                client_name="bench")
        else:
            batch = submit_many(specs, runner=runner)
        return batch.results()

    entries: List[Dict[str, Any]] = []
    speedups: List[float] = []
    for kernel, params in matrix:
        for mode, config_kwargs in MODES:
            config = GPUConfig.preset("fermi", scheduler="gto",
                                      **config_kwargs)
            per_engine: Dict[str, RunResult] = {}
            for engine in ENGINES:
                # validate=False: functional validation costs the same
                # on both engines and is not part of the hot loop.
                specs = [
                    RunSpec(kernel=kernel, config=config, params=params,
                            validate=False, engine=engine,
                            label=f"{kernel}/{mode}/{engine}/{rep}")
                    for rep in range(reps)
                ]
                per_engine[engine] = _best(_run_reps(specs))
            fast, ref = per_engine["fast"], per_engine["reference"]
            if fast.stats.summary() != ref.stats.summary():
                raise BenchError(
                    f"{kernel}/{mode}: fast and reference engines "
                    f"disagree on simulated results — refusing to "
                    f"record a speedup for wrong answers"
                )
            speedup = (ref.phases["simulate_s"]
                       / fast.phases["simulate_s"])
            speedups.append(speedup)
            entries.append({
                "kernel": kernel,
                "mode": mode,
                "params": dict(params),
                "cycles": fast.cycles,
                "reference": _engine_record(ref),
                "fast": _engine_record(fast),
                "speedup": round(speedup, 3),
                "equivalent": True,
            })
            if progress is not None:
                progress(f"{kernel:4s} {mode:8s} cycles={fast.cycles:>8d} "
                         f"ref={ref.phases['simulate_s']:.3f}s "
                         f"fast={fast.phases['simulate_s']:.3f}s "
                         f"speedup={speedup:.2f}x")

    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "stats_schema_version": SUMMARY_SCHEMA_VERSION,
        "matrix": "quick" if quick else "full",
        "reps": reps,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "entries": entries,
        "summary": {
            "min_speedup": round(min(speedups), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_speedup": round(geomean, 3),
            "peak_rss_mb": _peak_rss_mb(),
        },
    }


def write_benchmark(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_benchmark(path: str) -> Optional[Dict[str, Any]]:
    """Load a committed benchmark record; None if missing/incompatible."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        return None
    return payload
