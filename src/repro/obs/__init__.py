"""repro.obs — observability for the warp-scheduling simulator.

Three pillars (see ``docs/observability.md``):

* **Event bus** (:mod:`repro.obs.events`, :mod:`repro.obs.bus`) —
  typed scheduler/sync decision events (DDOS confidence transitions,
  BOWS back-off episodes, lock outcomes, barrier episodes, hang
  suspicion), emitted through pre-bound sinks so a run without
  observability pays nothing.
* **Interval sampler** (:mod:`repro.obs.sampler`) — Figure-11-style
  time series of delta counters (IPC, SIMD efficiency, backed-off
  fraction, lock fail rate, SIB issue rate, memory transactions).
* **Profile reports** (:mod:`repro.obs.profile`, ``repro profile``) —
  per-PC hot spots, per-warp spin timelines, DDOS detection latency,
  rendered as markdown or JSON.

Entry point::

    from repro.api import simulate
    result = simulate("ht", scheduler="bows", obs=True)
    result.obs.series.to_csv("ht_bows.csv")
    for event in result.obs.events("sib_detected"):
        print(event)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.obs.bus import EventBus, null_emitter
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_TYPES,
    AdaptiveDelayUpdate,
    BackoffEnter,
    BackoffExit,
    BarrierArrive,
    BarrierRelease,
    CheckpointSaved,
    CorruptEntryQuarantined,
    HangSuspected,
    LockAcquireFail,
    LockAcquireSuccess,
    RunResumed,
    SanitizerFinding,
    SIBCleared,
    SIBDetected,
    WorkerLost,
    event_from_dict,
    event_to_dict,
    format_event,
)
from repro.obs.sampler import SERIES_COLUMNS, IntervalSampler, TimeSeries

__all__ = [
    "ObsConfig",
    "Observability",
    "as_observability",
    "EventBus",
    "null_emitter",
    "EVENT_KINDS",
    "EVENT_TYPES",
    "SIBDetected",
    "SIBCleared",
    "BackoffEnter",
    "BackoffExit",
    "AdaptiveDelayUpdate",
    "LockAcquireSuccess",
    "LockAcquireFail",
    "BarrierArrive",
    "BarrierRelease",
    "HangSuspected",
    "SanitizerFinding",
    "CheckpointSaved",
    "RunResumed",
    "CorruptEntryQuarantined",
    "WorkerLost",
    "event_to_dict",
    "event_from_dict",
    "format_event",
    "IntervalSampler",
    "TimeSeries",
    "SERIES_COLUMNS",
]


@dataclass(frozen=True)
class ObsConfig:
    """What to collect.  Frozen so it can ride in hashed RunSpecs.

    Attributes:
        events: collect decision events on an :class:`EventBus`.
        event_capacity: bus ring-log size (evictions are counted).
        sample_interval: cycles per time-series row; 0 disables the
            sampler.
    """

    events: bool = True
    event_capacity: int = 200_000
    sample_interval: int = 1_000

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "event_capacity": self.event_capacity,
            "sample_interval": self.sample_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsConfig":
        return cls(**data)


class Observability:
    """One run's worth of collected events + time series.

    Pass to :func:`repro.api.simulate` via ``obs=`` (or just
    ``obs=True``); the GPU wires the bus into every producer and polls
    the sampler from its cycle loop.  After the run, the same object
    hangs off ``SimResult.obs``.
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.bus: Optional[EventBus] = (
            EventBus(self.config.event_capacity) if self.config.events else None
        )
        self.sampler: Optional[IntervalSampler] = None

    # -- GPU lifecycle -------------------------------------------------

    def begin_run(self, stats, memsys_stats,
                  warp_size: int = 32) -> Optional[IntervalSampler]:
        """Bind the sampler to a run's live counters (GPU.launch)."""
        if self.config.sample_interval > 0:
            self.sampler = IntervalSampler(
                stats, memsys_stats, self.config.sample_interval,
                warp_size=warp_size,
            )
        return self.sampler

    def end_run(self, now: int) -> None:
        """Flush the final partial sampling interval (GPU.launch)."""
        if self.sampler is not None:
            self.sampler.finish(now)

    # -- Access --------------------------------------------------------

    @property
    def series(self) -> Optional[TimeSeries]:
        return self.sampler.series if self.sampler is not None else None

    def events(self, kind: Optional[str] = None) -> List[Any]:
        """Retained events, optionally filtered by kind string."""
        if self.bus is None:
            return []
        return self.bus.events(kind)

    def event_counts(self) -> Dict[str, int]:
        """Per-kind event totals (survive ring-log eviction)."""
        return dict(self.bus.counts) if self.bus is not None else {}

    def to_dict(self, max_events: Optional[int] = None) -> Dict[str, Any]:
        """JSON-ready payload (lab results, manifests, reports).

        ``max_events`` truncates the embedded event log to the last N
        (counts still reflect the full run).
        """
        payload: Dict[str, Any] = {"config": self.config.to_dict()}
        if self.bus is not None:
            log = self.bus.tail(max_events) if max_events else list(self.bus)
            payload["events"] = {
                "counts": dict(self.bus.counts),
                "total": self.bus.total_events,
                "dropped": self.bus.dropped,
                "log": [event_to_dict(e) for e in log],
            }
        if self.series is not None:
            payload["series"] = self.series.to_dict()
        return payload


def as_observability(
    obs: Union[None, bool, ObsConfig, "Observability"],
) -> Optional["Observability"]:
    """Coerce the ``obs=`` argument accepted by the public API."""
    if obs is None or obs is False:
        return None
    if obs is True:
        return Observability()
    if isinstance(obs, ObsConfig):
        return Observability(obs)
    if isinstance(obs, Observability):
        return obs
    raise TypeError(
        "obs must be None, bool, ObsConfig, or Observability; "
        f"got {type(obs).__name__}"
    )
