"""Profile reports: turn one run's observability data into an answer.

:func:`build_profile` digests a :class:`~repro.sim.gpu.SimResult` (with
observability attached) plus an optional issue :class:`Tracer` into a
:class:`ProfileReport`:

* **hot spots** — per-PC issue counts from the tracer window, split
  into sync overhead vs useful work via the program's ``!sync`` roles,
  with average active lanes and the backed-off share;
* **warp spin timelines** — each warp's back-off episodes
  reconstructed from ``backoff_enter``/``backoff_exit`` event pairs;
* **DDOS detection latency** — per branch, the cycle its SIB-PT
  confidence first crossed the threshold, as an absolute cycle and as
  a fraction of the run (the paper's claim is that true SIBs are
  flagged early);
* the run's stat summary, event counts, and the sampled time series.

Reports render as JSON (stable schema, ``PROFILE_SCHEMA_VERSION``) or
markdown (``repro profile``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Version of the :meth:`ProfileReport.to_dict` schema.  Bump on any
#: key add/remove/rename — CI artifacts and tests key on it.
PROFILE_SCHEMA_VERSION = 1

#: Top-level keys of :meth:`ProfileReport.to_dict`, in emission order.
PROFILE_KEYS = (
    "schema_version",
    "workload",
    "scheduler",
    "engine",
    "cycles",
    "summary",
    "hotspots",
    "warp_timelines",
    "ddos",
    "events",
    "series",
)


@dataclass
class ProfileReport:
    """Digested observability for one run; see :func:`build_profile`."""

    workload: str
    scheduler: str
    engine: str
    cycles: int
    summary: Dict[str, Any]
    hotspots: List[Dict[str, Any]] = field(default_factory=list)
    warp_timelines: List[Dict[str, Any]] = field(default_factory=list)
    ddos: List[Dict[str, Any]] = field(default_factory=list)
    events: Dict[str, Any] = field(default_factory=dict)
    series: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "workload": self.workload,
            "scheduler": self.scheduler,
            "engine": self.engine,
            "cycles": self.cycles,
            "summary": self.summary,
            "hotspots": self.hotspots,
            "warp_timelines": self.warp_timelines,
            "ddos": self.ddos,
            "events": self.events,
            "series": self.series,
        }

    def to_json(self, path=None, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def to_markdown(self) -> str:
        """Human-facing report (``repro profile`` default output)."""
        s = self.summary
        lines = [
            f"# Profile: {self.workload} ({self.scheduler}, {self.engine} engine)",
            "",
            f"- cycles: **{self.cycles}**  ·  IPC: **{s.get('ipc', 0)}**  ·  "
            f"SIMD efficiency: **{s.get('simd_efficiency', 0)}**",
            f"- lock acquires: {s.get('lock_success', 0)} ok / "
            f"{s.get('inter_warp_fail', 0)} inter-warp fail / "
            f"{s.get('intra_warp_fail', 0)} intra-warp fail",
            f"- backed-off fraction (cycle-weighted): "
            f"{s.get('backed_off_fraction', 0)}",
            "",
        ]
        if self.hotspots:
            lines += [
                "## Hot spots (tracer window)",
                "",
                "| pc | opcode | issues | sync | backed-off | avg lanes |",
                "|---:|:-------|-------:|-----:|-----------:|----------:|",
            ]
            for h in self.hotspots:
                lines.append(
                    f"| {h['pc']} | {h['opcode']} | {h['issues']} "
                    f"| {'yes' if h['sync'] else ''} | {h['backed_off_issues']} "
                    f"| {h['avg_lanes']} |"
                )
            lines.append("")
        if self.ddos:
            lines += [
                "## DDOS detection",
                "",
                "| branch pc | first flagged (cycle) | % of run | cleared |",
                "|----------:|----------------------:|---------:|--------:|",
            ]
            for d in self.ddos:
                lines.append(
                    f"| {d['branch']} | {d['first_flagged']} "
                    f"| {100 * d['detect_fraction']:.1f}% "
                    f"| {d['cleared']} |"
                )
            lines.append("")
        if self.warp_timelines:
            lines += ["## Warp back-off timelines", ""]
            for w in self.warp_timelines:
                spans = ", ".join(
                    f"[{a}..{b}]" for a, b in w["intervals"][:8]
                )
                extra = (
                    f" (+{len(w['intervals']) - 8} more)"
                    if len(w["intervals"]) > 8 else ""
                )
                lines.append(
                    f"- SM{w['sm_id']} warp {w['warp_slot']:02d} "
                    f"(cta {w['cta_id']}): {w['episodes']} episodes, "
                    f"{w['backed_off_cycles']} cycles backed off — "
                    f"{spans}{extra}"
                )
            lines.append("")
        counts = self.events.get("counts", {})
        if counts:
            lines += ["## Event counts", ""]
            for kind in sorted(counts):
                lines.append(f"- `{kind}`: {counts[kind]}")
            dropped = self.events.get("dropped", 0)
            if dropped:
                lines.append(f"- (ring log dropped {dropped} oldest events)")
            lines.append("")
        if self.series and self.series.get("rows"):
            rows = self.series["rows"]
            lines += [
                f"## Time series ({len(rows)} intervals of "
                f"{self.series['interval']} cycles)",
                "",
                "| cycle | ipc | simd eff | backed-off | lock fail | sib rate |",
                "|------:|----:|---------:|-----------:|----------:|---------:|",
            ]
            for row in rows:
                lines.append(
                    f"| {row['cycle']} | {row['ipc']} "
                    f"| {row['simd_efficiency']} "
                    f"| {row['backed_off_fraction']} "
                    f"| {row['lock_fail_rate']} | {row['sib_issue_rate']} |"
                )
            lines.append("")
        return "\n".join(lines)


def _build_hotspots(tracer, program) -> List[Dict[str, Any]]:
    if tracer is None or len(tracer) == 0:
        return []
    per_pc: Dict[int, Dict[str, int]] = {}
    for rec in tracer.records():
        agg = per_pc.setdefault(
            rec.pc, {"issues": 0, "lanes": 0, "backed_off": 0}
        )
        agg["issues"] += 1
        agg["lanes"] += rec.active_lanes
        if rec.backed_off:
            agg["backed_off"] += 1
    instructions = program.instructions
    hotspots = []
    for pc, agg in sorted(
        per_pc.items(), key=lambda item: -item[1]["issues"]
    ):
        instr = instructions[pc] if 0 <= pc < len(instructions) else None
        hotspots.append({
            "pc": pc,
            "opcode": instr.opcode.value if instr is not None else "?",
            "sync": bool(instr is not None and instr.has_role("sync")),
            "issues": agg["issues"],
            "backed_off_issues": agg["backed_off"],
            "avg_lanes": round(agg["lanes"] / agg["issues"], 2),
        })
    return hotspots


def _build_warp_timelines(obs, end_cycle: int) -> List[Dict[str, Any]]:
    if obs is None or obs.bus is None:
        return []
    open_since: Dict[tuple, int] = {}
    timelines: Dict[tuple, Dict[str, Any]] = {}
    for event in obs.bus:
        if event.kind == "backoff_enter":
            key = (event.sm_id, event.warp_slot)
            open_since[key] = event.cycle
            timelines.setdefault(key, {
                "sm_id": event.sm_id,
                "warp_slot": event.warp_slot,
                "cta_id": event.cta_id,
                "intervals": [],
            })
        elif event.kind == "backoff_exit":
            key = (event.sm_id, event.warp_slot)
            start = open_since.pop(key, None)
            if start is None:
                continue  # enter evicted from the ring log
            timelines[key]["intervals"].append([start, event.cycle])
    for key, start in open_since.items():
        timelines[key]["intervals"].append([start, end_cycle])
    result = []
    for key in sorted(timelines):
        entry = timelines[key]
        entry["episodes"] = len(entry["intervals"])
        entry["backed_off_cycles"] = sum(
            b - a for a, b in entry["intervals"]
        )
        result.append(entry)
    return result


def _build_ddos(obs, total_cycles: int) -> List[Dict[str, Any]]:
    if obs is None or obs.bus is None:
        return []
    first_flagged: Dict[int, int] = {}
    cleared: Dict[int, int] = {}
    for event in obs.bus:
        if event.kind == "sib_detected":
            first_flagged.setdefault(event.branch, event.cycle)
        elif event.kind == "sib_cleared":
            cleared[event.branch] = cleared.get(event.branch, 0) + 1
    return [
        {
            "branch": branch,
            "first_flagged": cycle,
            "detect_fraction": round(
                cycle / total_cycles, 4
            ) if total_cycles else 0.0,
            "cleared": cleared.get(branch, 0),
        }
        for branch, cycle in sorted(first_flagged.items())
    ]


def build_profile(result, tracer=None, *, workload: str = "",
                  scheduler: str = "", engine: str = "",
                  max_events: Optional[int] = 1_000) -> ProfileReport:
    """Digest ``result`` (a :class:`~repro.sim.gpu.SimResult`) into a
    :class:`ProfileReport`.

    ``tracer`` supplies the hot-spot table; without one the table is
    empty (everything else still works).  ``max_events`` bounds the raw
    event log embedded in the JSON payload.
    """
    obs = getattr(result, "obs", None)
    events: Dict[str, Any] = {}
    series = None
    if obs is not None:
        payload = obs.to_dict(max_events=max_events)
        events = payload.get("events", {})
        series = payload.get("series")
    return ProfileReport(
        workload=workload or result.launch.program.name,
        scheduler=scheduler,
        engine=engine,
        cycles=result.cycles,
        summary=result.stats.summary(),
        hotspots=_build_hotspots(tracer, result.launch.program),
        warp_timelines=_build_warp_timelines(obs, result.cycles),
        ddos=_build_ddos(obs, result.cycles),
        events=events,
        series=series,
    )
