"""Event bus with pre-bound emitters and a zero-cost disabled path.

The bus follows the fast engine's tracer-hoisting discipline: producers
never test "is observability on?" per decision.  Instead they call
:meth:`EventBus.emitter` **once at construction time** and store the
returned callable.  When no bus is attached they store
:func:`null_emitter` — a shared module-level no-op — so the hot path
costs one attribute-free call either way, and nothing at all on the
branches that never fire.

An emitter is bound to one event class::

    emit_enter = bus.emitter(BackoffEnter)      # construction time
    ...
    emit_enter(cycle=now, sm_id=0, warp_slot=3, cta_id=1)   # hot path

The bus keeps a bounded ring log (oldest events evicted, counted in
:attr:`EventBus.dropped`), per-kind counts that survive eviction, and
optional subscribers for tests/live tooling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional


def null_emitter(**_fields: Any) -> None:
    """Shared no-op emitter used whenever no bus is attached."""


class EventBus:
    """Bounded, typed event log.

    Parameters
    ----------
    capacity:
        Ring-log size.  Oldest events are evicted once full (evictions
        are counted in :attr:`dropped`); per-kind counts in
        :attr:`counts` are never lost.  Must be positive.
    """

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity <= 0:
            raise ValueError(f"EventBus capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._log: deque = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {}
        self.dropped = 0
        self._subscribers: List[Callable[[Any], None]] = []

    def emitter(self, event_cls: type) -> Callable[..., None]:
        """Return a callable that constructs + publishes ``event_cls``.

        Bind the result once at construction time; the closure pins the
        log/counts lookups so the per-event cost is one dataclass
        construction and a deque append.
        """
        kind = event_cls.kind
        log = self._log
        counts = self.counts
        subscribers = self._subscribers

        def emit(**fields: Any) -> None:
            event = event_cls(**fields)
            counts[kind] = counts.get(kind, 0) + 1
            if len(log) == log.maxlen:
                self.dropped += 1
            log.append(event)
            for fn in subscribers:
                fn(event)

        emit.event_cls = event_cls  # type: ignore[attr-defined]
        return emit

    def __getstate__(self):
        """Checkpointing: the ring log, counts, and drop counter pickle
        as-is; live subscriber callables (tests/tools) do not ride along
        and must re-subscribe after a restore."""
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    def publish(self, event: Any) -> None:
        """Publish an already-constructed event (slow path; tests/tools)."""
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if len(self._log) == self._log.maxlen:
            self.dropped += 1
        self._log.append(event)
        for fn in self._subscribers:
            fn(event)

    def subscribe(self, fn: Callable[[Any], None]) -> None:
        """Call ``fn(event)`` on every future publish (tests/live tools)."""
        self._subscribers.append(fn)

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._log)

    @property
    def total_events(self) -> int:
        """Events ever published (including evicted ones)."""
        return sum(self.counts.values())

    def events(self, kind: Optional[str] = None) -> List[Any]:
        """Retained events in publish order, optionally one kind only."""
        if kind is None:
            return list(self._log)
        return [e for e in self._log if e.kind == kind]

    def tail(self, n: int) -> List[Any]:
        """The last ``n`` retained events."""
        if n <= 0:
            return []
        return list(self._log)[-n:]

    def clear(self) -> None:
        """Drop retained events and reset counts/drop statistics."""
        self._log.clear()
        self.counts.clear()
        self.dropped = 0
