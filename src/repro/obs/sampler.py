"""Interval sampler: Figure-11-style time series for any run.

:class:`SimStats` only reports end-of-run aggregates; the sampler turns
the same counters into curves by snapshotting **deltas** every
``interval`` cycles.  Each row is one interval:

========================  ==================================================
column                    meaning (within the interval)
========================  ==================================================
``cycle``                 interval end cycle
``ipc``                   warp instructions issued / cycles elapsed
``simd_efficiency``       active lanes / (warp instructions * warp size)
``backed_off_fraction``   backed-off warp-cycles / resident warp-cycles
``lock_fail_rate``        failed lock acquires / acquire attempts
``sib_issue_rate``        spin-inducing-branch issues / warp instructions
``memory_transactions``   load+store+atomic transactions completed
========================  ==================================================

The sampler is polled from the GPU loop exactly like the
:class:`~repro.sim.progress.ProgressMonitor` (``now >= next_sample``),
so it is fast-forward safe: when the loop skips idle cycles the next
row simply covers a longer interval, and rates stay per-cycle.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Column order of one :class:`TimeSeries` row.
SERIES_COLUMNS = (
    "cycle",
    "ipc",
    "simd_efficiency",
    "backed_off_fraction",
    "lock_fail_rate",
    "sib_issue_rate",
    "memory_transactions",
)


@dataclass
class TimeSeries:
    """Sampled interval metrics, one dict per interval."""

    interval: int
    rows: List[Dict[str, float]] = field(default_factory=list)

    @property
    def columns(self):
        return SERIES_COLUMNS

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[float]:
        """One column across all rows (plotting convenience)."""
        if name not in SERIES_COLUMNS:
            raise KeyError(f"unknown series column {name!r}")
        return [row[name] for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "columns": list(SERIES_COLUMNS),
            "rows": self.rows,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimeSeries":
        return cls(interval=data["interval"], rows=list(data["rows"]))

    def to_json(self, path=None, indent: int = 2) -> str:
        """Serialize to JSON; also write to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def to_csv(self, path=None) -> str:
        """Serialize to CSV (header + one line per interval)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=SERIES_COLUMNS)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def perfetto_events(self, pid: int = 0) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` counter ("C") events, one track per
        metric, mergeable into :meth:`Tracer.export_chrome_trace`."""
        events: List[Dict[str, Any]] = []
        for row in self.rows:
            ts = row["cycle"]
            for name in SERIES_COLUMNS:
                if name == "cycle":
                    continue
                events.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {name: row[name]},
                })
        return events


class IntervalSampler:
    """Snapshots delta counters from live stats every N cycles.

    Reads the shared :class:`~repro.metrics.stats.SimStats` that all SMs
    write into, plus the memory subsystem's live
    :class:`~repro.memory.memsys.MemoryStats` (``stats.memory`` is only
    merged at end of run).  ``next_sample`` is the poll threshold for
    the GPU loop, mirroring :class:`~repro.sim.progress.ProgressMonitor`.
    """

    def __init__(self, stats, memsys_stats, interval: int,
                 warp_size: int = 32) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.next_sample = interval
        self.series = TimeSeries(interval=interval)
        self._stats = stats
        self._mem = memsys_stats
        self._warp_size = warp_size
        self._last_cycle = 0
        self._prev = self._snapshot()

    def _snapshot(self) -> Dict[str, float]:
        stats = self._stats
        locks = stats.locks
        return {
            "warp_instructions": stats.warp_instructions,
            "active_lane_sum": stats.active_lane_sum,
            "sib_warp_instructions": stats.sib_warp_instructions,
            "backed_off_warp_cycles": stats.backed_off_warp_cycles,
            "resident_warp_cycles": stats.resident_warp_cycles,
            "lock_success": locks.lock_success,
            "lock_fail": locks.inter_warp_fail + locks.intra_warp_fail,
            "memory_transactions": self._mem.total_transactions,
        }

    def sample(self, now: int) -> None:
        """Close the interval ending at ``now`` and append one row."""
        cur = self._snapshot()
        prev = self._prev
        dt = now - self._last_cycle
        if dt <= 0:
            return
        d = {k: cur[k] - prev[k] for k in cur}
        attempts = d["lock_success"] + d["lock_fail"]
        issued = d["warp_instructions"]
        self.series.rows.append({
            "cycle": now,
            "ipc": round(issued / dt, 4),
            "simd_efficiency": round(
                d["active_lane_sum"] / (issued * self._warp_size), 4
            ) if issued else 0.0,
            "backed_off_fraction": round(
                d["backed_off_warp_cycles"] / d["resident_warp_cycles"], 4
            ) if d["resident_warp_cycles"] else 0.0,
            "lock_fail_rate": round(
                d["lock_fail"] / attempts, 4
            ) if attempts else 0.0,
            "sib_issue_rate": round(
                d["sib_warp_instructions"] / issued, 4
            ) if issued else 0.0,
            "memory_transactions": int(d["memory_transactions"]),
        })
        self._prev = cur
        self._last_cycle = now
        while self.next_sample <= now:
            self.next_sample += self.interval

    def finish(self, now: int) -> Optional[TimeSeries]:
        """Flush the final partial interval and return the series."""
        if now > self._last_cycle:
            self.sample(now)
        return self.series
