"""Typed observability events: the decisions the paper's figures hinge on.

Every event is a small frozen dataclass whose first field is the
simulated ``cycle`` it occurred at.  The taxonomy mirrors the paper's
narrative causally, not just statistically:

* **DDOS transitions** — :class:`SIBDetected` / :class:`SIBCleared`
  record a branch's SIB-PT confidence crossing the prediction threshold
  in either direction (Section IV): *when* was a spin-inducing branch
  flagged, and did the aliasing guard ever un-flag it?
* **BOWS scheduling** — :class:`BackoffEnter` / :class:`BackoffExit`
  bracket each warp's stay in the backed-off queue (Figure 8 / the
  Figure 11 occupancy curve is the integral of these intervals);
  :class:`AdaptiveDelayUpdate` records each window decision of the
  adaptive delay controller (Figure 5 / Figure 10).
* **Synchronization outcomes** — :class:`LockAcquireSuccess` /
  :class:`LockAcquireFail` are the per-attempt version of the Figure
  2/12 aggregate counters; :class:`BarrierArrive` /
  :class:`BarrierRelease` time CTA barrier episodes.
* **Forensics** — :class:`HangSuspected` marks the forward-progress
  guard classifying (or suspecting) a hang.

Events are plain data: :func:`event_to_dict` / :func:`format_event`
are the only serialization surface, used by profile reports, lab
manifests, and :class:`~repro.sim.progress.HangReport` tails.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class SIBDetected:
    """A branch's SIB-PT confidence rose to the prediction threshold."""

    kind = "sib_detected"
    cycle: int
    sm_id: int
    branch: int
    confidence: int


@dataclass(frozen=True)
class SIBCleared:
    """A branch's SIB-PT confidence fell back below the threshold
    (the aliasing guard drained it — paper Section IV-C)."""

    kind = "sib_cleared"
    cycle: int
    sm_id: int
    branch: int


@dataclass(frozen=True)
class BackoffEnter:
    """A warp executed a spin-inducing branch and joined the
    backed-off queue (deprioritized until no normal warp can issue)."""

    kind = "backoff_enter"
    cycle: int
    sm_id: int
    warp_slot: int
    cta_id: int


@dataclass(frozen=True)
class BackoffExit:
    """A backed-off warp issued and reverted to normal priority; its
    pending back-off delay runs until ``delay_until``."""

    kind = "backoff_exit"
    cycle: int
    sm_id: int
    warp_slot: int
    cta_id: int
    delay_until: int


@dataclass(frozen=True)
class AdaptiveDelayUpdate:
    """The adaptive controller closed a window and chose a new delay
    limit (``direction`` is the controller's current search direction)."""

    kind = "adaptive_delay_update"
    cycle: int
    sm_id: int
    delay_limit: int
    window_total: int
    window_sib: int
    direction: int


@dataclass(frozen=True)
class LockAcquireSuccess:
    """One lane's lock-try CAS succeeded (it now holds the lock)."""

    kind = "lock_acquire_success"
    cycle: int
    sm_id: int
    warp_slot: int
    addr: int
    lane: int


@dataclass(frozen=True)
class LockAcquireFail:
    """One lane's lock-try CAS failed; ``conflict`` classifies the
    holder as ``"intra"``- or ``"inter"``-warp (Figures 2/12)."""

    kind = "lock_acquire_fail"
    cycle: int
    sm_id: int
    warp_slot: int
    addr: int
    lane: int
    conflict: str


@dataclass(frozen=True)
class BarrierArrive:
    """A warp issued ``bar.sync`` and is now waiting at its CTA barrier."""

    kind = "barrier_arrive"
    cycle: int
    sm_id: int
    cta_id: int
    warp_slot: int


@dataclass(frozen=True)
class BarrierRelease:
    """Every live warp of the CTA arrived; ``released`` warps resume."""

    kind = "barrier_release"
    cycle: int
    sm_id: int
    cta_id: int
    released: int


@dataclass(frozen=True)
class HangSuspected:
    """The forward-progress guard classified (or suspects) a hang."""

    kind = "hang_suspected"
    cycle: int
    hang_kind: str
    reason: str


@dataclass(frozen=True)
class SanitizerFinding:
    """The dynamic sanitizer recorded a new diagnostic (first occurrence
    of a ``SAN*`` id at this pc — see ``docs/analysis.md``)."""

    kind = "sanitizer"
    cycle: int
    diag_id: str
    severity: str
    pc: int
    warp_slot: int


@dataclass(frozen=True)
class CheckpointSaved:
    """The simulation's complete machine state was written to disk at an
    epoch boundary (see :mod:`repro.sim.checkpoint`)."""

    kind = "checkpoint_saved"
    cycle: int
    path: str
    size_bytes: int


@dataclass(frozen=True)
class RunResumed:
    """A simulation was restored from a checkpoint instead of restarting
    from cycle 0 (``cycle`` is the resume point)."""

    kind = "run_resumed"
    cycle: int
    path: str
    spec_hash: str


@dataclass(frozen=True)
class CorruptEntryQuarantined:
    """The lab cache found an entry failing its content checksum and
    moved it aside (never served, never silently deleted).  ``cycle``
    is 0: this is a lab-level event, not a simulated-time one."""

    kind = "corrupt_entry_quarantined"
    cycle: int
    path: str
    reason: str


@dataclass(frozen=True)
class WorkerLost:
    """A pool worker died mid-run (SIGKILL, OOM, crash); the in-flight
    spec was re-queued.  ``cycle`` is 0 (lab-level event)."""

    kind = "worker_lost"
    cycle: int
    spec_hash: str
    requeued: bool


#: Every event type, in taxonomy order (reporting / docs / tests).
EVENT_TYPES: Tuple[type, ...] = (
    SIBDetected,
    SIBCleared,
    BackoffEnter,
    BackoffExit,
    AdaptiveDelayUpdate,
    LockAcquireSuccess,
    LockAcquireFail,
    BarrierArrive,
    BarrierRelease,
    HangSuspected,
    SanitizerFinding,
    CheckpointSaved,
    RunResumed,
    CorruptEntryQuarantined,
    WorkerLost,
)

#: kind string -> event class (deserialization).
EVENT_KINDS: Dict[str, type] = {cls.kind: cls for cls in EVENT_TYPES}


def event_to_dict(event: Any) -> Dict[str, Any]:
    """JSON-ready dict: the event's fields plus its ``"event"`` kind."""
    data = dataclasses.asdict(event)
    data["event"] = event.kind
    return data


def event_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild an event from :func:`event_to_dict` output."""
    data = dict(data)
    cls = EVENT_KINDS[data.pop("event")]
    return cls(**data)


def format_event(event: Any) -> str:
    """One-line human rendering (hang-report tails, profile logs)."""
    fields = dataclasses.asdict(event)
    cycle = fields.pop("cycle")
    detail = " ".join(f"{k}={v}" for k, v in fields.items())
    return f"[{cycle:>8}] {event.kind} {detail}"
