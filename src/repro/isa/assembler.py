"""Two-pass assembler for the PTX-like textual assembly.

Syntax (one instruction per line)::

    BB2:                                  // label
        atom.cas %r15, [%rl29], 0, 1 !lock_try
        setp.eq %p2, %r15, 0
    @%p2 bra BB3
        bra BB4
    BB3:
        ...
        exit

* ``// ...`` and ``# ...`` start comments.
* ``@%p`` / ``@!%p`` guard the instruction on a predicate.
* ``[%r5]`` / ``[%r5+8]`` are memory operands; ``[param_name]`` with
  ``ld.param`` reads a kernel parameter.
* ``!role`` annotations (``!lock_try``, ``!sib``, ...) attach metadata
  consumed by the metrics layer; hardware behaviour never depends on them.
* ``bra.uni`` is accepted as an alias for an unguarded ``bra``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import (
    CMP_OPS,
    SPECIAL_REGISTERS,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Operand,
    Param,
    Pred,
    Reg,
    Sreg,
)
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):\s*(.*)$")
_GUARD_RE = re.compile(r"^@(!?)%(p\w+)\s+(.*)$")
_ROLE_RE = re.compile(r"\s*!([A-Za-z_][\w]*)\s*$")
_MEM_RE = re.compile(r"^\[\s*%(\w+)\s*(?:\+\s*(-?\w+)\s*)?\]$")
_PARAM_RE = re.compile(r"^\[\s*([A-Za-z_]\w*)\s*\]$")
_INT_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|\d+)$")

_OPCODE_BY_NAME: Dict[str, Opcode] = {op.value: op for op in Opcode}


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_operand(text: str, line_no: int) -> Operand:
    text = text.strip()
    if not text:
        raise AssemblyError("empty operand", line_no)
    if _INT_RE.match(text):
        return Imm(_parse_int(text))
    mem = _MEM_RE.match(text)
    if mem:
        base, offset = mem.groups()
        return Mem(Reg(base), _parse_int(offset) if offset else 0)
    param = _PARAM_RE.match(text)
    if param:
        return Param(param.group(1))
    if text.startswith("%"):
        name = text[1:]
        if name in SPECIAL_REGISTERS:
            return Sreg(name)
        if re.fullmatch(r"p\w*", name):
            return Pred(name)
        if re.fullmatch(r"\w+", name):
            return Reg(name)
    raise AssemblyError(f"cannot parse operand {text!r}", line_no)


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p.strip() for p in parts if p.strip()]


def _parse_opcode(mnemonic: str, line_no: int) -> Tuple[Opcode, Optional[str]]:
    mnemonic = mnemonic.lower()
    if mnemonic == "bra.uni":
        return Opcode.BRA, None
    if mnemonic.startswith("setp."):
        cmp = mnemonic.split(".", 1)[1]
        if cmp not in CMP_OPS:
            raise AssemblyError(f"unknown setp comparison {cmp!r}", line_no)
        return Opcode.SETP, cmp
    if mnemonic in _OPCODE_BY_NAME:
        return _OPCODE_BY_NAME[mnemonic], None
    raise AssemblyError(f"unknown opcode {mnemonic!r}", line_no)


# Operand-shape table: opcode -> (has_dst, n_srcs) with None = variable.
_SHAPES: Dict[Opcode, Tuple[bool, Optional[int]]] = {
    Opcode.MOV: (True, 1),
    Opcode.NOT: (True, 1),
    Opcode.ADD: (True, 2),
    Opcode.SUB: (True, 2),
    Opcode.MUL: (True, 2),
    Opcode.DIV: (True, 2),
    Opcode.REM: (True, 2),
    Opcode.AND: (True, 2),
    Opcode.OR: (True, 2),
    Opcode.XOR: (True, 2),
    Opcode.SHL: (True, 2),
    Opcode.SHR: (True, 2),
    Opcode.MIN: (True, 2),
    Opcode.MAX: (True, 2),
    Opcode.MAD: (True, 3),
    Opcode.SELP: (True, 3),
    Opcode.SETP: (True, 2),
    Opcode.LD_GLOBAL: (True, 1),
    Opcode.LD_GLOBAL_CG: (True, 1),
    Opcode.LD_PARAM: (True, 1),
    Opcode.ST_GLOBAL: (True, 1),  # dst = Mem, src = value
    Opcode.ATOM_CAS: (True, 3),
    Opcode.ATOM_EXCH: (True, 2),
    Opcode.ATOM_ADD: (True, 2),
    Opcode.ATOM_MIN: (True, 2),
    Opcode.ATOM_MAX: (True, 2),
    Opcode.CLOCK: (True, 0),
    Opcode.BRA: (False, 0),
    Opcode.EXIT: (False, 0),
    Opcode.BAR_SYNC: (False, 0),
    Opcode.MEMBAR: (False, 0),
    Opcode.NOP: (False, 0),
}


def _parse_line(body: str, line_no: int) -> Instruction:
    guard: Optional[Pred] = None
    guard_negated = False
    guard_match = _GUARD_RE.match(body)
    if guard_match:
        negated, pred_name, body = guard_match.groups()
        guard = Pred(pred_name)
        guard_negated = bool(negated)

    roles: List[str] = []
    while True:
        role_match = _ROLE_RE.search(body)
        if not role_match:
            break
        roles.insert(0, role_match.group(1))
        body = body[: role_match.start()]

    body = body.strip()
    if not body:
        raise AssemblyError("guard or role with no instruction", line_no)

    pieces = body.split(None, 1)
    mnemonic = pieces[0]
    operand_text = pieces[1] if len(pieces) > 1 else ""
    opcode, cmp = _parse_opcode(mnemonic, line_no)

    if opcode is Opcode.BRA:
        target = operand_text.strip()
        if not target or "," in target:
            raise AssemblyError("bra expects exactly one label", line_no)
        return Instruction(
            opcode=opcode,
            guard=guard,
            guard_negated=guard_negated,
            target=target,
            roles=tuple(roles),
        )

    operands = [_parse_operand(t, line_no) for t in _split_operands(operand_text)]
    has_dst, n_srcs = _SHAPES[opcode]
    dst: Optional[Operand] = None
    if has_dst:
        if not operands:
            raise AssemblyError(f"{mnemonic} requires a destination", line_no)
        dst = operands.pop(0)
    if n_srcs is not None and len(operands) != n_srcs:
        raise AssemblyError(
            f"{mnemonic} expects {n_srcs} source operand(s), got {len(operands)}",
            line_no,
        )

    instr = Instruction(
        opcode=opcode,
        cmp=cmp,
        dst=dst,
        srcs=tuple(operands),
        guard=guard,
        guard_negated=guard_negated,
        roles=tuple(roles),
    )
    _validate(instr, mnemonic, line_no)
    return instr


def _validate(instr: Instruction, mnemonic: str, line_no: int) -> None:
    op = instr.opcode
    if op is Opcode.SETP and not isinstance(instr.dst, Pred):
        raise AssemblyError("setp destination must be a predicate", line_no)
    if op is Opcode.SELP and not isinstance(instr.srcs[2], Pred):
        raise AssemblyError("selp third operand must be a predicate", line_no)
    if op in (Opcode.LD_GLOBAL, Opcode.LD_GLOBAL_CG) and not isinstance(
        instr.srcs[0], Mem
    ):
        raise AssemblyError(f"{mnemonic} source must be a memory operand", line_no)
    if op is Opcode.ST_GLOBAL and not isinstance(instr.dst, Mem):
        raise AssemblyError("st.global destination must be a memory operand", line_no)
    if op is Opcode.LD_PARAM and not isinstance(instr.srcs[0], Param):
        raise AssemblyError("ld.param source must be [param_name]", line_no)
    if instr.is_atomic and not isinstance(instr.srcs[0], Mem):
        raise AssemblyError(f"{mnemonic} first source must be a memory operand", line_no)


def assemble(text: str, name: str = "kernel") -> Program:
    """Assemble ``text`` into a :class:`~repro.isa.program.Program`.

    Raises:
        AssemblyError: on syntax errors, duplicate labels, or unresolved
            branch targets.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    pending_labels: List[str] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label, rest = label_match.groups()
            if label in labels or label in pending_labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            pending_labels.append(label)
            line = rest.strip()
            if not line:
                continue
        instr = _parse_line(line, line_no)
        instr.index = len(instructions)
        if pending_labels:
            instr.label = pending_labels[0]
            for label in pending_labels:
                labels[label] = instr.index
            pending_labels = []
        instructions.append(instr)

    if pending_labels:
        raise AssemblyError(f"label {pending_labels[0]!r} at end of program")
    if not instructions:
        raise AssemblyError("empty program")

    for instr in instructions:
        if instr.target is not None:
            if instr.target not in labels:
                raise AssemblyError(f"undefined branch target {instr.target!r}")
            instr.target_index = labels[instr.target]

    return Program(name=name, instructions=instructions, labels=labels)
