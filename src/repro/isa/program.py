"""Program container: basic blocks, CFG, and reconvergence-point analysis.

Stack-based SIMT hardware (pre-Volta NVIDIA, AMD GCN) reconverges divergent
warps at the *immediate post-dominator* (IPDOM) of the divergent branch.
The assembler-produced :class:`Program` computes each conditional branch's
reconvergence instruction index at build time using a post-dominator
analysis over the CFG (networkx's ``immediate_dominators`` on the reversed
graph), exactly the information GPGPU-Sim precomputes per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.isa.instructions import Instruction, Opcode

#: Sentinel reconvergence index meaning "reconverge at thread exit".
RECONVERGE_AT_EXIT = -1

_VIRTUAL_EXIT = "__exit__"


@dataclass
class BasicBlock:
    """A maximal straight-line code region."""

    index: int
    start: int  # first instruction index
    end: int    # last instruction index (inclusive)
    successors: Tuple[int, ...] = ()

    def __contains__(self, instr_index: int) -> bool:
        return self.start <= instr_index <= self.end


@dataclass
class Program:
    """An assembled kernel: instructions plus control-flow metadata."""

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    blocks: List[BasicBlock] = field(init=False, default_factory=list)
    #: Reconvergence instruction index for each conditional branch,
    #: keyed by branch instruction index.
    reconvergence: Dict[int, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()
        self._build_blocks()
        self._compute_reconvergence()
        self._annotate_hazards()

    def __getstate__(self):
        """Checkpointing: drop the fast engine's memoized decode cache
        (closure-bound handlers; see :func:`repro.sim.executor.
        decode_program`) — it is rebuilt deterministically on demand."""
        state = self.__dict__.copy()
        state.pop("_decoded_cache", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Queries

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def static_size(self) -> int:
        return len(self.instructions)

    def block_of(self, instr_index: int) -> BasicBlock:
        for block in self.blocks:
            if instr_index in block:
                return block
        raise IndexError(instr_index)

    def reconvergence_point(self, branch_index: int) -> int:
        """Reconvergence instruction index for a conditional branch.

        Returns ``RECONVERGE_AT_EXIT`` when the paths only rejoin at thread
        exit.
        """
        return self.reconvergence[branch_index]

    def true_sibs(self) -> Set[int]:
        """Ground-truth spin-inducing branch indices (``!sib`` annotations)."""
        return {i.index for i in self.instructions if i.has_role("sib")}

    def backward_branches(self) -> Set[int]:
        return {i.index for i in self.instructions if i.is_backward_branch}

    # -- loop structure -------------------------------------------------

    def back_edges(self) -> Set[Tuple[int, int]]:
        """CFG back edges as ``(tail_block, head_block)`` pairs.

        An edge is a back edge iff its head *dominates* its tail in the
        forward CFG rooted at block 0.  Every block dominates itself, so
        a single-block self-loop contributes the edge ``(b, b)`` — the
        same loop that the instruction-level view reports through
        :meth:`backward_branches` (whose ``target_index <= index`` test
        admits the equality case).  Before this method existed the two
        views disagreed on single-block self-loops depending on which
        one a caller consulted; this is the normalized, dominance-based
        answer.  Unreachable blocks have no dominator and contribute no
        back edges.
        """
        graph = self._cfg()
        idom = nx.immediate_dominators(graph, 0)
        edges: Set[Tuple[int, int]] = set()
        for block in self.blocks:
            for succ in block.successors:
                if self._dominates(succ, block.index, idom):
                    edges.add((block.index, succ))
        return edges

    @staticmethod
    def _dominates(a: int, b: int, idom: Dict) -> bool:
        """Does block ``a`` dominate block ``b`` (per an idom tree)?"""
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    def loop_back_branches(self) -> Set[int]:
        """Instruction indices of branches that close a natural loop.

        A subset of :meth:`backward_branches`: a dominance back edge in
        a program laid out by the assembler always targets an
        instruction at or before the branch, but an index-backward
        branch into a block that does *not* dominate it (a cross edge
        in irreducible control flow) is excluded here.
        """
        out: Set[int] = set()
        for tail, head in self.back_edges():
            last = self.instructions[self.blocks[tail].end]
            if last.is_branch and last.target_index == self.blocks[head].start:
                out.add(last.index)
        return out

    def natural_loop(self, tail: int, head: int) -> Set[int]:
        """Block indices of the natural loop of back edge ``(tail, head)``.

        The loop body is ``head`` plus every block that can reach
        ``tail`` without passing through ``head``.  For a self-loop
        (``tail == head``) the body is the single block.
        """
        preds: Dict[int, List[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        loop = {head, tail}
        stack = [tail] if tail != head else []
        while stack:
            node = stack.pop()
            for pred in preds[node]:
                if pred not in loop:
                    loop.add(pred)
                    stack.append(pred)
        return loop

    def natural_loops(self) -> Dict[Tuple[int, int], Set[int]]:
        """Every natural loop keyed by its ``(tail, head)`` back edge."""
        return {
            (tail, head): self.natural_loop(tail, head)
            for tail, head in self.back_edges()
        }

    def registers(self) -> Set[str]:
        """Names of all general-purpose registers the program touches."""
        from repro.isa.instructions import Mem, Reg

        names: Set[str] = set()
        for instr in self.instructions:
            for operand in (instr.dst, *instr.srcs):
                if isinstance(operand, Reg):
                    names.add(operand.name)
                elif isinstance(operand, Mem):
                    names.add(operand.base.name)
        return names

    def predicates(self) -> Set[str]:
        from repro.isa.instructions import Pred

        names: Set[str] = set()
        for instr in self.instructions:
            for operand in (instr.dst, instr.guard, *instr.srcs):
                if isinstance(operand, Pred):
                    names.add(operand.name)
        return names

    def to_text(self) -> str:
        """Disassemble back to (re-assemblable) text."""
        lines = []
        for instr in self.instructions:
            if instr.label:
                lines.append(f"{instr.label}:")
            lines.append(f"    {instr}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Construction helpers

    def _validate(self) -> None:
        if not self.instructions:
            raise ValueError("program has no instructions")
        last = self.instructions[-1]
        falls_off = not (
            last.opcode is Opcode.EXIT
            or (last.is_branch and last.guard is None)
        )
        if falls_off:
            raise ValueError(
                f"program {self.name!r} can fall off the end; "
                "terminate with 'exit' or an unconditional branch"
            )
        if not any(i.opcode is Opcode.EXIT for i in self.instructions):
            raise ValueError(f"program {self.name!r} has no 'exit' instruction")

    def _build_blocks(self) -> None:
        n = len(self.instructions)
        leaders = {0}
        for instr in self.instructions:
            if instr.is_branch:
                assert instr.target_index is not None
                leaders.add(instr.target_index)
                if instr.index + 1 < n:
                    leaders.add(instr.index + 1)
            elif instr.opcode is Opcode.EXIT and instr.index + 1 < n:
                leaders.add(instr.index + 1)
        starts = sorted(leaders)
        self.blocks = []
        start_to_block: Dict[int, int] = {}
        for bi, start in enumerate(starts):
            end = (starts[bi + 1] - 1) if bi + 1 < len(starts) else n - 1
            self.blocks.append(BasicBlock(index=bi, start=start, end=end))
            start_to_block[start] = bi
        for block in self.blocks:
            last = self.instructions[block.end]
            succs: List[int] = []
            if last.is_branch:
                succs.append(start_to_block[last.target_index])
                if last.guard is not None and block.end + 1 < n:
                    succs.append(start_to_block[block.end + 1])
            elif last.opcode is Opcode.EXIT:
                pass  # edge to the virtual exit is added in the CFG
            elif block.end + 1 < n:
                succs.append(start_to_block[block.end + 1])
            block.successors = tuple(dict.fromkeys(succs))

    def _annotate_hazards(self) -> None:
        """Precompute scoreboard keys per instruction (hot-path cache).

        Register and predicate namespaces are distinct, so keys are
        prefixed ``r:`` / ``p:``.
        """
        from repro.isa.instructions import Mem, Pred, Reg

        for instr in self.instructions:
            keys = []
            for operand in (*instr.srcs, instr.dst):
                if isinstance(operand, Reg):
                    keys.append("r:" + operand.name)
                elif isinstance(operand, Pred):
                    keys.append("p:" + operand.name)
                elif isinstance(operand, Mem):
                    keys.append("r:" + operand.base.name)
            if instr.guard is not None:
                keys.append("p:" + instr.guard.name)
            instr.hazard_keys = tuple(dict.fromkeys(keys))
            if isinstance(instr.dst, Reg):
                instr.dst_key = "r:" + instr.dst.name
            elif isinstance(instr.dst, Pred):
                instr.dst_key = "p:" + instr.dst.name
            else:
                instr.dst_key = None

    def _cfg(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_node(_VIRTUAL_EXIT)
        for block in self.blocks:
            graph.add_node(block.index)
            for succ in block.successors:
                graph.add_edge(block.index, succ)
            last = self.instructions[block.end]
            if last.opcode is Opcode.EXIT:
                graph.add_edge(block.index, _VIRTUAL_EXIT)
            # A guarded exit falls through as well (lanes whose guard is
            # false continue); the block already has that successor.
        return graph

    def _compute_reconvergence(self) -> None:
        graph = self._cfg()
        # Post-dominators = dominators of the reversed CFG rooted at exit.
        reversed_graph = graph.reverse(copy=True)
        ipdom = nx.immediate_dominators(reversed_graph, _VIRTUAL_EXIT)
        for block in self.blocks:
            last = self.instructions[block.end]
            if not last.is_conditional_branch:
                continue
            node = ipdom.get(block.index)
            if node is None or node == _VIRTUAL_EXIT or node == block.index:
                self.reconvergence[block.end] = RECONVERGE_AT_EXIT
            else:
                self.reconvergence[block.end] = self.blocks[node].start
