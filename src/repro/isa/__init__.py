"""PTX-like instruction set: operand/instruction model, assembler, program CFG.

The simulator executes a small virtual ISA modeled on NVIDIA PTX (the
paper's Figure 7 listings are PTX).  Kernels are authored either as
assembly text (:func:`repro.isa.assemble`) or through the builder DSL in
:mod:`repro.kernels.builder`.
"""

from repro.isa.instructions import (
    Imm,
    Instruction,
    Mem,
    Opcode,
    Param,
    Pred,
    Reg,
    Sreg,
)
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.program import Program

__all__ = [
    "AssemblyError",
    "Imm",
    "Instruction",
    "Mem",
    "Opcode",
    "Param",
    "Pred",
    "Program",
    "Reg",
    "Sreg",
    "assemble",
]
