"""Operand and instruction model for the PTX-like virtual ISA.

Design notes
------------
Instructions are indexed by position in the program; the *byte* address of
instruction ``i`` is ``i * INSTRUCTION_SIZE`` to mirror the fixed 8-byte
encoding assumed by the paper's DDOS hashing scheme
(``(PC - PC_kernel_start) / Instruction_Size``).

Operands:

* :class:`Reg` — a 32-bit general-purpose register, one value per lane.
* :class:`Pred` — a 1-bit predicate register, one value per lane.
* :class:`Imm` — an integer immediate.
* :class:`Sreg` — a read-only special register (``%tid``, ``%ctaid`` ...).
* :class:`Param` — a kernel parameter, read with ``ld.param``.
* :class:`Mem` — a ``[base + offset]`` memory operand.

The ``role`` annotation attaches workload-semantics metadata used only by
the metrics layer (e.g. which ``atom.cas`` is a lock acquire) and the DDOS
ground truth (which backward branch is a true spin-inducing branch).  The
simulated hardware never reads ``role`` except in the DDOS *evaluation*
code that scores detection accuracy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: Bytes per encoded instruction; only used to derive PC byte addresses.
INSTRUCTION_SIZE = 8


class Opcode(enum.Enum):
    """Every opcode the simulator understands."""

    # Data movement / arithmetic (vector ALU, per-lane).
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    MIN = "min"
    MAX = "max"
    SELP = "selp"
    # Predicate-setting compare.
    SETP = "setp"
    # Control flow.
    BRA = "bra"
    EXIT = "exit"
    # Memory.
    LD_GLOBAL = "ld.global"
    LD_GLOBAL_CG = "ld.global.cg"  # bypasses L1 (volatile / cache-global)
    ST_GLOBAL = "st.global"
    LD_PARAM = "ld.param"
    ATOM_CAS = "atom.cas"
    ATOM_EXCH = "atom.exch"
    ATOM_ADD = "atom.add"
    ATOM_MIN = "atom.min"
    ATOM_MAX = "atom.max"
    # Synchronization / misc.
    BAR_SYNC = "bar.sync"
    MEMBAR = "membar"
    CLOCK = "clock"
    NOP = "nop"


#: Comparison operators accepted as a ``setp`` suffix.
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Special register names (without the leading ``%``).
SPECIAL_REGISTERS = (
    "tid",       # thread index within the CTA
    "ntid",      # CTA size (threads per CTA)
    "ctaid",     # CTA index within the grid
    "nctaid",    # number of CTAs in the grid
    "laneid",    # lane index within the warp
    "warpid",    # warp index within the SM
    "gtid",      # convenience: global thread id = ctaid * ntid + tid
)

ATOMIC_OPCODES = frozenset(
    {
        Opcode.ATOM_CAS,
        Opcode.ATOM_EXCH,
        Opcode.ATOM_ADD,
        Opcode.ATOM_MIN,
        Opcode.ATOM_MAX,
    }
)

MEMORY_OPCODES = frozenset(
    {Opcode.LD_GLOBAL, Opcode.LD_GLOBAL_CG, Opcode.ST_GLOBAL} | ATOMIC_OPCODES
)

ALU_OPCODES = frozenset(
    {
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.MAD,
        Opcode.DIV,
        Opcode.REM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.SELP,
    }
)


@dataclass(frozen=True)
class Reg:
    """A general-purpose vector register, e.g. ``%r5``."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Pred:
    """A predicate register, e.g. ``%p2``."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An integer immediate."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sreg:
    """A read-only special register, e.g. ``%tid``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SPECIAL_REGISTERS:
            raise ValueError(f"unknown special register %{self.name}")

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Param:
    """A kernel parameter reference, used by ``ld.param``."""

    name: str

    def __str__(self) -> str:
        return f"[{self.name}]"


@dataclass(frozen=True)
class Mem:
    """A ``[base + offset]`` memory operand; ``base`` is a register."""

    base: Reg
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"[{self.base}+{self.offset}]"
        return f"[{self.base}]"


Operand = Union[Reg, Pred, Imm, Sreg, Param, Mem]


@dataclass
class Instruction:
    """A single decoded instruction.

    Attributes:
        opcode: the operation.
        cmp: comparison suffix for ``setp`` (``eq``/``ne``/...).
        dst: destination operand (``Reg`` or ``Pred``), if any.
        srcs: source operands in encoding order.
        guard: optional guard predicate (``@%p`` / ``@!%p bra`` ...).
        guard_negated: whether the guard is ``@!%p``.
        target: branch target label (resolved to an index by the assembler).
        target_index: resolved instruction index of ``target``.
        index: position of the instruction in the program.
        label: label attached to this instruction, if any.
        role: workload-semantics annotation (``lock_try``, ``lock_release``,
            ``wait_branch``, ``sib``, ``useful`` ...), see module docstring.
    """

    opcode: Opcode
    cmp: Optional[str] = None
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    guard: Optional[Pred] = None
    guard_negated: bool = False
    target: Optional[str] = None
    target_index: Optional[int] = None
    index: int = -1
    label: Optional[str] = None
    roles: Tuple[str, ...] = field(default_factory=tuple)
    #: Scoreboard keys, precomputed by Program (``r:name`` / ``p:name``).
    hazard_keys: Tuple[str, ...] = ()
    #: Scoreboard key of the destination, precomputed by Program.
    dst_key: Optional[str] = None

    @property
    def address(self) -> int:
        """Byte address of this instruction (fixed 8-byte encoding)."""
        return self.index * INSTRUCTION_SIZE

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode is Opcode.BRA and self.guard is not None

    @property
    def is_backward_branch(self) -> bool:
        return (
            self.opcode is Opcode.BRA
            and self.target_index is not None
            and self.target_index <= self.index
        )

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_atomic(self) -> bool:
        return self.opcode in ATOMIC_OPCODES

    @property
    def is_setp(self) -> bool:
        return self.opcode is Opcode.SETP

    def has_role(self, role: str) -> bool:
        return role in self.roles

    def read_operands(self) -> Tuple[Operand, ...]:
        """All operands read by this instruction (guard excluded)."""
        reads = list(self.srcs)
        if self.opcode is Opcode.ST_GLOBAL and self.dst is not None:
            # Stores keep the memory operand in ``dst`` but read its base.
            reads.append(self.dst)
        return tuple(reads)

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            neg = "!" if self.guard_negated else ""
            parts.append(f"@{neg}{self.guard}")
        op = self.opcode.value
        if self.cmp:
            op = f"{op}.{self.cmp}"
        parts.append(op)
        operand_strs = []
        if self.dst is not None:
            operand_strs.append(str(self.dst))
        operand_strs.extend(str(s) for s in self.srcs)
        if self.target is not None:
            operand_strs.append(self.target)
        text = " ".join(parts)
        if operand_strs:
            text += " " + ", ".join(operand_strs)
        for role in self.roles:
            text += f" !{role}"
        return text
