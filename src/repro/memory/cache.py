"""Set-associative cache tag array with LRU replacement.

Only tags are modeled — data always lives in the functional
:class:`~repro.memory.memsys.GlobalMemory` — so a cache answers exactly one
question per access: hit or miss (plus maintaining LRU state).  That is all
the timing model needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.sim.config import CacheConfig


class Cache:
    """LRU set-associative tag store."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Geometry hoisted out of the per-access path (num_sets is a
        # derived property on the config).
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, line_addr: int) -> "tuple[OrderedDict, int]":
        line_index = line_addr // self._line_bytes
        set_index = line_index % self._num_sets
        tag = line_index // self._num_sets
        return self._sets[set_index], tag

    def access(self, line_addr: int, allocate: bool = True) -> bool:
        """Look up ``line_addr``; returns True on hit.

        On a miss with ``allocate``, the line is filled (evicting LRU).
        """
        cache_set, tag = self._locate(line_addr)
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if allocate:
            if len(cache_set) >= self._assoc:
                cache_set.popitem(last=False)
            cache_set[tag] = None
        return False

    def probe(self, line_addr: int) -> bool:
        """Non-destructive lookup (no fill, no LRU update, no counters)."""
        cache_set, tag = self._locate(line_addr)
        return tag in cache_set

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if present; returns True if it was cached."""
        cache_set, tag = self._locate(line_addr)
        if tag in cache_set:
            del cache_set[tag]
            return True
        return False

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def occupancy(self) -> Dict[str, int]:
        """Lines resident / capacity, for tests and debugging."""
        resident = sum(len(s) for s in self._sets)
        capacity = self.config.num_sets * self.config.assoc
        return {"resident": resident, "capacity": capacity}
