"""Functional global memory plus the L1/L2/DRAM timing model.

Functional state (what values memory holds) is a single flat word array —
the simulator executes instructions functionally at issue, in a global
total order, so atomicity of read-modify-write operations is inherent.
Timing (when a warp's destination registers become available, how many
transactions the access generated, queueing at L2 banks and DRAM) is
computed here and returned to the SM, which blocks the warp's scoreboard
until the completion cycle.

Coherence model (Fermi-faithful, Section II of the paper):

* loads allocate in the issuing SM's L1 unless the ``.cg`` variant is used;
* stores are write-through, no-allocate, and evict the line from the
  *local* L1 only — remote L1s may serve stale data, which is why spin
  code must poll with atomics or ``.cg`` loads;
* atomics bypass L1 entirely and are serialized at the L2 banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.memory.cache import Cache
from repro.memory.coalescer import coalesce
from repro.sim.config import GPUConfig

#: Bytes per memory word (all accesses are 32-bit).
WORD_BYTES = 4


class GlobalMemory:
    """Flat, word-addressed functional memory with a bump allocator."""

    def __init__(self, size_words: int = 1 << 20) -> None:
        self.words = np.zeros(size_words, dtype=np.int64)
        self._next_free = 0
        #: Write-version counter: bumped on every functional write.  An
        #: O(1) global-progress witness for the forward-progress guard
        #: (:mod:`repro.sim.progress`) — a spinning warp polls and
        #: CAS-fails without ever writing, so a livelocked machine's
        #: version goes flat while a progressing one keeps moving.
        self.version = 0
        #: Optional observer ``hook(n_words)`` called on every functional
        #: write (the sanitizer's raw-write coverage counter).  Never
        #: affects functional state.
        self.write_hook = None

    @property
    def size_bytes(self) -> int:
        return self.words.size * WORD_BYTES

    def alloc(self, n_words: int, align_words: int = 32) -> int:
        """Reserve ``n_words`` and return the base *byte* address."""
        base = -(-self._next_free // align_words) * align_words
        if base + n_words > self.words.size:
            raise MemoryError(
                f"global memory exhausted: need {n_words} words at {base}"
            )
        self._next_free = base + n_words
        return base * WORD_BYTES

    def _index(self, byte_addrs: np.ndarray) -> np.ndarray:
        idx = np.asarray(byte_addrs, dtype=np.int64) // WORD_BYTES
        if (idx < 0).any() or (idx >= self.words.size).any():
            raise IndexError("global memory access out of bounds")
        return idx

    def read(self, byte_addrs: np.ndarray) -> np.ndarray:
        return self.words[self._index(byte_addrs)]

    def write(self, byte_addrs: np.ndarray, values: np.ndarray) -> None:
        idx = self._index(byte_addrs)
        self.words[idx] = np.asarray(values, dtype=np.int64)
        self.version += 1
        if self.write_hook is not None:
            self.write_hook(idx.size)

    # Convenience scalar/stage helpers for workload setup and validation.

    def read_word(self, byte_addr: int) -> int:
        return int(self.words[byte_addr // WORD_BYTES])

    def write_word(self, byte_addr: int, value: int) -> None:
        self.words[byte_addr // WORD_BYTES] = value
        self.version += 1
        if self.write_hook is not None:
            self.write_hook(1)

    def store_array(self, byte_addr: int, values: Sequence[int]) -> None:
        start = byte_addr // WORD_BYTES
        self.words[start:start + len(values)] = np.asarray(values, dtype=np.int64)
        self.version += 1

    def load_array(self, byte_addr: int, n_words: int) -> np.ndarray:
        start = byte_addr // WORD_BYTES
        return self.words[start:start + n_words].copy()


@dataclass
class MemoryAccessResult:
    """Timing outcome of one warp-level memory instruction."""

    completion: int
    transactions: int


@dataclass
class MemoryStats:
    """Aggregate event counters (inputs to metrics and the energy model)."""

    load_transactions: int = 0
    store_transactions: int = 0
    atomic_transactions: int = 0
    sync_transactions: int = 0
    other_transactions: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0

    @property
    def total_transactions(self) -> int:
        return (
            self.load_transactions
            + self.store_transactions
            + self.atomic_transactions
        )

    def merge(self, other: "MemoryStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


class MemorySubsystem:
    """Timing model: per-SM L1s, banked shared L2, DRAM behind it."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.l1: List[Cache] = [Cache(config.l1d) for _ in range(config.num_sms)]
        self.l2 = Cache(config.l2)
        self._bank_free = [0] * config.num_l2_banks
        self._dram_free = 0
        self.stats = MemoryStats()
        # Seeded memory-latency spread (schedule-perturbation fuzzing):
        # the RNG sequence is a deterministic function of the seed and
        # the (deterministic) global access order, so a fuzz seed
        # reproduces its schedule exactly.
        perturb = config.perturb
        self._jitter = 0
        self._jitter_rng = None
        if perturb is not None and perturb.mem_jitter_cycles > 0:
            import random
            self._jitter = perturb.mem_jitter_cycles
            self._jitter_rng = random.Random(perturb.seed * 1000003 + 17)

    # ------------------------------------------------------------------

    def _l2_latency(self, line_addr: int, now: int,
                    service: Optional[int] = None) -> int:
        """Completion cycle of an L2 access arriving at ``now``."""
        cfg = self.config
        bank = (line_addr // cfg.l2.line_bytes) % cfg.num_l2_banks
        start = max(now, self._bank_free[bank])
        if service is None:
            service = cfg.l2_service_interval
        self._bank_free[bank] = start + service
        jitter = (
            self._jitter_rng.randrange(self._jitter + 1)
            if self._jitter_rng is not None else 0
        )
        if self.l2.access(line_addr):
            self.stats.l2_hits += 1
            return start + cfg.l2_hit_latency + jitter
        self.stats.l2_misses += 1
        dram_start = max(start + cfg.l2_hit_latency, self._dram_free)
        self._dram_free = dram_start + cfg.dram_service_interval
        self.stats.dram_accesses += 1
        return dram_start + cfg.dram_latency + jitter

    def _classify(self, n_tx: int, sync: bool) -> None:
        if sync:
            self.stats.sync_transactions += n_tx
        else:
            self.stats.other_transactions += n_tx

    # ------------------------------------------------------------------

    def load(self, sm_id: int, addresses: np.ndarray, now: int,
             bypass_l1: bool = False, sync: bool = False) -> MemoryAccessResult:
        """A warp-level load of the given active-lane byte addresses."""
        cfg = self.config
        lines = coalesce(addresses, cfg.l1d.line_bytes)
        completion = now
        l1 = self.l1[sm_id]
        for line in lines:
            if not bypass_l1 and l1.access(line):
                self.stats.l1_hits += 1
                done = now + cfg.l1_hit_latency
            else:
                if not bypass_l1:
                    self.stats.l1_misses += 1
                done = self._l2_latency(line, now + cfg.l1_hit_latency)
            completion = max(completion, done)
        n_tx = len(lines)
        self.stats.load_transactions += n_tx
        self._classify(n_tx, sync)
        return MemoryAccessResult(completion, n_tx)

    def store(self, sm_id: int, addresses: np.ndarray, now: int,
              sync: bool = False) -> MemoryAccessResult:
        """Write-through, no-allocate store; evicts the local L1 lines."""
        cfg = self.config
        lines = coalesce(addresses, cfg.l1d.line_bytes)
        completion = now
        l1 = self.l1[sm_id]
        for line in lines:
            l1.invalidate(line)
            done = self._l2_latency(line, now)
            completion = max(completion, done)
        n_tx = len(lines)
        self.stats.store_transactions += n_tx
        self._classify(n_tx, sync)
        return MemoryAccessResult(completion, n_tx)

    def atomic(self, sm_id: int, addresses: np.ndarray, now: int,
               sync: bool = True) -> MemoryAccessResult:
        """Atomic RMW: bypasses L1, serialized per unique address at L2."""
        cfg = self.config
        unique = sorted(set(np.asarray(addresses, dtype=np.int64).tolist()))
        completion = now
        l1 = self.l1[sm_id]
        for addr in unique:
            line = addr // cfg.l1d.line_bytes * cfg.l1d.line_bytes
            l1.invalidate(line)
            done = self._l2_latency(
                line, now, service=cfg.atomic_service_interval
            ) + cfg.atomic_latency
            completion = max(completion, done)
        n_tx = len(unique)
        self.stats.atomic_transactions += n_tx
        self._classify(n_tx, sync)
        return MemoryAccessResult(completion, n_tx)

    def next_event_after(self, now: int) -> Optional[int]:
        """Earliest queued-resource free time after ``now`` (fast-forward)."""
        candidates = [t for t in self._bank_free if t > now]
        if self._dram_free > now:
            candidates.append(self._dram_free)
        return min(candidates) if candidates else None
