"""Memory-access coalescing.

A warp's per-lane byte addresses are merged into the minimal set of
cache-line-sized transactions, as GPU load/store units have done since
compute capability 2.x.  The number of transactions a warp generates is
both a timing input (each transaction occupies cache/DRAM bandwidth) and a
reported metric (paper Figures 1d and 13b count memory transactions).
"""

from __future__ import annotations

from typing import List

import numpy as np


def coalesce(addresses: np.ndarray, line_bytes: int) -> List[int]:
    """Unique cache-line base addresses touched by ``addresses``.

    Args:
        addresses: byte addresses of the active lanes.
        line_bytes: cache line size.

    Returns:
        Sorted list of line base addresses (one per memory transaction).
    """
    if addresses.size == 0:
        return []
    return sorted({a // line_bytes * line_bytes for a in addresses.tolist()})
