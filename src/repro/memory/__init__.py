"""Memory-system substrate: coalescer, caches, global memory, timing model.

Models the GPU memory hierarchy the paper's analysis depends on:

* per-SM L1 data caches that are **not** coherent (stores write through to
  L2 and do not allocate; other SMs may hold stale lines — exactly why GPU
  spin code polls with atomics or ``.cg``/volatile loads);
* a shared, banked L2 where all atomic operations are resolved;
* a flat DRAM latency/occupancy model behind the L2.
"""

from repro.memory.cache import Cache
from repro.memory.coalescer import coalesce
from repro.memory.memsys import GlobalMemory, MemoryAccessResult, MemorySubsystem

__all__ = [
    "Cache",
    "GlobalMemory",
    "MemoryAccessResult",
    "MemorySubsystem",
    "coalesce",
]
