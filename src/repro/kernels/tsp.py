"""TSP — compute-heavy tour evaluation with a lane-serialized global lock.

Mirrors the paper's Figure 6b pattern (from O'Neil et al.'s CUDA TSP):
each thread ("climber") evaluates a candidate tour cost with a long
arithmetic loop, then updates the global best under a single global spin
lock.  Critical-section execution is serialized across lanes of a warp
(``if (laneid == i)``), so the spin loop runs with one active lane —
the intra-warp serialization idiom that avoids SIMT-induced deadlock for
plain ``while(atomicCAS(...))`` loops.

Synchronization instructions are a tiny fraction of the total (the paper
reports <0.03%), so BOWS should neither help nor hurt much here; large
fixed back-off delays can hurt (Figure 10).

Invariant: the global best equals the minimum over all climbers' costs,
and the winner id is a climber achieving it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_SOURCE = r"""
    ld.param %r_data, [tour_data]
    ld.param %r_iters, [eval_iters]
    ld.param %r_best, [best_addr]
    ld.param %r_bestid, [best_id_addr]
    ld.param %r_glock, [global_lock]
    // --- tour evaluation: cost = sum of a pseudo-random walk ---
    shl %r_t0, %gtid, 2
    add %r_t0, %r_data, %r_t0
    ld.global %r_x, [%r_t0]
    mov %r_cost, 0
    mov %r_i, 0
EVAL_LOOP:
    // x = (x * 1103515245 + 12345) mod 2^31; cost += x mod 1024
    mul %r_x, %r_x, 1103515245
    add %r_x, %r_x, 12345
    and %r_x, %r_x, 2147483647
    rem %r_step, %r_x, 1024
    add %r_cost, %r_cost, %r_step
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, %r_iters
    @%p1 bra EVAL_LOOP
    // --- lane-serialized global-lock update of the best tour ---
    mov %r_lane, 0
SERIAL_LOOP:
    setp.eq %p2, %laneid, %r_lane
    @!%p2 bra SKIP
SPIN:
    atom.cas %r_old, [%r_glock], 0, 1 !lock_try !sync
    setp.ne %p3, %r_old, 0 !sync
    @%p3 bra SPIN !sib !sync
    // critical section: best = min(best, cost)
    ld.global.cg %r_cur, [%r_best]
    setp.lt %p4, %r_cost, %r_cur
    @!%p4 bra RELEASE
    st.global [%r_best], %r_cost
    st.global [%r_bestid], %gtid
RELEASE:
    membar !sync
    atom.exch %r_ig, [%r_glock], 0 !lock_release !sync
SKIP:
    add %r_lane, %r_lane, 1
    setp.lt %p5, %r_lane, 32
    @%p5 bra SERIAL_LOOP
    exit
"""


def build_tsp(
    n_threads: int = 512,
    eval_iters: int = 64,
    block_dim: int = 256,
    seed: int = 13,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Global-lock best-tour update (paper's TSP benchmark, Figure 6b)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    rng = np.random.default_rng(seed)
    data = rng.integers(1, 1 << 20, size=n_threads, dtype=np.int64)

    if memory is None:
        memory = GlobalMemory(max(1 << 17, n_threads + 4096))
    tour_data = memory.alloc(n_threads)
    best_addr = memory.alloc(1)
    best_id_addr = memory.alloc(1)
    global_lock = memory.alloc(1)
    memory.store_array(tour_data, data.tolist())
    big = (1 << 31) - 1
    memory.write_word(best_addr, big)
    memory.write_word(best_id_addr, -1)

    program = assemble(_SOURCE, name="tsp")
    params = {
        "tour_data": tour_data,
        "eval_iters": eval_iters,
        "best_addr": best_addr,
        "best_id_addr": best_id_addr,
        "global_lock": global_lock,
    }

    def expected_cost(x0: int) -> int:
        x, cost = int(x0), 0
        for _ in range(eval_iters):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
            cost += x % 1024
        return cost

    costs = np.array([expected_cost(x) for x in data], dtype=np.int64)

    def validate(mem: GlobalMemory) -> None:
        best = mem.read_word(best_addr)
        best_id = mem.read_word(best_id_addr)
        require(best == int(costs.min()), "global best is not the minimum")
        require(
            0 <= best_id < n_threads and int(costs[best_id]) == best,
            "winner id does not achieve the best cost",
        )
        require(mem.read_word(global_lock) == 0, "global lock left held")

    return Workload(
        name="tsp",
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "eval_iters": eval_iters},
    )
