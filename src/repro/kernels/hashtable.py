"""HT — chained hashtable insertion under per-bucket spin locks.

The paper's running example (Figure 1a, from *CUDA by Example*): every
thread inserts keys into a chained hashtable; a bucket's chain head is
protected by a spin lock acquired with ``atomicCAS`` and released with
``atomicExch``, using the SIMT-safe "done flag" pattern so that lanes
which acquired the lock can reach the release before reconverging with
their still-spinning warp-mates.

Contention is controlled by ``n_buckets`` — fewer buckets, more
inter-warp conflicts (Figures 1 and 16).

``build_hashtable_backoff`` adds the software back-off delay loop of
Figure 3a (``clock()``-polling for ``DELAY_FACTOR * blockIdx.x`` cycles
after every failed acquire) used to show that software-only back-off
wastes issue slots.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_NODE_WORDS = 2  # [key, next]; "next" stores (node index + 1), 0 = nil.

#: Words between consecutive bucket mutexes.  CUDA by Example allocates
#: each ``Lock``'s mutex with its own ``cudaMalloc``, so bucket locks
#: live on distinct cache lines; packing them into one array would
#: serialize every bucket's atomics on a single L2 bank — an artifact,
#: not the benchmark.  32 words = one 128-byte line per lock.
_LOCK_STRIDE_WORDS = 32

_BODY = r"""
    ld.param %r_locks, [locks]
    ld.param %r_heads, [heads]
    ld.param %r_keys, [keys]
    ld.param %r_nodes, [nodes]
    ld.param %r_nbuckets, [n_buckets]
    ld.param %r_ipt, [items_per_thread]
    mov %r_it, 0
ITEM_LOOP:
    // idx = gtid * items_per_thread + it
    mul %r_idx, %gtid, %r_ipt
    add %r_idx, %r_idx, %r_it
    // key = keys[idx]
    shl %r_t0, %r_idx, 2
    add %r_t0, %r_keys, %r_t0
    ld.global %r_key, [%r_t0]
    // bucket = key % n_buckets
    rem %r_b, %r_key, %r_nbuckets
    // mutexes are one cache line apart (separately-allocated locks)
    shl %r_t1, %r_b, 7
    add %r_mutex, %r_locks, %r_t1
    shl %r_t1, %r_b, 2
    add %r_headp, %r_heads, %r_t1
    mov %r_done, 0
SPIN:
    atom.cas %r_old, [%r_mutex], 0, 1 !lock_try !sync
    setp.eq %p2, %r_old, 0 !sync
    @%p2 bra CRIT !sync
{FAIL_PATH}
    bra JOIN !sync
CRIT:
    // --- critical section: push node onto the bucket chain ---
    shl %r_t2, %r_idx, 3
    add %r_node, %r_nodes, %r_t2
    st.global [%r_node], %r_key
    ld.global.cg %r_next, [%r_headp]
    st.global [%r_node+4], %r_next
    add %r_t3, %r_idx, 1
    st.global [%r_headp], %r_t3
    mov %r_done, 1
    membar !sync
    atom.exch %r_ig, [%r_mutex], 0 !lock_release !sync
JOIN:
    setp.eq %p3, %r_done, 0 !sync
    @%p3 bra SPIN !sib !sync
    add %r_it, %r_it, 1
    setp.lt %p4, %r_it, %r_ipt
    @%p4 bra ITEM_LOOP
    exit
"""

# Figure 3a: poll clock() until DELAY_FACTOR * blockIdx.x cycles elapsed.
# Note this loop's setp sources change every iteration (the clock ticks),
# so DDOS correctly classifies it as a normal loop, not a spin.
_BACKOFF_PATH = r"""
    ld.param %r_factor, [delay_factor] !sync
    clock %r_start !sync
DELAY_LOOP:
    clock %r_now !sync
    sub %r_cyc, %r_now, %r_start !sync
    mul %r_lim, %r_factor, %ctaid !sync
    setp.lt %p5, %r_cyc, %r_lim !sync
    @%p5 bra DELAY_LOOP !sync
"""


def _source(software_backoff: bool) -> str:
    fail_path = _BACKOFF_PATH if software_backoff else ""
    return _BODY.replace("{FAIL_PATH}", fail_path)


def _build(
    n_threads: int,
    n_buckets: int,
    items_per_thread: int,
    block_dim: int,
    seed: int,
    software_backoff: bool,
    delay_factor: int,
    memory: Optional[GlobalMemory],
) -> Workload:
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_items = n_threads * items_per_thread
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 20, size=n_items, dtype=np.int64)

    if memory is None:
        memory = GlobalMemory(
            max(1 << 18,
                8 * n_items + (2 + _LOCK_STRIDE_WORDS) * n_buckets + 4096)
        )
    locks = memory.alloc(n_buckets * _LOCK_STRIDE_WORDS)
    heads = memory.alloc(n_buckets)
    keys_base = memory.alloc(n_items)
    nodes = memory.alloc(_NODE_WORDS * n_items)
    memory.store_array(keys_base, keys.tolist())

    params = {
        "locks": locks,
        "heads": heads,
        "keys": keys_base,
        "nodes": nodes,
        "n_buckets": n_buckets,
        "items_per_thread": items_per_thread,
    }
    name = "ht_backoff" if software_backoff else "ht"
    if software_backoff:
        params["delay_factor"] = delay_factor
    program = assemble(_source(software_backoff), name=name)

    def validate(mem: GlobalMemory) -> None:
        """Walk every chain: all insertions present exactly once."""
        seen = set()
        head_words = mem.load_array(heads, n_buckets)
        for bucket in range(n_buckets):
            node_plus_1 = int(head_words[bucket])
            steps = 0
            while node_plus_1 != 0:
                idx = node_plus_1 - 1
                require(0 <= idx < n_items, f"chain points past nodes: {idx}")
                require(idx not in seen, f"node {idx} linked twice")
                seen.add(idx)
                key = mem.read_word(nodes + 8 * idx)
                require(
                    key == int(keys[idx]),
                    f"node {idx} lost its key ({key} != {int(keys[idx])})",
                )
                require(
                    key % n_buckets == bucket,
                    f"key {key} filed under bucket {bucket}",
                )
                node_plus_1 = mem.read_word(nodes + 8 * idx + 4)
                steps += 1
                require(steps <= n_items, "cycle in bucket chain")
        require(
            len(seen) == n_items,
            f"lost insertions: {n_items - len(seen)} of {n_items} missing "
            "(mutual exclusion violated)",
        )

    return Workload(
        name=name,
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_threads": n_threads,
            "n_buckets": n_buckets,
            "items_per_thread": items_per_thread,
            "n_items": n_items,
        },
    )


def build_hashtable(
    n_threads: int = 512,
    n_buckets: int = 64,
    items_per_thread: int = 2,
    block_dim: int = 256,
    seed: int = 7,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Chained hashtable insertion (paper Figure 1a)."""
    return _build(
        n_threads, n_buckets, items_per_thread, block_dim, seed,
        software_backoff=False, delay_factor=0, memory=memory,
    )


def build_hashtable_backoff(
    n_threads: int = 512,
    n_buckets: int = 64,
    items_per_thread: int = 2,
    block_dim: int = 256,
    seed: int = 7,
    delay_factor: int = 100,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Hashtable insertion with the Figure 3a software back-off delay."""
    return _build(
        n_threads, n_buckets, items_per_thread, block_dim, seed,
        software_backoff=True, delay_factor=delay_factor, memory=memory,
    )
