"""Workload kernels written in the PTX-like ISA.

Synchronization kernels (paper Section V):

======  =============================================================
name    pattern
======  =============================================================
ht      chained hashtable insertion, one lock per bucket (Figure 1a)
atm     bank transfers, two nested locks per transaction (Figure 6a)
tsp     lane-serialized global lock around a min-update (Figure 6b)
nw1     lock-protected wavefront, top-left to bottom-right
nw2     lock-protected wavefront, opposite traversal
tb      BarnesHut tree building: per-cell locks + throttling barrier
st      BarnesHut sort: wait-and-signal down a tree (Figure 6c)
ds      cloth distance solver: nested per-particle locks
======  =============================================================

Synchronization-free kernels (Rodinia stand-ins for DDOS accuracy and
Figure 14): ``kmeans``, ``ms`` (merge-sort-style, power-of-two stride —
the MODULO-hash false-detection trigger), ``hl`` (heart-wall-style),
``vecadd``, ``reduction``, ``stencil``, ``histogram``.
"""

from repro.kernels.base import Workload, WorkloadError, WorkloadReuseError
from repro.kernels.hashtable import build_hashtable, build_hashtable_backoff
from repro.kernels.atm import build_atm
from repro.kernels.tsp import build_tsp
from repro.kernels.nw import build_nw
from repro.kernels.barneshut import build_st, build_tb
from repro.kernels.cloth import build_ds
from repro.kernels import rodinia

#: Synchronization kernels in the paper's Figure 2/9 order.
SYNC_KERNELS = ("tb", "st", "ds", "atm", "ht", "tsp", "nw1", "nw2")

#: Synchronization-free kernels (Rodinia stand-ins).
SYNC_FREE_KERNELS = (
    "kmeans", "ms", "hl", "vecadd", "reduction", "stencil", "histogram",
)

_BUILDERS = {
    "ht": build_hashtable,
    "ht_backoff": build_hashtable_backoff,
    "atm": build_atm,
    "tsp": build_tsp,
    "nw1": lambda **kw: build_nw(direction=1, **kw),
    "nw2": lambda **kw: build_nw(direction=2, **kw),
    "tb": build_tb,
    "st": build_st,
    "ds": build_ds,
    "kmeans": rodinia.build_kmeans,
    "ms": rodinia.build_mergesort,
    "hl": rodinia.build_heartwall,
    "vecadd": rodinia.build_vecadd,
    "reduction": rodinia.build_reduction,
    "stencil": rodinia.build_stencil,
    "histogram": rodinia.build_histogram,
}


def kernel_names():
    return sorted(_BUILDERS)


def build(name: str, **params) -> Workload:
    """Build a named workload with the given parameters."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {kernel_names()}"
        ) from None
    return builder(**params)


__all__ = [
    "SYNC_FREE_KERNELS",
    "SYNC_KERNELS",
    "Workload",
    "WorkloadError",
    "WorkloadReuseError",
    "build",
    "kernel_names",
]
