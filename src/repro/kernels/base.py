"""Workload container shared by all kernels.

A :class:`Workload` couples a ready-to-run :class:`KernelLaunch` with the
global-memory image it operates on and a ``validate`` callback that checks
functional correctness after simulation (e.g. that every hashtable
insertion survived — the mutual-exclusion witness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch


class WorkloadError(AssertionError):
    """A post-run validation failed: the kernel computed a wrong result."""


class WorkloadReuseError(RuntimeError):
    """A Workload was executed twice: its memory image is already mutated."""


@dataclass
class Workload:
    """A runnable, verifiable kernel instance."""

    name: str
    launch: KernelLaunch
    memory: GlobalMemory
    validate: Callable[[GlobalMemory], None]
    #: Free-form workload facts (sizes, contention knobs) for reporting.
    meta: Dict[str, int] = field(default_factory=dict)
    #: Set by the harness once this workload has been executed; running
    #: mutates ``memory``, so a consumed workload must never run again.
    consumed: bool = False

    @property
    def n_threads(self) -> int:
        return self.launch.grid_dim * self.launch.block_dim


def require(condition: bool, message: str) -> None:
    if not condition:
        raise WorkloadError(message)


def grid_geometry(n_threads: int, block_dim: int = 256) -> tuple:
    """(grid_dim, block_dim) covering exactly ``n_threads`` threads."""
    if n_threads % block_dim:
        raise ValueError(
            f"n_threads={n_threads} must be a multiple of block_dim={block_dim}"
        )
    return n_threads // block_dim, block_dim
