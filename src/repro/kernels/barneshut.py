"""BarnesHut kernels: TB (tree building) and ST (sort) patterns.

**TB** — lock-based insertion into tree cells, throttled by a CTA-wide
barrier between insertion rounds.  The paper notes TB is hand-optimized
to reduce contention this way, which is why BOWS has minimal impact on it
(Section VI): the barrier already keeps most warps out of the lock
competition, and blocked warps consume no issue slots.

**ST** — wait-and-signal propagation down a binary tree (Figure 6c): a
thread polls ``start_d[k]`` until the parent's processing makes it
non-negative, then writes its sort output and signals its children.
Crucially the poll and the work share one loop whose body is predicated
on readiness — the loop reconverges every iteration, so producer lanes
keep running even when consumer lanes of the same warp are still waiting
(this is how the real BarnesHut code avoids SIMT-induced deadlock).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_TB_SOURCE = r"""
    ld.param %r_locks, [locks]
    ld.param %r_cnt, [counts]
    ld.param %r_slots, [slots]
    ld.param %r_bodies, [bodies]
    ld.param %r_ncells, [n_cells]
    ld.param %r_cap, [cap]
    ld.param %r_ipt, [items_per_thread]
    mov %r_it, 0
ROUND:
    // Throttle: all warps of the CTA re-align before the next wave of
    // lock acquisitions (the paper's TB-specific optimization).
    bar.sync
    mul %r_idx, %gtid, %r_ipt
    add %r_idx, %r_idx, %r_it
    shl %r_t0, %r_idx, 2
    add %r_t0, %r_bodies, %r_t0
    ld.global %r_body, [%r_t0]
    rem %r_cell, %r_body, %r_ncells
    shl %r_t1, %r_cell, 2
    add %r_lock, %r_locks, %r_t1
    add %r_cntp, %r_cnt, %r_t1
    mov %r_done, 0
SPIN:
    atom.cas %r_old, [%r_lock], 0, 1 !lock_try !sync
    setp.eq %p1, %r_old, 0 !sync
    @%p1 bra CRIT !sync
    bra JOIN !sync
CRIT:
    // --- critical section: append this body to the cell ---
    ld.global.cg %r_c, [%r_cntp]
    mul %r_t2, %r_cell, %r_cap
    add %r_t2, %r_t2, %r_c
    shl %r_t2, %r_t2, 2
    add %r_t2, %r_slots, %r_t2
    st.global [%r_t2], %r_idx
    add %r_c, %r_c, 1
    st.global [%r_cntp], %r_c
    mov %r_done, 1
    membar !sync
    atom.exch %r_ig, [%r_lock], 0 !lock_release !sync
JOIN:
    setp.eq %p2, %r_done, 0 !sync
    @%p2 bra SPIN !sib !sync
    add %r_it, %r_it, 1
    setp.lt %p3, %r_it, %r_ipt
    @%p3 bra ROUND
    exit
"""

_ST_TEMPLATE = r"""
    ld.param %r_startd, [startd]
    ld.param %r_sortd, [sortd]
    ld.param %r_ncells, [n_cells]
    ld.param %r_T, [n_threads]
    mov %r_k, %gtid
LOOP:
    setp.ge %p1, %r_k, %r_ncells
    @%p1 bra DONE
    shl %r_t0, %r_k, 2
    add %r_sa, %r_startd, %r_t0
    ld.global.cg %r_start, [%r_sa] !sync
    setp.lt %p2, %r_start, 0 !sync
    @%p2 bra CONT !wait_branch !sync
    // --- ready: place the cell's bodies (sort work), then signal ---
    // The sort work is straight-line, as in the real BarnesHut kernel
    // (an inner loop here would hand DDOS a non-spin backward branch
    // executed by warps whose profiled thread is still waiting).
    mov %r_h, %r_k
{WORK}
    add %r_so, %r_sortd, %r_t0
    st.global [%r_so], %r_start
    shl %r_c1, %r_k, 1
    add %r_c1, %r_c1, 1
    setp.ge %p3, %r_c1, %r_ncells
    @%p3 bra NOKIDS
    add %r_sv, %r_start, 1
    shl %r_t1, %r_c1, 2
    add %r_t1, %r_startd, %r_t1
    membar
    st.global [%r_t1], %r_sv
    add %r_c2, %r_c1, 1
    setp.ge %p4, %r_c2, %r_ncells
    @%p4 bra NOKIDS
    add %r_t2, %r_t1, 4
    st.global [%r_t2], %r_sv
NOKIDS:
    add %r_k, %r_k, %r_T
CONT:
    bra LOOP !sib !sync
DONE:
    exit
"""


def build_tb(
    n_threads: int = 512,
    n_cells: int = 64,
    items_per_thread: int = 2,
    block_dim: int = 256,
    seed: int = 17,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """BarnesHut tree-building: per-cell locks + barrier throttling."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_items = n_threads * items_per_thread
    rng = np.random.default_rng(seed)
    bodies = rng.integers(0, 1 << 20, size=n_items, dtype=np.int64)
    cells_of = bodies % n_cells
    counts = np.bincount(cells_of, minlength=n_cells)
    cap = int(counts.max()) if n_items else 1

    if memory is None:
        memory = GlobalMemory(
            max(1 << 18, n_items + n_cells * (cap + 2) + 4096)
        )
    locks = memory.alloc(n_cells)
    counts_base = memory.alloc(n_cells)
    slots = memory.alloc(n_cells * cap)
    bodies_base = memory.alloc(n_items)
    memory.store_array(bodies_base, bodies.tolist())
    memory.store_array(slots, [-1] * (n_cells * cap))

    program = assemble(_TB_SOURCE, name="tb")
    params = {
        "locks": locks,
        "counts": counts_base,
        "slots": slots,
        "bodies": bodies_base,
        "n_cells": n_cells,
        "cap": cap,
        "items_per_thread": items_per_thread,
    }

    def validate(mem: GlobalMemory) -> None:
        got_counts = mem.load_array(counts_base, n_cells)
        require(
            (got_counts == counts).all(),
            "cell occupancy diverges (lost insertion under the cell lock)",
        )
        slot_words = mem.load_array(slots, n_cells * cap)
        for cell in range(n_cells):
            expected = {
                int(i) for i in np.nonzero(cells_of == cell)[0]
            }
            got = {
                int(slot_words[cell * cap + s])
                for s in range(int(counts[cell]))
            }
            require(
                got == expected,
                f"cell {cell} holds wrong bodies (duplicate ticket)",
            )

    return Workload(
        name="tb",
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_threads": n_threads,
            "n_cells": n_cells,
            "items_per_thread": items_per_thread,
        },
    )


def _st_source(cell_work: int) -> str:
    work = "\n".join(
        "    mad %r_h, %r_h, 5, 3\n    and %r_h, %r_h, 65535"
        for _ in range(cell_work)
    )
    return _ST_TEMPLATE.replace("{WORK}", work)


def build_st(
    n_threads: int = 256,
    n_cells: int = 1024,
    cell_work: int = 12,
    block_dim: int = 128,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """BarnesHut sort: wait-and-signal down a binary tree (Figure 6c)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)

    if memory is None:
        memory = GlobalMemory(max(1 << 17, 2 * n_cells + 4096))
    startd = memory.alloc(n_cells)
    sortd = memory.alloc(n_cells)
    memory.store_array(startd, [0] + [-1] * (n_cells - 1))
    memory.store_array(sortd, [-1] * n_cells)

    program = assemble(_st_source(cell_work), name="st")
    params = {
        "startd": startd,
        "sortd": sortd,
        "n_cells": n_cells,
        "n_threads": n_threads,
        "cell_work": cell_work,
    }

    depths = np.zeros(n_cells, dtype=np.int64)
    for k in range(1, n_cells):
        depths[k] = depths[(k - 1) // 2] + 1

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(sortd, n_cells)
        require(
            (got == depths).all(),
            "sort output wrong: a cell ran before its parent signaled",
        )
        starts = mem.load_array(startd, n_cells)
        require((starts >= 0).all(), "a cell was never signaled")

    return Workload(
        name="st",
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "n_cells": n_cells},
    )
