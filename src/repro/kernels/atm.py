"""ATM — bank transfers guarded by two nested spin locks (Figure 6a).

Each thread performs ``rounds`` transfers of one unit between two
pseudo-randomly chosen accounts.  A transfer acquires the source-account
lock, then the destination-account lock; if the inner acquire fails the
outer lock is *released* before retrying — the paper's deadlock-free
nested-locking pattern for SIMT machines.

Invariant checked after the run: the total balance is conserved and
every account's delta matches the transfer ledger (mutual exclusion
witness for read-modify-write sections under two locks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_SOURCE = r"""
    ld.param %r_locks, [locks]
    ld.param %r_accounts, [accounts]
    ld.param %r_src_tbl, [src_table]
    ld.param %r_dst_tbl, [dst_table]
    ld.param %r_rounds, [rounds]
    mov %r_round, 0
ROUND_LOOP:
    // transaction index = gtid * rounds + round
    mul %r_tx, %gtid, %r_rounds
    add %r_tx, %r_tx, %r_round
    shl %r_t0, %r_tx, 2
    add %r_t1, %r_src_tbl, %r_t0
    ld.global %r_src, [%r_t1]
    add %r_t1, %r_dst_tbl, %r_t0
    ld.global %r_dst, [%r_t1]
    // Balance addresses follow the transfer direction; lock acquisition
    // is ordered by account id (outer = lower id) so that no global
    // hold-and-wait cycle can form.  Without the ordering, two lanes of
    // one warp wanting (a,b) and (b,a) retry in lockstep forever — a
    // deterministic livelock on SIMT hardware.
    shl %r_t2, %r_src, 2
    add %r_bal1, %r_accounts, %r_t2
    shl %r_t3, %r_dst, 2
    add %r_bal2, %r_accounts, %r_t3
    min %r_lo, %r_src, %r_dst
    max %r_hi, %r_src, %r_dst
    shl %r_t2, %r_lo, 2
    add %r_lock1, %r_locks, %r_t2
    shl %r_t3, %r_hi, 2
    add %r_lock2, %r_locks, %r_t3
    mov %r_done, 0
SPIN:
    atom.cas %r_o1, [%r_lock1], 0, 1 !lock_try !sync
    setp.eq %p1, %r_o1, 0 !sync
    @%p1 bra TRY2 !sync
    bra JOIN !sync
TRY2:
    atom.cas %r_o2, [%r_lock2], 0, 1 !lock_try !sync
    setp.eq %p2, %r_o2, 0 !sync
    @%p2 bra CRIT !sync
    // inner acquire failed: release the outer lock and retry
    atom.exch %r_ig, [%r_lock1], 0 !lock_release !sync
    bra JOIN !sync
CRIT:
    // --- critical section: move one unit from src to dst ---
    ld.global.cg %r_b1, [%r_bal1]
    ld.global.cg %r_b2, [%r_bal2]
    sub %r_b1, %r_b1, 1
    add %r_b2, %r_b2, 1
    st.global [%r_bal1], %r_b1
    st.global [%r_bal2], %r_b2
    membar !sync
    atom.exch %r_ig, [%r_lock2], 0 !lock_release !sync
    atom.exch %r_ig, [%r_lock1], 0 !lock_release !sync
    mov %r_done, 1
JOIN:
    setp.eq %p3, %r_done, 0 !sync
    @%p3 bra SPIN !sib !sync
    add %r_round, %r_round, 1
    setp.lt %p4, %r_round, %r_rounds
    @%p4 bra ROUND_LOOP
    exit
"""


def build_atm(
    n_threads: int = 512,
    n_accounts: int = 128,
    rounds: int = 2,
    initial_balance: int = 1000,
    block_dim: int = 256,
    seed: int = 11,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Nested-lock bank transfers (paper's ATM benchmark, Figure 6a)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_tx = n_threads * rounds
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_accounts, size=n_tx, dtype=np.int64)
    offset = rng.integers(1, n_accounts, size=n_tx, dtype=np.int64)
    dst = (src + offset) % n_accounts  # distinct from src by construction

    if memory is None:
        memory = GlobalMemory(max(1 << 18, 8 * n_tx + 2 * n_accounts + 4096))
    locks = memory.alloc(n_accounts)
    accounts = memory.alloc(n_accounts)
    src_table = memory.alloc(n_tx)
    dst_table = memory.alloc(n_tx)
    memory.store_array(accounts, [initial_balance] * n_accounts)
    memory.store_array(src_table, src.tolist())
    memory.store_array(dst_table, dst.tolist())

    program = assemble(_SOURCE, name="atm")
    params = {
        "locks": locks,
        "accounts": accounts,
        "src_table": src_table,
        "dst_table": dst_table,
        "rounds": rounds,
    }

    expected = np.full(n_accounts, initial_balance, dtype=np.int64)
    np.subtract.at(expected, src, 1)
    np.add.at(expected, dst, 1)

    def validate(mem: GlobalMemory) -> None:
        balances = mem.load_array(accounts, n_accounts)
        require(
            int(balances.sum()) == initial_balance * n_accounts,
            "total balance not conserved (lost update under nested locks)",
        )
        mismatches = int((balances != expected).sum())
        require(
            mismatches == 0,
            f"{mismatches} account balances diverge from the ledger",
        )
        lock_words = mem.load_array(locks, n_accounts)
        require(int(lock_words.sum()) == 0, "a lock was left held")

    return Workload(
        name="atm",
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_threads": n_threads,
            "n_accounts": n_accounts,
            "rounds": rounds,
            "n_transactions": n_tx,
        },
    )
