"""NW — wavefront propagation with per-row wait/signal + locked updates.

Following the fine-grained dataflow formulation of Li et al. [16], the
scoring grid is processed as a pipeline of rows: one *warp* owns each
row and sweeps it in 32-column chunks.  Before computing a chunk, every
lane of the warp polls the predecessor row's progress counter — a
warp-coherent busy-wait (all lanes spin together, the natural tiling of
the real code) — and after computing it, lane 0 publishes the row's own
progress under the row lock.

This gives NW the paper's profile: lock traffic dominated by successful
acquires (the publish lock is rarely contended), heavy busy-wait
iterations from downstream rows polling upstream progress, and a strict
age order — younger rows can make no progress before older rows, which
is why NW "prefers GTO over LRR" (Section VI).

NW1 and NW2 traverse the grid in opposite column directions.

DP recurrence (lane-parallel): ``v[r][c] = max(v[r-1][c], v[r-1][c-1])
+ cost(r, c)`` for NW1, mirrored for NW2; the scored grid is validated
against a sequential replay.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_TEMPLATE = r"""
    ld.param %r_locks, [locks]
    ld.param %r_prog, [progress]
    ld.param %r_grid, [grid]
    ld.param %r_ncols, [n_cols]
    ld.param %r_nchunks, [n_chunks]
    ld.param %r_dir, [direction]
    // One warp per row; all lanes of the warp share the row.
    shr %r_row, %gtid, 5
    // progress/locks carry a leading boundary entry (index 0 preset to
    // n_chunks): poll index row, publish index row + 1.
    shl %r_t0, %r_row, 2
    add %r_progp, %r_prog, %r_t0
    add %r_lockm, %r_locks, %r_t0
    add %r_lockm, %r_lockm, 4
    add %r_progm, %r_progp, 4
    // Storage rows have halo columns on both sides: width n_cols + 2.
    add %r_width, %r_ncols, 2
    mul %r_t1, %r_row, %r_width
    shl %r_t1, %r_t1, 2
    add %r_upbase, %r_grid, %r_t1
    shl %r_t2, %r_width, 2
    add %r_mybase, %r_upbase, %r_t2
    mov %r_chunk, 0
CHUNK_LOOP:
    add %r_need, %r_chunk, 1
WAIT:
    // Warp-coherent busy-wait on the predecessor row's progress: all
    // lanes poll the flag together (volatile read in the real code —
    // ``.cg`` bypasses the non-coherent L1), so warps are either fully
    // waiting or fully computing, the natural tiling of dataflow NW.
    ld.global.cg %r_pp, [%r_progp] !sync
    setp.lt %p1, %r_pp, %r_need !sync
    @%p1 bra WAIT !sib !wait_branch !sync
    // col (traversal order) = chunk*32 + laneid, mirrored for NW2.
    shl %r_c, %r_chunk, 5
    add %r_c, %r_c, %laneid
    setp.eq %p_d, %r_dir, 1
    sub %r_rc, %r_ncols, 1
    sub %r_rc, %r_rc, %r_c
    selp %r_col, %r_c, %r_rc, %p_d
    // Storage column = col + 1 (halo at 0).  "Behind" neighbour is
    // col-1 for NW1 and col+1 for NW2.
    add %r_sc, %r_col, 1
    shl %r_t3, %r_sc, 2
    add %r_upaddr, %r_upbase, %r_t3
    ld.global.cg %r_up, [%r_upaddr]
    selp %r_boff, -4, 4, %p_d
    add %r_t4, %r_upaddr, %r_boff
    ld.global.cg %r_ub, [%r_t4]
    max %r_val, %r_up, %r_ub
    // cost(row, col) = ((row + 1) * (col + 3)) % 17
    add %r_t5, %r_row, 1
    add %r_t6, %r_col, 3
    mul %r_t7, %r_t5, %r_t6
    rem %r_t7, %r_t7, 17
    add %r_val, %r_val, %r_t7
    // Scoring work per cell (substitution-matrix / gap evaluation in
    // the real NW): straight-line hash mixing, cell_work rounds.  An
    // inner loop here would hand DDOS a non-spin backward branch
    // executed by warps whose profiled thread is still waiting.
{WORK}
    add %r_celladdr, %r_mybase, %r_t3
    st.global [%r_celladdr], %r_val
    // Lane 0 publishes the row's progress under the row lock.
    setp.ne %p2, %laneid, 0
    @%p2 bra SKIPPUB
    membar !sync
ACQ:
    // The publish lock is only ever taken by this warp's lane 0, so
    // this acquire loop never actually spins at runtime — it is not
    // annotated !sib (ground truth = branches that induce spinning)
    // and the static lint finding is waived instead.
    atom.cas %r_o, [%r_lockm], 0, 1 !lock_try !sync
    setp.ne %p3, %r_o, 0 !sync
    @%p3 bra ACQ !waive_sib001 !sync
    ld.global.cg %r_mp, [%r_progm] !sync
    add %r_mp, %r_mp, 1 !sync
    st.global [%r_progm], %r_mp !sync
    membar !sync
    atom.exch %r_ig, [%r_lockm], 0 !lock_release !sync
SKIPPUB:
    add %r_chunk, %r_chunk, 1
    setp.lt %p4, %r_chunk, %r_nchunks
    @%p4 bra CHUNK_LOOP
    exit
"""


def _expected_grid(n_rows: int, n_cols: int, direction: int,
                   cell_work: int) -> np.ndarray:
    """Sequential replay; storage is (n_rows+1) x (n_cols+2) with halos."""
    width = n_cols + 2
    grid = np.zeros((n_rows + 1, width), dtype=np.int64)
    for r in range(n_rows):
        cols = range(n_cols) if direction == 1 else range(n_cols - 1, -1, -1)
        for col in cols:
            sc = col + 1
            behind = sc - 1 if direction == 1 else sc + 1
            up = int(grid[r][sc])
            ub = int(grid[r][behind]) if 0 <= behind < width else 0
            cost = ((r + 1) * (col + 3)) % 17
            value = max(up, ub) + cost
            for _ in range(cell_work):
                value = (value * 3 + 7) & 0xFFFF
            grid[r + 1][sc] = value
    return grid


def build_nw(
    direction: int = 1,
    n_threads: int = 768,
    n_cols: int = 96,
    cell_work: int = 12,
    block_dim: int = 256,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Wavefront kernel; ``direction`` 1 = NW1 (L→R), 2 = NW2 (R→L).

    One warp per row: ``n_threads`` must be a multiple of the warp size
    and ``n_cols`` a multiple of 32.  Every row's warp must be resident
    at once (the pipeline stalls otherwise), so keep ``n_threads``
    within the GPU's total thread capacity.
    """
    if direction not in (1, 2):
        raise ValueError("direction must be 1 (NW1) or 2 (NW2)")
    if n_threads % 32:
        raise ValueError("n_threads must be a multiple of the warp size")
    if n_cols % 32 or n_cols == 0:
        raise ValueError("n_cols must be a positive multiple of 32")
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_rows = n_threads // 32
    n_chunks = n_cols // 32
    width = n_cols + 2

    if memory is None:
        memory = GlobalMemory(
            max(1 << 17, (n_rows + 1) * width + 2 * n_rows + 4096)
        )
    locks = memory.alloc(n_rows + 1)
    progress = memory.alloc(n_rows + 1)
    grid = memory.alloc((n_rows + 1) * width)
    # Boundary entry: the virtual row above row 0 is always complete.
    memory.store_array(progress, [n_chunks] + [0] * n_rows)

    name = f"nw{direction}"
    work = "\n".join(
        "    mad %r_val, %r_val, 3, 7\n    and %r_val, %r_val, 65535"
        for _ in range(cell_work)
    )
    program = assemble(_TEMPLATE.replace("{WORK}", work), name=name)
    params = {
        "locks": locks,
        "progress": progress,
        "grid": grid,
        "n_cols": n_cols,
        "n_chunks": n_chunks,
        "direction": direction,
        "cell_work": cell_work,
    }

    expected = _expected_grid(n_rows, n_cols, direction, cell_work)

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(grid, (n_rows + 1) * width)
        got = got.reshape(n_rows + 1, width)
        mismatches = int((got != expected).sum())
        require(
            mismatches == 0,
            f"{mismatches} wavefront cells wrong (dependency violated)",
        )
        prog = mem.load_array(progress, n_rows + 1)
        require(
            (prog == n_chunks).all(), "a row did not complete all chunks"
        )
        lock_words = mem.load_array(locks, n_rows + 1)
        require(int(lock_words.sum()) == 0, "a row lock was left held")

    return Workload(
        name=name,
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_rows": n_rows,
            "n_cols": n_cols,
            "direction": direction,
            "n_chunks": n_chunks,
        },
    )
