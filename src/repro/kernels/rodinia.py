"""Synchronization-free kernels (Rodinia stand-ins, paper Sections V/VI-B).

These exercise DDOS's false-detection behaviour and provide the Figure 14
workloads:

* ``kmeans`` — the unit-stride copy loop of the paper's Figure 7c; its
  induction variable changes every iteration, so no hash scheme
  misclassifies it.
* ``ms`` (merge-sort style) and ``hl`` (heart-wall style) — loops whose
  induction variables increment by a power of two ≥ 2**k (k = hash
  width).  Under MODULO hashing the low k bits never change, the value
  history repeats, and DDOS *falsely* detects a spin — exactly the MS/HL
  false positives the paper reports; XOR hashing sees the high-bit
  changes and stays clean.
* ``reduction`` — barrier-synchronized tree reduction (stride halves).
* ``vecadd``, ``stencil`` — memory-bound streaming loops.
* ``histogram`` — atomics *without* a retry loop: exercises the
  "atomic-heavy but not spinning" case.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_KMEANS_SOURCE = r"""
    ld.param %r_in, [src]
    ld.param %r_out, [dst]
    ld.param %r_n, [per_thread]
    // Figure 7c: pointer-walking copy loop, unit-stride induction.
    mul %r_i, %gtid, %r_n
    add %r_end, %r_i, %r_n
    shl %r_pa, %r_i, 2
    add %r_pin, %r_in, %r_pa
    add %r_pout, %r_out, %r_pa
LOOP:
    ld.global %r_v, [%r_pin]
    st.global [%r_pout], %r_v
    add %r_pin, %r_pin, 4
    add %r_pout, %r_pout, 4
    add %r_i, %r_i, 1
    setp.lt %p4, %r_i, %r_end
    @%p4 bra LOOP
    exit
"""

_MS_SOURCE = r"""
    ld.param %r_in, [src]
    ld.param %r_out, [dst]
    ld.param %r_n, [n_elems]
    ld.param %r_stride, [stride]
    // Merge-sort-style pass: stride is a large power of two, so the
    // induction variable's low 8 bits never change -> MODULO-hash alias.
    mov %r_i, %gtid
MS_LOOP:
    shl %r_t0, %r_i, 2
    add %r_t1, %r_in, %r_t0
    ld.global %r_a, [%r_t1]
    add %r_t2, %r_out, %r_t0
    // "merge" step: keep the max of the element and its mirrored partner
    sub %r_m, %r_n, 1
    sub %r_m, %r_m, %r_i
    shl %r_t3, %r_m, 2
    add %r_t3, %r_in, %r_t3
    ld.global %r_b, [%r_t3]
    max %r_v, %r_a, %r_b
    st.global [%r_t2], %r_v
    add %r_i, %r_i, %r_stride
    setp.lt %p1, %r_i, %r_n
    @%p1 bra MS_LOOP
    exit
"""

_HL_SOURCE = r"""
    ld.param %r_in, [src]
    ld.param %r_acc, [dst]
    ld.param %r_n, [n_elems]
    ld.param %r_stride, [stride]
    // Heart-wall-style accumulation over a strided window; again a
    // power-of-two stride larger than the MODULO hash range.
    mov %r_i, %gtid
    mov %r_sum, 0
HL_LOOP:
    shl %r_t0, %r_i, 2
    add %r_t1, %r_in, %r_t0
    ld.global %r_v, [%r_t1]
    mad %r_sum, %r_v, 3, %r_sum
    add %r_i, %r_i, %r_stride
    setp.lt %p1, %r_i, %r_n
    @%p1 bra HL_LOOP
    shl %r_t2, %gtid, 2
    add %r_t3, %r_acc, %r_t2
    st.global [%r_t3], %r_sum
    exit
"""

_VECADD_SOURCE = r"""
    ld.param %r_a, [a]
    ld.param %r_b, [b]
    ld.param %r_c, [c]
    ld.param %r_n, [per_thread]
    mul %r_i, %gtid, %r_n
    add %r_end, %r_i, %r_n
VA_LOOP:
    shl %r_t0, %r_i, 2
    add %r_t1, %r_a, %r_t0
    ld.global %r_x, [%r_t1]
    add %r_t2, %r_b, %r_t0
    ld.global %r_y, [%r_t2]
    add %r_z, %r_x, %r_y
    add %r_t3, %r_c, %r_t0
    st.global [%r_t3], %r_z
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, %r_end
    @%p1 bra VA_LOOP
    exit
"""

_REDUCTION_SOURCE = r"""
    ld.param %r_data, [data]
    ld.param %r_out, [out]
    // Tree reduction within the CTA over a per-CTA segment.
    ld.param %r_bdim, [block_dim]
    mul %r_base, %ctaid, %r_bdim
    add %r_g, %r_base, %tid
    shl %r_t0, %r_g, 2
    add %r_myaddr, %r_data, %r_t0
    shr %r_s, %r_bdim, 1
RED_LOOP:
    setp.ge %p1, %tid, %r_s
    @%p1 bra SKIP
    // data[g] += data[g + s]
    shl %r_t1, %r_s, 2
    add %r_peer, %r_myaddr, %r_t1
    ld.global %r_a, [%r_myaddr]
    ld.global.cg %r_b, [%r_peer]
    add %r_a, %r_a, %r_b
    st.global [%r_myaddr], %r_a
SKIP:
    bar.sync
    shr %r_s, %r_s, 1
    setp.gt %p2, %r_s, 0
    @%p2 bra RED_LOOP
    setp.ne %p3, %tid, 0
    @%p3 bra DONE
    ld.global.cg %r_sum, [%r_myaddr]
    shl %r_t2, %ctaid, 2
    add %r_t3, %r_out, %r_t2
    st.global [%r_t3], %r_sum
DONE:
    exit
"""

_STENCIL_SOURCE = r"""
    ld.param %r_in, [src]
    ld.param %r_out, [dst]
    ld.param %r_n, [per_thread]
    mul %r_i, %gtid, %r_n
    add %r_i, %r_i, 1
    add %r_end, %r_i, %r_n
ST_LOOP:
    shl %r_t0, %r_i, 2
    add %r_t1, %r_in, %r_t0
    ld.global %r_c, [%r_t1]
    ld.global %r_l, [%r_t1+-4]
    ld.global %r_r, [%r_t1+4]
    add %r_v, %r_l, %r_c
    add %r_v, %r_v, %r_r
    add %r_t2, %r_out, %r_t0
    st.global [%r_t2], %r_v
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, %r_end
    @%p1 bra ST_LOOP
    exit
"""

_HISTOGRAM_SOURCE = r"""
    ld.param %r_data, [data]
    ld.param %r_bins, [bins]
    ld.param %r_nbins, [n_bins]
    ld.param %r_n, [per_thread]
    mul %r_i, %gtid, %r_n
    add %r_end, %r_i, %r_n
HIST_LOOP:
    shl %r_t0, %r_i, 2
    add %r_t1, %r_data, %r_t0
    ld.global %r_v, [%r_t1]
    rem %r_b, %r_v, %r_nbins
    shl %r_t2, %r_b, 2
    add %r_t3, %r_bins, %r_t2
    atom.add %r_old, [%r_t3], 1
    add %r_i, %r_i, 1
    setp.lt %p1, %r_i, %r_end
    @%p1 bra HIST_LOOP
    exit
"""


def _alloc_and_fill(memory: GlobalMemory, values: np.ndarray) -> int:
    base = memory.alloc(len(values))
    memory.store_array(base, values.tolist())
    return base


def build_kmeans(
    n_threads: int = 256,
    per_thread: int = 16,
    block_dim: int = 128,
    seed: int = 31,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Unit-stride copy loop (the paper's Figure 7c normal loop)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n = n_threads * per_thread
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 17, 2 * n + 4096))
    src_base = _alloc_and_fill(memory, src)
    dst_base = memory.alloc(n)
    program = assemble(_KMEANS_SOURCE, name="kmeans")

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(dst_base, n)
        require((got == src).all(), "copy loop corrupted data")

    return Workload(
        name="kmeans",
        launch=KernelLaunch(
            program, grid_dim, block_dim,
            {"src": src_base, "dst": dst_base, "per_thread": per_thread},
        ),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "per_thread": per_thread},
    )


def _build_strided(
    name: str,
    source: str,
    n_threads: int,
    iterations: int,
    stride: int,
    block_dim: int,
    seed: int,
    memory: Optional[GlobalMemory],
) -> Workload:
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_elems = stride * iterations
    if n_threads > stride:
        raise ValueError("n_threads must be <= stride for full coverage")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 1 << 20, size=n_elems, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 18, 2 * n_elems + n_threads + 4096))
    src_base = _alloc_and_fill(memory, src)
    if name == "ms":
        dst_base = memory.alloc(n_elems)
        params = {
            "src": src_base, "dst": dst_base,
            "n_elems": n_elems, "stride": stride,
        }
        mirrored = src[::-1]
        expected = np.maximum(src, mirrored)

        def validate(mem: GlobalMemory) -> None:
            got = mem.load_array(dst_base, n_elems)
            touched = np.zeros(n_elems, dtype=bool)
            for t in range(n_threads):
                touched[t::stride] = True
            require(
                (got[touched] == expected[touched]).all(),
                "merge pass produced wrong elements",
            )
    else:  # hl
        dst_base = memory.alloc(n_threads)
        params = {
            "src": src_base, "dst": dst_base,
            "n_elems": n_elems, "stride": stride,
        }
        expected = np.array(
            [3 * int(src[t::stride].sum()) for t in range(n_threads)],
            dtype=np.int64,
        )

        def validate(mem: GlobalMemory) -> None:
            got = mem.load_array(dst_base, n_threads)
            require((got == expected).all(), "window accumulation wrong")

    program = assemble(source, name=name)
    return Workload(
        name=name,
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_threads": n_threads,
            "iterations": iterations,
            "stride": stride,
        },
    )


def build_mergesort(
    n_threads: int = 256,
    iterations: int = 16,
    stride: int = 256,
    block_dim: int = 128,
    seed: int = 37,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """MS: power-of-two-stride pass (MODULO false-detection trigger)."""
    return _build_strided(
        "ms", _MS_SOURCE, n_threads, iterations, stride, block_dim, seed,
        memory,
    )


def build_heartwall(
    n_threads: int = 256,
    iterations: int = 12,
    stride: int = 512,
    block_dim: int = 128,
    seed: int = 41,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """HL: strided window accumulation (MODULO false-detection trigger)."""
    return _build_strided(
        "hl", _HL_SOURCE, n_threads, iterations, stride, block_dim, seed,
        memory,
    )


def build_vecadd(
    n_threads: int = 256,
    per_thread: int = 8,
    block_dim: int = 128,
    seed: int = 43,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Streaming elementwise addition."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n = n_threads * per_thread
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
    b = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 17, 3 * n + 4096))
    a_base = _alloc_and_fill(memory, a)
    b_base = _alloc_and_fill(memory, b)
    c_base = memory.alloc(n)
    program = assemble(_VECADD_SOURCE, name="vecadd")

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(c_base, n)
        require((got == a + b).all(), "vector addition wrong")

    return Workload(
        name="vecadd",
        launch=KernelLaunch(
            program, grid_dim, block_dim,
            {"a": a_base, "b": b_base, "c": c_base, "per_thread": per_thread},
        ),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "per_thread": per_thread},
    )


def build_reduction(
    n_threads: int = 256,
    block_dim: int = 128,
    seed: int = 47,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Barrier-synchronized tree reduction (one sum per CTA)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 16, size=n_threads, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 17, n_threads + grid_dim + 4096))
    data_base = _alloc_and_fill(memory, data)
    out_base = memory.alloc(grid_dim)
    program = assemble(_REDUCTION_SOURCE, name="reduction")
    expected = np.array(
        [
            int(data[c * block_dim:(c + 1) * block_dim].sum())
            for c in range(grid_dim)
        ],
        dtype=np.int64,
    )

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(out_base, grid_dim)
        require((got == expected).all(), "per-CTA reduction sums wrong")

    return Workload(
        name="reduction",
        launch=KernelLaunch(
            program, grid_dim, block_dim,
            {"data": data_base, "out": out_base, "block_dim": block_dim},
        ),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "block_dim": block_dim},
    )


def build_stencil(
    n_threads: int = 256,
    per_thread: int = 8,
    block_dim: int = 128,
    seed: int = 53,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """1-D three-point stencil over a halo-padded array."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n = n_threads * per_thread + 2  # halo cells on both ends
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 1 << 18, size=n, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 17, 2 * n + 4096))
    src_base = _alloc_and_fill(memory, src)
    dst_base = memory.alloc(n)
    program = assemble(_STENCIL_SOURCE, name="stencil")
    expected = src[:-2] + src[1:-1] + src[2:]

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(dst_base, n)[1:-1]
        require((got == expected).all(), "stencil result wrong")

    return Workload(
        name="stencil",
        launch=KernelLaunch(
            program, grid_dim, block_dim,
            {"src": src_base, "dst": dst_base, "per_thread": per_thread},
        ),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "per_thread": per_thread},
    )


def build_histogram(
    n_threads: int = 256,
    per_thread: int = 8,
    n_bins: int = 32,
    block_dim: int = 128,
    seed: int = 59,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Atomic histogram — atomics without a retry loop (no spin)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n = n_threads * per_thread
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
    if memory is None:
        memory = GlobalMemory(max(1 << 17, n + n_bins + 4096))
    data_base = _alloc_and_fill(memory, data)
    bins_base = memory.alloc(n_bins)
    program = assemble(_HISTOGRAM_SOURCE, name="histogram")
    expected = np.bincount(data % n_bins, minlength=n_bins)

    def validate(mem: GlobalMemory) -> None:
        got = mem.load_array(bins_base, n_bins)
        require((got == expected).all(), "histogram counts wrong")

    return Workload(
        name="histogram",
        launch=KernelLaunch(
            program, grid_dim, block_dim,
            {
                "data": data_base,
                "bins": bins_base,
                "n_bins": n_bins,
                "per_thread": per_thread,
            },
        ),
        memory=memory,
        validate=validate,
        meta={"n_threads": n_threads, "n_bins": n_bins},
    )
