"""DS — cloth-physics distance solver with nested per-particle locks.

Models the Distance Solver kernel of the Clothes Physics workload (paper
Section V): each constraint connects two particles of a cloth mesh; a
thread resolving a constraint must hold *both* particle locks while it
moves the particles.  Locks are acquired nested — outer on the first
particle, inner on the second — releasing the outer lock when the inner
acquire fails, the paper's Figure 6a deadlock-free pattern.

Contention comes from mesh adjacency: neighbouring constraints share a
particle, so neighbouring threads collide.  ``n_particles`` tunes it.

Invariant: every constraint's displacement is applied exactly once, so
final positions match a sequential ledger replay.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa import assemble
from repro.kernels.base import Workload, grid_geometry, require
from repro.memory.memsys import GlobalMemory
from repro.sim.gpu import KernelLaunch

_SOURCE = r"""
    ld.param %r_locks, [locks]
    ld.param %r_pos, [positions]
    ld.param %r_ia, [i_table]
    ld.param %r_ja, [j_table]
    ld.param %r_cpt, [constraints_per_thread]
    mov %r_c, 0
CONSTRAINT_LOOP:
    mul %r_cid, %gtid, %r_cpt
    add %r_cid, %r_cid, %r_c
    shl %r_t0, %r_cid, 2
    add %r_t1, %r_ia, %r_t0
    ld.global %r_i, [%r_t1]
    add %r_t1, %r_ja, %r_t0
    ld.global %r_j, [%r_t1]
    // displacement weight = constraint id + 1
    add %r_w, %r_cid, 1
    // Particle update addresses follow (i, j); lock acquisition is
    // ordered by particle id (outer = lower id) to rule out the
    // lockstep (a,b)/(b,a) livelock between lanes of one warp.
    shl %r_t2, %r_i, 2
    add %r_pi, %r_pos, %r_t2
    shl %r_t3, %r_j, 2
    add %r_pj, %r_pos, %r_t3
    min %r_lo, %r_i, %r_j
    max %r_hi, %r_i, %r_j
    shl %r_t2, %r_lo, 2
    add %r_lock1, %r_locks, %r_t2
    shl %r_t3, %r_hi, 2
    add %r_lock2, %r_locks, %r_t3
    mov %r_done, 0
SPIN:
    atom.cas %r_o1, [%r_lock1], 0, 1 !lock_try !sync
    setp.eq %p1, %r_o1, 0 !sync
    @%p1 bra TRY2 !sync
    bra JOIN !sync
TRY2:
    atom.cas %r_o2, [%r_lock2], 0, 1 !lock_try !sync
    setp.eq %p2, %r_o2, 0 !sync
    @%p2 bra CRIT !sync
    atom.exch %r_ig, [%r_lock1], 0 !lock_release !sync
    bra JOIN !sync
CRIT:
    // --- critical section: pull the two particles together ---
    ld.global.cg %r_vi, [%r_pi]
    ld.global.cg %r_vj, [%r_pj]
    sub %r_vi, %r_vi, %r_w
    add %r_vj, %r_vj, %r_w
    st.global [%r_pi], %r_vi
    st.global [%r_pj], %r_vj
    membar !sync
    atom.exch %r_ig, [%r_lock2], 0 !lock_release !sync
    atom.exch %r_ig, [%r_lock1], 0 !lock_release !sync
    mov %r_done, 1
JOIN:
    setp.eq %p3, %r_done, 0 !sync
    @%p3 bra SPIN !sib !sync
    add %r_c, %r_c, 1
    setp.lt %p4, %r_c, %r_cpt
    @%p4 bra CONSTRAINT_LOOP
    exit
"""


def build_ds(
    n_threads: int = 512,
    n_particles: int = 96,
    constraints_per_thread: int = 2,
    block_dim: int = 256,
    seed: int = 23,
    memory: Optional[GlobalMemory] = None,
) -> Workload:
    """Nested-lock distance solver (paper's CP/DS benchmark)."""
    grid_dim, block_dim = grid_geometry(n_threads, block_dim)
    n_constraints = n_threads * constraints_per_thread
    rng = np.random.default_rng(seed)
    # Mesh-flavoured constraints: mostly ring neighbours plus some
    # random long-range links (folds in the cloth).
    i_idx = rng.integers(0, n_particles, size=n_constraints, dtype=np.int64)
    near = (i_idx + 1) % n_particles
    far = rng.integers(0, n_particles, size=n_constraints, dtype=np.int64)
    use_far = rng.random(n_constraints) < 0.25
    j_idx = np.where(use_far, far, near)
    j_idx = np.where(j_idx == i_idx, (j_idx + 1) % n_particles, j_idx)

    if memory is None:
        memory = GlobalMemory(
            max(1 << 18, 2 * n_constraints + 2 * n_particles + 4096)
        )
    locks = memory.alloc(n_particles)
    positions = memory.alloc(n_particles)
    i_table = memory.alloc(n_constraints)
    j_table = memory.alloc(n_constraints)
    initial = 10_000
    memory.store_array(positions, [initial] * n_particles)
    memory.store_array(i_table, i_idx.tolist())
    memory.store_array(j_table, j_idx.tolist())

    program = assemble(_SOURCE, name="ds")
    params = {
        "locks": locks,
        "positions": positions,
        "i_table": i_table,
        "j_table": j_table,
        "constraints_per_thread": constraints_per_thread,
    }

    expected = np.full(n_particles, initial, dtype=np.int64)
    weights = np.arange(n_constraints, dtype=np.int64) + 1
    np.subtract.at(expected, i_idx, weights)
    np.add.at(expected, j_idx, weights)

    def validate(mem: GlobalMemory) -> None:
        positions_now = mem.load_array(positions, n_particles)
        require(
            int(positions_now.sum()) == initial * n_particles,
            "total displacement not conserved",
        )
        mismatches = int((positions_now != expected).sum())
        require(
            mismatches == 0,
            f"{mismatches} particle positions diverge from the ledger",
        )
        lock_words = mem.load_array(locks, n_particles)
        require(int(lock_words.sum()) == 0, "a particle lock was left held")

    return Workload(
        name="ds",
        launch=KernelLaunch(program, grid_dim, block_dim, params),
        memory=memory,
        validate=validate,
        meta={
            "n_threads": n_threads,
            "n_particles": n_particles,
            "constraints_per_thread": constraints_per_thread,
        },
    )
