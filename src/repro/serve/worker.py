"""Pool-worker entry for the serve daemon: execute + stream progress.

:func:`serve_entry` is the module-level (hence picklable) function the
daemon's worker pool runs per job.  It reuses the lab's
:func:`~repro.lab.runner.execute_run` — same build/simulate/validate/
score path, same checkpoint resume, same in-worker SIGALRM timeout — so
a result produced through the daemon is bitwise-identical to one
produced by a direct :class:`~repro.lab.runner.Runner`.

What serve adds is the *progress spool*: an append-only JSONL file per
job that the worker writes and the daemon tails, forwarding each line
to subscribed clients while the simulation is still running.  Records:

``{"kind": "lifecycle", "phase": ..., ...}``
    Worker start/finish marks (always written).
``{"kind": "sample", "row": {...}}``
    One obs :class:`~repro.obs.sampler.TimeSeries` row, written the
    moment the interval closes (only when the spec requests obs).
``{"kind": "event", "event": {...}}``
    Obs decision events, flushed in bounded batches on the sampler
    cadence (only when the spec requests obs).

Streaming taps the exact same collection the spec asked for — a
:class:`StreamingObservability` subclass whose sampler forwards each
appended row — so the RunResult's embedded obs payload is unchanged by
streaming (collection and transport are decoupled; the file is a pure
copy).  A spec with ``obs=None`` streams lifecycle marks only: giving
it a sampler would change the cached RunResult for every other client.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.lab.results import RunResult
from repro.lab.runner import _run_with_timeout, execute_run
from repro.lab.spec import RunSpec, _json_default
from repro.obs import Observability, event_to_dict
from repro.obs.sampler import IntervalSampler

#: Cap on obs events forwarded per flush — the spool is a progress feed,
#: not an archive (the complete bounded log still rides the RunResult).
MAX_EVENTS_PER_FLUSH = 200


class ProgressWriter:
    """Append-only JSONL spool the daemon tails while the run executes.

    Plain buffered appends with a flush per record — the spool is
    advisory (lost lines cost a client a progress update, never a
    result), so it skips the fsync discipline of the durable journal.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        try:
            self._handle.write(
                json.dumps(record, separators=(",", ":"),
                           default=_json_default) + "\n"
            )
            self._handle.flush()
        except (OSError, ValueError):
            pass  # a full disk must not kill the simulation

    def lifecycle(self, phase: str, **detail: Any) -> None:
        self.emit({"kind": "lifecycle", "phase": phase, **detail})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


class _StreamingSampler(IntervalSampler):
    """IntervalSampler that forwards every appended row to the spool."""

    def __init__(self, *args, writer: ProgressWriter,
                 obs: "StreamingObservability", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._writer = writer
        self._obs = obs
        self._streamed_rows = 0

    def sample(self, now: int) -> None:
        super().sample(now)
        rows = self.series.rows
        while self._streamed_rows < len(rows):
            self._writer.emit({"kind": "sample",
                               "row": rows[self._streamed_rows]})
            self._streamed_rows += 1
        self._obs.flush_events()


class StreamingObservability(Observability):
    """Observability whose sampler mirrors rows/events into the spool.

    Collection is identical to the plain :class:`Observability` built
    from the same config — same sampler math, same bus — so results
    stay bitwise-identical whether or not anyone is watching.
    """

    def __init__(self, config, writer: ProgressWriter) -> None:
        super().__init__(config)
        self._writer = writer
        self._events_streamed = 0

    def begin_run(self, stats, memsys_stats, warp_size: int = 32):
        if self.config.sample_interval > 0:
            self.sampler = _StreamingSampler(
                stats, memsys_stats, self.config.sample_interval,
                warp_size=warp_size, writer=self._writer, obs=self,
            )
        return self.sampler

    def end_run(self, now: int) -> None:
        super().end_run(now)
        self.flush_events()

    def flush_events(self) -> None:
        """Forward events that arrived since the last flush (bounded)."""
        bus = self.bus
        if bus is None:
            return
        fresh = bus.total_events - self._events_streamed
        if fresh <= 0:
            return
        self._events_streamed = bus.total_events
        if fresh > MAX_EVENTS_PER_FLUSH:
            self._writer.emit({"kind": "event_gap",
                               "skipped": fresh - MAX_EVENTS_PER_FLUSH})
            fresh = MAX_EVENTS_PER_FLUSH
        for event in bus.tail(fresh):
            self._writer.emit({"kind": "event",
                               "event": event_to_dict(event)})


def serve_entry(spec: RunSpec, progress_path: Optional[str],
                timeout_s: Optional[float] = None,
                checkpoint_dir=None,
                checkpoint_every=None) -> RunResult:
    """Execute one job, spooling progress to ``progress_path``.

    Runs in a pool worker (process or thread).  Exceptions propagate to
    the daemon exactly as they do to the lab Runner — the daemon owns
    retry/failure classification.
    """
    writer = ProgressWriter(progress_path) if progress_path else None
    obs_override = None
    if writer is not None:
        writer.lifecycle("started", pid=os.getpid(),
                         spec_hash=spec.content_hash())
        if spec.obs is not None:
            obs_override = StreamingObservability(spec.obs, writer)

    def entry(s: RunSpec) -> RunResult:
        return execute_run(s, checkpoint_dir=checkpoint_dir,
                           checkpoint_every=checkpoint_every,
                           obs=obs_override)

    try:
        result = _run_with_timeout(entry, spec, timeout_s)
    except BaseException as exc:
        if writer is not None:
            writer.lifecycle("failed", error=type(exc).__name__)
            writer.close()
        raise
    if writer is not None:
        writer.lifecycle("finished", cycles=result.cycles,
                         elapsed_s=round(result.elapsed_s, 3))
        writer.close()
    return result


__all__ = [
    "MAX_EVENTS_PER_FLUSH",
    "ProgressWriter",
    "StreamingObservability",
    "serve_entry",
]
