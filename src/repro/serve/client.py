"""Client side of the serve protocol: submit specs, stream progress.

:class:`ServeClient` owns one connection to a :class:`~repro.serve.
daemon.ServeDaemon` and multiplexes any number of outstanding jobs over
it.  A background reader thread routes incoming messages: direct
replies (``accepted``, ``status``, ``pong``, ``cancelled``,
``shutting_down``, ``error``) resolve in-order RPC waits, while per-job
broadcasts (``progress``, ``result``, ``failure``) are delivered to the
matching :class:`ServeHandle` by ``job_id``.  The correlation is safe
because the daemon answers each request with exactly one direct reply,
in request order, on the connection it arrived on.

Typical use::

    with ServeClient("/tmp/repro.sock", name="sweep") as client:
        handles = [client.submit(spec) for spec in specs]
        for handle in handles:
            for record in handle.stream():
                ...                       # live samples/events
            outcome = handle.outcome()    # RunResult or RunFailure

Handles are also safe to resolve without streaming: ``handle.outcome()``
blocks until the daemon broadcasts the terminal message.  Losing the
connection fails every outstanding handle with :class:`ServeError` —
the daemon keeps running the jobs (their results still reach the shared
cache), so resubmitting after reconnect completes from cache hits.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.lab.results import RunFailure, RunResult
from repro.lab.spec import RunSpec
from repro.serve import protocol, wire

#: Terminal marker on a handle's progress queue.
_SENTINEL = object()


class ServeError(RuntimeError):
    """The daemon refused a request or the connection was lost."""


class ServeHandle:
    """One submitted job as seen by the client."""

    def __init__(self, client: "ServeClient", job_id: str, spec_hash: str,
                 status: str, spec: Optional[RunSpec] = None) -> None:
        self.client = client
        self.job_id = job_id
        self.spec_hash = spec_hash
        #: Submission status: ``queued``, ``attached``, or ``cached``.
        self.status = status
        self.spec = spec
        self._progress: "queue.Queue" = queue.Queue()
        self._done = threading.Event()
        self._outcome: Optional[Union[RunResult, RunFailure]] = None
        self._error: Optional[Exception] = None

    # -- reader-thread side -------------------------------------------

    def _deliver(self, message: Dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == "progress":
            self._progress.put(message)
        elif kind == "result":
            self._finish(wire.result_from_wire(message["result"]))
        elif kind == "failure":
            self._finish(wire.failure_from_wire(message["failure"],
                                                spec=self.spec))

    def _finish(self, outcome: Union[RunResult, RunFailure]) -> None:
        if self._done.is_set():
            return
        self._outcome = outcome
        self._done.set()
        self._progress.put(_SENTINEL)

    def _abort(self, error: Exception) -> None:
        if self._done.is_set():
            return
        self._error = error
        self._done.set()
        self._progress.put(_SENTINEL)

    # -- consumer side -------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def stream(self) -> Iterator[Dict[str, Any]]:
        """Yield ``progress`` messages until the job reaches a terminal
        state (then call :meth:`outcome` for the result)."""
        while True:
            item = self._progress.get()
            if item is _SENTINEL:
                # Re-arm so a second stream() consumer also terminates.
                self._progress.put(_SENTINEL)
                return
            yield item

    def outcome(self, timeout: Optional[float] = None
                ) -> Union[RunResult, RunFailure]:
        """Block for the terminal outcome (result *or* failure record)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not complete within {timeout}s"
            )
        if self._error is not None:
            raise ServeError(
                f"job {self.job_id} outcome lost: {self._error}"
            ) from self._error
        assert self._outcome is not None
        return self._outcome


class ServeClient:
    """One protocol connection to a serve daemon (thread-safe)."""

    def __init__(self, address: str, *, name: Optional[str] = None,
                 connect_timeout_s: Optional[float] = 10.0,
                 rpc_timeout_s: Optional[float] = 60.0) -> None:
        self.address = address
        self.name = name
        self.rpc_timeout_s = rpc_timeout_s
        self._stream = protocol.MessageStream(
            protocol.connect(address, timeout_s=connect_timeout_s)
        )
        self._rpc_lock = threading.Lock()
        self._replies: "queue.Queue" = queue.Queue()
        #: job_id -> every handle watching it.  A list, not a single
        #: handle: resubmitting a spec this client already has in
        #: flight attaches to the same daemon job (same job_id), and
        #: both handles must resolve.
        self._handles: Dict[str, List[ServeHandle]] = {}
        #: Broadcasts that arrived before submit() registered the handle
        #: (the cached-path result can beat the accepted bookkeeping).
        self._orphans: Dict[str, List[Dict[str, Any]]] = {}
        self._route_lock = threading.Lock()
        self._closed = False
        # Handshake happens synchronously so a version mismatch raises
        # here, in the caller's frame, not in a background thread.
        self._stream.send(protocol.hello_message(client=name))
        ack = self._stream.recv()
        if ack is not None and ack.get("type") == "error":
            raise ServeError(ack.get("message", "handshake refused"))
        protocol.check_hello(ack, expected_type="hello_ack")
        self.server_info = ack
        self._reader = threading.Thread(
            target=self._read_loop, name="serve-client-reader", daemon=True
        )
        self._reader.start()

    # -- plumbing ------------------------------------------------------

    def _read_loop(self) -> None:
        error: Exception = ServeError("connection closed by daemon")
        while True:
            try:
                message = self._stream.recv()
            except (protocol.ProtocolError, OSError, ValueError) as exc:
                error = exc if isinstance(exc, Exception) else error
                break
            if message is None:
                break
            job_id = message.get("job_id")
            if message.get("type") in ("progress", "result", "failure") \
                    and job_id is not None:
                with self._route_lock:
                    handles = list(self._handles.get(job_id, ()))
                    if not handles:
                        self._orphans.setdefault(job_id, []).append(message)
                        continue
                for handle in handles:
                    try:
                        handle._deliver(message)
                    except wire.WireFormatError as exc:
                        handle._abort(exc)
            else:
                self._replies.put(message)
        # Connection gone: fail every outstanding wait.
        self._replies.put({"type": "error",
                           "message": f"connection lost: {error}"})
        with self._route_lock:
            handles = [h for hs in self._handles.values() for h in hs]
        for handle in handles:
            handle._abort(ServeError(f"connection lost: {error}"))

    def _rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._rpc_lock:
            try:
                self._stream.send(message)
            except OSError as exc:
                raise ServeError(f"daemon unreachable: {exc}") from exc
            try:
                reply = self._replies.get(timeout=self.rpc_timeout_s)
            except queue.Empty:
                raise ServeError(
                    f"no reply to {message.get('type')!r} within "
                    f"{self.rpc_timeout_s}s"
                ) from None
        if reply.get("type") == "error":
            raise ServeError(reply.get("message", "daemon error"))
        return reply

    # -- API -----------------------------------------------------------

    def submit(self, spec: RunSpec, *, stream: bool = True,
               priority: int = 0) -> ServeHandle:
        """Submit one :class:`RunSpec`; returns a live handle.

        ``stream=False`` still delivers the terminal result/failure but
        skips per-run progress traffic (cheaper for large sweeps).
        """
        reply = self._rpc({
            "type": "submit",
            "spec": spec.to_dict(),
            "label": spec.label,
            "stream": stream,
            "priority": priority,
        })
        if reply.get("type") != "accepted":
            raise ServeError(
                f"expected 'accepted', daemon sent {reply.get('type')!r}"
            )
        handle = ServeHandle(self, reply["job_id"], reply["spec_hash"],
                             reply["status"], spec=spec)
        with self._route_lock:
            self._handles.setdefault(handle.job_id, []).append(handle)
            backlog = self._orphans.pop(handle.job_id, [])
        for message in backlog:
            try:
                handle._deliver(message)
            except wire.WireFormatError as exc:
                handle._abort(exc)
        return handle

    def submit_many(self, specs, *, stream: bool = True,
                    priority: int = 0) -> List[ServeHandle]:
        return [self.submit(spec, stream=stream, priority=priority)
                for spec in specs]

    def status(self) -> Dict[str, Any]:
        return self._rpc({"type": "status"})

    def ping(self) -> bool:
        return self._rpc({"type": "ping"}).get("type") == "pong"

    def cancel(self, job_id: str) -> bool:
        reply = self._rpc({"type": "cancel", "job_id": job_id})
        return bool(reply.get("ok"))

    def shutdown_daemon(self, drain: bool = True) -> None:
        """Ask the daemon to stop (drain in-flight work by default)."""
        self._rpc({"type": "shutdown", "drain": drain})

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stream.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["ServeClient", "ServeError", "ServeHandle"]
