"""Job records and the dedup/subscription store of the serve daemon.

The store is the daemon's single source of truth about work: every
submission funnels through :meth:`JobStore.submit` under one lock, which
is what makes the dedup guarantees airtight:

* a spec whose hash is already **active** (queued or running) attaches
  the new subscriber to the existing job — concurrent duplicate
  submissions trigger exactly one simulation and every subscriber gets
  the one result;
* a spec already in the shared content-addressed **cache** (simulated by
  *any* past client — this daemon, a direct ``lab.Runner``, another
  machine sharing the directory) returns the result immediately with no
  worker dispatch;
* everything else becomes a fresh queued :class:`Job`.

Subscribers are transport-agnostic: anything with a ``send(message) ->
bool`` method (False = peer is gone) and a ``wants_stream`` attribute.
A dead subscriber is dropped from the job; the job itself always runs
to completion — its result still lands in the cache and journal for
the next asker (client disconnect never cancels shared work).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lab.results import RunFailure, RunResult
from repro.lab.spec import RunSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a job still owns its spec hash for dedup purposes.
ACTIVE_STATES = (QUEUED, RUNNING)


@dataclass(eq=False)  # identity semantics: jobs are mutable registry rows
class Job:
    """One unit of daemon work: a spec plus everyone waiting on it."""

    id: str
    spec: RunSpec
    spec_hash: str
    client: str
    priority: int = 0
    state: str = QUEUED
    subscribers: List[Any] = field(default_factory=list)
    result: Optional[RunResult] = None
    failure: Optional[RunFailure] = None
    attempts: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Progress spool the worker writes and the tailer reads.
    progress_path: Optional[str] = None
    #: Bytes of the spool already forwarded to subscribers.
    progress_offset: int = 0

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def broadcast(self, message: Dict[str, Any],
                  stream_only: bool = False) -> int:
        """Send ``message`` to live subscribers; returns deliveries.

        A subscriber whose ``send`` returns False (dead socket) is
        dropped — a client disconnecting mid-stream never disturbs the
        job or its other subscribers.
        """
        delivered = 0
        survivors = []
        for sub in self.subscribers:
            if stream_only and not getattr(sub, "wants_stream", True):
                survivors.append(sub)
                continue
            if sub.send(message):
                survivors.append(sub)
                delivered += 1
        self.subscribers[:] = survivors
        return delivered


class JobStore:
    """Thread-safe job registry with cache- and in-flight-dedup."""

    def __init__(self, cache=None) -> None:
        #: Optional :class:`~repro.lab.cache.ResultCache` consulted at
        #: submission (and re-checked at dispatch by the daemon).
        self.cache = cache
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._active_by_hash: Dict[str, Job] = {}
        self._ids = itertools.count(1)

    def submit(self, spec: RunSpec, client: str, subscriber: Any = None,
               priority: int = 0) -> Tuple[Job, str]:
        """Register one submission; returns ``(job, status)``.

        ``status`` is ``"attached"`` (joined an active job),
        ``"cached"`` (``job.result`` is already populated from the
        cache; terminal), or ``"queued"`` (fresh work for the
        scheduler).  Atomic under the store lock: two concurrent
        submissions of one spec can never both come back ``"queued"``.
        """
        spec_hash = spec.content_hash()
        with self._lock:
            active = self._active_by_hash.get(spec_hash)
            if active is not None:
                if subscriber is not None:
                    active.subscribers.append(subscriber)
                return active, "attached"
            cached = self.cache.get(spec) if self.cache is not None else None
            job = Job(
                id=f"j{next(self._ids)}-{spec_hash[:8]}",
                spec=spec, spec_hash=spec_hash, client=client,
                priority=priority,
            )
            if subscriber is not None:
                job.subscribers.append(subscriber)
            self._jobs[job.id] = job
            if cached is not None:
                job.state = DONE
                job.result = cached
                job.finished_at = time.monotonic()
                return job, "cached"
            self._active_by_hash[spec_hash] = job
            return job, "queued"

    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = RUNNING
            job.attempts += 1
            if job.started_at is None:
                job.started_at = time.monotonic()

    def mark_requeued(self, job: Job) -> None:
        with self._lock:
            job.state = QUEUED

    def finish(self, job: Job,
               outcome: "RunResult | RunFailure") -> None:
        """Record the terminal outcome and release the spec hash."""
        with self._lock:
            if isinstance(outcome, RunResult):
                job.state = DONE
                job.result = outcome
            else:
                job.state = FAILED
                job.failure = outcome
            job.finished_at = time.monotonic()
            if self._active_by_hash.get(job.spec_hash) is job:
                del self._active_by_hash[job.spec_hash]

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a *queued* job (running jobs finish for the cache)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return None
            job.state = CANCELLED
            job.finished_at = time.monotonic()
            if self._active_by_hash.get(job.spec_hash) is job:
                del self._active_by_hash[job.spec_hash]
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return jobs

    def drop_subscriber(self, subscriber: Any) -> None:
        """Remove a disconnected client from every job it watched."""
        with self._lock:
            for job in self._jobs.values():
                if subscriber in job.subscribers:
                    job.subscribers.remove(subscriber)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts


__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobStore",
    "QUEUED",
    "RUNNING",
]
