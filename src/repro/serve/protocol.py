"""JSON-lines protocol plumbing shared by the daemon and its clients.

One message per line, UTF-8 JSON objects, over either a Unix-domain
socket (an address containing a path separator, or any address that is
not ``host:port``) or localhost TCP (``host:port``).  The first message
on a connection must be a ``hello`` carrying :data:`PROTOCOL_VERSION`;
either side closes with an ``error`` on a mismatch, so incompatible
peers fail in one round trip instead of mid-stream.

Message vocabulary (``type`` field):

================  =====================================================
client → daemon
================  =====================================================
``hello``         ``{protocol, client}`` — handshake, must come first.
``submit``        ``{spec, label, stream, priority}`` — one RunSpec.
``status``        daemon counters + job states.
``ping``          liveness probe.
``cancel``        ``{job_id}`` — drop a queued job.
``shutdown``      drain and stop the daemon (trusted local clients).
================  =====================================================

================  =====================================================
daemon → client
================  =====================================================
``hello_ack``     ``{protocol, server}`` — handshake accepted.
``accepted``      ``{job_id, spec_hash, status}`` with status one of
                  ``queued`` (will simulate), ``attached`` (same spec
                  already in flight; this client subscribes to it), or
                  ``cached`` (result follows immediately, no dispatch).
``progress``      ``{job_id, spec_hash, kind, data}`` — streamed while
                  the run is in flight: ``lifecycle`` marks, obs
                  ``sample`` rows, obs ``event`` records, daemon
                  ``journal`` notes.
``result``        ``{job_id, result}`` — versioned wire RunResult.
``failure``       ``{job_id, failure}`` — versioned wire RunFailure.
``status``        counters snapshot.
``pong``          liveness reply.
``error``         ``{message}`` — protocol or submission error.
================  =====================================================
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from repro.lab.spec import _json_default

#: Handshake protocol version; bumped on any incompatible change to the
#: message vocabulary (payload schemas are versioned separately by
#: :mod:`repro.serve.wire`).
PROTOCOL_VERSION = 1

#: Upper bound on one message line; a peer exceeding it is broken (or
#: hostile) and the connection is dropped rather than buffering forever.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer violated the JSON-lines protocol."""


def parse_address(address: str) -> Tuple[str, Any]:
    """Classify ``address`` as ``("unix", path)`` or ``("tcp", (h, p))``.

    ``host:port`` (with an integer port and no path separator) means
    TCP; everything else is a Unix-socket path.
    """
    if not address:
        raise ValueError("empty serve address")
    if os.sep not in address and address.count(":") == 1:
        host, _, port = address.rpartition(":")
        if host and port.isdigit():
            return "tcp", (host, int(port))
    return "unix", address


def create_listener(address: str, backlog: int = 64) -> socket.socket:
    """Bind + listen on ``address`` (stale Unix socket files replaced)."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(target)
        except OSError:
            pass
        sock.bind(target)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
    sock.listen(backlog)
    return sock


def connect(address: str, timeout_s: Optional[float] = None) -> socket.socket:
    """Connect to a daemon at ``address``."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    sock.connect(target)
    sock.settimeout(None)
    return sock


class MessageStream:
    """Thread-safe JSON-lines framing over one connected socket.

    Reads happen from a single thread (the owner's reader loop); writes
    may come from any thread and are serialized by a lock — a streamed
    sample and a result broadcast never interleave mid-line.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._closed = False

    def send(self, message: Dict[str, Any]) -> None:
        """Write one message; raises ``OSError`` on a dead peer."""
        line = json.dumps(message, separators=(",", ":"),
                          default=_json_default).encode("utf-8") + b"\n"
        with self._write_lock:
            self._sock.sendall(line)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` on EOF (peer closed cleanly)."""
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"message exceeds {MAX_LINE_BYTES} bytes; dropping peer"
            )
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"message is not valid JSON: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("message must be an object with a 'type'")
        return message

    def close(self) -> None:
        """Tear down the connection (safe from any thread).

        ``shutdown`` first: it unblocks a thread parked in ``recv``
        (readline returns EOF) without touching the buffered reader's
        internal lock — closing the file object from a foreign thread
        while a read is in flight deadlocks in CPython.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


def hello_message(client: Optional[str] = None) -> Dict[str, Any]:
    return {"type": "hello", "protocol": PROTOCOL_VERSION,
            "client": client}


def check_hello(message: Optional[Dict[str, Any]],
                expected_type: str = "hello") -> Dict[str, Any]:
    """Validate the handshake; raises :class:`ProtocolError` on mismatch."""
    if message is None:
        raise ProtocolError("peer closed before the handshake")
    if message.get("type") != expected_type:
        raise ProtocolError(
            f"expected {expected_type!r} first, got {message.get('type')!r}"
        )
    version = message.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} is not supported "
            f"(this side speaks {PROTOCOL_VERSION}); upgrade the older "
            f"side of the connection"
        )
    return message


__all__ = [
    "MAX_LINE_BYTES",
    "MessageStream",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "check_hello",
    "connect",
    "create_listener",
    "hello_message",
    "parse_address",
]
