"""Fair dispatch order for daemon jobs: priority within, fairness across.

A shared daemon must not let one chatty client starve everyone else:
a fuzz campaign submitting ten thousand seeds and a CLI user asking for
one figure both deserve forward progress.  The :class:`FairScheduler`
therefore keeps **one priority queue per client** and serves clients
round-robin, with a per-client *inflight budget* bounding how many of
any client's jobs may occupy workers at once:

* within a client, higher ``priority`` wins, FIFO among equals;
* across clients, strict rotation — after dispatching one of client A's
  jobs the pointer moves on, so B and C each get a worker before A gets
  a second;
* a client at its inflight budget is skipped until one of its runs
  completes, capping the damage of a single client with long jobs.

The scheduler is pure data structure — no threads, no clock.  The
daemon's dispatcher drives it under its own condition variable.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional

from repro.serve.jobstore import Job


class FairScheduler:
    """Per-client priority queues drained by budgeted round-robin."""

    def __init__(self, max_inflight_per_client: Optional[int] = None) -> None:
        if max_inflight_per_client is not None and max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        self.max_inflight_per_client = max_inflight_per_client
        self._lock = threading.Lock()
        #: client -> heap of (-priority, seq, job)
        self._queues: Dict[str, List] = {}
        #: round-robin rotation order (clients with pending work).
        self._rotation: List[str] = []
        self._next = 0
        self._inflight: Dict[str, int] = {}
        self._seq = itertools.count()

    def push(self, job: Job) -> None:
        with self._lock:
            queue = self._queues.get(job.client)
            if queue is None:
                queue = self._queues[job.client] = []
                self._rotation.append(job.client)
            heapq.heappush(queue, (-job.priority, next(self._seq), job))

    def pop(self) -> Optional[Job]:
        """Next dispatchable job honoring rotation + budgets, or None.

        Popping counts the job against its client's inflight budget;
        the daemon must call :meth:`job_finished` when the run leaves a
        worker (completion, failure, or a free re-queue).
        """
        with self._lock:
            if not self._rotation:
                return None
            n = len(self._rotation)
            for step in range(n):
                index = (self._next + step) % n
                client = self._rotation[index]
                if self._budget_exhausted(client):
                    continue
                queue = self._queues[client]
                job = self._pop_live(queue)
                if job is None:
                    continue
                self._inflight[client] = self._inflight.get(client, 0) + 1
                self._next = (index + 1) % n
                self._vacuum()
                return job
            self._vacuum()
            return None

    def job_finished(self, client: str) -> None:
        """Release one unit of ``client``'s inflight budget."""
        with self._lock:
            count = self._inflight.get(client, 0)
            if count <= 1:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = count - 1

    def _budget_exhausted(self, client: str) -> bool:
        budget = self.max_inflight_per_client
        return (budget is not None
                and self._inflight.get(client, 0) >= budget)

    @staticmethod
    def _pop_live(queue: List) -> Optional[Job]:
        """Pop entries until a still-queued job surfaces (skips
        cancelled jobs left in the heap)."""
        while queue:
            _, _, job = heapq.heappop(queue)
            if job.state == "queued":
                return job
        return None

    def _vacuum(self) -> None:
        """Drop empty per-client queues from the rotation (lock held)."""
        if all(self._queues.get(c) for c in self._rotation):
            return
        survivors = [c for c in self._rotation if self._queues.get(c)]
        for client in self._rotation:
            if not self._queues.get(client):
                self._queues.pop(client, None)
        if self._next < len(self._rotation):
            current = self._rotation[self._next % max(len(self._rotation), 1)]
            self._rotation = survivors
            self._next = (survivors.index(current)
                          if current in survivors else 0)
        else:
            self._rotation = survivors
            self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(
                sum(1 for _, _, job in queue if job.state == "queued")
                for queue in self._queues.values()
            )

    def pending_by_client(self) -> Dict[str, int]:
        with self._lock:
            return {
                client: sum(1 for _, _, job in queue
                            if job.state == "queued")
                for client, queue in self._queues.items()
            }


__all__ = ["FairScheduler"]
