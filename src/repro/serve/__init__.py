"""Simulation-as-a-service: the ``repro serve`` daemon and its clients.

One resident daemon owns the worker pool, the content-addressed result
cache, and the durable journal; CLI invocations, benchmark sweeps, the
fuzzer, and tests all become thin protocol clients submitting RunSpecs
over a local socket and streaming results back.  See ``docs/serve.md``
for the protocol and lifecycle, and :mod:`repro.submit` for the unified
submission API that picks between in-process and daemon execution.

Layout::

    protocol.py   JSON-lines framing, handshake, addresses
    wire.py       versioned RunResult/RunFailure wire schema
    jobstore.py   dedup + subscription registry (the submission funnel)
    scheduler.py  per-client fair dispatch order
    worker.py     pool entry point + progress spool streaming
    daemon.py     the ServeDaemon itself
    client.py     ServeClient / ServeHandle
"""

from repro.serve.client import ServeClient, ServeError, ServeHandle
from repro.serve.daemon import ServeDaemon
from repro.serve.jobstore import Job, JobStore
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.scheduler import FairScheduler
from repro.serve.wire import (FAILURE_WIRE_KEYS, RESULT_WIRE_KEYS,
                              WIRE_SCHEMA_VERSION, WireFormatError,
                              failure_from_wire, failure_to_wire,
                              result_from_wire, result_to_wire)

__all__ = [
    "FAILURE_WIRE_KEYS",
    "FairScheduler",
    "Job",
    "JobStore",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RESULT_WIRE_KEYS",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeHandle",
    "WIRE_SCHEMA_VERSION",
    "WireFormatError",
    "failure_from_wire",
    "failure_to_wire",
    "result_from_wire",
    "result_to_wire",
]
