"""``repro serve`` — the long-running simulation daemon.

The daemon inverts the lab architecture: instead of every tool owning a
:class:`~repro.lab.runner.Runner`, one resident process owns the worker
pool, the content-addressed result cache, and the durable journal, and
every downstream tool (CLI, benchmarks, fuzzer, tests) becomes a thin
protocol client.  One submission API, shared dedup, shared cache.

Lifecycle of a submission (see ``docs/serve.md``):

1. A client connects (:mod:`repro.serve.protocol` handshake) and sends
   ``submit`` messages carrying serialized RunSpecs.
2. The :class:`~repro.serve.jobstore.JobStore` dedupes: an identical
   spec already in flight gains a subscriber instead of a second
   simulation; a spec in the cache returns instantly with no dispatch.
3. Fresh work enters the :class:`~repro.serve.scheduler.FairScheduler`
   (per-client priority queues, round-robin, inflight budgets) and is
   dispatched to the worker pool running
   :func:`~repro.serve.worker.serve_entry`.
4. While a run is in flight, the daemon tails its progress spool and
   streams lifecycle marks, obs time-series samples, and obs events to
   every subscribed client.
5. The result lands in the cache and journal, then fans out to all
   subscribers as a versioned wire message.

Crash safety mirrors the lab runner's: transient failures retry with
the same classification, a died pool worker gets its in-flight jobs
re-queued once for free, and the first SIGTERM/SIGINT *drains* — new
submissions are refused, in-flight runs get ``grace_s`` to finish (and
their results still reach cache, journal, and clients), queued jobs are
journaled as interrupted-transient so a resubmitted sweep completes
from cache hits.  A second signal aborts immediately.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import (CancelledError, Executor,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Dict, Optional

from repro.lab.cache import ResultCache
from repro.lab.journal import SweepJournal
from repro.lab.results import RunFailure, RunResult
from repro.lab.runner import _is_transient
from repro.lab.spec import RunSpec
from repro.serve import protocol, wire
from repro.serve.jobstore import QUEUED, Job, JobStore
from repro.serve.scheduler import FairScheduler
from repro.serve.worker import serve_entry

#: Counter names exposed by ``status`` (all start at zero).
COUNTER_NAMES = (
    "submitted",      # submit messages accepted
    "attached",       # submissions deduped onto an in-flight job
    "cache_hits",     # submissions served from the cache, no dispatch
    "dispatched",     # jobs actually handed to the worker pool
    "completed",      # jobs that produced a RunResult
    "failed",         # jobs that exhausted attempts
    "retried",        # transient failures re-queued
    "worker_losses",  # in-flight jobs re-queued after a pool death
    "clients",        # connections that completed the handshake
)


class _Subscription:
    """One client's interest in one job (transport adapter)."""

    __slots__ = ("conn", "wants_stream")

    def __init__(self, conn: "_ClientConn", wants_stream: bool) -> None:
        self.conn = conn
        self.wants_stream = wants_stream

    def send(self, message: Dict[str, Any]) -> bool:
        return self.conn.send(message)


class _ClientConn:
    """One accepted connection: framing, identity, liveness."""

    def __init__(self, stream: protocol.MessageStream, peer: str) -> None:
        self.stream = stream
        self.peer = peer
        self.name = peer
        self.alive = True

    def send(self, message: Dict[str, Any]) -> bool:
        if not self.alive:
            return False
        try:
            self.stream.send(message)
            return True
        except OSError:
            self.alive = False
            return False

    def close(self) -> None:
        self.alive = False
        self.stream.close()


class ServeDaemon:
    """The simulation-as-a-service job server (``repro serve``)."""

    def __init__(
        self,
        address: str,
        *,
        workers: Optional[int] = None,
        mode: str = "process",
        cache=None,
        journal=None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        max_inflight_per_client: Optional[int] = None,
        grace_s: float = 30.0,
        checkpoint_dir=None,
        spool_dir=None,
        poll_interval_s: float = 0.05,
        progress=None,
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.address = address
        self.workers = workers if workers and workers > 0 else (
            os.cpu_count() or 1
        )
        self.mode = mode
        if cache is False:
            self.cache: Optional[ResultCache] = None
        elif cache is None:
            self.cache = ResultCache()
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self._journal_path = journal
        self._journal: Optional[SweepJournal] = None
        self._journal_lock = threading.Lock()
        self.timeout_s = timeout_s
        self.retries = retries
        self.grace_s = grace_s
        self.checkpoint_dir = checkpoint_dir
        self._owns_spool = spool_dir is None
        self.spool_dir = Path(spool_dir) if spool_dir else None
        self.poll_interval_s = poll_interval_s
        self.progress = progress

        self.store = JobStore(cache=self.cache)
        self.scheduler = FairScheduler(max_inflight_per_client)
        self.counters: Dict[str, int] = {n: 0 for n in COUNTER_NAMES}
        self._counters_lock = threading.Lock()

        self._cond = threading.Condition()
        self._draining = False
        self._abort = False
        self._stopping = False
        self._started = False
        self._stopped = threading.Event()
        self._listener = None
        self._threads = []
        self._conns = set()
        self._conns_lock = threading.Lock()
        self._executor: Optional[Executor] = None
        self._executor_broken = False
        self._executor_lock = threading.Lock()
        self._running: Dict[Job, Any] = {}
        self._running_lock = threading.Lock()
        self._free_requeued = set()
        self._spool_lock = threading.Lock()
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Bind the listener and start the service threads."""
        if self._started:
            return self
        self._started = True
        if self.spool_dir is None:
            self.spool_dir = Path(
                tempfile.mkdtemp(prefix="repro-serve-spool-")
            )
        else:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
        if self._journal_path is not None:
            self._journal = SweepJournal(self._journal_path, resume=True)
            self._journal_note("serve_start", address=self.address,
                              workers=self.workers, mode=self.mode)
        self._listener = protocol.create_listener(self.address)
        for name, target in (
            ("serve-accept", self._accept_loop),
            ("serve-dispatch", self._dispatch_loop),
            ("serve-tail", self._tail_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        self._note(f"serving on {self.address} "
                   f"({self.workers} {self.mode} workers)")
        return self

    def serve_forever(self) -> int:
        """Blocking entry point: install signal draining and serve.

        Returns 0 after a clean drain, 130 after a two-signal abort.
        """
        self.start()
        on_main = threading.current_thread() is threading.main_thread()
        previous: Dict[int, Any] = {}

        def _on_signal(_signum, _frame):
            if self._draining:
                self.request_shutdown(drain=False)
            else:
                self._note("signal received: draining "
                           "(repeat to abort immediately)")
                self.request_shutdown(drain=True)

        if on_main:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous[sig] = signal.signal(sig, _on_signal)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        try:
            self._stopped.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 130 if self._abort else 0

    def request_shutdown(self, drain: bool = True) -> None:
        """Ask the daemon to stop (thread- and signal-safe)."""
        with self._cond:
            if not drain:
                self._abort = True
            self._draining = True
            self._cond.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    def close(self) -> None:
        """Immediate teardown (tests); prefer :meth:`request_shutdown`."""
        self.request_shutdown(drain=False)
        self._stopped.wait(10.0)

    # -- status --------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._counters_lock:
            counters = dict(self.counters)
        return {
            "address": self.address,
            "protocol": protocol.PROTOCOL_VERSION,
            "wire_schema": wire.WIRE_SCHEMA_VERSION,
            "workers": self.workers,
            "mode": self.mode,
            "cache_dir": str(self.cache.directory) if self.cache else None,
            "uptime_s": round(time.monotonic() - self._started_at, 1),
            "draining": self._draining,
            "counters": counters,
            "jobs": self.store.counts(),
            "pending_by_client": self.scheduler.pending_by_client(),
        }

    # -- internals -----------------------------------------------------

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(f"[serve] {message}")

    def _count(self, name: str, delta: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] += delta

    def _journal_note(self, note: str, **detail: Any) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.record_note(note, **detail)

    def _journal_spec(self, spec: RunSpec) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.record_spec(spec)

    def _journal_done(self, spec_hash: str, from_cache: bool,
                      cycles: int) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.record_done(spec_hash, from_cache=from_cache,
                                      cycles=cycles)

    def _journal_failed(self, spec_hash: str, error_type: str,
                        transient: bool) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.record_failed(spec_hash, error_type=error_type,
                                        transient=transient)

    # -- accept / client loops ----------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            peer = addr if isinstance(addr, str) and addr else (
                f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple)
                else f"conn-{id(sock) & 0xffff:04x}"
            )
            conn = _ClientConn(protocol.MessageStream(sock), peer)
            thread = threading.Thread(
                target=self._client_loop, args=(conn,),
                name=f"serve-client-{peer}", daemon=True,
            )
            thread.start()

    def _client_loop(self, conn: _ClientConn) -> None:
        stream = conn.stream
        try:
            hello = protocol.check_hello(stream.recv())
        except protocol.ProtocolError as exc:
            conn.send({"type": "error", "message": str(exc)})
            conn.close()
            return
        if hello.get("client"):
            conn.name = str(hello["client"])
        conn.send({"type": "hello_ack",
                   "protocol": protocol.PROTOCOL_VERSION,
                   "wire_schema": wire.WIRE_SCHEMA_VERSION,
                   "server": "repro-serve"})
        self._count("clients")
        with self._conns_lock:
            self._conns.add(conn)
        try:
            while conn.alive:
                try:
                    message = stream.recv()
                except (protocol.ProtocolError, OSError) as exc:
                    conn.send({"type": "error", "message": str(exc)})
                    break
                if message is None:
                    break
                self._handle_message(conn, message)
        finally:
            conn.close()
            with self._conns_lock:
                self._conns.discard(conn)

    def _handle_message(self, conn: _ClientConn,
                        message: Dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == "submit":
            self._handle_submit(conn, message)
        elif kind == "status":
            conn.send({"type": "status", **self.status()})
        elif kind == "ping":
            conn.send({"type": "pong"})
        elif kind == "cancel":
            job = self.store.cancel(str(message.get("job_id")))
            conn.send({"type": "cancelled",
                       "job_id": message.get("job_id"),
                       "ok": job is not None})
        elif kind == "shutdown":
            conn.send({"type": "shutting_down",
                       "drain": bool(message.get("drain", True))})
            self.request_shutdown(drain=bool(message.get("drain", True)))
        else:
            conn.send({"type": "error",
                       "message": f"unknown message type {kind!r}"})

    def _handle_submit(self, conn: _ClientConn,
                       message: Dict[str, Any]) -> None:
        if self._draining:
            conn.send({"type": "error",
                       "message": "daemon is draining; "
                                  "resubmit to a fresh daemon"})
            return
        try:
            spec = RunSpec.from_dict(message["spec"],
                                     label=message.get("label"))
        except (KeyError, TypeError, ValueError) as exc:
            conn.send({"type": "error",
                       "message": f"bad spec: {type(exc).__name__}: {exc}"})
            return
        subscription = _Subscription(
            conn, wants_stream=bool(message.get("stream", True))
        )
        job, status = self.store.submit(
            spec, client=conn.name, subscriber=subscription,
            priority=int(message.get("priority", 0)),
        )
        self._count("submitted")
        self._journal_spec(spec)
        conn.send({"type": "accepted", "job_id": job.id,
                   "spec_hash": job.spec_hash, "status": status})
        if status == "cached":
            self._count("cache_hits")
            self._journal_done(job.spec_hash, from_cache=True,
                              cycles=job.result.cycles)
            conn.send({"type": "result", "job_id": job.id,
                       "result": wire.result_to_wire(job.result)})
        elif status == "attached":
            self._count("attached")
        else:
            self.scheduler.push(job)
            with self._cond:
                self._cond.notify_all()
        self._note(f"{spec.display}: {status} as {job.id} "
                   f"(client {conn.name})")

    # -- dispatch ------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        with self._executor_lock:
            if self._executor is not None and self._executor_broken:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                self._executor_broken = False
            if self._executor is None:
                if self.mode == "thread":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="serve-worker",
                    )
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
            return self._executor

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                if self._draining:
                    break
                job = self.scheduler.pop()
                if job is None:
                    self._cond.wait(0.5)
                    continue
            self._dispatch(job)
        self._drain_and_stop()

    def _dispatch(self, job: Job) -> None:
        # The cache may have gained this entry since submission (another
        # daemon or a direct Runner sharing the directory): late dedup
        # still skips the worker.
        cached = (self.cache.get(job.spec)
                  if self.cache is not None else None)
        if cached is not None:
            self.scheduler.job_finished(job.client)
            self._count("cache_hits")
            self._complete(job, cached, from_cache=True)
            return
        self.store.mark_running(job)
        job.progress_path = str(self.spool_dir / f"{job.id}.progress.jsonl")
        self._count("dispatched")
        job.broadcast({"type": "progress", "job_id": job.id,
                       "spec_hash": job.spec_hash, "kind": "lifecycle",
                       "data": {"kind": "lifecycle", "phase": "dispatched",
                                "attempt": job.attempts}},
                      stream_only=True)
        try:
            executor = self._ensure_executor()
            future = executor.submit(
                serve_entry, job.spec, job.progress_path, self.timeout_s,
                self.checkpoint_dir, None,
            )
        except (RuntimeError, BrokenProcessPool) as exc:
            self.scheduler.job_finished(job.client)
            self._job_outcome(job, exc)
            return
        with self._running_lock:
            self._running[job] = future
        future.add_done_callback(
            lambda f, j=job: self._on_future_done(j, f)
        )

    def _on_future_done(self, job: Job, future) -> None:
        try:
            outcome: Any = future.result()
        except CancelledError:
            outcome = RunFailure(
                spec=job.spec, spec_hash=job.spec_hash,
                error_type="RunInterrupted",
                message="daemon drained before this job completed",
                attempts=job.attempts, transient=True,
            )
        except BaseException as exc:  # noqa: BLE001 - classified below
            outcome = exc
        with self._running_lock:
            self._running.pop(job, None)
        self.scheduler.job_finished(job.client)
        self._job_outcome(job, outcome)
        with self._cond:
            self._cond.notify_all()

    def _job_outcome(self, job: Job, outcome: Any) -> None:
        if isinstance(outcome, RunResult):
            self._complete(job, outcome, from_cache=False)
            return
        if isinstance(outcome, RunFailure):
            self._fail(job, outcome)
            return
        exc = outcome
        if isinstance(exc, BrokenProcessPool):
            with self._executor_lock:
                self._executor_broken = True
            if job.id not in self._free_requeued and not self._draining:
                # The worker died under this job; that says nothing
                # about the job.  One free re-queue, like the Runner.
                self._free_requeued.add(job.id)
                self._count("worker_losses")
                self._note(f"{job.spec.display}: worker died, re-queued")
                self.store.mark_requeued(job)
                self.scheduler.push(job)
                with self._cond:
                    self._cond.notify_all()
                return
        transient = _is_transient(exc)
        if (transient and job.attempts < self.retries + 1
                and not self._draining):
            self._count("retried")
            self._note(f"{job.spec.display}: transient "
                       f"{type(exc).__name__}, retrying")
            self.store.mark_requeued(job)
            self.scheduler.push(job)
            with self._cond:
                self._cond.notify_all()
            return
        hang_report = getattr(exc, "report", None)
        self._fail(job, RunFailure(
            spec=job.spec, spec_hash=job.spec_hash,
            error_type=type(exc).__name__, message=str(exc),
            attempts=max(job.attempts, 1), transient=transient,
            hang=hang_report.to_dict() if hang_report is not None else None,
        ))

    def _complete(self, job: Job, result: RunResult,
                  from_cache: bool) -> None:
        result.label = job.spec.label
        if not from_cache:
            result.attempts = max(job.attempts, 1)
            if self.cache is not None:
                self.cache.put(job.spec, result)
        self._drain_spool(job, final=True)
        self._journal_done(job.spec_hash, from_cache=from_cache,
                           cycles=result.cycles)
        self.store.finish(job, result)
        # Count before broadcasting: a client that queries status right
        # after receiving its result must see this completion.
        self._count("completed")
        job.broadcast({"type": "result", "job_id": job.id,
                       "result": wire.result_to_wire(result)})
        self._note(f"{job.spec.display}: "
                   f"{'cached' if from_cache else 'done'} "
                   f"({result.cycles} cycles)")

    def _fail(self, job: Job, failure: RunFailure) -> None:
        self._drain_spool(job, final=True)
        self._journal_failed(job.spec_hash, failure.error_type,
                             failure.transient)
        self.store.finish(job, failure)
        self._count("failed")
        job.broadcast({"type": "failure", "job_id": job.id,
                       "failure": wire.failure_to_wire(failure)})
        self._note(f"{job.spec.display}: FAILED ({failure.error_type})")

    # -- progress streaming -------------------------------------------

    def _tail_loop(self) -> None:
        while not self._stopped.is_set():
            time.sleep(self.poll_interval_s)
            with self._running_lock:
                running = list(self._running)
            for job in running:
                self._drain_spool(job)

    def _drain_spool(self, job: Job, final: bool = False) -> None:
        """Forward new spool lines to subscribers (ordered vs result:
        the final drain runs before the result broadcast)."""
        path = job.progress_path
        if path is None:
            return
        with self._spool_lock:
            try:
                with open(path, "rb") as handle:
                    handle.seek(job.progress_offset)
                    chunk = handle.read()
            except OSError:
                return
            if chunk:
                lines = chunk.split(b"\n")
                # A torn final line stays buffered for the next poll.
                remainder = lines.pop()
                job.progress_offset += len(chunk) - len(remainder)
                records = []
                for line in lines:
                    if not line.strip():
                        continue
                    try:
                        import json
                        records.append(json.loads(line))
                    except ValueError:
                        continue
            else:
                records = []
        for record in records:
            job.broadcast({"type": "progress", "job_id": job.id,
                           "spec_hash": job.spec_hash,
                           "kind": record.get("kind", "unknown"),
                           "data": record},
                          stream_only=True)
        if final:
            job.progress_path = None
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- shutdown ------------------------------------------------------

    def _drain_and_stop(self) -> None:
        """Runs on the dispatcher thread once draining is requested."""
        self._journal_note("drain",
                           running=len(self._running),
                           queued=len(self.scheduler))
        deadline = time.monotonic() + (0.0 if self._abort else self.grace_s)
        while time.monotonic() < deadline and not self._abort:
            with self._running_lock:
                if not self._running:
                    break
            time.sleep(0.05)
        # Queued jobs never ran: journal them interrupted-transient so a
        # resubmitted sweep (or `repro sweep --resume` on this journal)
        # completes them, and tell their subscribers.
        interrupted = 0
        while True:
            job = self.scheduler.pop()
            if job is None:
                break
            self.scheduler.job_finished(job.client)
            self._fail(job, RunFailure(
                spec=job.spec, spec_hash=job.spec_hash,
                error_type="RunInterrupted",
                message="daemon drained before this job started",
                attempts=0, transient=True,
            ))
            interrupted += 1
        with self._running_lock:
            still_running = list(self._running)
        for job in still_running:
            # Grace expired (or abort): journal as interrupted; the
            # worker may still finish, but we no longer wait for it.
            self._fail(job, RunFailure(
                spec=job.spec, spec_hash=job.spec_hash,
                error_type="RunInterrupted",
                message="daemon stopped before this job completed",
                attempts=job.attempts, transient=True,
            ))
            interrupted += 1
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            family, target = protocol.parse_address(self.address)
            if family == "unix":
                try:
                    os.unlink(target)
                except OSError:
                    pass
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        self._journal_note("serve_exit", interrupted=interrupted,
                           abort=self._abort)
        if self._journal is not None:
            with self._journal_lock:
                self._journal.close()
        if self._owns_spool and self.spool_dir is not None:
            shutil.rmtree(self.spool_dir, ignore_errors=True)
        self._note("stopped" + (" (abort)" if self._abort else ""))
        self._stopped.set()


__all__ = ["COUNTER_NAMES", "ServeDaemon"]
