"""Versioned wire format for run outcomes crossing the serve protocol.

The daemon and its clients evolve independently — a client built against
last month's package must either interoperate cleanly with today's
daemon or fail with a message that names the incompatibility, never
deserialize garbage.  Mirroring :meth:`repro.metrics.stats.SimStats.
summary` (``schema_version`` + frozen key set, guarded by
``tests/test_stats_schema.py``), every :class:`~repro.lab.results.
RunResult` / :class:`~repro.lab.results.RunFailure` that crosses the
socket is stamped with :data:`WIRE_SCHEMA_VERSION` and carries exactly
:data:`RESULT_WIRE_KEYS` / :data:`FAILURE_WIRE_KEYS` — no more, no
less.  Decoding rejects a version mismatch or a key-set drift with
:class:`WireFormatError` before touching the payload.

Bumping the version is an explicit act: add/remove a key, bump
:data:`WIRE_SCHEMA_VERSION`, update the frozen key tuple, and extend
``tests/test_serve_wire.py``'s golden expectations.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.lab.results import RunFailure, RunResult, stats_from_dict

#: Version of the result/failure wire layout.  Clients refuse to decode
#: any other version (see :func:`check_wire_version`).
WIRE_SCHEMA_VERSION = 1

#: Exactly the keys of one serialized :class:`RunResult` on the wire.
#: Extends :meth:`RunResult.to_dict` with the delivery metadata a client
#: needs (``attempts``, ``from_cache``, ``label``) plus the version
#: stamp.  Frozen: changing this set requires a version bump.
RESULT_WIRE_KEYS = (
    "schema_version",
    "spec_hash",
    "cycles",
    "stats",
    "predicted_sibs",
    "ddos",
    "elapsed_s",
    "phases",
    "obs",
    "sanitizer",
    "attempts",
    "from_cache",
    "label",
)

#: Exactly the keys of one serialized :class:`RunFailure` on the wire.
#: The spec itself does not travel (the submitting client already holds
#: it); ``label`` preserves the human name for reporting.
FAILURE_WIRE_KEYS = (
    "schema_version",
    "spec_hash",
    "error_type",
    "message",
    "attempts",
    "elapsed_s",
    "transient",
    "hang",
    "label",
)


class WireFormatError(RuntimeError):
    """The payload does not speak this module's wire schema."""


def check_wire_version(data: Dict[str, Any], what: str) -> None:
    """Reject anything but exactly :data:`WIRE_SCHEMA_VERSION`."""
    if not isinstance(data, dict):
        raise WireFormatError(f"{what}: expected an object, "
                              f"got {type(data).__name__}")
    version = data.get("schema_version")
    if version != WIRE_SCHEMA_VERSION:
        raise WireFormatError(
            f"{what}: wire schema_version {version!r} is not supported "
            f"by this client/daemon (expected {WIRE_SCHEMA_VERSION}); "
            f"upgrade the older side so both speak the same schema"
        )


def _check_keys(data: Dict[str, Any], expected, what: str) -> None:
    actual = set(data)
    expected = set(expected)
    if actual != expected:
        missing = sorted(expected - actual)
        extra = sorted(actual - expected)
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        raise WireFormatError(
            f"{what}: key set does not match wire schema "
            f"v{WIRE_SCHEMA_VERSION} ({'; '.join(detail)})"
        )


def result_to_wire(result: RunResult) -> Dict[str, Any]:
    """Serialize a :class:`RunResult` for the socket (versioned)."""
    data = result.to_dict()
    data["schema_version"] = WIRE_SCHEMA_VERSION
    data["attempts"] = result.attempts
    data["from_cache"] = result.from_cache
    data["label"] = result.label
    _check_keys(data, RESULT_WIRE_KEYS, "result_to_wire")
    return data


def result_from_wire(data: Dict[str, Any]) -> RunResult:
    """Decode a wire result; :class:`WireFormatError` on any mismatch."""
    check_wire_version(data, "result")
    _check_keys(data, RESULT_WIRE_KEYS, "result")
    try:
        result = RunResult(
            spec_hash=data["spec_hash"],
            cycles=data["cycles"],
            stats=stats_from_dict(data["stats"]),
            predicted_sibs=list(data["predicted_sibs"] or []),
            ddos=data["ddos"],
            elapsed_s=data["elapsed_s"],
            phases=data["phases"],
            obs=data["obs"],
            sanitizer=data["sanitizer"],
            attempts=data["attempts"],
            from_cache=bool(data["from_cache"]),
            label=data["label"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"result payload malformed: {exc}") from exc
    return result


def failure_to_wire(failure: RunFailure) -> Dict[str, Any]:
    """Serialize a :class:`RunFailure` for the socket (versioned)."""
    data = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "spec_hash": failure.spec_hash,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "elapsed_s": failure.elapsed_s,
        "transient": failure.transient,
        "hang": failure.hang,
        "label": failure.spec.label if failure.spec is not None else None,
    }
    _check_keys(data, FAILURE_WIRE_KEYS, "failure_to_wire")
    return data


def failure_from_wire(data: Dict[str, Any],
                      spec=None) -> RunFailure:
    """Decode a wire failure; ``spec`` reattaches the client's copy."""
    check_wire_version(data, "failure")
    _check_keys(data, FAILURE_WIRE_KEYS, "failure")
    try:
        return RunFailure(
            spec=spec,
            spec_hash=data["spec_hash"],
            error_type=data["error_type"],
            message=data["message"],
            attempts=data["attempts"],
            elapsed_s=data["elapsed_s"],
            transient=bool(data["transient"]),
            hang=data["hang"],
        )
    except (KeyError, TypeError) as exc:
        raise WireFormatError(f"failure payload malformed: {exc}") from exc


__all__ = [
    "FAILURE_WIRE_KEYS",
    "RESULT_WIRE_KEYS",
    "WIRE_SCHEMA_VERSION",
    "WireFormatError",
    "check_wire_version",
    "failure_from_wire",
    "failure_to_wire",
    "result_from_wire",
    "result_to_wire",
]
