"""Measurement layer: simulation statistics and derived metrics."""

from repro.metrics.stats import LockStats, SimStats

__all__ = ["LockStats", "SimStats"]
