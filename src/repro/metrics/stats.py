"""Simulation statistics.

Everything the paper's figures report is derived from these counters:

* dynamic instruction counts at warp and thread granularity, split into
  synchronization overhead vs useful work (``!sync`` annotations) and
  spin-inducing-branch executions (Figures 1c, 13a);
* memory transactions, split sync vs other (Figures 1d, 13b);
* SIMD efficiency = average active lanes per issued instruction
  (Figures 1e, 13c);
* lock-acquire and wait-exit outcome distributions (Figures 2, 12),
  classifying failed acquires as intra- vs inter-warp conflicts;
* backed-off-warp occupancy over time (Figure 11);
* issue-slot accounting and energy-model inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.memory.memsys import MemoryStats

#: Version of the :meth:`SimStats.summary` reporting schema.  Bump this
#: whenever a key is added, removed, renamed, or its meaning changes —
#: downstream consumers (BENCH_hotloop.json, lab result caches, plots)
#: key on it to detect incompatible records.
SUMMARY_SCHEMA_VERSION = 1

#: The frozen key list of :meth:`SimStats.summary`, in emission order.
#: ``tests/test_stats_schema.py`` asserts summaries match this exactly;
#: change it only together with ``SUMMARY_SCHEMA_VERSION``.
SUMMARY_KEYS = (
    "schema_version",
    "cycles",
    "warp_instructions",
    "thread_instructions",
    "ipc",
    "simd_efficiency",
    "sync_instruction_fraction",
    "memory_transactions",
    "sync_transaction_fraction",
    "lock_success",
    "inter_warp_fail",
    "intra_warp_fail",
    "wait_exit_success",
    "wait_exit_fail",
    "backed_off_fraction",
    "dynamic_energy_pj",
)


@dataclass
class LockStats:
    """Lock-acquire and wait-exit outcome counters (thread granularity)."""

    lock_success: int = 0
    inter_warp_fail: int = 0
    intra_warp_fail: int = 0
    wait_exit_success: int = 0
    wait_exit_fail: int = 0

    @property
    def total(self) -> int:
        return (
            self.lock_success
            + self.inter_warp_fail
            + self.intra_warp_fail
            + self.wait_exit_success
            + self.wait_exit_fail
        )

    @property
    def acquire_attempts(self) -> int:
        return self.lock_success + self.inter_warp_fail + self.intra_warp_fail

    @property
    def fail_rate(self) -> float:
        attempts = self.acquire_attempts
        if attempts == 0:
            return 0.0
        return (self.inter_warp_fail + self.intra_warp_fail) / attempts

    def as_dict(self) -> Dict[str, int]:
        return {
            "lock_success": self.lock_success,
            "inter_warp_fail": self.inter_warp_fail,
            "intra_warp_fail": self.intra_warp_fail,
            "wait_exit_success": self.wait_exit_success,
            "wait_exit_fail": self.wait_exit_fail,
        }


@dataclass
class SimStats:
    """Aggregate counters for one kernel execution."""

    cycles: int = 0
    # Instruction counts.
    warp_instructions: int = 0
    thread_instructions: int = 0
    sib_warp_instructions: int = 0
    sib_thread_instructions: int = 0
    sync_thread_instructions: int = 0
    useful_thread_instructions: int = 0
    atomic_warp_instructions: int = 0
    # SIMD efficiency inputs.
    active_lane_sum: int = 0
    # Scheduler occupancy (cycle-weighted sums, Figure 11).
    backed_off_warp_cycles: float = 0.0
    resident_warp_cycles: float = 0.0
    # Issue accounting.
    issue_slots: int = 0          # scheduler-cycles available
    issued_slots: int = 0         # scheduler-cycles that issued
    # Synchronization outcomes.
    locks: LockStats = field(default_factory=LockStats)
    # Memory events.
    memory: MemoryStats = field(default_factory=MemoryStats)
    # Energy (filled in by the energy model at the end of a run).
    dynamic_energy_pj: float = 0.0
    # Barrier accounting.
    barrier_waits: int = 0

    # ------------------------------------------------------------------
    # Derived metrics

    @property
    def simd_efficiency(self) -> float:
        """Average fraction of active lanes per issued warp instruction."""
        if self.warp_instructions == 0:
            return 0.0
        return self.active_lane_sum / (self.warp_instructions * 32)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.warp_instructions / self.cycles

    @property
    def backed_off_fraction(self) -> float:
        """Cycle-weighted average fraction of resident warps backed off."""
        if self.resident_warp_cycles == 0:
            return 0.0
        return self.backed_off_warp_cycles / self.resident_warp_cycles

    @property
    def sync_instruction_fraction(self) -> float:
        total = self.thread_instructions
        if total == 0:
            return 0.0
        return self.sync_thread_instructions / total

    @property
    def sync_transaction_fraction(self) -> float:
        total = self.memory.total_transactions
        if total == 0:
            return 0.0
        return self.memory.sync_transactions / total

    def merge(self, other: "SimStats") -> None:
        """Accumulate ``other`` into this (for multi-SM aggregation)."""
        self.warp_instructions += other.warp_instructions
        self.thread_instructions += other.thread_instructions
        self.sib_warp_instructions += other.sib_warp_instructions
        self.sib_thread_instructions += other.sib_thread_instructions
        self.sync_thread_instructions += other.sync_thread_instructions
        self.useful_thread_instructions += other.useful_thread_instructions
        self.atomic_warp_instructions += other.atomic_warp_instructions
        self.active_lane_sum += other.active_lane_sum
        self.backed_off_warp_cycles += other.backed_off_warp_cycles
        self.resident_warp_cycles += other.resident_warp_cycles
        self.issue_slots += other.issue_slots
        self.issued_slots += other.issued_slots
        self.barrier_waits += other.barrier_waits
        for name, value in other.locks.as_dict().items():
            setattr(self.locks, name, getattr(self.locks, name) + value)
        self.memory.merge(other.memory)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (reporting/serialization).

        The key set is versioned: ``schema_version`` is always present
        and the remaining keys are exactly ``SUMMARY_KEYS``.
        """
        return {
            "schema_version": SUMMARY_SCHEMA_VERSION,
            "cycles": self.cycles,
            "warp_instructions": self.warp_instructions,
            "thread_instructions": self.thread_instructions,
            "ipc": round(self.ipc, 4),
            "simd_efficiency": round(self.simd_efficiency, 4),
            "sync_instruction_fraction": round(self.sync_instruction_fraction, 4),
            "memory_transactions": self.memory.total_transactions,
            "sync_transaction_fraction": round(self.sync_transaction_fraction, 4),
            "lock_success": self.locks.lock_success,
            "inter_warp_fail": self.locks.inter_warp_fail,
            "intra_warp_fail": self.locks.intra_warp_fail,
            "wait_exit_success": self.locks.wait_exit_success,
            "wait_exit_fail": self.locks.wait_exit_fail,
            "backed_off_fraction": round(self.backed_off_fraction, 4),
            "dynamic_energy_pj": round(self.dynamic_energy_pj, 1),
        }
