"""Run outcomes: serializable success and failure records.

A :class:`RunResult` carries everything the experiment layer reads off a
simulation — cycle count, the full :class:`~repro.metrics.stats.SimStats`
counters, DDOS detection records when DDOS was on — but none of the
heavyweight simulation state (memory images, SM objects), so it is cheap
to ship across process boundaries and to persist in the result cache.

A :class:`RunFailure` is the structured alternative when a run could not
produce a result: it records the error, how many attempts were made, and
whether the failure was classified transient.  A sweep never raises out
of a single bad run; callers that need all results use
:meth:`~repro.lab.runner.Runner.run_map`, which raises a summarizing
:class:`LabError` only after the whole batch has been driven.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.memory.memsys import MemoryStats
from repro.metrics.stats import LockStats, SimStats

from repro.lab.spec import RunSpec


class LabError(RuntimeError):
    """A batch could not be completed (see the failure records)."""


def stats_to_dict(stats: SimStats) -> Dict[str, Any]:
    return dataclasses.asdict(stats)


def stats_from_dict(data: Dict[str, Any]) -> SimStats:
    data = dict(data)
    data["locks"] = LockStats(**data.get("locks", {}))
    data["memory"] = MemoryStats(**data.get("memory", {}))
    return SimStats(**data)


@dataclass
class RunResult:
    """Outcome of one successful simulation (cache- and pickle-friendly)."""

    spec_hash: str
    cycles: int
    stats: SimStats
    #: Sorted union of DDOS-predicted SIB instruction indices.
    predicted_sibs: List[int] = field(default_factory=list)
    #: ``DetectionOutcome`` fields (plain data) when DDOS was enabled.
    ddos: Optional[Dict[str, Any]] = None
    elapsed_s: float = 0.0
    #: Per-phase wall-clock breakdown of ``elapsed_s`` (``build_s``,
    #: ``simulate_s``, ``score_s``) when the run executed in-process.
    phases: Optional[Dict[str, float]] = None
    #: Observability payload (:meth:`repro.obs.Observability.to_dict`)
    #: when the spec requested collection: event counts + bounded log,
    #: sampled time series.
    obs: Optional[Dict[str, Any]] = None
    #: Sanitizer payload (:meth:`repro.analysis.Sanitizer.to_dict`) when
    #: the spec requested sanitizing: counters + diagnostics.
    sanitizer: Optional[Dict[str, Any]] = None
    attempts: int = 1
    from_cache: bool = False
    label: Optional[str] = None

    ok = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_hash": self.spec_hash,
            "cycles": self.cycles,
            "stats": stats_to_dict(self.stats),
            "predicted_sibs": list(self.predicted_sibs),
            "ddos": self.ddos,
            "elapsed_s": self.elapsed_s,
            "phases": self.phases,
            "obs": self.obs,
            "sanitizer": self.sanitizer,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            spec_hash=data["spec_hash"],
            cycles=data["cycles"],
            stats=stats_from_dict(data["stats"]),
            predicted_sibs=list(data.get("predicted_sibs", [])),
            ddos=data.get("ddos"),
            elapsed_s=data.get("elapsed_s", 0.0),
            phases=data.get("phases"),
            obs=data.get("obs"),
            sanitizer=data.get("sanitizer"),
        )


@dataclass
class RunFailure:
    """Structured record of a run that produced no result."""

    spec: Optional[RunSpec]
    spec_hash: str
    error_type: str
    message: str
    attempts: int
    elapsed_s: float = 0.0
    transient: bool = False
    #: Inline :class:`~repro.sim.progress.HangReport` JSON when the run
    #: hung (deadlock/livelock) or timed out; ships through manifests so
    #: a sweep worker's hang forensics survive the process boundary.
    hang: Optional[Dict[str, Any]] = None

    ok = False

    @property
    def hung(self) -> bool:
        return self.hang is not None

    def describe(self) -> str:
        what = self.spec.display if self.spec is not None else self.spec_hash
        first_line = self.message.splitlines()[0] if self.message else ""
        text = (f"{what}: {self.error_type}: {first_line} "
                f"(after {self.attempts} attempt(s))")
        if self.hang is not None:
            text += f" [hang: {self.hang.get('kind')} at cycle " \
                    f"{self.hang.get('cycle')}]"
        return text
