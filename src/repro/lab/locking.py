"""Advisory inter-process file locks for shared lab storage.

Concurrent Runners and CLI invocations may share one ``.lab_cache``
directory (and, eventually, one ``repro serve`` daemon's spool).  Entry
*writes* are already safe without locking — every writer goes through
temp-file + ``os.replace`` — but multi-file operations (quarantining a
corrupt entry, ``verify --repair`` scans, ``clear``) need mutual
exclusion so two processes never move the same file or scan a directory
mid-mutation.

:class:`FileLock` wraps ``fcntl.flock`` (advisory, kernel-released on
process death — a SIGKILLed holder can never leave the lock stuck) with
non-blocking acquisition polled up to a timeout.  On platforms without
``fcntl`` the lock degrades to a no-op, preserving the seed behavior
(atomic renames only), rather than failing.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

try:  # pragma: no cover - always present on the POSIX CI/dev hosts
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None


class LockTimeout(TimeoutError):
    """The lock could not be acquired within ``timeout_s``."""


class FileLock:
    """An advisory exclusive lock on ``path`` (created if missing).

    Usage::

        with FileLock(cache_dir / ".lock", timeout_s=30):
            ...  # multi-file mutation

    Reentrant within one instance is *not* supported (and not needed);
    separate instances in one process do exclude each other on platforms
    where ``flock`` locks per open file description (Linux).
    """

    def __init__(self, path, timeout_s: float = 30.0,
                 poll_s: float = 0.05) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        if fcntl is None:  # degrade: atomic renames are the only guard
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_CREAT | os.O_RDWR, 0o644)
        deadline = time.monotonic() + self.timeout_s
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise LockTimeout(
                            f"could not acquire {self.path} within "
                            f"{self.timeout_s:.1f}s (is another repro "
                            "process stuck?)"
                        )
                    time.sleep(self.poll_s)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        return self

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


__all__ = ["FileLock", "LockTimeout"]
