"""Picklable fault-injection run functions for resilience tests.

Process-pool ``run_fn`` injection requires module-level callables (the
pool pickles them by reference), so the crash scenarios the resilience
suite needs — a worker that SIGKILLs itself mid-run, a run that fails
transiently N times, a slow run — live here rather than inline in the
tests.  Cross-process "have I crashed before?" state is carried by
sentinel files named through environment variables, which survive the
pool's worker churn.
"""

from __future__ import annotations

import os
import signal
import time

from repro.lab.results import RunResult
from repro.lab.runner import TransientRunError
from repro.lab.spec import RunSpec
from repro.metrics.stats import SimStats

#: Env var naming the sentinel file used by the kill/flake run_fns.
SENTINEL_ENV = "REPRO_TEST_SENTINEL"


def fabricate_result(spec: RunSpec, cycles: int = 1) -> RunResult:
    """A minimal, valid RunResult for tests that never simulate."""
    return RunResult(
        spec_hash=spec.content_hash(),
        cycles=cycles,
        stats=SimStats(),
        predicted_sibs=[],
        ddos=None,
        elapsed_s=0.0,
        phases={},
    )


def _claim_sentinel(tag: str) -> bool:
    """Atomically claim ``<sentinel>.<tag>``; True exactly once."""
    base = os.environ.get(SENTINEL_ENV)
    if base is None:
        return False
    path = f"{base}.{tag}"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def kill_worker_once(spec: RunSpec) -> RunResult:
    """SIGKILL the executing process the first time any worker runs it.

    Models an OOM-killed pool worker: the process dies without cleanup,
    the pool breaks, and the retried run (a fresh worker, sentinel now
    present) succeeds.
    """
    if _claim_sentinel("kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    return fabricate_result(spec)


def kill_always(spec: RunSpec) -> RunResult:
    """SIGKILL the executing process on every attempt (never succeeds)."""
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")


def flaky_then_ok(spec: RunSpec) -> RunResult:
    """Raise TransientRunError on the first call, succeed afterwards."""
    if _claim_sentinel("flake"):
        raise TransientRunError("injected transient failure")
    return fabricate_result(spec)


def slow_run(spec: RunSpec) -> RunResult:
    """Sleep long enough to trip any sub-second timeout, then succeed."""
    time.sleep(2.0)
    return fabricate_result(spec)


def instant_ok(spec: RunSpec) -> RunResult:
    return fabricate_result(spec)


__all__ = [
    "SENTINEL_ENV",
    "fabricate_result",
    "flaky_then_ok",
    "instant_ok",
    "kill_always",
    "kill_worker_once",
    "slow_run",
]
