"""Append-only sweep journal: the durable record that makes sweeps resumable.

A journal is a JSONL file, one self-describing record per line, written
with flush + fsync so every completed record survives a SIGKILL of the
writer (a torn final line is tolerated and skipped on load).  Records:

``{"type": "spec", "hash": ..., "spec": {...}, "label": ...}``
    One per sweep item, written up front — the journal alone is enough
    to rebuild the full spec list via :meth:`RunSpec.from_dict`.
``{"type": "done", "hash": ..., "from_cache": bool, "cycles": int}``
    A spec produced a result (served from cache or freshly executed).
``{"type": "failed", "hash": ..., "error_type": ..., "transient": bool}``
    A spec exhausted its attempts.
``{"type": "note", ...}``
    Free-form progress marks (interruption, resume, worker loss).

``repro sweep --journal j.jsonl`` writes one; after a crash,
``repro sweep --resume j.jsonl`` rebuilds the specs from it and re-runs
the batch — finished specs come back as result-cache hits (recorded as
``from_cache`` done records), so nothing completed is ever recomputed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lab.spec import RunSpec, _json_default


class JournalError(RuntimeError):
    """The journal could not be read or does not describe a sweep."""


class SweepJournal:
    """Appendable journal handle (open for the duration of a batch)."""

    def __init__(self, path, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._spec_hashes = set()
        if resume and self.path.stat().st_size:
            for record in _read_records(self.path):
                if record.get("type") == "spec" and "hash" in record:
                    self._spec_hashes.add(record["hash"])

    # -- writing --------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, default=_json_default)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_spec(self, spec: RunSpec) -> None:
        """Journal the spec itself (idempotent across resumes)."""
        spec_hash = spec.content_hash()
        if spec_hash in self._spec_hashes:
            return
        self._spec_hashes.add(spec_hash)
        self._append({
            "type": "spec",
            "hash": spec_hash,
            "label": spec.label,
            "spec": spec.to_dict(),
        })

    def record_done(self, spec_hash: str, from_cache: bool,
                    cycles: int) -> None:
        self._append({
            "type": "done",
            "hash": spec_hash,
            "from_cache": bool(from_cache),
            "cycles": int(cycles),
        })

    def record_failed(self, spec_hash: str, error_type: str,
                      transient: bool) -> None:
        self._append({
            "type": "failed",
            "hash": spec_hash,
            "error_type": error_type,
            "transient": bool(transient),
        })

    def record_note(self, note: str, **detail: Any) -> None:
        self._append({"type": "note", "note": note, **detail})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """Parsed view of a journal (``load_journal``)."""

    path: str
    #: spec hash -> rebuilt RunSpec, in first-seen order.
    specs: Dict[str, RunSpec] = field(default_factory=dict)
    #: spec hashes with a ``done`` record.
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> last ``failed`` record.
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    notes: List[Dict[str, Any]] = field(default_factory=list)
    #: Lines that could not be parsed (at most the torn final line of a
    #: killed writer under normal operation).
    skipped_lines: int = 0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.done.values() if r.get("from_cache"))

    @property
    def executed(self) -> int:
        return sum(1 for r in self.done.values() if not r.get("from_cache"))

    @property
    def pending(self) -> List[RunSpec]:
        """Specs with no ``done`` record yet (what a resume must run)."""
        return [spec for spec_hash, spec in self.specs.items()
                if spec_hash not in self.done]

    def all_specs(self) -> List[RunSpec]:
        return list(self.specs.values())


def _read_records(path: Path):
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                yield None  # torn tail from a killed writer


def load_journal(path) -> JournalState:
    """Parse a journal; tolerates (and counts) a torn final line."""
    path = Path(path)
    if not path.is_file():
        raise JournalError(f"no sweep journal at {path}")
    state = JournalState(path=str(path))
    for record in _read_records(path):
        if record is None or not isinstance(record, dict):
            state.skipped_lines += 1
            continue
        kind = record.get("type")
        if kind == "spec":
            spec_hash = record.get("hash")
            if spec_hash and spec_hash not in state.specs:
                try:
                    state.specs[spec_hash] = RunSpec.from_dict(
                        record["spec"], label=record.get("label"),
                    )
                except (KeyError, TypeError, ValueError):
                    state.skipped_lines += 1
        elif kind == "done":
            state.done[record.get("hash")] = record
        elif kind == "failed":
            state.failed[record.get("hash")] = record
        elif kind == "note":
            state.notes.append(record)
        else:
            state.skipped_lines += 1
    if not state.specs:
        raise JournalError(
            f"{path} contains no spec records — is it a sweep journal?"
        )
    return state


__all__ = [
    "JournalError",
    "JournalState",
    "SweepJournal",
    "load_journal",
]
