"""Fan-out execution of RunSpecs: parallel, cached, fault-tolerant.

The :class:`Runner` takes a batch of independent :class:`RunSpec`\\ s and
drives each one to a :class:`RunResult` or a structured
:class:`RunFailure` — a crashed or hung simulation never tears down the
rest of the sweep.  Three execution modes share one retry/timeout
policy:

* ``process`` (default when ``workers > 1``) — a
  ``ProcessPoolExecutor``; each worker builds its workload, simulates,
  validates, and ships back only the light-weight result record.
* ``thread`` — a ``ThreadPoolExecutor``; no isolation, but the injected
  ``run_fn`` shares memory with the caller (used by tests).
* ``serial`` — in-process loop (default when ``workers == 1``).

Per-run wall-clock timeouts are enforced *inside* the executing process
via ``SIGALRM`` (each pool worker's main thread), so a hung run
surfaces as an ordinary exception and the pool stays healthy.  Failures
classified transient (OS errors, timeouts, a broken pool, or the
explicit :class:`TransientRunError`) are retried up to ``retries``
times; deterministic simulation errors (deadlock, validation failure,
bad parameters) fail fast.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.lab.cache import ResultCache
from repro.lab.results import LabError, RunFailure, RunResult
from repro.lab.spec import RunSpec
from repro.sim.progress import SimulationHang


class RunTimeout(RuntimeError):
    """The run exceeded the runner's per-run wall-clock budget."""


class TransientRunError(RuntimeError):
    """An explicitly-transient failure: always worth retrying."""


#: Exception types retried (bounded) instead of failing the run.
TRANSIENT_EXCEPTIONS = (OSError, RunTimeout, TransientRunError,
                        BrokenProcessPool)

#: Exception types NEVER retried, even if a subclass ever matched the
#: transient tuple: simulated hangs (deadlock/livelock/cycle-cap
#: timeout) are deterministic functions of the spec, so a retry would
#: burn a worker on the exact same hang.
PERMANENT_EXCEPTIONS = (SimulationHang,)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, PERMANENT_EXCEPTIONS):
        return False
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


def execute_run(spec: RunSpec) -> RunResult:
    """Build, simulate, validate, and score one spec (worker entry)."""
    # Imported here so pool workers pay the import once and the lab core
    # stays import-cycle-free with the harness/api layers.
    import dataclasses

    from repro.api import simulate
    from repro.kernels import build as build_workload

    obs = None
    if spec.obs is not None:
        from repro.obs import Observability
        obs = Observability(spec.obs)
    sanitizer = None
    if spec.sanitize is not None:
        from repro.analysis.sanitizer import Sanitizer
        sanitizer = Sanitizer(spec.sanitize)

    start = time.perf_counter()
    workload = build_workload(spec.kernel, **spec.build_params())
    built = time.perf_counter()
    sim = simulate(workload, config=spec.config, validate=spec.validate,
                   engine=spec.engine, obs=obs, sanitize=sanitizer)
    simulated = time.perf_counter()

    ddos_outcome = None
    if spec.config.ddos is not None:
        from repro.harness.ddos_eval import score_result
        ddos_outcome = dataclasses.asdict(score_result(spec.kernel, sim))
    end = time.perf_counter()

    return RunResult(
        spec_hash=spec.content_hash(),
        cycles=sim.cycles,
        stats=sim.stats,
        predicted_sibs=sorted(sim.predicted_sibs()),
        ddos=ddos_outcome,
        elapsed_s=end - start,
        phases={
            "build_s": built - start,
            "simulate_s": simulated - built,
            "score_s": end - simulated,
        },
        # Bounded event log: results travel through pickles and the
        # on-disk cache, so cap the embedded raw log (counts and the
        # time series are complete either way).
        obs=obs.to_dict(max_events=2_000) if obs is not None else None,
        sanitizer=sanitizer.to_dict() if sanitizer is not None else None,
        label=spec.label,
    )


def _run_with_timeout(run_fn: Callable[[RunSpec], RunResult],
                      spec: RunSpec,
                      timeout_s: Optional[float]) -> RunResult:
    """Run ``run_fn(spec)``, enforcing ``timeout_s`` via SIGALRM.

    The alarm is only available on the main thread of a process (true
    for serial mode and for every process-pool worker); thread-mode
    runs fall back to no hard timeout.
    """
    use_alarm = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return run_fn(spec)

    def _on_alarm(_signum, _frame):
        raise RunTimeout(
            f"run {spec.display} exceeded {timeout_s:.3f}s wall clock"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return run_fn(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _pool_entry(spec: RunSpec, timeout_s: Optional[float],
                run_fn: Optional[Callable]) -> RunResult:
    """Module-level (hence picklable) pool-worker entry point."""
    return _run_with_timeout(run_fn or execute_run, spec, timeout_s)


@dataclass
class BatchReport:
    """Manifest of one :meth:`Runner.run_many` batch."""

    results: List[Union[RunResult, RunFailure]]
    elapsed_s: float = 0.0
    retried: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.ok and r.from_cache)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.from_cache)

    @property
    def failures(self) -> List[RunFailure]:
        return [r for r in self.results if not r.ok]

    def raise_on_failure(self) -> None:
        failures = self.failures
        if failures:
            details = "\n  ".join(f.describe() for f in failures)
            raise LabError(
                f"{len(failures)}/{self.total} runs failed:\n  {details}"
            )

    def manifest(self) -> Dict[str, Any]:
        """JSON-ready summary (one row per run, headline counters)."""
        rows = []
        for r in self.results:
            if r.ok:
                row = {
                    "label": r.label,
                    "spec_hash": r.spec_hash,
                    "status": "cached" if r.from_cache else "ok",
                    "cycles": r.cycles,
                    "attempts": r.attempts,
                    "elapsed_s": round(r.elapsed_s, 3),
                }
                if r.obs is not None:
                    # Headline observability numbers; the full payload
                    # stays on the RunResult itself.
                    events = r.obs.get("events", {})
                    series = r.obs.get("series") or {}
                    row["obs"] = {
                        "event_total": events.get("total", 0),
                        "event_dropped": events.get("dropped", 0),
                        "series_rows": len(series.get("rows", [])),
                    }
                if r.sanitizer is not None:
                    row["sanitizer"] = {
                        "ok": r.sanitizer.get("ok", True),
                        "findings": len(r.sanitizer.get("diagnostics", [])),
                    }
                rows.append(row)
            else:
                row = {
                    "label": r.spec.label if r.spec else None,
                    "spec_hash": r.spec_hash,
                    "status": "failed",
                    "error": f"{r.error_type}: {r.message}",
                    "attempts": r.attempts,
                    "elapsed_s": round(r.elapsed_s, 3),
                }
                if r.hang is not None:
                    # Inline HangReport JSON: the forensics survive the
                    # manifest even after the worker process is gone.
                    row["hang"] = r.hang
                rows.append(row)
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": len(self.failures),
            "retried": self.retried,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs": rows,
        }


class Runner:
    """Executes batches of RunSpecs with caching, retries, and timeouts."""

    def __init__(
        self,
        workers: int = 1,
        mode: Optional[str] = None,
        cache: Optional[Union[ResultCache, str]] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        run_fn: Optional[Callable[[RunSpec], RunResult]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode is None:
            mode = "serial" if workers == 1 else "process"
        if mode not in ("serial", "thread", "process"):
            raise ValueError(f"unknown mode {mode!r}")
        self.workers = workers
        self.mode = mode
        self.cache = (ResultCache(cache) if isinstance(cache, (str, bytes))
                      or hasattr(cache, "__fspath__") else cache)
        self.timeout_s = timeout_s
        self.retries = retries
        #: The function actually executed per spec; injectable for tests
        #: (must be picklable — i.e. module-level — in process mode).
        self.run_fn = run_fn
        self.progress = progress
        self.last_report: Optional[BatchReport] = None

    # ------------------------------------------------------------------

    def run_many(self, specs: Sequence[RunSpec]) -> BatchReport:
        """Drive every spec to a result or failure record, in order."""
        specs = list(specs)
        start = time.perf_counter()
        results: List[Optional[Union[RunResult, RunFailure]]] = (
            [None] * len(specs)
        )
        report = BatchReport(results=results)  # filled in below

        pending: List[int] = []
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                self._note(f"[{i + 1}/{len(specs)}] {spec.display}: cached")
            else:
                pending.append(i)

        if pending:
            if self.mode == "serial":
                self._drive_serial(specs, pending, results, report)
            else:
                self._drive_pooled(specs, pending, results, report)

        for i, outcome in enumerate(results):
            if outcome is not None and outcome.ok and not outcome.from_cache:
                if self.cache is not None:
                    self.cache.put(specs[i], outcome)

        report.elapsed_s = time.perf_counter() - start
        self.last_report = report
        return report

    def run_map(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Like :meth:`run_many`, but all-or-error: raises on any failure."""
        report = self.run_many(specs)
        report.raise_on_failure()
        return list(report.results)

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run_map([spec])[0]

    # ------------------------------------------------------------------

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _max_attempts(self) -> int:
        return self.retries + 1

    def _record_outcome(self, results, report, specs, index, attempts,
                        outcome: Union[RunResult, BaseException],
                        elapsed: float) -> bool:
        """Store a result/failure; returns True if the run should retry."""
        spec = specs[index]
        if isinstance(outcome, RunResult):
            outcome.attempts = attempts
            outcome.label = spec.label
            results[index] = outcome
            self._note(f"{spec.display}: ok "
                       f"({outcome.cycles} cycles, {elapsed:.1f}s)")
            return False
        transient = _is_transient(outcome)
        if transient and attempts < self._max_attempts():
            report.retried += 1
            self._note(f"{spec.display}: transient "
                       f"{type(outcome).__name__}, retrying")
            return True
        hang_report = getattr(outcome, "report", None)
        results[index] = RunFailure(
            spec=spec,
            spec_hash=spec.content_hash(),
            error_type=type(outcome).__name__,
            message=str(outcome),
            attempts=attempts,
            elapsed_s=elapsed,
            transient=transient,
            hang=hang_report.to_dict() if hang_report is not None else None,
        )
        self._note(f"{spec.display}: FAILED ({type(outcome).__name__})")
        return False

    def _drive_serial(self, specs, pending, results, report) -> None:
        for i in pending:
            attempts = 0
            while True:
                attempts += 1
                t0 = time.perf_counter()
                try:
                    outcome: Union[RunResult, BaseException] = _pool_entry(
                        specs[i], self.timeout_s, self.run_fn
                    )
                except Exception as exc:  # noqa: BLE001 - recorded below
                    outcome = exc
                if not self._record_outcome(
                    results, report, specs, i, attempts, outcome,
                    time.perf_counter() - t0,
                ):
                    break

    def _make_executor(self) -> Executor:
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _drive_pooled(self, specs, pending, results, report) -> None:
        queue = [(i, 0) for i in pending]
        while queue:
            executor = self._make_executor()
            try:
                futures = {}
                started = {}
                for i, prior_attempts in queue:
                    future = executor.submit(
                        _pool_entry, specs[i], self.timeout_s, self.run_fn
                    )
                    futures[future] = (i, prior_attempts + 1)
                    started[future] = time.perf_counter()
                queue = []
                not_done = set(futures)
                pool_broken = False
                while not_done:
                    done, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        i, attempts = futures[future]
                        elapsed = time.perf_counter() - started[future]
                        try:
                            outcome: Union[RunResult, BaseException] = (
                                future.result()
                            )
                        except Exception as exc:  # noqa: BLE001
                            outcome = exc
                            pool_broken = pool_broken or isinstance(
                                exc, BrokenProcessPool
                            )
                        if self._record_outcome(
                            results, report, specs, i, attempts, outcome,
                            elapsed,
                        ):
                            queue.append((i, attempts))
                    if pool_broken:
                        # Every remaining future is doomed; drain them as
                        # transient and rebuild the pool.
                        for future in not_done:
                            i, attempts = futures[future]
                            if self._record_outcome(
                                results, report, specs, i, attempts,
                                BrokenProcessPool("process pool died"),
                                time.perf_counter() - started[future],
                            ):
                                queue.append((i, attempts))
                        break
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
