"""Fan-out execution of RunSpecs: parallel, cached, fault-tolerant.

The :class:`Runner` takes a batch of independent :class:`RunSpec`\\ s and
drives each one to a :class:`RunResult` or a structured
:class:`RunFailure` — a crashed or hung simulation never tears down the
rest of the sweep.  Three execution modes share one retry/timeout
policy:

* ``process`` (default when ``workers > 1``) — a
  ``ProcessPoolExecutor``; each worker builds its workload, simulates,
  validates, and ships back only the light-weight result record.
* ``thread`` — a ``ThreadPoolExecutor``; no isolation, but the injected
  ``run_fn`` shares memory with the caller (used by tests).
* ``serial`` — in-process loop (default when ``workers == 1``).

Per-run wall-clock timeouts are enforced *inside* the executing process
via ``SIGALRM`` (each pool worker's main thread), so a hung run
surfaces as an ordinary exception and the pool stays healthy.  Failures
classified transient (OS errors, timeouts, a broken pool, or the
explicit :class:`TransientRunError`) are retried up to ``retries``
times with exponential backoff and decorrelated jitter; deterministic
simulation errors (deadlock, validation failure, bad parameters) fail
fast.

Resilience (see ``docs/robustness.md`` for the full recovery matrix):

* **Worker loss** — a SIGKILLed/OOMed pool worker breaks the pool; the
  runner rebuilds it and re-queues each in-flight spec exactly once
  *without* consuming its retry budget (a worker death says nothing
  about the spec).  A second loss on the same spec counts as an
  ordinary transient failure.
* **Straggler detection** — in pooled modes the runner polls in-flight
  futures and flags any run exceeding ``straggler_factor ×
  timeout_s`` (the in-worker alarm should have fired; if it could not,
  the poll at least makes the stall visible).
* **Graceful draining** — the first SIGINT/SIGTERM stops new
  submissions and retries, lets in-flight runs finish (their periodic
  checkpoints are already on disk when ``checkpoint_dir`` is set), and
  records everything unstarted as interrupted transient failures; a
  second signal aborts immediately.  Handlers are saved and restored.
* **Checkpoint/resume** — with ``checkpoint_dir`` set, each run
  autocheckpoints every ``checkpoint_every`` cycles (default: the
  config's ``progress_epoch``) to ``<dir>/<spec_hash>.ckpt``; a rerun
  of the same spec resumes from that file instead of cycle 0, and the
  file is removed when the run completes.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Union

from repro.lab.cache import ResultCache
from repro.lab.results import LabError, RunFailure, RunResult
from repro.lab.spec import RunSpec
from repro.sim.progress import SimulationHang


class RunTimeout(RuntimeError):
    """The run exceeded the runner's per-run wall-clock budget."""


class TransientRunError(RuntimeError):
    """An explicitly-transient failure: always worth retrying."""


class RunInterrupted(RuntimeError):
    """The batch was drained by SIGINT/SIGTERM before this spec ran."""


#: Exception types retried (bounded) instead of failing the run.
TRANSIENT_EXCEPTIONS = (OSError, RunTimeout, TransientRunError,
                        BrokenProcessPool, RunInterrupted)

#: Exception types NEVER retried, even if a subclass ever matched the
#: transient tuple: simulated hangs (deadlock/livelock/cycle-cap
#: timeout) are deterministic functions of the spec, so a retry would
#: burn a worker on the exact same hang.
PERMANENT_EXCEPTIONS = (SimulationHang,)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, PERMANENT_EXCEPTIONS):
        return False
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


def decorrelated_jitter(previous_s: float, base_s: float, cap_s: float,
                        rng: random.Random) -> float:
    """One step of capped exponential backoff with decorrelated jitter.

    ``sleep = min(cap, uniform(base, previous * 3))`` — each delay is
    drawn relative to the *previous* delay rather than the attempt
    number, which decorrelates retry storms across workers while still
    growing geometrically in expectation.
    """
    if base_s <= 0:
        return 0.0
    upper = max(base_s, previous_s * 3.0)
    return min(cap_s, rng.uniform(base_s, upper))


def execute_run(spec: RunSpec, checkpoint_dir=None,
                checkpoint_every=None, obs=None) -> RunResult:
    """Build, simulate, validate, and score one spec (worker entry).

    With ``checkpoint_dir``, the simulation autocheckpoints its complete
    machine state to ``<dir>/<spec_hash>.ckpt`` every
    ``checkpoint_every`` cycles (``None`` → the config's
    ``progress_epoch``); if that file already exists — a previous
    attempt was killed or timed out — the run *resumes* from it instead
    of restarting, and a corrupt checkpoint falls back to a fresh run.
    The file is deleted once the run completes.

    ``obs`` optionally supplies a prepared
    :class:`~repro.obs.Observability` to use instead of the one built
    from ``spec.obs`` — the serve daemon's streaming tap rides in this
    way.  The instance MUST be built from ``spec.obs``'s config (and is
    only meaningful when ``spec.obs`` is set): the spec hash covers the
    obs *config*, so a divergent instance would poison the shared cache.
    """
    # Imported here so pool workers pay the import once and the lab core
    # stays import-cycle-free with the harness/api layers.
    import dataclasses

    from repro.api import simulate
    from repro.kernels import build as build_workload

    spec_hash = spec.content_hash()
    ckpt_path: Optional[Path] = None
    resume_ckpt = None
    if checkpoint_dir is not None:
        from repro.sim.checkpoint import CheckpointError, SimCheckpoint

        if checkpoint_every is None:
            checkpoint_every = True
        ckpt_path = Path(checkpoint_dir) / f"{spec_hash}.ckpt"
        if ckpt_path.is_file():
            try:
                resume_ckpt = SimCheckpoint.load(ckpt_path)
            except CheckpointError:
                # Torn write or stale simulator code: recompute fresh.
                try:
                    ckpt_path.unlink()
                except OSError:
                    pass

    start = time.perf_counter()
    workload = build_workload(spec.kernel, **spec.build_params())
    built = time.perf_counter()

    if resume_ckpt is not None:
        live = resume_ckpt.restore()
        bus = live.obs.bus if live.obs is not None else None
        if bus is not None:
            from repro.obs.events import RunResumed

            bus.publish(RunResumed(
                cycle=live.now, path=str(ckpt_path), spec_hash=spec_hash,
            ))
        sim = live.run(
            checkpoint_every=checkpoint_every, checkpoint_path=ckpt_path,
        )
        # The workload build is deterministic in (kernel, params, seed),
        # so the fresh build's validator checks the resumed run exactly
        # as api.simulate would have checked an uninterrupted one.
        if spec.validate and not spec.config.magic_locks:
            workload.validate(sim.memory)
    else:
        if obs is None and spec.obs is not None:
            from repro.obs import Observability
            obs = Observability(spec.obs)
        sanitizer = None
        if spec.sanitize is not None:
            from repro.analysis.sanitizer import Sanitizer
            sanitizer = Sanitizer(spec.sanitize)
        sim = simulate(
            workload, config=spec.config, validate=spec.validate,
            engine=spec.engine, obs=obs, sanitize=sanitizer,
            checkpoint_every=checkpoint_every if ckpt_path else None,
            checkpoint_path=ckpt_path,
        )
    simulated = time.perf_counter()

    ddos_outcome = None
    if spec.config.ddos is not None:
        from repro.harness.ddos_eval import score_result
        ddos_outcome = dataclasses.asdict(score_result(spec.kernel, sim))
    end = time.perf_counter()

    if ckpt_path is not None:
        try:
            ckpt_path.unlink()  # completed: the checkpoint is obsolete
        except OSError:
            pass

    return RunResult(
        spec_hash=spec_hash,
        cycles=sim.cycles,
        stats=sim.stats,
        predicted_sibs=sorted(sim.predicted_sibs()),
        ddos=ddos_outcome,
        elapsed_s=end - start,
        phases={
            "build_s": built - start,
            "simulate_s": simulated - built,
            "score_s": end - simulated,
        },
        # Bounded event log: results travel through pickles and the
        # on-disk cache, so cap the embedded raw log (counts and the
        # time series are complete either way).
        obs=(sim.obs.to_dict(max_events=2_000)
             if sim.obs is not None else None),
        sanitizer=(sim.sanitizer.to_dict()
                   if sim.sanitizer is not None else None),
        label=spec.label,
    )


def _run_with_timeout(run_fn: Callable[[RunSpec], RunResult],
                      spec: RunSpec,
                      timeout_s: Optional[float]) -> RunResult:
    """Run ``run_fn(spec)``, enforcing ``timeout_s`` via SIGALRM.

    The alarm is only available on the main thread of a process (true
    for serial mode and for every process-pool worker); thread-mode
    runs fall back to no hard timeout.  The caller's prior SIGALRM
    handler *and* itimer are saved and restored — a host application's
    own alarm is re-armed (minus the time we consumed) rather than
    silently cleared.
    """
    use_alarm = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return run_fn(spec)

    def _on_alarm(_signum, _frame):
        raise RunTimeout(
            f"run {spec.display} exceeded {timeout_s:.3f}s wall clock"
        )

    try:
        previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # defensive: signal set refused off-main-thread
        return run_fn(spec)
    armed_at = time.monotonic()
    prev_remaining, prev_interval = signal.setitimer(
        signal.ITIMER_REAL, timeout_s
    )
    try:
        return run_fn(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prev_remaining > 0.0:
            # Re-arm the caller's timer with whatever time it has left;
            # if it should already have fired, fire it immediately.
            elapsed = time.monotonic() - armed_at
            signal.setitimer(
                signal.ITIMER_REAL,
                max(prev_remaining - elapsed, 1e-6),
                prev_interval,
            )


def _pool_entry(spec: RunSpec, timeout_s: Optional[float],
                run_fn: Optional[Callable],
                checkpoint_dir=None, checkpoint_every=None) -> RunResult:
    """Module-level (hence picklable) pool-worker entry point."""
    if run_fn is not None:
        return _run_with_timeout(run_fn, spec, timeout_s)

    def entry(s: RunSpec) -> RunResult:
        return execute_run(s, checkpoint_dir=checkpoint_dir,
                           checkpoint_every=checkpoint_every)

    return _run_with_timeout(entry, spec, timeout_s)


@dataclass
class BatchReport:
    """Manifest of one :meth:`Runner.run_many` batch."""

    results: List[Union[RunResult, RunFailure]]
    elapsed_s: float = 0.0
    retried: int = 0
    #: In-flight specs re-queued for free after a pool worker died.
    worker_losses: int = 0
    #: Pooled runs observed exceeding ``straggler_factor × timeout_s``.
    stragglers: int = 0
    #: The batch was drained early by SIGINT/SIGTERM.
    interrupted: bool = False

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.ok and r.from_cache)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.from_cache)

    @property
    def failures(self) -> List[RunFailure]:
        return [r for r in self.results if not r.ok]

    def raise_on_failure(self) -> None:
        failures = self.failures
        if failures:
            details = "\n  ".join(f.describe() for f in failures)
            raise LabError(
                f"{len(failures)}/{self.total} runs failed:\n  {details}"
            )

    def manifest(self) -> Dict[str, Any]:
        """JSON-ready summary (one row per run, headline counters)."""
        rows = []
        for r in self.results:
            if r.ok:
                row = {
                    "label": r.label,
                    "spec_hash": r.spec_hash,
                    "status": "cached" if r.from_cache else "ok",
                    "cycles": r.cycles,
                    "attempts": r.attempts,
                    "elapsed_s": round(r.elapsed_s, 3),
                }
                if r.obs is not None:
                    # Headline observability numbers; the full payload
                    # stays on the RunResult itself.
                    events = r.obs.get("events", {})
                    series = r.obs.get("series") or {}
                    row["obs"] = {
                        "event_total": events.get("total", 0),
                        "event_dropped": events.get("dropped", 0),
                        "series_rows": len(series.get("rows", [])),
                    }
                if r.sanitizer is not None:
                    row["sanitizer"] = {
                        "ok": r.sanitizer.get("ok", True),
                        "findings": len(r.sanitizer.get("diagnostics", [])),
                    }
                rows.append(row)
            else:
                row = {
                    "label": r.spec.label if r.spec else None,
                    "spec_hash": r.spec_hash,
                    "status": "failed",
                    "error": f"{r.error_type}: {r.message}",
                    "attempts": r.attempts,
                    "elapsed_s": round(r.elapsed_s, 3),
                }
                if r.hang is not None:
                    # Inline HangReport JSON: the forensics survive the
                    # manifest even after the worker process is gone.
                    row["hang"] = r.hang
                rows.append(row)
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": len(self.failures),
            "retried": self.retried,
            "worker_losses": self.worker_losses,
            "stragglers": self.stragglers,
            "interrupted": self.interrupted,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs": rows,
        }


class _DrainState:
    """Shared flag set by the first SIGINT/SIGTERM of a batch."""

    def __init__(self) -> None:
        self.requested = False


class Runner:
    """Executes batches of RunSpecs with caching, retries, and timeouts."""

    def __init__(
        self,
        workers: int = 1,
        mode: Optional[str] = None,
        cache: Optional[Union[ResultCache, str]] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        run_fn: Optional[Callable[[RunSpec], RunResult]] = None,
        progress: Optional[Callable[[str], None]] = None,
        bus=None,
        checkpoint_dir=None,
        checkpoint_every=None,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        straggler_factor: float = 1.5,
        grace_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode is None:
            mode = "serial" if workers == 1 else "process"
        if mode not in ("serial", "thread", "process"):
            raise ValueError(f"unknown mode {mode!r}")
        self.workers = workers
        self.mode = mode
        self.cache = (ResultCache(cache) if isinstance(cache, (str, bytes))
                      or hasattr(cache, "__fspath__") else cache)
        self.timeout_s = timeout_s
        self.retries = retries
        #: The function actually executed per spec; injectable for tests
        #: (must be picklable — i.e. module-level — in process mode).
        self.run_fn = run_fn
        self.progress = progress
        #: Optional :class:`repro.obs.EventBus` receiving lab-level
        #: events (worker losses, quarantines).  Shared with the cache.
        self.bus = bus
        if self.bus is not None and self.cache is not None:
            self.cache.bus = self.bus
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.straggler_factor = straggler_factor
        self.grace_s = grace_s
        self.last_report: Optional[BatchReport] = None
        self._backoff_rng = random.Random(0x5EED)
        self._drain = _DrainState()
        self._journal = None

    # ------------------------------------------------------------------

    def run_many(self, specs: Sequence[RunSpec],
                 journal=None) -> BatchReport:
        """Drive every spec to a result or failure record, in order.

        ``journal`` is an optional
        :class:`~repro.lab.journal.SweepJournal`: specs and outcomes are
        appended durably as the batch progresses, enabling
        ``repro sweep --resume``.
        """
        specs = list(specs)
        start = time.perf_counter()
        results: List[Optional[Union[RunResult, RunFailure]]] = (
            [None] * len(specs)
        )
        report = BatchReport(results=results)  # filled in below
        self._journal = journal
        if journal is not None:
            for spec in specs:
                journal.record_spec(spec)

        try:
            with self._drain_signals(report):
                pending: List[int] = []
                for i, spec in enumerate(specs):
                    cached = (self.cache.get(spec)
                              if self.cache is not None else None)
                    if cached is not None:
                        results[i] = cached
                        self._journal_done(cached)
                        self._note(
                            f"[{i + 1}/{len(specs)}] {spec.display}: cached"
                        )
                    else:
                        pending.append(i)

                if pending:
                    if self.mode == "serial":
                        self._drive_serial(specs, pending, results, report)
                    else:
                        self._drive_pooled(specs, pending, results, report)
        finally:
            self._journal = None

        if report.interrupted and journal is not None:
            journal.record_note("interrupted",
                                completed=sum(1 for r in results
                                              if r is not None and r.ok))
        report.elapsed_s = time.perf_counter() - start
        self.last_report = report
        return report

    def run_map(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Like :meth:`run_many`, but all-or-error: raises on any failure."""
        report = self.run_many(specs)
        report.raise_on_failure()
        return list(report.results)

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run_map([spec])[0]

    # ------------------------------------------------------------------

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _journal_done(self, result: RunResult) -> None:
        if self._journal is not None:
            self._journal.record_done(
                result.spec_hash, from_cache=result.from_cache,
                cycles=result.cycles,
            )

    def _journal_failed(self, failure: RunFailure) -> None:
        if self._journal is not None:
            self._journal.record_failed(
                failure.spec_hash, error_type=failure.error_type,
                transient=failure.transient,
            )

    def _max_attempts(self) -> int:
        return self.retries + 1

    @contextmanager
    def _drain_signals(self, report: BatchReport):
        """Install the two-stage SIGINT/SIGTERM drain for one batch.

        First signal: stop submitting/retrying, let in-flight runs
        finish (bounded by ``grace_s`` in pooled modes), mark the rest
        interrupted.  Second signal: abort via KeyboardInterrupt.
        Handlers are installed only on the main thread and always
        restored.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        drain = self._drain
        drain.requested = False

        def _on_signal(signum, _frame):
            if drain.requested:
                raise KeyboardInterrupt
            drain.requested = True
            report.interrupted = True
            self._note("signal received: draining in-flight runs "
                       "(repeat to abort immediately)")

        previous: Dict[int, Any] = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def _backoff(self, previous_s: float) -> float:
        """Sleep one decorrelated-jitter step; returns the delay used."""
        delay = decorrelated_jitter(
            previous_s, self.backoff_base_s, self.backoff_cap_s,
            self._backoff_rng,
        )
        if delay > 0:
            time.sleep(delay)
        return delay

    def _record_outcome(self, results, report, specs, index, attempts,
                        outcome: Union[RunResult, BaseException],
                        elapsed: float) -> bool:
        """Store a result/failure; returns True if the run should retry."""
        spec = specs[index]
        if isinstance(outcome, RunResult):
            outcome.attempts = attempts
            outcome.label = spec.label
            results[index] = outcome
            # Persist immediately (not at batch end): if this process is
            # SIGKILLed later in the batch, the completed work survives
            # and a resumed sweep serves it as a cache hit.
            if self.cache is not None:
                self.cache.put(spec, outcome)
            self._journal_done(outcome)
            self._note(f"{spec.display}: ok "
                       f"({outcome.cycles} cycles, {elapsed:.1f}s)")
            return False
        transient = _is_transient(outcome)
        if (transient and attempts < self._max_attempts()
                and not self._drain.requested
                and not isinstance(outcome, RunInterrupted)):
            report.retried += 1
            self._note(f"{spec.display}: transient "
                       f"{type(outcome).__name__}, retrying")
            return True
        hang_report = getattr(outcome, "report", None)
        failure = RunFailure(
            spec=spec,
            spec_hash=spec.content_hash(),
            error_type=type(outcome).__name__,
            message=str(outcome),
            attempts=attempts,
            elapsed_s=elapsed,
            transient=transient,
            hang=hang_report.to_dict() if hang_report is not None else None,
        )
        results[index] = failure
        self._journal_failed(failure)
        self._note(f"{spec.display}: FAILED ({type(outcome).__name__})")
        return False

    def _record_interrupted(self, results, report, specs, index,
                            attempts: int) -> None:
        self._record_outcome(
            results, report, specs, index, max(attempts, 1),
            RunInterrupted("batch drained before this spec completed"),
            0.0,
        )

    def _worker_lost(self, report, spec: RunSpec, requeued: bool) -> None:
        report.worker_losses += 1
        if self.bus is not None:
            from repro.obs.events import WorkerLost

            self.bus.publish(WorkerLost(
                cycle=0, spec_hash=spec.content_hash(), requeued=requeued,
            ))
        self._note(f"{spec.display}: worker died"
                   + (", re-queued (free)" if requeued else ""))

    def _drive_serial(self, specs, pending, results, report) -> None:
        for i in pending:
            if self._drain.requested:
                self._record_interrupted(results, report, specs, i, 0)
                continue
            attempts = 0
            delay = 0.0
            while True:
                attempts += 1
                t0 = time.perf_counter()
                try:
                    outcome: Union[RunResult, BaseException] = _pool_entry(
                        specs[i], self.timeout_s, self.run_fn,
                        self.checkpoint_dir, self.checkpoint_every,
                    )
                except Exception as exc:  # noqa: BLE001 - recorded below
                    outcome = exc
                if not self._record_outcome(
                    results, report, specs, i, attempts, outcome,
                    time.perf_counter() - t0,
                ):
                    break
                delay = self._backoff(delay)

    def _make_executor(self) -> Executor:
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _drive_pooled(self, specs, pending, results, report) -> None:
        queue = [(i, 0) for i in pending]
        #: Specs already granted their one free re-queue after a worker
        #: death; a second loss costs an ordinary (budgeted) retry.
        free_requeued: Set[int] = set()
        #: Futures already flagged as stragglers (count each run once).
        pass_delay = 0.0
        while queue:
            if self._drain.requested:
                for i, prior_attempts in queue:
                    self._record_interrupted(
                        results, report, specs, i, prior_attempts
                    )
                return
            retrying = any(a > 0 for _, a in queue)
            if retrying:
                pass_delay = self._backoff(pass_delay)
            executor = self._make_executor()
            try:
                futures = {}
                started = {}
                for i, prior_attempts in queue:
                    future = executor.submit(
                        _pool_entry, specs[i], self.timeout_s, self.run_fn,
                        self.checkpoint_dir, self.checkpoint_every,
                    )
                    futures[future] = (i, prior_attempts + 1)
                    started[future] = time.perf_counter()
                queue = []
                not_done = set(futures)
                flagged: Set[Any] = set()
                pool_broken = False
                drain_deadline: Optional[float] = None
                while not_done:
                    done, not_done = wait(
                        not_done, timeout=0.5, return_when=FIRST_COMPLETED
                    )
                    now = time.monotonic()
                    if self._drain.requested and drain_deadline is None:
                        drain_deadline = now + self.grace_s
                    if drain_deadline is not None and now >= drain_deadline:
                        # Grace expired: give up on the stuck futures.
                        for future in not_done:
                            i, attempts = futures[future]
                            self._record_interrupted(
                                results, report, specs, i, attempts
                            )
                        not_done = set()
                    if self.timeout_s is not None:
                        budget = self.straggler_factor * self.timeout_s
                        for future in not_done - flagged:
                            overdue = time.perf_counter() - started[future]
                            if overdue > budget:
                                flagged.add(future)
                                report.stragglers += 1
                                i, _ = futures[future]
                                self._note(
                                    f"{specs[i].display}: straggler "
                                    f"({overdue:.1f}s > {budget:.1f}s "
                                    "budget; in-worker alarm missing?)"
                                )
                    for future in done:
                        i, attempts = futures[future]
                        elapsed = time.perf_counter() - started[future]
                        try:
                            outcome: Union[RunResult, BaseException] = (
                                future.result()
                            )
                        except Exception as exc:  # noqa: BLE001
                            outcome = exc
                            pool_broken = pool_broken or isinstance(
                                exc, BrokenProcessPool
                            )
                        if (isinstance(outcome, BrokenProcessPool)
                                and i not in free_requeued
                                and not self._drain.requested):
                            # The worker died under this spec; that says
                            # nothing about the spec itself.  One free
                            # re-queue, not charged against retries.
                            free_requeued.add(i)
                            queue.append((i, attempts - 1))
                            self._worker_lost(report, specs[i],
                                              requeued=True)
                            continue
                        if isinstance(outcome, BrokenProcessPool):
                            self._worker_lost(report, specs[i],
                                              requeued=False)
                        if self._record_outcome(
                            results, report, specs, i, attempts, outcome,
                            elapsed,
                        ):
                            queue.append((i, attempts))
                    if pool_broken:
                        # Every remaining future is doomed; re-queue the
                        # innocents (free, once) and rebuild the pool.
                        for future in not_done:
                            i, attempts = futures[future]
                            if (i not in free_requeued
                                    and not self._drain.requested):
                                free_requeued.add(i)
                                queue.append((i, attempts - 1))
                                self._worker_lost(report, specs[i],
                                                  requeued=True)
                                continue
                            if self._record_outcome(
                                results, report, specs, i, attempts,
                                BrokenProcessPool("process pool died"),
                                time.perf_counter() - started[future],
                            ):
                                queue.append((i, attempts))
                        break
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
