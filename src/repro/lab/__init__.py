"""``repro.lab`` — parallel experiment orchestration with result caching.

The lab turns "run N independent simulations" into a first-class
operation (see ``docs/lab.md``):

* :class:`RunSpec` — one simulation, content-hashed;
* :class:`Runner` — parallel fan-out with per-run timeouts, bounded
  retries, and structured :class:`RunFailure` records;
* :class:`ResultCache` — on-disk content-addressed result store keyed
  by spec hash + simulator-code fingerprint;
* :class:`Sweep` — cartesian product builder with manifest reporting.

The experiment harness (``repro.harness.experiments``) executes every
figure/table through the *current* runner, which defaults to an
in-process serial runner with no cache.  Install a different one —
parallel, cached, instrumented — with :func:`use_runner` or
:func:`set_runner`:

    from repro.lab import Runner, ResultCache, use_runner
    with use_runner(Runner(workers=4, cache=ResultCache())):
        fig9 = experiments.fig9()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.lab.cache import (CacheStats, EntryReport, ResultCache,
                             VerifyReport, code_fingerprint,
                             default_cache_dir)
from repro.lab.journal import (JournalError, JournalState, SweepJournal,
                               load_journal)
from repro.lab.locking import FileLock, LockTimeout
from repro.lab.results import LabError, RunFailure, RunResult
from repro.lab.runner import (BatchReport, RunInterrupted, Runner,
                              RunTimeout, TransientRunError,
                              decorrelated_jitter, execute_run)
from repro.lab.spec import RunSpec, config_from_dict, config_to_dict
from repro.lab.sweep import (Sweep, SweepResult, experiment_spec,
                             resume_sweep)

_current_runner: Optional[Runner] = None


def current_runner() -> Runner:
    """The runner experiment code executes through (default: serial)."""
    global _current_runner
    if _current_runner is None:
        _current_runner = Runner(workers=1, mode="serial")
    return _current_runner


def set_runner(runner: Optional[Runner]) -> None:
    """Install ``runner`` as the process-wide current runner."""
    global _current_runner
    _current_runner = runner


@contextlib.contextmanager
def use_runner(runner: Runner) -> Iterator[Runner]:
    """Temporarily install ``runner`` as the current runner."""
    global _current_runner
    previous = _current_runner
    _current_runner = runner
    try:
        yield runner
    finally:
        _current_runner = previous


__all__ = [
    "BatchReport",
    "CacheStats",
    "EntryReport",
    "FileLock",
    "JournalError",
    "JournalState",
    "LabError",
    "LockTimeout",
    "ResultCache",
    "RunFailure",
    "RunInterrupted",
    "RunResult",
    "RunSpec",
    "RunTimeout",
    "Runner",
    "Sweep",
    "SweepJournal",
    "SweepResult",
    "TransientRunError",
    "VerifyReport",
    "code_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "current_runner",
    "decorrelated_jitter",
    "default_cache_dir",
    "execute_run",
    "experiment_spec",
    "load_journal",
    "resume_sweep",
    "set_runner",
    "use_runner",
]
