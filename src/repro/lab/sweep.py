"""Sweep builder: cartesian parameter products over RunSpecs.

A :class:`Sweep` names a set of axes (``kernel``, ``scheduler``,
``bows`` delay limit, …) and expands their cartesian product into
ordered combos.  A *spec factory* maps each combo to a
:class:`RunSpec`; :func:`experiment_spec` is the stock factory speaking
the paper's vocabulary (scheduler/bows/preset + the canonical workload
parameter registries).  ``Sweep.run`` fans the specs out through a
:class:`~repro.lab.runner.Runner` and returns a :class:`SweepResult`
pairing each combo with its outcome, plus a JSON-ready manifest.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Union)

from repro.lab.results import RunFailure, RunResult
from repro.lab.runner import BatchReport, Runner
from repro.lab.spec import RunSpec

SpecFactory = Callable[[Dict[str, Any]], RunSpec]


def _combo_label(combo: Dict[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in combo.items())


def experiment_spec(combo: Dict[str, Any]) -> RunSpec:
    """Stock factory: combo axes in the harness vocabulary.

    Recognized axes: ``kernel`` (required), ``scheduler``, ``bows``,
    ``ddos``, ``preset``, ``scale``, ``seed``, ``validate``,
    ``engine``, ``obs`` (``True`` for default collection or an
    :class:`~repro.obs.ObsConfig`), ``sanitize`` (``True`` or a
    :class:`~repro.analysis.SanitizerConfig`); any other axis is passed
    through as a workload parameter override.
    """
    from repro.harness.params import sync_free_params, sync_params
    from repro.harness.runner import make_config

    combo = dict(combo)
    kernel = combo.pop("kernel")
    scale = combo.pop("scale", "full")
    config = make_config(
        combo.pop("scheduler", "gto"),
        bows=combo.pop("bows", None),
        ddos=combo.pop("ddos", None),
        preset=combo.pop("preset", "fermi"),
    )
    seed = combo.pop("seed", None)
    validate = combo.pop("validate", True)
    engine = combo.pop("engine", "fast")
    obs = combo.pop("obs", None)
    if obs is True:
        from repro.obs import ObsConfig
        obs = ObsConfig()
    sanitize = combo.pop("sanitize", None)
    if sanitize is True:
        from repro.analysis.sanitizer import SanitizerConfig
        sanitize = SanitizerConfig()
    registry: Dict[str, dict] = {}
    registry.update(sync_free_params(scale))
    registry.update(sync_params(scale))
    params = dict(registry.get(kernel, {}))
    params.update(combo)  # leftover axes are workload parameters
    return RunSpec(kernel=kernel, config=config, params=params,
                   seed=seed, validate=validate, engine=engine,
                   obs=obs or None, sanitize=sanitize or None)


class Sweep:
    """Ordered cartesian product of named axes."""

    def __init__(self, name: str, **axes: Iterable) -> None:
        self.name = name
        self.axes: Dict[str, List] = {}
        for axis, values in axes.items():
            self.axis(axis, values)

    def axis(self, name: str, values: Iterable) -> "Sweep":
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        self.axes[name] = values
        return self

    def combos(self) -> List[Dict[str, Any]]:
        names = list(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(*self.axes.values())
        ]

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def specs(self, factory: SpecFactory = experiment_spec) -> List[RunSpec]:
        specs = []
        for combo in self.combos():
            spec = factory(combo)
            if spec.label is None:
                # replace() keeps every other field (engine, obs,
                # sanitize, ...) — the label is presentation-only.
                spec = dataclasses.replace(spec, label=_combo_label(combo))
            specs.append(spec)
        return specs

    def run(self, runner: Optional[Runner] = None,
            factory: SpecFactory = experiment_spec,
            journal=None, server=None) -> "SweepResult":
        """Execute the sweep; ``journal`` (a path or
        :class:`~repro.lab.journal.SweepJournal`) makes it resumable via
        :func:`resume_sweep` after a crash.

        ``server`` routes the whole sweep through a ``repro serve``
        daemon (address or connected client) instead of an in-process
        runner — the daemon's shared cache and in-flight dedup then
        apply across every client on the machine.
        """
        from repro.lab import current_runner
        from repro.lab.journal import SweepJournal

        combos = self.combos()
        if server is not None:
            from repro.submit import submit_many

            batch = submit_many(self.specs(factory), backend="server",
                                server=server, journal=journal,
                                client_name=f"sweep:{self.name}")
            return SweepResult(sweep=self, combos=combos,
                               report=batch.report)
        runner = runner or current_runner()
        if journal is None:
            report = runner.run_many(self.specs(factory))
        else:
            if not isinstance(journal, SweepJournal):
                journal = SweepJournal(journal)
            with journal:
                journal.record_note("sweep", name=self.name)
                report = runner.run_many(self.specs(factory),
                                         journal=journal)
        return SweepResult(sweep=self, combos=combos, report=report)


def resume_sweep(journal_path, runner: Optional[Runner] = None,
                 rerun_failed: bool = True) -> BatchReport:
    """Complete a sweep whose writer crashed, from its journal alone.

    Rebuilds every spec recorded in the journal and re-runs the whole
    batch through ``runner`` — with a result cache installed, specs that
    already finished come back as cache hits (journaled as
    ``from_cache`` done records), so only genuinely unfinished work is
    recomputed; runs that left a checkpoint resume mid-simulation when
    the runner has a ``checkpoint_dir``.  ``rerun_failed=False`` skips
    specs whose last journal record is a permanent failure.
    """
    from repro.lab import current_runner
    from repro.lab.journal import SweepJournal, load_journal

    state = load_journal(journal_path)
    runner = runner or current_runner()
    specs = state.all_specs()
    if not rerun_failed:
        permanent = {h for h, rec in state.failed.items()
                     if not rec.get("transient") and h not in state.done}
        specs = [s for s in specs if s.content_hash() not in permanent]
    with SweepJournal(journal_path, resume=True) as journal:
        journal.record_note("resume", pending=len(state.pending),
                            done=len(state.done))
        return runner.run_many(specs, journal=journal)


@dataclass
class SweepResult:
    """Combos paired with their outcomes, plus a manifest."""

    sweep: Sweep
    combos: List[Dict[str, Any]]
    report: BatchReport

    def items(self) -> List[Tuple[Dict[str, Any],
                                  Union[RunResult, RunFailure]]]:
        return list(zip(self.combos, self.report.results))

    def rows(self) -> List[Dict[str, Any]]:
        """Flat table rows (combo axes + headline outcome columns)."""
        rows = []
        for combo, outcome in self.items():
            row = dict(combo)
            if outcome.ok:
                row.update({
                    "status": "cached" if outcome.from_cache else "ok",
                    "cycles": outcome.cycles,
                    "ipc": round(outcome.stats.ipc, 3),
                    "simd_eff": round(outcome.stats.simd_efficiency, 3),
                    "energy_pj": round(outcome.stats.dynamic_energy_pj, 1),
                })
            else:
                row.update({
                    "status": "failed",
                    "cycles": "-",
                    "ipc": "-",
                    "simd_eff": "-",
                    "energy_pj": f"{outcome.error_type}",
                })
            rows.append(row)
        return rows

    def manifest(self) -> Dict[str, Any]:
        manifest = {
            "sweep": self.sweep.name,
            "axes": {k: [repr(v) for v in vs]
                     for k, vs in self.sweep.axes.items()},
        }
        manifest.update(self.report.manifest())
        return manifest

    def write_manifest(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, indent=2, default=str)
